"""Quickstart: index a handful of RDF statements and run every selection pattern.

Run with::

    python examples/quickstart.py
"""

from repro import IndexBuilder, TriplePattern
from repro.rdf.dictionary import RdfDictionary
from repro.rdf.ntriples import parse_ntriples, term_triples_to_keys

NTRIPLES = """\
<http://example.org/alice> <http://xmlns.com/foaf/0.1/knows> <http://example.org/bob> .
<http://example.org/alice> <http://xmlns.com/foaf/0.1/knows> <http://example.org/carol> .
<http://example.org/alice> <http://xmlns.com/foaf/0.1/name> "Alice" .
<http://example.org/bob> <http://xmlns.com/foaf/0.1/knows> <http://example.org/carol> .
<http://example.org/bob> <http://xmlns.com/foaf/0.1/name> "Bob" .
<http://example.org/carol> <http://xmlns.com/foaf/0.1/name> "Carol" .
<http://example.org/carol> <http://xmlns.com/foaf/0.1/worksFor> <http://example.org/acme> .
<http://example.org/acme> <http://xmlns.com/foaf/0.1/name> "ACME Inc." .
"""


def main() -> None:
    # 1. Parse N-Triples and build the per-role string dictionaries plus the
    #    integer triple store (the dictionary is a separate concern from the
    #    index, exactly as in the paper).
    term_triples = list(parse_ntriples(NTRIPLES.splitlines()))
    dictionary, store = RdfDictionary.from_term_triples(
        term_triples_to_keys(term_triples))
    print(f"parsed {len(store)} triples "
          f"({store.num_subjects} subjects, {store.num_predicates} predicates, "
          f"{store.num_objects} objects)")

    # 2. Build the paper's preferred layout (2Tp: SPO + POS tries).
    index = IndexBuilder(store).build("2tp")
    print(f"2Tp index: {index.bits_per_triple():.2f} bits/triple\n")

    # 3. Ask a few selection patterns.  Wildcards are written as None.
    knows = dictionary.predicates.id_of("<http://xmlns.com/foaf/0.1/knows>")
    alice = dictionary.subjects.id_of("<http://example.org/alice>")
    carol_obj = dictionary.objects.id_of("<http://example.org/carol>")

    print("Who does Alice know?            (alice, knows, ?)")
    for triple in index.select(TriplePattern(alice, knows, None)):
        print("   ", dictionary.decode(triple))

    print("Who knows Carol?                (?, knows, carol)")
    for triple in index.select(TriplePattern(None, knows, carol_obj)):
        print("   ", dictionary.decode(triple))

    print("Everything about Alice:         (alice, ?, ?)")
    for triple in index.select(TriplePattern(alice, None, None)):
        print("   ", dictionary.decode(triple))

    print("Any relation Alice -> Carol?    (alice, ?, carol)  [enumerate algorithm]")
    for triple in index.select(TriplePattern(alice, None, carol_obj)):
        print("   ", dictionary.decode(triple))

    # 4. Count-style usage and the space breakdown.
    print(f"\ntriples with predicate 'knows': {index.count((None, knows, None))}")
    print("space breakdown (bits):")
    for component, bits in index.space_breakdown().items():
        print(f"    {component:<18} {bits}")


if __name__ == "__main__":
    main()
