"""Compare the paper's index layouts and the baselines on a DBpedia-like dataset.

Builds 3T, CC, 2Tp and 2To plus the HDT-FoQ and TripleBit baselines over a
scaled-down DBpedia-shaped dataset, then prints a miniature version of the
paper's Tables 4 and 5: bits/triple and ns-per-returned-triple for every
selection pattern.

Run with::

    python examples/compare_layouts.py [num_triples]
"""

import sys

from repro import IndexBuilder
from repro.baselines import HdtFoqIndex, TripleBitIndex
from repro.bench import format_table, measure_pattern_workload
from repro.core.patterns import PatternKind
from repro.datasets import generate_from_profile
from repro.queries import build_workloads


def main(num_triples: int = 30_000) -> None:
    print(f"generating a DBpedia-shaped dataset with ~{num_triples} triples ...")
    store = generate_from_profile("dbpedia", num_triples, seed=42)
    print(f"  {store.statistics()}\n")

    builder = IndexBuilder(store)
    indexes = {
        "3T": builder.build("3t"),
        "CC": builder.build("cc"),
        "2To": builder.build("2to"),
        "2Tp": builder.build("2tp"),
        "HDT-FoQ": HdtFoqIndex(store),
        "TripleBit": TripleBitIndex(store),
    }

    workloads = build_workloads(store, count=200, seed=7)

    rows = []
    for name, index in indexes.items():
        row = [name, index.bits_per_triple()]
        for kind in (PatternKind.SPO, PatternKind.SP, PatternKind.S, PatternKind.SO,
                     PatternKind.PO, PatternKind.P, PatternKind.O):
            timing = measure_pattern_workload(index, workloads[kind].patterns,
                                              kind=kind.value)
            row.append(timing.ns_per_triple)
        rows.append(row)

    headers = ["index", "bits/triple", "SPO", "SP?", "S??", "S?O", "?PO", "?P?", "??O"]
    print(format_table(headers, rows,
                       title="space (bits/triple) and speed (ns per returned triple)"))
    print("\nThe ns figures are Python-scale; compare the *ratios* between rows "
          "with the paper's Tables 4 and 5.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 30_000)
