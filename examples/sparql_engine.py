"""Run the WatDiv-style SPARQL query log through the planner and the 2Tp index.

This exercises the full pipeline the paper's Table 6 measures: SPARQL query ->
planner decomposition into triple selection patterns -> execution on the
compressed index.

Run with::

    python examples/sparql_engine.py [scale]
"""

import sys
import time

from repro import build_index
from repro.bench import format_table
from repro.datasets import generate_watdiv
from repro.queries import execute_bgp, watdiv_query_log


def main(scale: int = 400) -> None:
    print(f"generating a WatDiv-shaped dataset (scale {scale}) ...")
    dataset = generate_watdiv(scale=scale, seed=11)
    store = dataset.store
    print(f"  {len(store)} triples, {store.num_predicates} predicates\n")

    index = build_index(store, "2tp")
    print(f"2Tp index: {index.bits_per_triple():.2f} bits/triple\n")

    rows = []
    for query in watdiv_query_log():
        start = time.perf_counter()
        results, stats = execute_bgp(index, query, store=store, max_results=10_000)
        elapsed_ms = (time.perf_counter() - start) * 1e3
        rows.append([query.name, len(query.bgp), stats.patterns_executed,
                     stats.triples_matched, len(results), elapsed_ms])

    headers = ["query", "BGP size", "patterns executed", "triples matched",
               "results", "time (ms)"]
    print(format_table(headers, rows, title="WatDiv query log on the 2Tp index"))

    # Show one query in detail.
    query = watdiv_query_log()[3]  # S1: star query around a user
    results, stats = execute_bgp(index, query, store=store, max_results=5)
    print(f"\nfirst bindings of {query.name}:")
    for binding in results[:5]:
        print("   ", binding)


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 400)
