"""Range-constrained selection patterns on a WatDiv-like dataset.

Reproduces the Section 3.1 / Section 4.1 range-query machinery: numeric
literals get IDs in value order, their sorted values live in the compressed
``R`` structure, and a constraint ``low < value < high`` turns into two binary
searches plus ordinary selection patterns.

Run with::

    python examples/range_queries.py [scale]
"""

import sys

from repro import build_index
from repro.core.range_queries import RangeQueryEngine
from repro.datasets import generate_watdiv
from repro.datasets.watdiv import WATDIV_PREDICATES


def main(scale: int = 400) -> None:
    dataset = generate_watdiv(scale=scale, seed=3)
    store = dataset.store
    index = build_index(store, "2tp")
    engine = RangeQueryEngine(index, dataset.numeric_index, dataset.numeric_id_offset)

    print(f"dataset: {len(store)} triples, "
          f"{len(dataset.numeric_index)} distinct numeric literals")
    print(f"index:   {index.bits_per_triple():.2f} bits/triple")
    print(f"R structure: {engine.extra_bits_per_triple():.4f} extra bits/triple "
          "(the paper reports < 0.1 on WatDiv)\n")

    price = WATDIV_PREDICATES["price"]
    rating = WATDIV_PREDICATES["rating"]

    cheap = list(engine.select_object_range((None, price, None), 0.0, 50.0))
    print(f"products with price in (0, 50): {len(cheap)} matches")
    for s, p, o in cheap[:5]:
        print(f"    product {s}  price {engine.object_value(o)}")

    top_rated = list(engine.select_object_range((None, rating, None), 8.0, 10.0,
                                                inclusive=True))
    print(f"\nreviews with rating in [8, 10]: {len(top_rated)} matches")
    for s, p, o in top_rated[:5]:
        print(f"    review {s}  rating {engine.object_value(o)}")

    count = engine.count_object_range((None, price, None), 100.0, 200.0)
    print(f"\nproducts priced in (100, 200): {count}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 400)
