"""Tests for the statistics helpers (Tables 1-3 support)."""

import pytest

from repro.core.stats import (
    bits_per_triple_breakdown,
    children_statistics_from_store,
    children_statistics_table,
    dataset_statistics,
    object_frequency_ranking,
    predicate_frequency_ranking,
    space_breakdown_percentages,
    subject_out_degree_distribution,
)
from repro.rdf.triples import TripleStore

TRIPLES = [(0, 0, 2), (0, 0, 3), (0, 1, 0), (1, 0, 4), (1, 2, 0), (1, 2, 1),
           (2, 0, 2), (2, 1, 0), (3, 2, 1), (3, 2, 2), (4, 2, 4)]


@pytest.fixture(scope="module")
def store():
    return TripleStore.from_triples(TRIPLES)


class TestDatasetStatistics:
    def test_table3_row(self, store):
        stats = dataset_statistics(store)
        assert stats["triples"] == len(TRIPLES)
        assert stats["subjects"] == 5
        assert stats["predicates"] == 3
        assert stats["objects"] == 5


class TestChildrenStatistics:
    def test_rows_cover_three_permutations_two_levels(self, store):
        rows = children_statistics_from_store(store)
        assert len(rows) == 6
        assert {(r.trie, r.level) for r in rows} == {
            (t, level) for t in ("spo", "pos", "osp") for level in (1, 2)}

    def test_spo_level1_matches_trie(self, store):
        table = children_statistics_table(store)
        # 8 distinct SP pairs over 5 subjects.
        assert table["spo"][1]["average"] == pytest.approx(8 / 5)
        assert table["spo"][1]["maximum"] == 2
        # 11 triples over 8 SP pairs.
        assert table["spo"][2]["average"] == pytest.approx(11 / 8)

    def test_consistency_with_index(self, small_store, index_3t):
        table = children_statistics_table(small_store)
        from_index = index_3t.children_statistics()
        for trie in ("spo", "pos", "osp"):
            assert table[trie][1]["average"] == pytest.approx(
                from_index[trie]["level1"]["average"])
            assert table[trie][2]["maximum"] == from_index[trie]["level2"]["maximum"]


class TestSpaceBreakdowns:
    def test_percentages_sum_to_100(self, index_3t):
        percentages = space_breakdown_percentages(index_3t)
        assert sum(percentages.values()) == pytest.approx(100.0)

    def test_bits_per_triple_breakdown(self, index_3t):
        breakdown = bits_per_triple_breakdown(index_3t)
        assert sum(breakdown.values()) == pytest.approx(index_3t.bits_per_triple())


class TestRankings:
    def test_subject_out_degree_distribution(self, store):
        distribution = subject_out_degree_distribution(store)
        # Subjects 0, 1, 2 have two distinct predicates; 3 and 4 have one.
        assert distribution == {1: 2, 2: 3}

    def test_object_frequency_ranking(self, store):
        ranking = object_frequency_ranking(store)
        assert ranking[0][0] == 0 and ranking[0][1] == 3
        assert sum(count for _, count in ranking) == len(TRIPLES)

    def test_predicate_frequency_ranking(self, store):
        ranking = predicate_frequency_ranking(store)
        assert {p for p, _ in ranking} == {0, 1, 2}
        assert ranking[0][1] >= ranking[-1][1]
