"""Tests for range-constrained selection patterns."""

import pytest

from repro.core.builder import build_index
from repro.core.range_queries import RangeQueryEngine
from repro.datasets.watdiv import WATDIV_PREDICATES
from repro.errors import PatternError
from repro.rdf.dictionary import NumericIndex
from repro.rdf.triples import TripleStore


@pytest.fixture(scope="module")
def toy_engine():
    """Five products with prices 10, 20, 30, 40, 50 plus unrelated triples.

    Object IDs: regular objects 0-4, numeric literal IDs 5-9 in value order.
    """
    price = 0
    other = 1
    values = [10.0, 20.0, 30.0, 40.0, 50.0]
    offset = 5
    triples = [(s, price, offset + s) for s in range(5)]
    triples += [(s, other, s % 5) for s in range(5)]
    store = TripleStore.from_triples(triples)
    index = build_index(store, "2tp")
    engine = RangeQueryEngine(index, NumericIndex(values), numeric_id_offset=offset)
    return engine, price


class TestObjectRange:
    def test_exclusive_range(self, toy_engine):
        engine, price = toy_engine
        matches = list(engine.select_object_range((None, price, None), 10, 40))
        assert sorted(o for _, _, o in matches) == [6, 7]  # values 20 and 30

    def test_inclusive_range(self, toy_engine):
        engine, price = toy_engine
        matches = list(engine.select_object_range((None, price, None), 10, 40,
                                                  inclusive=True))
        assert sorted(o for _, _, o in matches) == [5, 6, 7, 8]

    def test_count(self, toy_engine):
        engine, price = toy_engine
        assert engine.count_object_range((None, price, None), 0, 1000) == 5
        assert engine.count_object_range((None, price, None), 100, 1000) == 0

    def test_subject_bound_range(self, toy_engine):
        engine, price = toy_engine
        matches = list(engine.select_object_range((2, price, None), 0, 1000))
        assert matches == [(2, price, 7)]

    def test_bound_object_rejected(self, toy_engine):
        engine, price = toy_engine
        with pytest.raises(PatternError):
            list(engine.select_object_range((None, price, 5), 0, 10))

    def test_object_value(self, toy_engine):
        engine, _ = toy_engine
        assert engine.object_value(5) == 10.0
        assert engine.object_value(9) == 50.0
        assert engine.object_value(0) is None

    def test_object_id_range(self, toy_engine):
        engine, _ = toy_engine
        assert engine.object_id_range(10, 40) == (6, 8)
        assert engine.object_id_range(10, 40, inclusive=True) == (5, 9)


class TestOnWatDiv:
    def test_range_matches_filter_reference(self, watdiv_dataset):
        store = watdiv_dataset.store
        index = build_index(store, "2tp")
        engine = RangeQueryEngine(index, watdiv_dataset.numeric_index,
                                  watdiv_dataset.numeric_id_offset)
        price = WATDIV_PREDICATES["price"]
        low, high = 50.0, 250.0
        got = sorted(engine.select_object_range((None, price, None), low, high))
        expected = sorted(
            (s, p, o) for (s, p, o) in store
            if p == price and o in watdiv_dataset.numeric_values_by_id
            and low < watdiv_dataset.numeric_values_by_id[o] < high)
        assert got == expected

    def test_extra_space_is_small(self, watdiv_dataset):
        store = watdiv_dataset.store
        index = build_index(store, "2tp")
        engine = RangeQueryEngine(index, watdiv_dataset.numeric_index,
                                  watdiv_dataset.numeric_id_offset)
        # The paper reports < 0.1 bits/triple at billion scale; at toy scale
        # it just needs to stay a small fraction of the index.
        assert engine.extra_space_in_bits() < 0.2 * index.size_in_bits()
        assert engine.extra_bits_per_triple() < index.bits_per_triple()
