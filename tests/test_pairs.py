"""Tests for the two-level PairStructure."""

import numpy as np
import pytest

from repro.core.pairs import PairStructure
from repro.errors import IndexBuildError

FIRSTS = np.array([0, 0, 1, 1, 1, 3, 3, 0])
SECONDS = np.array([5, 9, 2, 2, 7, 1, 4, 5])


class TestConstruction:
    def test_from_pairs_deduplicates(self):
        structure = PairStructure.from_pairs(FIRSTS, SECONDS)
        assert structure.num_pairs == 6  # (0,5) and (1,2) duplicated
        assert structure.num_first == 4

    def test_explicit_num_first(self):
        structure = PairStructure.from_pairs(FIRSTS, SECONDS, num_first=10)
        assert structure.num_first == 10
        assert list(structure.values_of(9)) == []

    def test_empty_input_builds_empty_structure(self):
        structure = PairStructure.from_pairs(np.array([]), np.array([]))
        assert structure.num_pairs == 0
        assert list(structure.values_of(0)) == []

    def test_mismatched_columns_rejected(self):
        with pytest.raises(IndexBuildError):
            PairStructure.from_pairs(np.array([1, 2]), np.array([1]))

    @pytest.mark.parametrize("codec", ["pef", "ef", "compact", "vbyte"])
    def test_codecs(self, codec):
        structure = PairStructure.from_pairs(FIRSTS, SECONDS, codec=codec)
        assert list(structure.values_of(0)) == [5, 9]
        assert list(structure.values_of(1)) == [2, 7]


class TestLookups:
    def test_values_sorted_per_first(self):
        structure = PairStructure.from_pairs(FIRSTS, SECONDS)
        assert list(structure.values_of(0)) == [5, 9]
        assert list(structure.values_of(1)) == [2, 7]
        assert list(structure.values_of(2)) == []
        assert list(structure.values_of(3)) == [1, 4]

    def test_count_of(self):
        structure = PairStructure.from_pairs(FIRSTS, SECONDS)
        assert structure.count_of(0) == 2
        assert structure.count_of(2) == 0
        assert structure.count_of(99) == 0

    def test_contains(self):
        structure = PairStructure.from_pairs(FIRSTS, SECONDS)
        assert structure.contains(0, 5)
        assert structure.contains(3, 4)
        assert not structure.contains(0, 4)
        assert not structure.contains(2, 1)
        assert not structure.contains(50, 1)

    def test_range_of(self):
        structure = PairStructure.from_pairs(FIRSTS, SECONDS)
        begin, end = structure.range_of(1)
        assert end - begin == 2


class TestSpace:
    def test_size_and_breakdown(self):
        structure = PairStructure.from_pairs(FIRSTS, SECONDS)
        breakdown = structure.space_breakdown()
        assert set(breakdown) == {"pointers", "values"}
        assert structure.size_in_bits() == sum(breakdown.values())
