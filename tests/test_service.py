"""Tests for the serving layer engine: caching, streaming, concurrency.

The HTTP front-end has its own file (``test_service_http.py``); here the
:class:`QueryService` is driven directly, the way an embedding application
would.
"""

import itertools
import threading

import pytest

from repro.core.base import TripleIndex
from repro.core.builder import build_index
from repro.errors import QueryTimeoutError, ServiceError
from repro.queries.planner import execute_bgp
from repro.queries.sparql import BasicGraphPattern, TriplePatternTemplate, parse_sparql
from repro.rdf.triples import TripleStore
from repro.service import LRUCache, QueryService, normalize_bgp

KNOWS, WORKS_FOR, LIKES = 0, 1, 2
NUM_PEOPLE = 24


def _graph_triples():
    """A small social graph: a knows-ring, employers, and liked items."""
    triples = set()
    for person in range(NUM_PEOPLE):
        triples.add((person, KNOWS, (person + 1) % NUM_PEOPLE))
        triples.add((person, KNOWS, (person + 5) % NUM_PEOPLE))
        triples.add((person, WORKS_FOR, 100 + person % 3))
        if person % 2 == 0:
            triples.add((person, LIKES, 200 + person % 7))
    return sorted(triples)


@pytest.fixture(scope="module")
def store():
    return TripleStore.from_triples(_graph_triples())


@pytest.fixture(scope="module")
def index(store):
    return build_index(store, "2tp")


@pytest.fixture(scope="module")
def cardinalities(store):
    from repro.queries.planner import QueryPlanner
    return QueryPlanner.cardinalities_from_store(store)


@pytest.fixture()
def service(index, cardinalities):
    """A fresh service per test so cache statistics start at zero.

    Planning from the same cardinality histograms as a store-backed
    ``execute_bgp`` keeps result order comparable across the two paths.
    """
    return QueryService(index, cardinalities=cardinalities)


JOIN_QUERY = "SELECT ?x ?y ?c WHERE { ?x 0 ?y . ?y 1 ?c }"


class TestExecute:
    def test_matches_execute_bgp(self, service, index, store):
        query = parse_sparql(JOIN_QUERY)
        expected, _ = execute_bgp(index, query, store=store)
        result = service.execute(JOIN_QUERY)
        assert result.bindings == expected
        assert result.cached is False
        assert result.variables == ("?x", "?y", "?c")
        assert result.statistics["patterns_executed"] >= 1

    def test_parsed_query_accepted(self, service):
        query = parse_sparql(JOIN_QUERY)
        assert service.execute(query).count == service.execute(JOIN_QUERY).count

    def test_repeat_is_served_from_cache(self, service):
        cold = service.execute(JOIN_QUERY)
        warm = service.execute(JOIN_QUERY)
        assert warm.cached is True
        assert warm.bindings == cold.bindings
        assert warm.statistics == cold.statistics
        report = service.statistics()
        assert report["result_cache"]["hits"] == 1
        assert report["result_cache"]["misses"] == 1

    def test_alpha_equivalent_queries_share_the_cache(self, service):
        cold = service.execute("SELECT ?x ?y WHERE { ?x 0 ?y }")
        renamed = service.execute("SELECT ?person ?friend WHERE { ?person 0 ?friend }")
        assert renamed.cached is True
        assert renamed.variables == ("?person", "?friend")
        assert [{"?person": b["?x"], "?friend": b["?y"]} for b in cold.bindings] \
            == renamed.bindings

    def test_use_cache_false_recomputes(self, service):
        service.execute(JOIN_QUERY)
        again = service.execute(JOIN_QUERY, use_cache=False)
        assert again.cached is False

    def test_plan_cache_shared_across_pages(self, service):
        service.execute(JOIN_QUERY, limit=2)
        service.execute(JOIN_QUERY, limit=2, offset=2)  # new result page,
        report = service.statistics()                   # same cached plan
        assert report["plan_cache"]["hits"] == 1
        assert report["plan_cache"]["misses"] == 1
        assert report["result_cache"]["hits"] == 0

    def test_bad_limit_and_offset_rejected(self, service):
        with pytest.raises(ServiceError):
            service.execute(JOIN_QUERY, limit=-1)
        with pytest.raises(ServiceError):
            service.execute(JOIN_QUERY, offset=-1)


class TestPagination:
    def test_pages_tile_the_full_result(self, service):
        full = service.execute(JOIN_QUERY).bindings
        pages = []
        offset = 0
        while True:
            page = service.execute(JOIN_QUERY, limit=7, offset=offset)
            pages.extend(page.bindings)
            if not page.has_more:
                break
            offset += 7
        assert pages == full

    def test_has_more_flag(self, service):
        total = service.execute(JOIN_QUERY).count
        assert service.execute(JOIN_QUERY, limit=total).has_more is False
        assert service.execute(JOIN_QUERY, limit=total - 1).has_more is True
        assert service.execute(JOIN_QUERY).has_more is None

    def test_limit_zero(self, service):
        page = service.execute(JOIN_QUERY, limit=0)
        assert page.bindings == []
        assert page.has_more is True

    def test_max_limit_caps_every_request(self, index):
        service = QueryService(index, max_limit=3)
        unbounded = service.execute(JOIN_QUERY)
        assert unbounded.count == 3
        assert unbounded.has_more is True
        assert service.execute(JOIN_QUERY, limit=10).count == 3


class _CountingIndex(TripleIndex):
    """Delegating index that counts the triples pulled out of ``select``."""

    name = "counting"

    def __init__(self, inner):
        self._inner = inner
        self.triples_pulled = 0

    def select(self, pattern):
        for triple in self._inner.select(pattern):
            self.triples_pulled += 1
            yield triple

    def size_in_bits(self):
        return self._inner.size_in_bits()

    @property
    def num_triples(self):
        return self._inner.num_triples


class TestStreaming:
    def test_limited_page_does_not_materialise_everything(self, index):
        counting = _CountingIndex(index)
        service = QueryService(counting)
        full_count = service.execute("SELECT ?s ?o WHERE { ?s 0 ?o }",
                                     use_cache=False).count
        assert full_count == 2 * NUM_PEOPLE
        counting.triples_pulled = 0
        page = service.execute("SELECT ?s ?o WHERE { ?s 0 ?o }", limit=3,
                               use_cache=False)
        assert page.count == 3
        # limit+1 pulls (the has_more probe), nowhere near the full scan.
        assert counting.triples_pulled == 4

    def test_timeout_raises_and_is_counted(self, service):
        with pytest.raises(QueryTimeoutError):
            service.execute(JOIN_QUERY, timeout=0.0)
        report = service.statistics()
        assert report["requests"]["timeouts"] == 1
        assert report["requests"]["errors"] == 0


class TestPatternSelect:
    def test_select_matches_index(self, service, index):
        result = service.select((0, None, None))
        assert result.triples == list(index.select((0, None, None)))
        assert result.cached is False

    def test_select_cached_and_paged(self, service):
        cold = service.select((None, KNOWS, None), limit=5)
        warm = service.select((None, KNOWS, None), limit=5)
        assert warm.cached is True
        assert warm.triples == cold.triples
        assert cold.has_more is True
        assert len(cold.triples) == 5

    def test_select_offset(self, service):
        full = service.select((None, KNOWS, None)).triples
        page = service.select((None, KNOWS, None), limit=4, offset=3)
        assert page.triples == full[3:7]

    def test_malformed_pattern_rejected(self, service):
        with pytest.raises(ServiceError):
            service.select((None, None))


class TestEviction:
    def test_lru_eviction_is_counted(self, index):
        service = QueryService(index, result_cache_size=2)
        queries = ["SELECT ?x WHERE { ?x 0 %d }" % i for i in range(4)]
        for text in queries:
            service.execute(text)
        report = service.statistics()["result_cache"]
        assert report["evictions"] == 2
        assert report["size"] == 2
        # The most recent query is still cached, the oldest is not.
        assert service.execute(queries[-1]).cached is True
        assert service.execute(queries[0]).cached is False


class TestBatch:
    def test_batch_matches_individual_execution(self, service):
        texts = [JOIN_QUERY,
                 "SELECT ?x WHERE { ?x 1 100 }",
                 "SELECT ?s ?o WHERE { ?s 2 ?o }"]
        batch = service.execute_batch(texts)
        assert [r.count for r in batch] == \
            [service.execute(t).count for t in texts]
        assert service.statistics()["requests"]["batches"] == 1


class TestFromFile:
    def test_serves_a_saved_index_with_stats_and_dictionary(self, tmp_path):
        from repro.queries.planner import QueryPlanner
        from repro.rdf.dictionary import RdfDictionary

        term_triples = [("<a>", "<knows>", "<b>"), ("<a>", "<knows>", "<c>"),
                        ("<b>", "<knows>", "<c>"), ("<b>", "<likes>", "<d>")]
        dictionary, store = RdfDictionary.from_term_triples(term_triples)
        index = build_index(store, "2tp")
        path = tmp_path / "graph.ridx"
        index.save(path, dictionary=dictionary,
                   planner_stats=QueryPlanner.cardinalities_from_store(store))

        service = QueryService.from_file(path)
        report = service.statistics()["index"]
        assert report["has_dictionary"] is True
        assert report["has_planner_stats"] is True
        result = service.execute("SELECT ?x WHERE { <a> <knows> ?x }")
        assert result.count == 2


class TestConcurrency:
    def test_many_threads_hammering_one_service(self, index, store, cardinalities):
        service = QueryService(index, result_cache_size=8,
                               cardinalities=cardinalities)
        texts = [JOIN_QUERY,
                 "SELECT ?x ?y WHERE { ?x 0 ?y }",
                 "SELECT ?x WHERE { ?x 1 100 }",
                 "SELECT ?s ?o WHERE { ?s 2 ?o }",
                 "SELECT ?a ?b WHERE { ?a 0 ?b . ?b 0 ?c }"]
        expected = {text: execute_bgp(index, parse_sparql(text),
                                      store=store)[0]
                    for text in texts}
        num_threads, per_thread = 8, 40
        failures = []
        barrier = threading.Barrier(num_threads)

        def worker(seed):
            rotation = itertools.islice(
                itertools.cycle(texts[seed % len(texts):]
                                + texts[:seed % len(texts)]), per_thread)
            barrier.wait()
            for text in rotation:
                result = service.execute(text)
                if result.bindings != expected[text]:
                    failures.append((text, result.bindings))

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(num_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert failures == []
        report = service.statistics()
        assert report["requests"]["queries"] == num_threads * per_thread
        cache = report["result_cache"]
        assert cache["hits"] + cache["misses"] == num_threads * per_thread
        assert cache["hits"] > 0


class TestLRUCacheUnit:
    def test_basic_lru_order(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1          # refreshes "a"
        cache.put("c", 3)                   # evicts "b"
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.statistics.evictions == 1

    def test_capacity_zero_disables(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_snapshot_shape(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("missing")
        snapshot = cache.snapshot()
        assert snapshot == {"hits": 1, "misses": 1, "evictions": 0,
                            "hit_rate": 0.5, "size": 1, "capacity": 4}


class TestNormalizeBgp:
    def test_alpha_equivalence(self):
        first, first_mapping = normalize_bgp(
            parse_sparql("SELECT ?x WHERE { ?x 0 ?y . ?y 1 ?z }").bgp)
        second, second_mapping = normalize_bgp(
            parse_sparql("SELECT ?a WHERE { ?a 0 ?b . ?b 1 ?c }").bgp)
        assert first == second
        assert first_mapping == {"?x": "?v0", "?y": "?v1", "?z": "?v2"}
        assert second_mapping == {"?a": "?v0", "?b": "?v1", "?c": "?v2"}

    def test_structure_is_preserved(self):
        different, _ = normalize_bgp(
            parse_sparql("SELECT ?x WHERE { ?x 0 ?y . ?x 1 ?z }").bgp)
        chained, _ = normalize_bgp(
            parse_sparql("SELECT ?x WHERE { ?x 0 ?y . ?y 1 ?z }").bgp)
        assert different != chained

    def test_constants_kept_verbatim(self):
        key, _ = normalize_bgp(BasicGraphPattern(
            [TriplePatternTemplate(3, 1, "?x")]))
        assert key == ((3, 1, "?v0"),)


class TestUpdates:
    """The service's dynamic-update surface: insert/delete/compact plus
    epoch-keyed cache invalidation."""

    def dynamic_service(self, store, cardinalities):
        from repro.dynamic import DynamicIndex
        index = DynamicIndex(build_index(store, "2tp"))
        return QueryService(index, cardinalities=cardinalities)

    def test_read_only_service_rejects_updates(self, service):
        with pytest.raises(ServiceError, match="read-only"):
            service.insert([(900, 0, 901)])
        with pytest.raises(ServiceError, match="read-only"):
            service.delete([(0, 0, 1)])
        with pytest.raises(ServiceError, match="read-only"):
            service.compact()

    def test_insert_invalidates_cached_results(self, store, cardinalities):
        service = self.dynamic_service(store, cardinalities)
        query = "SELECT ?x WHERE { ?x 0 1 }"
        cold = service.execute(query)
        warm = service.execute(query)
        assert not cold.cached and warm.cached
        result = service.insert([(900, KNOWS, 1)])
        assert result.inserted == 1
        fresh = service.execute(query)
        assert not fresh.cached  # the epoch in the key retired the old page
        assert fresh.count == cold.count + 1
        assert service.execute(query).cached  # new epoch page caches again

    def test_delete_invalidates_pattern_cache(self, store, cardinalities):
        service = self.dynamic_service(store, cardinalities)
        first = service.select((0, KNOWS, None))
        assert service.select((0, KNOWS, None)).cached
        service.delete([first.triples[0]])
        after = service.select((0, KNOWS, None))
        assert not after.cached
        assert after.count == first.count - 1

    def test_compact_preserves_answers_and_refreshes_planner(
            self, store, cardinalities):
        service = self.dynamic_service(store, cardinalities)
        service.insert([(900, KNOWS, 0), (0, KNOWS, 900)])
        service.delete([(0, KNOWS, 1)])
        before = service.execute(JOIN_QUERY, use_cache=False)
        result = service.compact()
        assert result.compacted
        after = service.execute(JOIN_QUERY, use_cache=False)
        assert (sorted(map(sorted, (b.items() for b in before.bindings)))
                == sorted(map(sorted, (a.items() for a in after.bindings))))
        report = service.statistics()
        assert report["updates"]["compactions"] == 1
        assert report["updates"]["delta_inserted"] == 0
        assert report["index"]["epoch"] == 3

    def test_statistics_report_delta_gauges(self, store, cardinalities):
        service = self.dynamic_service(store, cardinalities)
        service.insert([(901, LIKES, 300)])
        report = service.statistics()
        assert report["index"]["writable"] is True
        assert report["index"]["epoch"] == 1
        assert report["updates"]["applied"] == 1
        assert report["updates"]["delta_inserted"] == 1
        read_only = QueryService(build_index(store, "2tp"),
                                 cardinalities=cardinalities)
        assert read_only.statistics()["index"]["writable"] is False

    def test_auto_compaction_through_the_service(self, store, cardinalities):
        from repro.dynamic import DynamicIndex
        index = DynamicIndex(build_index(store, "2tp"),
                             compaction_ratio=0.01)
        service = QueryService(index, cardinalities=cardinalities)
        result = service.insert([(910, KNOWS, 911), (912, KNOWS, 913)])
        assert result.compaction is not None
        assert service.statistics()["updates"]["compactions"] == 1

    def test_from_file_writable_round_trip(self, store, cardinalities,
                                           tmp_path):
        path = tmp_path / "dyn.ridx"
        build_index(store, "2tp").save(path)
        wal = tmp_path / "dyn.wal"
        service = QueryService.from_file(path, writable=True, wal_path=wal)
        service.insert([(920, KNOWS, 921)])
        service.index.close()
        # A restart replays the WAL: the acknowledged insert is still there.
        recovered = QueryService.from_file(path, writable=True, wal_path=wal)
        assert recovered.select((920, KNOWS, None)).count == 1
        recovered.index.close()

    def test_compact_persists_container_and_resets_wal(self, store,
                                                       cardinalities,
                                                       tmp_path):
        """Durability hand-over: the WAL survives an in-memory compaction
        and is truncated only once the rebuilt container is on disk."""
        from repro.dynamic import DynamicIndex
        from repro.storage import file_info

        path = tmp_path / "dyn.ridx"
        build_index(store, "2tp").save(path)
        wal = tmp_path / "dyn.wal"
        service = QueryService.from_file(path, writable=True, wal_path=wal)
        service.insert([(930, KNOWS, 931)])
        # A bare DynamicIndex.compact keeps the WAL (nothing persisted)...
        bare = DynamicIndex.open(build_index(store, "2tp"),
                                 wal_path=tmp_path / "bare.wal")
        bare.insert([(1, KNOWS, 940)])
        bare.compact()
        assert bare._wal.num_records == 1
        bare.close()
        # ...while the service persists to its source file, then truncates.
        service.compact()
        assert service.index._wal.num_records == 0
        info = file_info(path)
        assert info["meta"]["num_triples"] == len(_graph_triples()) + 1
        assert "delta" not in info["section_bytes"]
        service.index.close()
        # A restart sees the compacted container; the empty WAL adds nothing.
        recovered = QueryService.from_file(path, writable=True, wal_path=wal)
        assert recovered.select((930, KNOWS, None)).count == 1
        recovered.index.close()

    def test_failed_compaction_persist_does_not_fail_the_request(
            self, store, cardinalities, tmp_path, monkeypatch):
        path = tmp_path / "dyn.ridx"
        build_index(store, "2tp").save(path)
        wal = tmp_path / "dyn.wal"
        service = QueryService.from_file(path, writable=True, wal_path=wal)
        service.insert([(940, KNOWS, 941)])
        from repro.errors import StorageError

        def failing_save(*args, **kwargs):
            raise StorageError("disk full")

        monkeypatch.setattr(type(service.index), "save", failing_save)
        result = service.compact()  # compaction itself succeeds in memory
        assert result.compacted
        monkeypatch.undo()
        report = service.statistics()["updates"]
        assert "StorageError" in report["persist_error"]
        # The WAL was NOT reset: a restart still replays the full history.
        assert service.index._wal.num_records == 1
        service.index.close()
        recovered = QueryService.from_file(path, writable=True, wal_path=wal)
        assert recovered.select((940, KNOWS, None)).count == 1
        recovered.index.close()

    def test_delta_file_served_read_only_stays_read_only(self, store,
                                                         cardinalities,
                                                         tmp_path):
        """A delta-carrying file needs the dynamic wrapper for correct
        reads, but that must not silently enable writes."""
        from repro.dynamic import DynamicIndex
        path = tmp_path / "delta.ridx"
        writable = DynamicIndex(build_index(store, "2tp"))
        writable.insert([(950, KNOWS, 951)])
        writable.save(path)
        service = QueryService.from_file(path)  # no writable=True
        # Reads see the merged view (the stored delta insert is there)...
        assert service.select((950, KNOWS, None)).count == 1
        # ...but every mutation is refused, and /stats says read-only.
        with pytest.raises(ServiceError, match="read-only"):
            service.insert([(960, KNOWS, 961)])
        with pytest.raises(ServiceError, match="read-only"):
            service.compact()
        assert service.statistics()["index"]["writable"] is False
