"""Tests for the two-trie indexes (2Tp and 2To)."""

import pytest

from repro.core.index_2t import TwoTrieIndex
from repro.core.patterns import PatternKind, TriplePattern, reference_select
from repro.errors import IndexBuildError


class TestConstruction:
    def test_variant_names(self, index_2tp, index_2to):
        assert index_2tp.name == "2tp"
        assert index_2to.name == "2to"
        assert index_2tp.variant == "p"
        assert index_2to.variant == "o"

    def test_invalid_variant_rejected(self, builder):
        with pytest.raises(IndexBuildError):
            TwoTrieIndex(builder.build_trie("spo"), builder.build_trie("pos"),
                         variant="x")

    def test_wrong_second_permutation_rejected(self, builder):
        with pytest.raises(IndexBuildError):
            TwoTrieIndex(builder.build_trie("spo"), builder.build_trie("osp"),
                         variant="p")

    def test_2to_requires_ps_structure(self, builder):
        with pytest.raises(IndexBuildError):
            TwoTrieIndex(builder.build_trie("spo"), builder.build_trie("ops"),
                         variant="o", ps_structure=None)

    def test_trie_accessor(self, index_2tp):
        assert index_2tp.trie("spo").permutation_name == "spo"
        assert index_2tp.trie("pos").permutation_name == "pos"
        with pytest.raises(KeyError):
            index_2tp.trie("osp")

    def test_ps_structure_only_for_2to(self, index_2tp, index_2to):
        assert index_2tp.ps_structure is None
        assert index_2to.ps_structure is not None


class TestCorrectness:
    @pytest.mark.parametrize("kind", list(PatternKind))
    def test_2tp_matches_reference(self, index_2tp, reference_triples, kind):
        sample = reference_triples[:: max(1, len(reference_triples) // 30)][:30]
        for triple in sample:
            pattern = TriplePattern.from_triple_with_wildcards(triple, kind)
            assert index_2tp.select_list(pattern) == \
                reference_select(reference_triples, pattern)
            if kind is PatternKind.ALL_WILDCARDS:
                break

    @pytest.mark.parametrize("kind", list(PatternKind))
    def test_2to_matches_reference(self, index_2to, reference_triples, kind):
        sample = reference_triples[:: max(1, len(reference_triples) // 30)][:30]
        for triple in sample:
            pattern = TriplePattern.from_triple_with_wildcards(triple, kind)
            assert index_2to.select_list(pattern) == \
                reference_select(reference_triples, pattern)
            if kind is PatternKind.ALL_WILDCARDS:
                break

    def test_enumerate_used_for_so(self, index_2tp, reference_triples):
        # S?O must return every predicate connecting the pair.
        s, p, o = reference_triples[0]
        expected = sorted(t for t in reference_triples if t[0] == s and t[2] == o)
        assert index_2tp.select_list((s, None, o)) == expected

    def test_inverted_object_on_2tp(self, index_2tp, reference_triples):
        o = reference_triples[0][2]
        expected = sorted(t for t in reference_triples if t[2] == o)
        assert index_2tp.select_list((None, None, o)) == expected

    def test_inverted_predicate_on_2to(self, index_2to, reference_triples):
        p = reference_triples[0][1]
        expected = sorted(t for t in reference_triples if t[1] == p)
        assert index_2to.select_list((None, p, None)) == expected

    def test_unknown_ids_return_nothing(self, index_2tp, index_2to, small_store):
        for index in (index_2tp, index_2to):
            assert index.select_list((small_store.num_subjects + 3, None, None)) == []
            assert index.select_list((None, None, small_store.num_objects + 3)) == []


class TestSpace:
    def test_2t_smaller_than_3t(self, all_indexes):
        # Dropping a permutation saves roughly a third (paper Section 3.3).
        for variant in ("2tp", "2to"):
            saving = 1 - all_indexes[variant].size_in_bits() / all_indexes["3t"].size_in_bits()
            assert saving > 0.15

    def test_2tp_smaller_than_2to(self, all_indexes):
        # POS is cheaper to store than OPS (paper Table 4).
        assert all_indexes["2tp"].size_in_bits() < all_indexes["2to"].size_in_bits()

    def test_space_breakdown(self, index_2tp, index_2to):
        assert sum(index_2tp.space_breakdown().values()) == index_2tp.size_in_bits()
        assert any(key.startswith("ps.") for key in index_2to.space_breakdown())
