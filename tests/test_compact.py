"""Tests for the fixed-width CompactVector codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.sequences.compact import CompactVector


class TestConstruction:
    def test_round_trip(self):
        values = [5, 0, 17, 3, 3, 255, 12]
        vector = CompactVector.from_values(values)
        assert vector.to_list() == values
        assert len(vector) == len(values)

    def test_minimum_width_is_used(self):
        vector = CompactVector.from_values([0, 1, 2, 3])
        assert vector.width == 2
        vector = CompactVector.from_values([0, 0, 0])
        assert vector.width == 1

    def test_explicit_width(self):
        vector = CompactVector.from_values([1, 2, 3], width=16)
        assert vector.width == 16
        assert vector.to_list() == [1, 2, 3]

    def test_width_too_small_rejected(self):
        with pytest.raises(EncodingError):
            CompactVector.from_values([300], width=8)

    def test_width_too_large_rejected(self):
        with pytest.raises(EncodingError):
            CompactVector.from_values([1], width=65)

    def test_negative_rejected(self):
        with pytest.raises(EncodingError):
            CompactVector.from_values([1, -2, 3])

    def test_empty(self):
        vector = CompactVector.empty()
        assert len(vector) == 0
        assert vector.to_list() == []

    def test_accepts_numpy_input(self):
        values = np.array([9, 8, 7], dtype=np.int64)
        vector = CompactVector.from_values(values)
        assert vector.to_list() == [9, 8, 7]


class TestAccess:
    def test_access_matches_values(self):
        values = list(range(100, 0, -1))
        vector = CompactVector.from_values(values)
        for i, expected in enumerate(values):
            assert vector.access(i) == expected
            assert vector[i] == expected

    def test_access_out_of_range(self):
        vector = CompactVector.from_values([1, 2, 3])
        with pytest.raises(IndexError):
            vector.access(3)
        with pytest.raises(IndexError):
            vector.access(-1)

    def test_word_boundary_crossing(self):
        # Width 7 guarantees elements straddling 64-bit word boundaries.
        values = [i % 100 for i in range(300)]
        vector = CompactVector.from_values(values, width=7)
        assert vector.to_list() == values

    def test_wide_values(self):
        vector = CompactVector.from_values([2**40, 123], width=41)
        assert vector.access(0) == 2**40
        assert vector.access(1) == 123
        assert vector.width == 41


class TestFindAndScan:
    def test_find_in_sorted_range(self):
        values = [9, 1, 3, 5, 7, 11, 2, 2]
        vector = CompactVector.from_values(values)
        # Range [1, 6) is sorted: 1 3 5 7 11.
        assert vector.find(1, 6, 5) == 3
        assert vector.find(1, 6, 6) == -1
        assert vector.find(1, 6, 1) == 1
        assert vector.find(1, 6, 11) == 5

    def test_find_invalid_range(self):
        vector = CompactVector.from_values([1, 2, 3])
        with pytest.raises(IndexError):
            vector.find(2, 5, 1)

    def test_scan_range(self):
        values = [4, 8, 15, 16, 23, 42]
        vector = CompactVector.from_values(values)
        assert list(vector.scan(2, 5)) == [15, 16, 23]
        assert list(vector.scan()) == values

    def test_decode_range_vectorised(self):
        values = [3, 1, 4, 1, 5, 9, 2, 6]
        vector = CompactVector.from_values(values)
        assert vector.decode_range(2, 6).tolist() == [4, 1, 5, 9]
        assert vector.to_numpy().tolist() == values

    def test_iterator_at(self):
        vector = CompactVector.from_values([10, 20, 30])
        iterator = vector.iterator_at(1)
        assert iterator.next() == 20
        assert iterator.next() == 30
        assert not iterator.has_next()


class TestSpace:
    def test_size_scales_with_width(self):
        narrow = CompactVector.from_values([1] * 1000)
        wide = CompactVector.from_values([2**30] * 1000)
        assert narrow.size_in_bits() < wide.size_in_bits()
        assert narrow.bits_per_element() == pytest.approx(1.0, abs=0.2)

    def test_bits_per_element_empty(self):
        assert CompactVector.empty().bits_per_element() == 0.0


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=2**40), min_size=1, max_size=400))
def test_round_trip_property(values):
    """Property: encode/decode is the identity for arbitrary non-negative ints."""
    vector = CompactVector.from_values(values)
    assert vector.to_list() == values


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=300),
       st.integers(min_value=0, max_value=10_000))
def test_find_property(values, needle):
    """Property: find in a fully sorted vector matches list.index semantics."""
    values = sorted(values)
    vector = CompactVector.from_values(values)
    position = vector.find(0, len(values), needle)
    if needle in values:
        assert values[position] == needle
        assert position == values.index(needle)
    else:
        assert position == -1
