"""Tests for the cross-compressed (CC) index."""

import numpy as np
import pytest

from repro.core.cross_compression import compute_cross_compressed_third_level
from repro.core.patterns import PatternKind, TriplePattern, reference_select
from repro.core.permutations import PERMUTATIONS
from repro.errors import IndexBuildError
from repro.rdf.triples import TripleStore


class TestRankComputation:
    def test_ranks_are_positions_in_object_subject_lists(self):
        triples = [(0, 0, 5), (1, 0, 5), (2, 0, 5), (1, 1, 5), (0, 0, 6)]
        store = TripleStore.from_triples(triples)
        pos_first, pos_second, pos_third = store.sorted_columns(PERMUTATIONS["pos"].order)
        ranks = compute_cross_compressed_third_level(pos_first, pos_second, pos_third)
        # Object 5 has subjects {0, 1, 2}; object 6 has subjects {0}.
        for (p, o, s), rank in zip(zip(pos_first, pos_second, pos_third), ranks):
            subjects_of_object = sorted({ss for ss, _, oo in triples if oo == o})
            assert subjects_of_object[rank] == s

    def test_ranks_are_small(self):
        # Ranks are bounded by the object's subject fan-out, not by |S|.
        triples = [(s, 0, s % 3) for s in range(30)]
        store = TripleStore.from_triples(triples)
        pos = store.sorted_columns(PERMUTATIONS["pos"].order)
        ranks = compute_cross_compressed_third_level(*pos)
        assert ranks.max() <= 9
        assert ranks.min() == 0

    def test_empty_input(self):
        empty = np.zeros(0, dtype=np.int64)
        assert compute_cross_compressed_third_level(empty, empty, empty).size == 0

    def test_mismatched_columns_rejected(self):
        with pytest.raises(IndexBuildError):
            compute_cross_compressed_third_level(
                np.array([1]), np.array([1, 2]), np.array([1]))


class TestMapUnmap:
    def test_map_unmap_round_trip(self, index_cc, reference_triples):
        for s, p, o in reference_triples[:200]:
            rank = index_cc.map_subject(o, s)
            assert rank >= 0
            assert index_cc.unmap_subject(o, rank) == s

    def test_map_unknown_subject(self, index_cc, small_store):
        # A subject never co-occurring with the object maps to -1.
        objects = small_store.column(2)
        subjects = small_store.column(0)
        o = int(objects[0])
        subjects_of_o = {int(s) for s, obj in zip(subjects, objects) if obj == o}
        missing = next(s for s in range(small_store.num_subjects)
                       if s not in subjects_of_o)
        assert index_cc.map_subject(o, missing) == -1


class TestCorrectness:
    @pytest.mark.parametrize("kind", list(PatternKind))
    def test_matches_reference_for_every_kind(self, index_cc, reference_triples, kind):
        sample = reference_triples[:: max(1, len(reference_triples) // 30)][:30]
        for triple in sample:
            pattern = TriplePattern.from_triple_with_wildcards(triple, kind)
            assert index_cc.select_list(pattern) == \
                reference_select(reference_triples, pattern)
            if kind is PatternKind.ALL_WILDCARDS:
                break

    def test_cc_equals_3t_results(self, index_cc, index_3t, reference_triples):
        for triple in reference_triples[:25]:
            for kind in (PatternKind.PO, PatternKind.P):
                pattern = TriplePattern.from_triple_with_wildcards(triple, kind)
                assert index_cc.select_list(pattern) == index_3t.select_list(pattern)


class TestSpace:
    def test_cc_smaller_than_3t(self, index_cc, index_3t):
        # The whole point of cross compression (paper reports ~11% on average).
        assert index_cc.size_in_bits() < index_3t.size_in_bits()

    def test_pos_third_level_shrinks(self, index_cc, index_3t):
        assert index_cc.space_breakdown()["pos.nodes2"] < \
            index_3t.space_breakdown()["pos.nodes2"]
