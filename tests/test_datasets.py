"""Tests for the dataset profiles and the synthetic generators."""

import pytest

from repro.core.builder import build_index
from repro.core.patterns import reference_select
from repro.datasets.lubm import LUBM_CLASSES, LUBM_PREDICATES, LubmGenerator, generate_lubm
from repro.datasets.profiles import DATASET_PROFILES, DatasetProfile, profile
from repro.datasets.synthetic import generate_from_profile, generate_uniform
from repro.datasets.watdiv import (
    WATDIV_CLASSES,
    WATDIV_NUMERIC_PREDICATES,
    WATDIV_PREDICATES,
    WatDivGenerator,
    generate_watdiv,
)
from repro.errors import DatasetError


class TestProfiles:
    def test_all_six_paper_datasets(self):
        assert set(DATASET_PROFILES) == {"dblp", "geonames", "dbpedia", "watdiv",
                                         "lubm", "freebase"}

    def test_published_statistics(self):
        dbpedia = profile("dbpedia")
        assert dbpedia.triples == 351_592_624
        assert dbpedia.predicates == 1480
        assert dbpedia.subjects == 27_318_781

    def test_derived_fanouts_match_table2(self):
        # Table 2 reports 5.54 / 2.32 for SPO levels 1-2 on DBpedia.
        dbpedia = profile("dbpedia")
        assert dbpedia.sp_per_subject == pytest.approx(5.54, abs=0.02)
        assert dbpedia.triples_per_sp == pytest.approx(2.32, abs=0.01)
        assert dbpedia.triples_per_po == pytest.approx(2.59, abs=0.01)
        assert dbpedia.os_per_object == pytest.approx(2.69, abs=0.02)
        assert dbpedia.triples_per_os == pytest.approx(1.13, abs=0.01)

    def test_scaling_preserves_ratios(self):
        scaled = profile("dblp").scaled(50_000)
        original = profile("dblp")
        assert scaled.triples == 50_000
        assert scaled.subject_ratio == pytest.approx(original.subject_ratio, rel=0.05)
        assert scaled.predicates <= original.predicates

    def test_scaling_rejects_nonpositive(self):
        with pytest.raises(DatasetError):
            profile("dblp").scaled(0)

    def test_unknown_profile(self):
        with pytest.raises(DatasetError):
            profile("wikidata")

    def test_as_table3_row(self):
        row = profile("geonames").as_table3_row()
        assert row["triples"] == 123_020_821
        assert set(row) == {"triples", "subjects", "predicates", "objects",
                            "sp_pairs", "po_pairs", "os_pairs"}


class TestSyntheticGenerator:
    def test_deterministic(self):
        a = generate_from_profile("dblp", 5000, seed=1)
        b = generate_from_profile("dblp", 5000, seed=1)
        assert sorted(a) == sorted(b)

    def test_different_seeds_differ(self):
        a = generate_from_profile("dblp", 5000, seed=1)
        b = generate_from_profile("dblp", 5000, seed=2)
        assert sorted(a) != sorted(b)

    def test_size_close_to_target(self):
        store = generate_from_profile("dbpedia", 20_000, seed=3)
        assert 0.6 * 20_000 <= len(store) <= 1.4 * 20_000

    def test_dense_ids(self):
        store = generate_from_profile("dbpedia", 8000, seed=3)
        assert store.is_dense()

    def test_fanout_shape_roughly_matches_profile(self):
        store = generate_from_profile("dbpedia", 25_000, seed=4)
        stats = store.statistics()
        sp_per_subject = stats["sp_pairs"] / stats["subjects"]
        triples_per_sp = stats["triples"] / stats["sp_pairs"]
        assert sp_per_subject == pytest.approx(profile("dbpedia").sp_per_subject, rel=0.4)
        assert triples_per_sp == pytest.approx(profile("dbpedia").triples_per_sp, rel=0.4)

    def test_accepts_profile_object(self):
        custom = DatasetProfile(name="custom", triples=1000, subjects=100,
                                predicates=5, objects=300, sp_pairs=400,
                                po_pairs=350, os_pairs=900)
        store = generate_from_profile(custom, 2000, seed=0)
        assert len(store) > 0

    def test_invalid_size(self):
        with pytest.raises(DatasetError):
            generate_from_profile("dblp", 0)

    def test_generated_data_is_indexable(self):
        store = generate_from_profile("geonames", 4000, seed=5)
        index = build_index(store, "2tp")
        triples = sorted(store)
        probe = triples[len(triples) // 2]
        assert index.select_list((probe[0], None, None)) == \
            reference_select(triples, (probe[0], None, None))

    def test_uniform_generator(self):
        store = generate_uniform(3000, 100, 10, 200, seed=1)
        assert len(store) > 0
        assert store.num_predicates <= 10
        with pytest.raises(DatasetError):
            generate_uniform(0, 1, 1, 1)


class TestLubmGenerator:
    def test_deterministic(self):
        assert sorted(generate_lubm(2, seed=3)) == sorted(generate_lubm(2, seed=3))

    def test_scales_with_universities(self):
        small = generate_lubm(1, seed=0)
        large = generate_lubm(3, seed=0)
        assert len(large) > 2 * len(small)

    def test_invalid_parameters(self):
        with pytest.raises(DatasetError):
            LubmGenerator(num_universities=0)

    def test_all_predicates_used(self):
        store = generate_lubm(2, seed=1)
        used = set(store.column(1).tolist())
        assert used == set(LUBM_PREDICATES.values())

    def test_class_objects_match_vocabulary(self):
        store = generate_lubm(1, seed=1)
        type_id = LUBM_PREDICATES["type"]
        type_objects = {o for s, p, o in store if p == type_id}
        assert type_objects <= set(LUBM_CLASSES.values())

    def test_every_student_takes_courses(self):
        store = generate_lubm(1, seed=2)
        takes = LUBM_PREDICATES["takesCourse"]
        type_id = LUBM_PREDICATES["type"]
        students = {s for s, p, o in store
                    if p == type_id and o in (LUBM_CLASSES["UndergraduateStudent"],
                                              LUBM_CLASSES["GraduateStudent"])}
        enrolled = {s for s, p, o in store if p == takes}
        assert students <= enrolled


class TestWatDivGenerator:
    def test_deterministic(self):
        a = generate_watdiv(50, seed=4)
        b = generate_watdiv(50, seed=4)
        assert sorted(a.store) == sorted(b.store)

    def test_invalid_scale(self):
        with pytest.raises(DatasetError):
            WatDivGenerator(scale=0)

    def test_numeric_ids_are_value_ordered_at_tail(self, watdiv_dataset):
        offset = watdiv_dataset.numeric_id_offset
        index = watdiv_dataset.numeric_index
        # IDs offset + i must correspond to the i-th smallest value.
        previous = float("-inf")
        for i in range(len(index)):
            value = index.value_at(i)
            assert value >= previous
            previous = value
            assert watdiv_dataset.numeric_values_by_id[offset + i] == value

    def test_numeric_predicates_only_have_numeric_objects(self, watdiv_dataset):
        numeric_ids = {WATDIV_PREDICATES[name] for name in WATDIV_NUMERIC_PREDICATES}
        offset = watdiv_dataset.numeric_id_offset
        for s, p, o in watdiv_dataset.store:
            if p in numeric_ids:
                assert o >= offset

    def test_type_objects_are_classes(self, watdiv_dataset):
        type_id = WATDIV_PREDICATES["type"]
        classes = set(WATDIV_CLASSES.values())
        for s, p, o in watdiv_dataset.store:
            if p == type_id:
                assert o in classes

    def test_scales_with_parameter(self):
        small = generate_watdiv(40, seed=1)
        large = generate_watdiv(160, seed=1)
        assert len(large.store) > 2 * len(small.store)
