"""End-to-end tests for the ``repro`` command-line interface.

Every test drives :func:`repro.cli.main` in process, exactly as the console
entry point and ``python -m repro`` do, against files in ``tmp_path``.
"""

import pytest

from repro.cli import main

NTRIPLES = """\
<http://example.org/alice> <http://xmlns.com/foaf/0.1/knows> <http://example.org/bob> .
<http://example.org/alice> <http://xmlns.com/foaf/0.1/knows> <http://example.org/carol> .
<http://example.org/alice> <http://xmlns.com/foaf/0.1/name> "Alice" .
<http://example.org/bob> <http://xmlns.com/foaf/0.1/knows> <http://example.org/carol> .
<http://example.org/bob> <http://xmlns.com/foaf/0.1/name> "Bob" .
<http://example.org/carol> <http://xmlns.com/foaf/0.1/name> "Carol" .
"""

ALICE = "<http://example.org/alice>"
KNOWS = "<http://xmlns.com/foaf/0.1/knows>"


@pytest.fixture()
def nt_file(tmp_path):
    path = tmp_path / "data.nt"
    path.write_text(NTRIPLES, encoding="utf-8")
    return path


@pytest.fixture()
def index_file(nt_file, tmp_path):
    path = tmp_path / "data.ridx"
    assert main(["build", str(nt_file), "-o", str(path), "--layout", "2tp"]) == 0
    return path


class TestBuild:
    def test_build_reports_stats(self, nt_file, tmp_path, capsys):
        out = tmp_path / "x.ridx"
        assert main(["build", str(nt_file), "-o", str(out)]) == 0
        captured = capsys.readouterr()
        assert "indexed 6 triples" in captured.out
        assert "bits/triple on disk" in captured.out
        assert out.stat().st_size > 0

    @pytest.mark.parametrize("layout", ["3t", "cc", "2tp", "2to"])
    def test_every_layout_builds(self, nt_file, tmp_path, layout):
        out = tmp_path / f"{layout}.ridx"
        assert main(["build", str(nt_file), "-o", str(out),
                     "--layout", layout]) == 0

    def test_build_from_integer_ids(self, tmp_path, capsys):
        source = tmp_path / "ids.txt"
        source.write_text("0 0 1\n0 1 2\n1 0 2\n# comment\n", encoding="utf-8")
        out = tmp_path / "ids.ridx"
        assert main(["build", str(source), "-o", str(out), "--ids"]) == 0
        assert "indexed 3 triples" in capsys.readouterr().out

    def test_malformed_ids_fail(self, tmp_path, capsys):
        source = tmp_path / "bad.txt"
        source.write_text("0 0\n", encoding="utf-8")
        assert main(["build", str(source), "-o", str(tmp_path / "x"), "--ids"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_input_fails(self, tmp_path, capsys):
        assert main(["build", str(tmp_path / "nope.nt"),
                     "-o", str(tmp_path / "x.ridx")]) == 1
        assert "error:" in capsys.readouterr().err


class TestQuery:
    def test_pattern_with_terms(self, index_file, capsys):
        assert main(["query", str(index_file),
                     "--pattern", f"{ALICE} {KNOWS} ?"]) == 0
        captured = capsys.readouterr()
        assert "<http://example.org/bob>" in captured.out
        assert "<http://example.org/carol>" in captured.out

    def test_pattern_count(self, index_file, capsys):
        assert main(["query", str(index_file), "--count",
                     "--pattern", f"? {KNOWS} ?"]) == 0
        assert capsys.readouterr().out.strip() == "3"

    def test_pattern_unknown_term_matches_nothing(self, index_file, capsys):
        assert main(["query", str(index_file), "--count",
                     "--pattern", "<http://example.org/nobody> ? ?"]) == 0
        assert capsys.readouterr().out.strip() == "0"

    def test_pattern_limit(self, index_file, capsys):
        assert main(["query", str(index_file), "--limit", "1",
                     "--pattern", "? ? ?"]) == 0
        lines = [line for line in capsys.readouterr().out.splitlines() if line]
        assert len(lines) == 1

    def test_sparql_query(self, index_file, capsys):
        assert main(["query", str(index_file), "--sparql",
                     f"SELECT ?s ?o WHERE {{ ?s {KNOWS} ?o }}"]) == 0
        output = capsys.readouterr().out.splitlines()
        assert output[0].split("\t") == ["?s", "?o"]
        assert len(output) == 4  # header + three solutions

    def test_sparql_file(self, index_file, tmp_path, capsys):
        query_path = tmp_path / "q.rq"
        query_path.write_text(
            f"SELECT ?o WHERE {{ {ALICE} {KNOWS} ?o }}", encoding="utf-8")
        assert main(["query", str(index_file), "--count",
                     "--sparql-file", str(query_path)]) == 0
        assert capsys.readouterr().out.strip() == "2"

    def test_integer_pattern_on_ids_index(self, tmp_path, capsys):
        source = tmp_path / "ids.txt"
        source.write_text("0 0 1\n0 1 2\n1 0 2\n", encoding="utf-8")
        out = tmp_path / "ids.ridx"
        assert main(["build", str(source), "-o", str(out), "--ids"]) == 0
        capsys.readouterr()
        assert main(["query", str(out), "--pattern", "0 ? ?", "--count"]) == 0
        assert capsys.readouterr().out.strip() == "2"

    def test_term_pattern_on_ids_index_fails(self, tmp_path, capsys):
        source = tmp_path / "ids.txt"
        source.write_text("0 0 1\n", encoding="utf-8")
        out = tmp_path / "ids.ridx"
        assert main(["build", str(source), "-o", str(out), "--ids"]) == 0
        capsys.readouterr()
        assert main(["query", str(out), "--pattern", "<http://x> ? ?"]) == 1
        assert "needs a dictionary" in capsys.readouterr().err

    def test_malformed_pattern_fails(self, index_file, capsys):
        assert main(["query", str(index_file), "--pattern", "? ?"]) == 1
        assert "exactly 3 terms" in capsys.readouterr().err

    def test_engine_flag_selects_executor(self, index_file, capsys):
        for engine in ("nested", "wcoj", "auto"):
            assert main(["query", str(index_file), "--count",
                         "--engine", engine, "--sparql",
                         f"SELECT ?s ?o WHERE {{ ?s {KNOWS} ?o }}"]) == 0
            assert capsys.readouterr().out.strip() == "3"

    def test_engine_flag_rejected_for_patterns(self, index_file, capsys):
        # Mirrors the HTTP endpoint: engine only applies to SPARQL queries.
        assert main(["query", str(index_file), "--engine", "wcoj",
                     "--pattern", "? ? ?"]) == 2
        assert "--engine only applies to SPARQL" in capsys.readouterr().err

    def test_corrupted_index_fails_cleanly(self, index_file, capsys):
        data = bytearray(index_file.read_bytes())
        data[-1] ^= 0xFF
        index_file.write_bytes(bytes(data))
        assert main(["query", str(index_file), "--pattern", "? ? ?"]) == 1
        assert "checksum mismatch" in capsys.readouterr().err


class TestInfo:
    def test_info_output(self, index_file, capsys):
        assert main(["info", str(index_file)]) == 0
        output = capsys.readouterr().out
        assert "layout: 2tp" in output
        assert "triples: 6" in output
        assert "dictionary bundled: yes" in output
        assert "on-disk bits/triple:" in output

    def test_info_breakdown(self, index_file, capsys):
        assert main(["info", str(index_file), "--breakdown"]) == 0
        output = capsys.readouterr().out
        assert "spo.nodes2" in output

    def test_info_on_garbage_fails(self, tmp_path, capsys):
        path = tmp_path / "junk.ridx"
        path.write_bytes(b"not an index" * 4)
        assert main(["info", str(path)]) == 1
        assert "bad magic" in capsys.readouterr().err


class TestJsonOutput:
    def test_sparql_query_json(self, index_file, capsys):
        import json

        assert main(["query", str(index_file), "--json", "--sparql",
                     f"SELECT ?s ?o WHERE {{ ?s {KNOWS} ?o }}"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["variables"] == ["s", "o"]
        assert payload["count"] == 3
        assert len(payload["bindings"]) == 3
        assert payload["statistics"]["patterns_executed"] == 1

    def test_pattern_query_json(self, index_file, capsys):
        import json

        assert main(["query", str(index_file), "--json",
                     "--pattern", f"{ALICE} ? ?"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 3
        assert all(len(triple) == 3 for triple in payload["triples"])

    def test_info_json(self, index_file, capsys):
        import json

        assert main(["info", str(index_file), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["meta"]["num_triples"] == 6
        assert payload["meta"]["has_planner_stats"] is True
        assert payload["section_bytes"]["stats"] > 0
        assert payload["on_disk_bits_per_triple"] > 0

    def test_build_no_stats(self, nt_file, tmp_path, capsys):
        import json

        out = tmp_path / "nostats.ridx"
        assert main(["build", str(nt_file), "-o", str(out), "--no-stats"]) == 0
        capsys.readouterr()
        assert main(["info", str(out), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["meta"]["has_planner_stats"] is False
        assert "stats" not in payload["section_bytes"]


class TestServe:
    def test_serve_loads_and_binds(self, index_file, capsys, monkeypatch):
        from repro.service.http import QueryServiceServer

        served = {}

        def fake_serve_forever(self):
            served["service"] = self.service

        monkeypatch.setattr(QueryServiceServer, "serve_forever",
                            fake_serve_forever)
        assert main(["serve", str(index_file), "--port", "0", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "serving on http://127.0.0.1:" in out
        service = served["service"]
        assert service.index.num_triples == 6
        # The bundled dictionary and planner stats made it into the service.
        report = service.statistics()["index"]
        assert report["has_dictionary"] is True
        assert report["has_planner_stats"] is True

    def test_serve_answers_http_queries_end_to_end(self, index_file):
        import json
        import threading
        import urllib.request

        from repro.service import QueryService, build_server

        service = QueryService.from_file(index_file)
        server = build_server(service, port=0, quiet=True)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            port = server.server_address[1]
            request = urllib.request.Request(
                f"http://127.0.0.1:{port}/query",
                data=json.dumps({
                    "sparql": f"SELECT ?s ?o WHERE {{ ?s {KNOWS} ?o }}"
                }).encode("utf-8"),
                method="POST")
            with urllib.request.urlopen(request, timeout=10) as response:
                payload = json.loads(response.read())
            assert payload["count"] == 3
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)


MORE_NTRIPLES = """\
<http://example.org/carol> <http://xmlns.com/foaf/0.1/knows> <http://example.org/dave> .
<http://example.org/dave> <http://xmlns.com/foaf/0.1/name> "Dave" .
"""


class TestGzipInput:
    def test_build_accepts_nt_gz(self, tmp_path, capsys):
        import gzip
        source = tmp_path / "data.nt.gz"
        with gzip.open(source, "wt", encoding="utf-8") as handle:
            handle.write(NTRIPLES)
        out = tmp_path / "gz.ridx"
        assert main(["build", str(source), "-o", str(out)]) == 0
        assert "indexed 6 triples" in capsys.readouterr().out

    def test_update_accepts_nt_gz(self, index_file, tmp_path, capsys):
        import gzip
        source = tmp_path / "more.nt.gz"
        with gzip.open(source, "wt", encoding="utf-8") as handle:
            handle.write(MORE_NTRIPLES)
        assert main(["update", str(index_file), str(source)]) == 0
        assert "inserted 2 of 2" in capsys.readouterr().out


class TestUpdateCommand:
    def test_insert_then_query_sees_the_delta(self, index_file, tmp_path,
                                              capsys):
        more = tmp_path / "more.nt"
        more.write_text(MORE_NTRIPLES, encoding="utf-8")
        assert main(["update", str(index_file), str(more)]) == 0
        capsys.readouterr()
        assert main(["query", str(index_file), "--count", "--pattern",
                     f"? {KNOWS} ?"]) == 0
        assert capsys.readouterr().out.strip() == "4"

    def test_delete_and_unknown_terms_are_skipped(self, index_file, tmp_path,
                                                  capsys):
        victims = tmp_path / "victims.nt"
        victims.write_text(
            f"{ALICE} {KNOWS} <http://example.org/bob> .\n"
            f"<http://example.org/nobody> {KNOWS} {ALICE} .\n",
            encoding="utf-8")
        assert main(["update", str(index_file), str(victims),
                     "--delete"]) == 0
        assert "deleted 1 of 1" in capsys.readouterr().out
        assert main(["query", str(index_file), "--count", "--pattern",
                     f"{ALICE} {KNOWS} ?"]) == 0
        assert capsys.readouterr().out.strip() == "1"

    def test_update_to_separate_output(self, index_file, tmp_path, capsys):
        more = tmp_path / "more.nt"
        more.write_text(MORE_NTRIPLES, encoding="utf-8")
        out = tmp_path / "updated.ridx"
        assert main(["update", str(index_file), str(more),
                     "-o", str(out)]) == 0
        capsys.readouterr()
        assert main(["info", str(index_file)]) == 0
        assert "delta" not in capsys.readouterr().out  # original untouched
        assert main(["info", str(out)]) == 0
        assert "2 inserted" in capsys.readouterr().out

    def test_ids_update_on_ids_index(self, tmp_path, capsys):
        source = tmp_path / "ids.txt"
        source.write_text("0 0 1\n0 1 2\n1 0 2\n", encoding="utf-8")
        index = tmp_path / "ids.ridx"
        assert main(["build", str(source), "-o", str(index), "--ids"]) == 0
        patch = tmp_path / "patch.txt"
        patch.write_text("5 0 5\n", encoding="utf-8")
        assert main(["update", str(index), str(patch), "--ids"]) == 0
        capsys.readouterr()
        assert main(["query", str(index), "--count", "--pattern",
                     "? ? ?"]) == 0
        assert capsys.readouterr().out.strip() == "4"

    def test_term_update_on_ids_index_fails_cleanly(self, tmp_path, nt_file,
                                                    capsys):
        source = tmp_path / "ids.txt"
        source.write_text("0 0 1\n", encoding="utf-8")
        index = tmp_path / "ids.ridx"
        assert main(["build", str(source), "-o", str(index), "--ids"]) == 0
        capsys.readouterr()
        assert main(["update", str(index), str(nt_file)]) == 1
        assert "--ids" in capsys.readouterr().err


class TestCompactCommand:
    def test_compact_folds_the_delta(self, index_file, tmp_path, capsys):
        more = tmp_path / "more.nt"
        more.write_text(MORE_NTRIPLES, encoding="utf-8")
        assert main(["update", str(index_file), str(more)]) == 0
        capsys.readouterr()
        assert main(["query", str(index_file), "--count", "--pattern",
                     "? ? ?"]) == 0
        before = capsys.readouterr().out.strip()
        assert main(["compact", str(index_file)]) == 0
        assert "compacted 2 inserts" in capsys.readouterr().out
        assert main(["info", str(index_file)]) == 0
        out = capsys.readouterr().out
        assert "container format version: 1" in out
        assert "triples: 8" in out
        assert main(["query", str(index_file), "--count", "--pattern",
                     "? ? ?"]) == 0
        assert capsys.readouterr().out.strip() == before == "8"

    def test_compact_without_delta_is_a_noop(self, index_file, capsys):
        assert main(["compact", str(index_file)]) == 0
        assert "no delta to compact" in capsys.readouterr().out


class TestInfoJsonVersion:
    def test_json_reports_stored_version_and_sections(self, index_file,
                                                      tmp_path, capsys):
        import json
        assert main(["info", str(index_file), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["format_version"] == 1
        assert set(payload["section_bytes"]) >= {"meta", "index"}
        more = tmp_path / "more.nt"
        more.write_text(MORE_NTRIPLES, encoding="utf-8")
        assert main(["update", str(index_file), str(more)]) == 0
        capsys.readouterr()
        assert main(["info", str(index_file), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["format_version"] == 2  # the *stored* version
        assert payload["section_bytes"]["delta"] > 0
        assert payload["meta"]["delta_inserted"] == 2

    def test_update_auto_compaction_persists_fresh_stats(self, index_file,
                                                         tmp_path, capsys):
        import json
        more = tmp_path / "more.nt"
        more.write_text(MORE_NTRIPLES, encoding="utf-8")
        # 2 delta entries over 6 base triples: ratio 0.1 forces compaction.
        assert main(["update", str(index_file), str(more),
                     "--compact-ratio", "0.1"]) == 0
        assert "compaction triggered" in capsys.readouterr().out
        assert main(["info", str(index_file), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["format_version"] == 1  # delta folded in
        assert payload["meta"]["num_triples"] == 8
        # The stats section reflects the *post-compaction* histograms.
        from repro.storage import load_index
        loaded = load_index(index_file)
        total = sum(loaded.planner_stats[0].values())
        assert total == 8

    def test_query_decodes_dynamic_ids_leniently(self, index_file, tmp_path,
                                                 capsys):
        """An ID inserted without a dictionary term must not crash listing."""
        patch = tmp_path / "patch.txt"
        patch.write_text("999 0 998\n", encoding="utf-8")
        assert main(["update", str(index_file), str(patch), "--ids"]) == 0
        capsys.readouterr()
        assert main(["query", str(index_file), "--pattern", "999 ? ?"]) == 0
        out = capsys.readouterr().out
        assert "<id:999>" in out and "<id:998>" in out
        assert "<http://xmlns.com/foaf/0.1/knows>" in out  # predicate 0 known
        import json
        assert main(["query", str(index_file), "--json", "--pattern",
                     "999 ? ?"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["triples"] == [["<id:999>",
                                       "<http://xmlns.com/foaf/0.1/knows>",
                                       "<id:998>"]]

    def test_failed_auto_compaction_warns(self, index_file, tmp_path,
                                          capsys, monkeypatch):
        from repro.core.builder import IndexBuilder

        def exploding_build(self, layout="2tp"):
            raise MemoryError("universe too large")

        monkeypatch.setattr(IndexBuilder, "build", exploding_build)
        more = tmp_path / "more.nt"
        more.write_text(MORE_NTRIPLES, encoding="utf-8")
        assert main(["update", str(index_file), str(more),
                     "--compact-ratio", "0.01"]) == 0
        captured = capsys.readouterr()
        assert "inserted 2 of 2" in captured.out  # the update itself applied
        assert "auto-compaction failed" in captured.err
        assert "repro compact" in captured.err


class TestVerifyCommand:
    def test_verify_clean_file(self, index_file, capsys):
        assert main(["verify", str(index_file)]) == 0
        out = capsys.readouterr().out
        assert "all section checksums verified" in out
        for section in ("meta", "index", "dictionary"):
            assert section in out

    def test_verify_reports_corruption(self, index_file, capsys):
        data = bytearray(index_file.read_bytes())
        data[-3] ^= 0xFF  # flip a payload byte, header stays valid
        index_file.write_bytes(bytes(data))
        assert main(["verify", str(index_file)]) == 1
        captured = capsys.readouterr()
        assert "checksum mismatch" in captured.out
        assert "problem(s) found" in captured.err

    def test_verify_json_report(self, index_file, capsys):
        import json
        assert main(["verify", str(index_file), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True
        assert {s["name"] for s in report["sections"]} >= {"meta", "index"}

    def test_verify_garbage_fails_cleanly(self, tmp_path, capsys):
        garbage = tmp_path / "garbage.ridx"
        garbage.write_bytes(b"not a container at all")
        assert main(["verify", str(garbage)]) == 1
        assert "error:" in capsys.readouterr().err


class TestClusterCommands:
    @pytest.fixture()
    def big_index(self, tmp_path):
        lines = []
        for i in range(120):
            lines.append(f"<http://x/s{i % 20}> <http://x/p{i % 5}> "
                         f"<http://x/o{i % 17}> .")
        source = tmp_path / "big.nt"
        source.write_text("\n".join(lines), encoding="utf-8")
        path = tmp_path / "big.ridx"
        assert main(["build", str(source), "-o", str(path)]) == 0
        return path

    def test_partition_writes_shards_and_manifest(self, big_index, tmp_path,
                                                  capsys):
        out = tmp_path / "cluster"
        assert main(["partition", str(big_index), "-o", str(out),
                     "--shards", "2"]) == 0
        printed = capsys.readouterr().out
        assert "partitioned" in printed and "2 shard(s)" in printed
        assert (out / "manifest.json").exists()
        assert (out / "shard-000.repro").exists()
        assert (out / "shard-001-replica.repro").exists()
        assert main(["verify", str(out / "shard-000.repro")]) == 0

    def test_partition_more_shards_than_subjects(self, index_file, tmp_path,
                                                 capsys):
        # More hash buckets than subjects leaves some shards empty — a
        # legitimate layout, not an error (used to raise).
        out = tmp_path / "c"
        assert main(["partition", str(index_file), "-o", str(out),
                     "--shards", "8"]) == 0
        assert "8 shard(s)" in capsys.readouterr().out
        assert main(["verify", str(out)]) == 0

    def test_partition_with_replicas_and_verify_dir(self, big_index,
                                                    tmp_path, capsys):
        out = tmp_path / "cluster"
        assert main(["partition", str(big_index), "-o", str(out),
                     "--shards", "2", "--replicas", "2"]) == 0
        printed = capsys.readouterr().out
        assert "2 shard(s) x 2 replica(s)" in printed
        assert main(["verify", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "2 replica(s)" in printed
        assert "all container checksums verified" in printed

    def test_rebalance_rewrites_topology(self, big_index, tmp_path, capsys):
        out = tmp_path / "cluster"
        assert main(["partition", str(big_index), "-o", str(out),
                     "--shards", "2"]) == 0
        capsys.readouterr()
        assert main(["rebalance", str(out), "--shards", "3"]) == 0
        printed = capsys.readouterr().out
        assert "3 shard(s)" in printed
        assert "topology version 2" in printed
        assert (out / "shard-002.repro").exists()
        assert main(["verify", str(out), "--json"]) == 0
        report = __import__("json").loads(capsys.readouterr().out)
        assert report["ok"] is True
        assert report["manifest"]["num_shards"] == 3
        assert report["manifest"]["version"] == 2

    def test_shard_id_out_of_range_fails(self, big_index, tmp_path, capsys):
        out = tmp_path / "cluster"
        assert main(["partition", str(big_index), "-o", str(out),
                     "--shards", "2"]) == 0
        capsys.readouterr()
        assert main(["shard", str(out), "--id", "5"]) == 1
        assert "out of range" in capsys.readouterr().err
