"""Tests for the S-P-O permutation machinery."""

import pytest

from repro.core.patterns import TriplePattern
from repro.core.permutations import PERMUTATIONS, Permutation, permutation
from repro.errors import IndexBuildError


class TestPermutation:
    def test_all_six_defined(self):
        assert set(PERMUTATIONS) == {"spo", "sop", "pso", "pos", "osp", "ops"}

    def test_apply(self):
        triple = (10, 20, 30)
        assert PERMUTATIONS["spo"].apply(triple) == (10, 20, 30)
        assert PERMUTATIONS["pos"].apply(triple) == (20, 30, 10)
        assert PERMUTATIONS["osp"].apply(triple) == (30, 10, 20)
        assert PERMUTATIONS["ops"].apply(triple) == (30, 20, 10)
        assert PERMUTATIONS["pso"].apply(triple) == (20, 10, 30)
        assert PERMUTATIONS["sop"].apply(triple) == (10, 30, 20)

    def test_invert_is_inverse_of_apply(self):
        triple = (7, 8, 9)
        for perm in PERMUTATIONS.values():
            assert perm.invert(perm.apply(triple)) == triple

    def test_apply_pattern_preserves_wildcards(self):
        pattern = TriplePattern(5, None, 7)
        assert PERMUTATIONS["osp"].apply_pattern(pattern) == (7, 5, None)
        assert PERMUTATIONS["pos"].apply_pattern(pattern) == (None, 7, 5)

    def test_invalid_order_rejected(self):
        with pytest.raises(IndexBuildError):
            Permutation("bad", (0, 0, 2))

    def test_lookup(self):
        assert permutation("POS").name == "pos"
        with pytest.raises(IndexBuildError):
            permutation("xyz")

    def test_roles_alias(self):
        assert PERMUTATIONS["pos"].roles == (1, 2, 0)
