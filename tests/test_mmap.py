"""Zero-copy mmap loading: equivalence with eager loads, v3 alignment,
concurrent readers sharing one mapping, and the CLI/service knobs.

The mapped path trades the per-section payload CRC check for O(1) loading
(see ``docs/STORAGE_FORMAT.md``), so these tests pin down everything else:
a mapped index must answer byte-identically to the eagerly loaded one on
every layout, v1/v2 files must map too (alignment is a performance property,
not a correctness requirement), and many threads reading through one mapped
file must agree with the single-threaded answers.
"""

import mmap as mmap_module
import tempfile
import threading
from pathlib import Path

import numpy as np
import pytest

from repro.core.builder import IndexBuilder
from repro.datasets import generate_from_profile
from repro.errors import StorageError
from repro.storage import load_index, save_index
from repro.storage.container import (
    ALIGNED_FORMAT_VERSION,
    SECTION_ALIGNMENT,
    container_version,
    map_container,
)

LAYOUTS = ("3t", "cc", "2to", "2tp")


@pytest.fixture(scope="module")
def store():
    return generate_from_profile("dbpedia", 4000, seed=9)


@pytest.fixture(scope="module")
def patterns(store):
    probes = []
    for s, p, o in store.sample(12, seed=5):
        probes.extend([(s, None, None), (None, p, None), (None, None, o),
                       (s, p, None), (None, p, o), (s, None, o), (s, p, o)])
    probes.append((None, None, None))
    return probes


@pytest.mark.parametrize("layout", LAYOUTS)
@pytest.mark.parametrize("aligned", (False, True))
def test_mmap_load_equals_eager_load(store, patterns, layout, aligned, tmp_path):
    """A mapped index answers every pattern kind like the eager one."""
    index = IndexBuilder(store).build(layout)
    path = tmp_path / f"{layout}.ridx"
    save_index(index, path, aligned=aligned)
    eager = load_index(path).index
    mapped = load_index(path, mmap=True).index
    assert mapped.num_triples == eager.num_triples
    for pattern in patterns:
        assert mapped.select_list(pattern) == eager.select_list(pattern)


def test_aligned_save_writes_v3_with_aligned_sections(store, tmp_path):
    index = IndexBuilder(store).build("2tp")
    path = tmp_path / "aligned.ridx"
    save_index(index, path, aligned=True)
    data = path.read_bytes()
    assert container_version(data) == ALIGNED_FORMAT_VERSION
    from repro.storage.container import _parse_header
    _version, table = _parse_header(data, str(path))
    assert table
    for name, offset, _length, _crc in table:
        assert offset % SECTION_ALIGNMENT == 0, name


def test_default_save_stays_v1_and_still_maps(store, tmp_path):
    """mmap is not gated on v3: plain v1 files map correctly too."""
    index = IndexBuilder(store).build("2tp")
    path = tmp_path / "plain.ridx"
    save_index(index, path)
    assert container_version(path.read_bytes()) == 1
    mapped = load_index(path, mmap=True).index
    assert mapped.num_triples == index.num_triples


def test_mmap_arrays_are_zero_copy_views(store, tmp_path):
    """Loaded array leaves alias the mapping (read-only, mmap-backed)."""
    index = IndexBuilder(store).build("2tp")
    path = tmp_path / "zc.ridx"
    save_index(index, path, aligned=True)
    loaded = load_index(path, mmap=True).index
    views = []
    seen = set()

    def children(obj):
        if isinstance(obj, dict):
            return list(obj.values())
        if isinstance(obj, (list, tuple)):
            return list(obj)
        values = []
        if hasattr(obj, "__dict__"):
            values.extend(vars(obj).values())
        for klass in type(obj).__mro__:
            for slot in getattr(klass, "__slots__", ()):
                if hasattr(obj, slot):
                    values.append(getattr(obj, slot))
        return values

    def collect(obj, depth=0):
        if depth > 10 or id(obj) in seen:
            return
        seen.add(id(obj))
        for value in children(obj):
            if isinstance(value, np.ndarray):
                views.append(value)
            elif not isinstance(value, (str, bytes, int, float, bool,
                                        type(None))):
                collect(value, depth + 1)

    collect(loaded)
    mapped_backed = [a for a in views
                     if isinstance(_root_base(a), mmap_module.mmap)]
    assert mapped_backed, "no array leaf is backed by the mapping"
    for array in mapped_backed:
        assert not array.flags.writeable


def _root_base(array):
    base = array
    while getattr(base, "base", None) is not None:
        base = base.base
    if isinstance(base, memoryview):
        base = base.obj
    return base


def test_corrupt_header_is_rejected_on_map(store, tmp_path):
    index = IndexBuilder(store).build("2tp")
    path = tmp_path / "corrupt.ridx"
    save_index(index, path, aligned=True)
    data = bytearray(path.read_bytes())
    data[4] ^= 0xFF  # inside the header, after the magic
    path.write_bytes(bytes(data))
    with pytest.raises(StorageError):
        load_index(path, mmap=True)


def test_concurrent_readers_share_one_mapped_index(store, patterns, tmp_path):
    """Many threads over one mapped index agree with the serial answers."""
    index = IndexBuilder(store).build("2tp")
    path = tmp_path / "shared.ridx"
    save_index(index, path, aligned=True)
    shared = load_index(path, mmap=True).index
    expected = {pattern: index.select_list(pattern) for pattern in patterns}
    errors = []
    barrier = threading.Barrier(8)

    def reader(offset):
        barrier.wait()
        for i in range(len(patterns) * 2):
            pattern = patterns[(offset + i) % len(patterns)]
            if shared.select_list(pattern) != expected[pattern]:
                errors.append(pattern)

    threads = [threading.Thread(target=reader, args=(i,)) for i in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors


def test_mmap_with_delta_file_serves_merged_view(store, tmp_path):
    """A delta-carrying (v2) file still answers through the overlay when mapped."""
    index = IndexBuilder(store).build("2tp")
    path = tmp_path / "delta.ridx"
    save_index(index, path)

    from repro.dynamic import DynamicIndex
    dynamic = DynamicIndex(index)
    probe = store.sample(1, seed=2)[0]
    extra = (probe[0], probe[1], store.num_objects + 10)
    dynamic.insert([extra])
    dynamic.delete([probe])
    dynamic.save(path)

    loaded = load_index(path, mmap=True)
    merged = loaded.queryable()
    assert list(extra) in [list(t) for t in merged.select_list(
        (extra[0], None, None))]
    assert list(probe) not in [list(t) for t in merged.select_list(
        (probe[0], probe[1], None))]
