"""Tests for the bit vector with rank/select support."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.sequences.bitvector import BitVector, BitVectorBuilder


class TestConstruction:
    def test_from_bits_round_trip(self):
        bits = [1, 0, 0, 1, 1, 0, 1, 0, 0, 0, 1]
        vector = BitVector.from_bits(bits)
        assert vector.to_list() == bits
        assert len(vector) == len(bits)

    def test_from_positions(self):
        vector = BitVector.from_positions(10, [0, 3, 9])
        assert vector.to_list() == [1, 0, 0, 1, 0, 0, 0, 0, 0, 1]

    def test_empty_vector(self):
        vector = BitVector.from_positions(0, [])
        assert len(vector) == 0
        assert vector.num_ones == 0

    def test_builder_rejects_out_of_range(self):
        builder = BitVectorBuilder(8)
        with pytest.raises(IndexError):
            builder.set(8)

    def test_builder_set_many_rejects_out_of_range(self):
        builder = BitVectorBuilder(8)
        with pytest.raises(IndexError):
            builder.set_many([1, 2, 100])

    def test_negative_length_rejected(self):
        with pytest.raises(EncodingError):
            BitVectorBuilder(-1)

    def test_multiword_vector(self):
        positions = [0, 63, 64, 127, 128, 200]
        vector = BitVector.from_positions(201, positions)
        assert [i for i in range(201) if vector.get(i)] == positions


class TestAccessors:
    def test_get_out_of_range(self):
        vector = BitVector.from_positions(5, [1])
        with pytest.raises(IndexError):
            vector.get(5)
        with pytest.raises(IndexError):
            vector.get(-1)

    def test_num_ones_and_zeros(self):
        vector = BitVector.from_positions(100, range(0, 100, 3))
        expected_ones = len(range(0, 100, 3))
        assert vector.num_ones == expected_ones
        assert vector.num_zeros == 100 - expected_ones

    def test_getitem(self):
        vector = BitVector.from_positions(4, [2])
        assert vector[2] is True
        assert vector[1] is False

    def test_iter_ones(self):
        positions = [3, 17, 64, 65, 190]
        vector = BitVector.from_positions(200, positions)
        assert list(vector.iter_ones()) == positions


class TestRank:
    def test_rank_basic(self):
        vector = BitVector.from_bits([1, 0, 1, 1, 0, 0, 1])
        assert vector.rank1(0) == 0
        assert vector.rank1(1) == 1
        assert vector.rank1(4) == 3
        assert vector.rank1(7) == 4
        assert vector.rank0(7) == 3

    def test_rank_full_length(self):
        vector = BitVector.from_positions(130, [0, 64, 129])
        assert vector.rank1(130) == 3
        assert vector.rank0(130) == 127

    def test_rank_out_of_range(self):
        vector = BitVector.from_positions(10, [1])
        with pytest.raises(IndexError):
            vector.rank1(11)


class TestSelect:
    def test_select1_basic(self):
        positions = [2, 5, 8, 70, 71, 300]
        vector = BitVector.from_positions(400, positions)
        for k, expected in enumerate(positions):
            assert vector.select1(k) == expected

    def test_select0_basic(self):
        vector = BitVector.from_bits([1, 0, 1, 0, 0, 1])
        assert vector.select0(0) == 1
        assert vector.select0(1) == 3
        assert vector.select0(2) == 4

    def test_select_out_of_range(self):
        vector = BitVector.from_positions(10, [4])
        with pytest.raises(IndexError):
            vector.select1(1)
        with pytest.raises(IndexError):
            vector.select0(9)

    def test_successor1(self):
        vector = BitVector.from_positions(20, [3, 10, 17])
        assert vector.successor1(0) == 3
        assert vector.successor1(3) == 3
        assert vector.successor1(4) == 10
        assert vector.successor1(18) is None
        assert vector.successor1(25) is None

    def test_rank_select_inverse(self):
        vector = BitVector.from_positions(513, [0, 1, 63, 64, 511, 512])
        for k in range(vector.num_ones):
            position = vector.select1(k)
            assert vector.rank1(position) == k
            assert vector.get(position)


class TestSpace:
    def test_size_in_bits_counts_payload_and_samples(self):
        vector = BitVector.from_positions(1024, range(0, 1024, 2))
        assert vector.size_in_bits() >= 1024
        # Overhead should stay bounded (samples every 512 bits).
        assert vector.size_in_bits() <= 1024 + 64 * (1024 // 512 + 1) + 64


@settings(max_examples=60, deadline=None)
@given(st.lists(st.booleans(), min_size=1, max_size=700))
def test_rank_select_match_naive(bits):
    """Property: rank/select agree with a naive recomputation."""
    vector = BitVector.from_bits([int(b) for b in bits])
    ones = [i for i, b in enumerate(bits) if b]
    zeros = [i for i, b in enumerate(bits) if not b]
    for i in range(0, len(bits) + 1, max(1, len(bits) // 10)):
        assert vector.rank1(i) == sum(1 for p in ones if p < i)
        assert vector.rank0(i) == sum(1 for p in zeros if p < i)
    for k, position in enumerate(ones):
        assert vector.select1(k) == position
    for k, position in enumerate(zeros):
        assert vector.select0(k) == position


@settings(max_examples=30, deadline=None)
@given(st.sets(st.integers(min_value=0, max_value=5000), min_size=1, max_size=300))
def test_sparse_positions_round_trip(positions):
    """Property: building from positions reproduces exactly those positions."""
    universe = max(positions) + 1
    vector = BitVector.from_positions(universe, sorted(positions))
    assert set(vector.iter_ones()) == positions
    assert vector.num_ones == len(positions)
