"""Tests for the 3T permuted trie index."""

import pytest

from repro.core.index_3t import PermutedTrieIndex
from repro.core.patterns import PatternKind, TriplePattern, reference_select
from repro.errors import PatternError


class TestDispatch:
    def test_dispatch_table_covers_all_kinds(self):
        assert set(PermutedTrieIndex.DISPATCH) == set(PatternKind)

    def test_dispatch_matches_paper(self, index_3t):
        assert index_3t.dispatch_trie((1, 2, 3)) == "spo"
        assert index_3t.dispatch_trie((1, 2, None)) == "spo"
        assert index_3t.dispatch_trie((1, None, None)) == "spo"
        assert index_3t.dispatch_trie((None, None, None)) == "spo"
        assert index_3t.dispatch_trie((None, 2, 3)) == "pos"
        assert index_3t.dispatch_trie((None, 2, None)) == "pos"
        assert index_3t.dispatch_trie((1, None, 3)) == "osp"
        assert index_3t.dispatch_trie((None, None, 3)) == "osp"

    def test_requires_all_three_tries(self, index_3t):
        with pytest.raises(PatternError):
            PermutedTrieIndex({"spo": index_3t.trie("spo")})


class TestCorrectness:
    @pytest.mark.parametrize("kind", list(PatternKind))
    def test_matches_reference_for_every_kind(self, index_3t, reference_triples, kind):
        sample = reference_triples[:: max(1, len(reference_triples) // 40)][:40]
        for triple in sample:
            pattern = TriplePattern.from_triple_with_wildcards(triple, kind)
            got = index_3t.select_list(pattern)
            expected = reference_select(reference_triples, pattern)
            assert got == expected
            if kind is PatternKind.ALL_WILDCARDS:
                break  # identical for every sampled triple

    def test_absent_components_return_nothing(self, index_3t, small_store):
        missing = small_store.num_subjects + 10
        assert index_3t.select_list((missing, None, None)) == []
        assert index_3t.select_list((None, None, small_store.num_objects + 5)) == []

    def test_contains_and_count(self, index_3t, reference_triples):
        present = reference_triples[0]
        assert index_3t.contains(present)
        assert not index_3t.contains((present[0], present[1], 10_000))
        subject = present[0]
        expected = len([t for t in reference_triples if t[0] == subject])
        assert index_3t.count((subject, None, None)) == expected

    def test_num_triples(self, index_3t, reference_triples):
        assert index_3t.num_triples == len(reference_triples)


class TestSpace:
    def test_bits_per_triple_positive(self, index_3t):
        assert index_3t.bits_per_triple() > 0

    def test_space_breakdown_has_all_tries(self, index_3t):
        breakdown = index_3t.space_breakdown()
        for trie_name in ("spo", "pos", "osp"):
            assert any(key.startswith(trie_name + ".") for key in breakdown)
        assert sum(breakdown.values()) == index_3t.size_in_bits()

    def test_3t_is_largest_layout(self, all_indexes):
        # The paper's Table 4 ordering: 3T > CC > 2To > 2Tp.
        assert all_indexes["3t"].size_in_bits() > all_indexes["cc"].size_in_bits()
        assert all_indexes["cc"].size_in_bits() > all_indexes["2tp"].size_in_bits()

    def test_children_statistics_structure(self, index_3t):
        statistics = index_3t.children_statistics()
        assert set(statistics) == {"spo", "pos", "osp"}
        for per_trie in statistics.values():
            assert set(per_trie) == {"level1", "level2"}
