"""The sharded cluster: partitioner, replication, coordinator, chaos.

The load-bearing property is **differential**: for every shard count K
(including K=1) and both executors, the coordinator must return exactly
the bindings the single-box service returns over the same data — through
interleaved inserts, deletes, compactions, shard kills + restarts, and
(with R > 1 serving processes per shard) the loss of any single replica.
Everything runs in-process (shard servers on background threads, real TCP
between coordinator and shards), so the suite exercises the actual RPC
framing without subprocess management.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.cluster import rpc
from repro.cluster.client import ClusterClient
from repro.cluster.coordinator import (
    ClusterQueryService,
    CoordinatorServer,
    parse_address,
    parse_replica_set,
)
from repro.cluster.partition import (
    MANIFEST_NAME,
    build_cluster,
    read_manifest,
    rebalance_cluster,
    shard_of,
    splitmix64,
    write_manifest,
)
from repro.cluster.shard import ShardServer
from repro.core import build_index
from repro.errors import ClusterError, NotLeaderError, ShardUnavailableError
from repro.queries.planner import QueryPlanner
from repro.rdf.dictionary import RdfDictionary
from repro.service.engine import QueryService
from repro.storage import save_index

QUERIES = [
    "SELECT ?s ?o WHERE { ?s 1 ?o }",
    "SELECT ?s ?p ?o WHERE { ?s ?p ?o }",
    "SELECT ?a ?b ?c WHERE { ?a 0 ?b . ?b 0 ?c }",
    "SELECT ?a ?c WHERE { ?a 0 ?b . ?a 1 ?c }",
]
ENGINES = ["nested", "wcoj"]
PATTERNS = [(None, None, None), (3, None, None), (None, 1, None),
            (None, None, 5), (3, 1, None), (None, 1, 5)]


def _term_triples():
    triples = []
    for i in range(260):
        triples.append((f"<http://x/s{i % 50}>", f"<http://x/p{i % 6}>",
                        f"<http://x/o{i % 37}>"))
        triples.append((f"<http://x/s{i % 50}>", "<http://x/knows>",
                        f"<http://x/s{(i + 11) % 50}>"))
    return triples


@pytest.fixture(scope="module")
def source_container(tmp_path_factory):
    dictionary, store = RdfDictionary.from_term_triples(_term_triples())
    index = build_index(store, "2tp")
    stats = QueryPlanner.cardinalities_from_store(store)
    path = tmp_path_factory.mktemp("cluster-src") / "box.repro"
    save_index(index, path, dictionary=dictionary, planner_stats=stats,
               aligned=True)
    return path


class _Cluster:
    """An in-process cluster: shard threads + a connected coordinator.

    With ``num_replicas > 1`` every shard gets R serving processes over
    the same containers — replica 0 the writable leader, the rest
    read-only followers tailing its WAL.  ``source=None`` reopens an
    existing cluster directory (e.g. after a rebalance) without
    rebuilding it.
    """

    def __init__(self, source, directory, num_shards, num_replicas=1,
                 **service_options):
        self.directory = directory
        self.num_replicas = num_replicas
        if source is None:
            self.manifest = read_manifest(directory / MANIFEST_NAME)
        else:
            self.manifest = build_cluster(source, directory, num_shards,
                                          num_replicas=num_replicas)
        self.servers = []
        for entry in self.manifest["shards"]:
            # The leader publishes the epoch documents the followers
            # tail, so replica 0 must be up before any follower opens.
            self.servers.append([self._spawn(entry, port=0, replica=index)
                                 for index in range(num_replicas)])
        self.service = ClusterQueryService.from_cluster_dir(
            directory, self.addresses(), **service_options)

    def _spawn(self, entry, port, replica=0):
        replica_container = (None if entry["replica"] is None
                             else self.directory / entry["replica"])
        return ShardServer(
            entry["id"], self.directory / entry["primary"],
            replica_container, port=port, replica_index=replica).start()

    @property
    def shards(self):
        """The per-shard leader servers (the PR 7 single-process view)."""
        return [group[0] for group in self.servers]

    def addresses(self):
        if self.num_replicas == 1:
            return [(group[0].host, group[0].port)
                    for group in self.servers]
        return [[(server.host, server.port) for server in group]
                for group in self.servers]

    def kill(self, shard_id, replica=None):
        """Stop one replica process, or the whole shard when unset."""
        group = self.servers[shard_id]
        for server in (group if replica is None else [group[replica]]):
            server.close()

    def restart(self, shard_id, replica=None):
        entry = self.manifest["shards"][shard_id]
        indices = (range(self.num_replicas) if replica is None
                   else [replica])
        for index in indices:
            port = self.servers[shard_id][index].port
            self.servers[shard_id][index] = self._spawn(
                entry, port=port, replica=index)

    def close(self):
        self.service.close()
        for group in self.servers:
            for server in group:
                server.close()


# --------------------------------------------------------------------------- #
# Partitioner.
# --------------------------------------------------------------------------- #

class TestPartitioner:
    def test_splitmix64_is_stable(self):
        # Pinned values: routing must not depend on PYTHONHASHSEED or
        # platform, or a rebuilt coordinator would mis-route every shard.
        assert splitmix64(0) == 0xE220A8397B1DCDAF
        assert splitmix64(1) == 0x910A2DEC89025CC1
        assert shard_of(0, 4) == splitmix64(0) % 4

    def test_partition_is_exact_cover(self, source_container, tmp_path):
        manifest = build_cluster(source_container, tmp_path / "c", 2)
        box = QueryService.from_file(source_container)
        expected = sorted(box.select((None, None, None), limit=10**6).triples)
        for side in ("primary", "replica"):
            union = []
            for entry in manifest["shards"]:
                loaded = QueryService.from_file(tmp_path / "c" / entry[side])
                part = loaded.select((None, None, None), limit=10**6).triples
                union.extend(part)
                for s, p, o in part:
                    key = s if side == "primary" else o
                    assert shard_of(key, 2) == entry["id"]
            assert sorted(union) == expected

    def test_manifest_tamper_detection(self, source_container, tmp_path):
        build_cluster(source_container, tmp_path / "c", 2)
        manifest_path = tmp_path / "c" / MANIFEST_NAME
        document = json.loads(manifest_path.read_text())
        document["manifest"]["num_shards"] = 3
        manifest_path.write_text(json.dumps(document))
        with pytest.raises(ClusterError):
            read_manifest(manifest_path)

    def test_manifest_wrong_key_rejected(self, source_container, tmp_path):
        build_cluster(source_container, tmp_path / "c", 2, key="secret-a")
        with pytest.raises(ClusterError):
            read_manifest(tmp_path / "c" / MANIFEST_NAME, "secret-b")
        read_manifest(tmp_path / "c" / MANIFEST_NAME, "secret-a")

    def test_more_shards_than_subjects_builds_empty_shards(self, tmp_path):
        # Regression: K greater than the number of distinct subjects used
        # to be a build error.  An empty hash bucket is legitimate (small
        # or skewed data); the shard gets a valid empty container that
        # answers every pattern with zero rows.
        dictionary, store = RdfDictionary.from_term_triples(
            [("<http://x/a>", "<http://x/p>", "<http://x/b>")])
        index = build_index(store, "2tp")
        path = tmp_path / "tiny.repro"
        save_index(index, path, dictionary=dictionary)
        manifest = build_cluster(path, tmp_path / "c", 4)
        assert len(manifest["shards"]) == 4
        populated = 0
        for entry in manifest["shards"]:
            service = QueryService.from_file(tmp_path / "c" / entry["primary"])
            rows = service.select((None, None, None), limit=10).triples
            populated += bool(rows)
            service.close()
        assert populated == 1  # one subject lands in exactly one bucket

        # The cluster over those shards still answers exactly.
        cluster = _Cluster(path, tmp_path / "cl", 4)
        try:
            result = cluster.service.select((None, None, None), limit=10)
            assert len(result.triples) == 1
            empty = cluster.service.select((999, None, None), limit=10,
                                           use_cache=False)
            assert list(empty.triples) == []
        finally:
            cluster.close()

    def test_manifest_v1_is_normalized_on_read(self, source_container,
                                               tmp_path):
        build_cluster(source_container, tmp_path / "c", 2)
        path = tmp_path / "c" / MANIFEST_NAME
        manifest = json.loads(path.read_text())["manifest"]
        # Strip the v2 vocabulary and re-sign, exactly what a PR 7
        # partitioner would have written.
        manifest["manifest_version"] = 1
        del manifest["num_replicas"]
        del manifest["version"]
        write_manifest(path, manifest)
        reread = read_manifest(path)
        assert reread["num_replicas"] == 1
        assert reread["version"] == 1

    def test_rejects_unknown_manifest_version(self, source_container,
                                              tmp_path):
        build_cluster(source_container, tmp_path / "c", 2)
        path = tmp_path / "c" / MANIFEST_NAME
        manifest = json.loads(path.read_text())["manifest"]
        manifest["manifest_version"] = 99
        write_manifest(path, manifest)
        with pytest.raises(ClusterError, match="version 99"):
            read_manifest(path)

    def test_replica_layout_none(self, source_container, tmp_path):
        manifest = build_cluster(source_container, tmp_path / "c", 2,
                                 replica_layout="none")
        assert all(entry["replica"] is None
                   for entry in manifest["shards"])


# --------------------------------------------------------------------------- #
# Differential: coordinator vs single box.
# --------------------------------------------------------------------------- #

@pytest.mark.parametrize("num_shards", [1, 2, 4])
def test_cluster_matches_single_box(source_container, tmp_path, num_shards):
    box = QueryService.from_file(source_container, writable=True)
    cluster = _Cluster(source_container, tmp_path / "c", num_shards)
    try:
        for pattern in PATTERNS:
            expected = sorted(box.select(pattern, limit=10**6).triples)
            actual = sorted(
                cluster.service.select(pattern, limit=10**6).triples)
            assert actual == expected, pattern
        for query in QUERIES:
            for engine in ENGINES:
                expected = box.execute(query, engine=engine, limit=10**6)
                actual = cluster.service.execute(query, engine=engine,
                                                 limit=10**6)
                key = lambda row: sorted(row.items())
                assert sorted(actual.bindings, key=key) == \
                    sorted(expected.bindings, key=key), (query, engine)
                assert actual.statistics["incomplete"] is False

        # Interleaved writes: insert / query / delete / compact / query.
        batch = [(9001, 9001, 9002), (9002, 9001, 9003),
                 (9003, 9001, 9001), (9004, 9001, 9002)]
        for target in (box, cluster.service):
            target.update(inserts=batch)
        for target in (box, cluster.service):
            target.update(deletes=batch[:2])
        box.compact()
        cluster.service.compact()
        for pattern in [(None, 9001, None), (None, None, 9002),
                        (9003, None, None), (None, None, None)]:
            expected = sorted(box.select(pattern, limit=10**6).triples)
            actual = sorted(
                cluster.service.select(pattern, limit=10**6).triples)
            assert actual == expected, pattern
        for engine in ENGINES:
            query = "SELECT ?s ?o WHERE { ?s 9001 ?o }"
            expected = box.execute(query, engine=engine)
            actual = cluster.service.execute(query, engine=engine)
            key = lambda row: sorted(row.items())
            assert sorted(actual.bindings, key=key) == \
                sorted(expected.bindings, key=key)
    finally:
        cluster.close()
        box.close()


def test_limit_offset_paging(source_container, tmp_path):
    box = QueryService.from_file(source_container)
    cluster = _Cluster(source_container, tmp_path / "c", 2)
    try:
        query = "SELECT ?s ?o WHERE { ?s 1 ?o }"
        full = cluster.service.execute(query, limit=10**6)
        pages = []
        offset = 0
        while True:
            page = cluster.service.execute(query, limit=7, offset=offset)
            pages.extend(page.bindings)
            if not page.has_more:
                break
            offset += 7
        assert pages == full.bindings
        assert len(full.bindings) == len(
            box.execute(query, limit=10**6).bindings)
    finally:
        cluster.close()
        box.close()


def test_kill_and_restart_shard_mid_run(source_container, tmp_path):
    box = QueryService.from_file(source_container, writable=True)
    cluster = _Cluster(source_container, tmp_path / "c", 2)
    try:
        batch = [(8101, 8100, 8102), (8102, 8100, 8103),
                 (8103, 8100, 8101)]
        box.update(inserts=batch)
        cluster.service.update(inserts=batch)

        cluster.kill(1)
        with pytest.raises(ShardUnavailableError):
            cluster.service.select((None, None, None), use_cache=False)
        cluster.restart(1)

        # The restarted shard replayed its WAL: acknowledged writes and
        # base data are all still there, exactly matching the single box.
        for pattern in [(None, None, None), (None, 8100, None)]:
            expected = sorted(box.select(pattern, limit=10**6).triples)
            actual = sorted(
                cluster.service.select(pattern, limit=10**6,
                                       use_cache=False).triples)
            assert actual == expected, pattern
        for engine in ENGINES:
            query = "SELECT ?a ?c WHERE { ?a 8100 ?b . ?b 8100 ?c }"
            expected = box.execute(query, engine=engine)
            actual = cluster.service.execute(query, engine=engine,
                                             use_cache=False)
            key = lambda row: sorted(row.items())
            assert sorted(actual.bindings, key=key) == \
                sorted(expected.bindings, key=key)
    finally:
        cluster.close()
        box.close()


def test_best_effort_marks_partial_results(source_container, tmp_path):
    cluster = _Cluster(source_container, tmp_path / "c", 2,
                       best_effort=True)
    try:
        complete = cluster.service.execute(
            "SELECT ?s ?p ?o WHERE { ?s ?p ?o }", limit=10**6)
        assert complete.statistics["incomplete"] is False

        cluster.kill(0)
        partial = cluster.service.execute(
            "SELECT ?s ?p ?o WHERE { ?s ?p ?o }", limit=10**6)
        assert partial.statistics["incomplete"] is True
        assert partial.statistics["failed_shards"] == [0]
        assert 0 < len(partial.bindings) < len(complete.bindings)
        report = cluster.service.last_request_report()
        assert report["incomplete"] is True

        # Writes stay fail-fast even under best-effort: an acknowledged
        # write must never silently miss a dead owning shard.
        with pytest.raises(ShardUnavailableError):
            cluster.service.update(inserts=[(4, 4, 4), (5, 5, 5),
                                            (6, 6, 6), (7, 7, 7)])
    finally:
        cluster.close()


def test_best_effort_caches_complete_pages(source_container, tmp_path):
    # Regression: best-effort mode used to bypass the result cache for
    # every request.  Complete responses are cacheable — only a page
    # computed while a shard was being skipped must never be stored.
    cluster = _Cluster(source_container, tmp_path / "c", 2,
                       best_effort=True)
    try:
        query = "SELECT ?a ?b ?c WHERE { ?a 0 ?b . ?b 0 ?c }"
        complete = cluster.service.execute(query, limit=10**6)
        assert complete.statistics["incomplete"] is False
        repeat = cluster.service.execute(query, limit=10**6)
        assert repeat.cached is True
        assert repeat.bindings == complete.bindings

        # The cached page was computed while every shard answered, so a
        # shard dying later must not degrade it to a partial recompute.
        cluster.kill(0)
        served = cluster.service.execute(query, limit=10**6)
        assert served.cached is True
        assert served.statistics["incomplete"] is False
        assert served.bindings == complete.bindings
    finally:
        cluster.close()


def test_partial_pages_are_never_cached(source_container, tmp_path):
    cluster = _Cluster(source_container, tmp_path / "c", 2,
                       best_effort=True)
    try:
        query = "SELECT ?x ?z WHERE { ?x 1 ?y . ?y 0 ?z }"
        cluster.kill(0)
        partial = cluster.service.execute(query, limit=10**6)
        assert partial.statistics["incomplete"] is True
        assert partial.cached is False
        again = cluster.service.execute(query, limit=10**6)
        assert again.cached is False  # nothing partial was stored

        # Once the shard is back the same request heals to the full
        # answer — a cached partial page would have been served instead.
        cluster.restart(0)
        healed = cluster.service.execute(query, limit=10**6)
        assert healed.statistics["incomplete"] is False
        assert len(healed.bindings) >= len(partial.bindings)
    finally:
        cluster.close()


def test_star_query_single_shard_pushdown(source_container, tmp_path):
    cluster = _Cluster(source_container, tmp_path / "c", 2)
    try:
        # Constant subject: the whole star routes to one shard, so the
        # other shard being dead must not matter.
        target = 3
        dead = 1 - shard_of(target, 2)
        cluster.kill(dead)
        query = f"SELECT ?b ?c WHERE {{ {target} 0 ?b . {target} 1 ?c }}"
        result = cluster.service.execute(query, use_cache=False)
        assert result.statistics["incomplete"] is False
    finally:
        cluster.close()


# --------------------------------------------------------------------------- #
# Epochs and observability.
# --------------------------------------------------------------------------- #

def test_health_aggregation_and_epochs(source_container, tmp_path):
    cluster = _Cluster(source_container, tmp_path / "c", 2)
    try:
        health = cluster.service.health()
        assert health["status"] == "ok"
        assert health["shards_reachable"] == 2
        assert health["wal_lag"] == 0
        before = health["combined_epoch"]

        cluster.service.update(inserts=[(7001, 7000, 7002)])
        after = cluster.service.health()["combined_epoch"]
        assert after > before

        stats = cluster.service.statistics()
        assert set(stats) == {"cluster", "coordinator", "shards"}
        assert stats["cluster"]["num_shards"] == 2
        assert len(stats["shards"]) == 2

        cluster.kill(1)
        degraded = cluster.service.health()
        assert degraded["status"] == "degraded"
        assert degraded["shards_reachable"] == 1
    finally:
        cluster.close()


def test_shard_epoch_survives_restart(source_container, tmp_path):
    cluster = _Cluster(source_container, tmp_path / "c", 2)
    try:
        cluster.service.update(inserts=[(6001, 6000, 6002),
                                        (6002, 6000, 6001)])
        owner = shard_of(6001, 2)
        before = cluster.shards[owner].combined_epoch()
        assert before > 0
        cluster.kill(owner)
        cluster.restart(owner)
        assert cluster.shards[owner].combined_epoch() >= before
    finally:
        cluster.close()


# --------------------------------------------------------------------------- #
# Process replication and failover (R > 1).
# --------------------------------------------------------------------------- #

class TestReplication:
    def test_followers_serve_acked_writes(self, source_container, tmp_path):
        cluster = _Cluster(source_container, tmp_path / "c", 2,
                           num_replicas=2)
        try:
            batch = [(9101, 9100, 9102), (9102, 9100, 9101)]
            cluster.service.update(inserts=batch)
            # Ask each follower directly: publish-before-ack means the
            # write is epoch-visible there the moment the ack returned.
            for shard_id, group in enumerate(cluster.servers):
                follower = group[1]
                client = rpc.RpcClient(follower.host, follower.port,
                                       retries=0)
                try:
                    report = client.call({"op": "health"})
                    assert report["role"] == "follower"
                    assert report["wal_lag"] == 0
                    rows = []
                    for frame in client.stream(
                            {"op": "select",
                             "pattern": [None, 9100, None],
                             "side": "primary"}):
                        rows.extend(tuple(row)
                                    for row in frame.get("rows", ()))
                finally:
                    client.close()
                expected = [t for t in batch
                            if shard_of(t[0], 2) == shard_id]
                assert sorted(rows) == sorted(expected)
        finally:
            cluster.close()

    def test_followers_reject_writes(self, source_container, tmp_path):
        cluster = _Cluster(source_container, tmp_path / "c", 2,
                           num_replicas=2)
        try:
            follower = cluster.servers[0][1]
            client = rpc.RpcClient(follower.host, follower.port, retries=0)
            try:
                with pytest.raises(NotLeaderError, match="follower"):
                    client.call({"op": "update",
                                 "primary": {"insert": [[1, 2, 3]]}})
                with pytest.raises(NotLeaderError):
                    client.call({"op": "compact"})
            finally:
                client.close()
        finally:
            cluster.close()

    def test_kill_any_single_replica_keeps_reads_complete(
            self, source_container, tmp_path):
        # The acceptance bar: with K=2 / R=2 the loss of any single
        # serving process must leave every acknowledged write readable
        # and every result complete (never marked incomplete).
        box = QueryService.from_file(source_container, writable=True)
        cluster = _Cluster(source_container, tmp_path / "c", 2,
                           num_replicas=2, best_effort=True)
        try:
            batch = [(9201, 9200, 9202), (9202, 9200, 9203),
                     (9203, 9200, 9201)]
            box.update(inserts=batch)
            cluster.service.update(inserts=batch)
            patterns = [(None, None, None), (None, 9200, None),
                        (None, None, 9202)]
            for shard_id in range(2):
                for replica in range(2):
                    cluster.kill(shard_id, replica=replica)
                    for pattern in patterns:
                        expected = sorted(
                            box.select(pattern, limit=10**6).triples)
                        actual = sorted(cluster.service.select(
                            pattern, limit=10**6, use_cache=False).triples)
                        assert actual == expected, (shard_id, replica,
                                                    pattern)
                        report = cluster.service.last_request_report()
                        assert report["incomplete"] is False
                    cluster.restart(shard_id, replica=replica)
        finally:
            cluster.close()
            box.close()

    def test_leader_kill_promotes_follower_for_writes(
            self, source_container, tmp_path):
        cluster = _Cluster(source_container, tmp_path / "c", 2,
                           num_replicas=2)
        try:
            first = [(9301, 9300, 9302), (9302, 9300, 9303)]
            cluster.service.update(inserts=first)
            cluster.kill(0, replica=0)
            cluster.kill(1, replica=0)

            # The write exhausts the dead leader's retry budget, then
            # promotes the surviving follower and retries there — all
            # inside one coordinator call.
            second = [(9303, 9300, 9304), (9304, 9300, 9301)]
            reply = cluster.service.update(inserts=second)
            assert reply.inserted == len(second)

            result = cluster.service.select((None, 9300, None),
                                            limit=10**6, use_cache=False)
            assert sorted(result.triples) == sorted(first + second)

            # The promoted replicas now answer as leaders, and the
            # sticky leader pointer makes the next write go straight in.
            for report in cluster.service.health()["shards"]:
                assert report["role"] == "leader"
            third = cluster.service.update(inserts=[(9305, 9300, 9306)])
            assert third.inserted == 1
        finally:
            cluster.close()

    def test_replica_health_detail(self, source_container, tmp_path):
        cluster = _Cluster(source_container, tmp_path / "c", 2,
                           num_replicas=2)
        try:
            health = cluster.service.health()
            assert health["status"] == "ok"
            for shard in health["shards"]:
                assert shard["replicas_reachable"] == 2
                roles = [entry["role"] for entry in shard["replicas"]]
                assert roles == ["leader", "follower"]

            # Losing one replica degrades nothing: the shard is down
            # only when every replica is.
            cluster.kill(0, replica=1)
            health = cluster.service.health()
            assert health["status"] == "ok"
            assert health["shards_reachable"] == 2
            assert health["shards"][0]["replicas_reachable"] == 1
        finally:
            cluster.close()


# --------------------------------------------------------------------------- #
# Rebalancing.
# --------------------------------------------------------------------------- #

class TestRebalance:
    def test_rebalance_preserves_acked_writes(self, source_container,
                                              tmp_path):
        box = QueryService.from_file(source_container, writable=True)
        cluster = _Cluster(source_container, tmp_path / "c", 2)
        batch = [(9401, 9400, 9402), (9402, 9400, 9403)]
        box.update(inserts=batch)
        cluster.service.update(inserts=batch)
        expected = sorted(box.select((None, None, None), limit=10**6).triples)
        box.close()
        cluster.close()  # rebalancing is offline

        manifest = rebalance_cluster(tmp_path / "c", 3)
        assert manifest["num_shards"] == 3
        assert manifest["version"] == 2
        # The WALs were folded into the rebuilt containers; replaying
        # them again would double-apply, so the sidecars must be gone.
        assert not list((tmp_path / "c").glob("*.wal"))
        assert not list((tmp_path / "c").glob("*.epoch"))

        reopened = _Cluster(None, tmp_path / "c", 3)
        try:
            actual = sorted(reopened.service.select(
                (None, None, None), limit=10**6).triples)
            assert actual == expected
        finally:
            reopened.close()

    def test_rebalance_shrink_removes_stale_shards(self, source_container,
                                                   tmp_path):
        cluster = _Cluster(source_container, tmp_path / "c", 3)
        expected = sorted(cluster.service.select(
            (None, None, None), limit=10**6).triples)
        cluster.close()

        manifest = rebalance_cluster(tmp_path / "c", 2)
        assert manifest["num_shards"] == 2
        assert manifest["version"] == 2
        assert not (tmp_path / "c" / "shard-002.repro").exists()
        assert not (tmp_path / "c" / "shard-002-replica.repro").exists()

        reopened = _Cluster(None, tmp_path / "c", 2)
        try:
            actual = sorted(reopened.service.select(
                (None, None, None), limit=10**6).triples)
            assert actual == expected
        finally:
            reopened.close()


# --------------------------------------------------------------------------- #
# RPC layer.
# --------------------------------------------------------------------------- #

class TestRpc:
    def test_unary_and_error(self):
        def boom(message):
            raise ClusterError("no such thing")

        server = rpc.RpcServer(("127.0.0.1", 0),
                               {"echo": lambda m: {"value": m["value"]},
                                "boom": boom})
        rpc.serve_in_thread(server)
        client = rpc.RpcClient("127.0.0.1", server.port, retries=0)
        try:
            assert client.call({"op": "echo", "value": 7})["value"] == 7
            with pytest.raises(ClusterError, match="no such thing"):
                client.call({"op": "boom"})
            with pytest.raises(ClusterError, match="unknown rpc op"):
                client.call({"op": "nope"})
        finally:
            client.close()
            server.shutdown()
            server.server_close()

    def test_streaming_and_socket_reuse(self):
        def stream(message):
            def frames():
                for batch in rpc.chunk_rows(range(1000), 128):
                    yield {"rows": list(batch)}
                yield {"eos": True, "count": 1000}
            return frames()

        server = rpc.RpcServer(("127.0.0.1", 0), {"nums": stream})
        rpc.serve_in_thread(server)
        client = rpc.RpcClient("127.0.0.1", server.port, retries=0)
        try:
            rows = []
            for frame in client.stream({"op": "nums"}):
                rows.extend(frame.get("rows", ()))
            assert rows == list(range(1000))
            # Fully-drained stream returns its socket to the free-list …
            assert len(client._free) == 1
            # … an abandoned one is closed, not reused (unread frames
            # would corrupt the next request on that socket).
            iterator = client.stream({"op": "nums"})
            next(iterator)
            iterator.close()
            assert len(client._free) == 0
            rows = []
            for frame in client.stream({"op": "nums"}):
                rows.extend(frame.get("rows", ()))
            assert rows == list(range(1000))
            assert len(client._free) == 1
        finally:
            client.close()
            server.shutdown()
            server.server_close()

    def test_unreachable_peer_raises_shard_unavailable(self):
        client = rpc.RpcClient("127.0.0.1", 1, retries=1, backoff=0.01)
        with pytest.raises(ShardUnavailableError):
            client.call({"op": "ping"})
        with pytest.raises(ShardUnavailableError):
            list(client.stream({"op": "select"}))

    def test_shutdown_severs_live_connections(self):
        server = rpc.RpcServer(("127.0.0.1", 0),
                               {"ping": lambda m: {"pong": True}})
        rpc.serve_in_thread(server)
        client = rpc.RpcClient("127.0.0.1", server.port, retries=0)
        try:
            assert client.call({"op": "ping"})["pong"] is True
            server.shutdown()
            server.server_close()
            with pytest.raises(ShardUnavailableError):
                client.call({"op": "ping"})
        finally:
            client.close()

    def test_cluster_client_validates_address_count(self, source_container,
                                                    tmp_path):
        manifest = build_cluster(source_container, tmp_path / "c", 2)
        with pytest.raises(ClusterError, match="address"):
            ClusterClient(manifest, [("127.0.0.1", 1)])

    def test_parse_address(self):
        assert parse_address("10.0.0.1:8390") == ("10.0.0.1", 8390)
        with pytest.raises(ClusterError):
            parse_address("nope")

    def test_parse_replica_set(self):
        assert parse_replica_set("10.0.0.1:8390") == [("10.0.0.1", 8390)]
        assert parse_replica_set("a:1,b:2, c:3") == [
            ("a", 1), ("b", 2), ("c", 3)]
        with pytest.raises(ClusterError):
            parse_replica_set(",")


class TestBackoff:
    def test_delay_is_capped_full_jitter(self):
        # Full jitter: uniform in [0, min(cap, base * 2^(n-1))].  The
        # cap keeps a long outage from sleeping for minutes, the jitter
        # keeps a shard restart from being met by synchronized retries.
        for attempt in range(1, 12):
            bound = min(rpc.MAX_BACKOFF, 0.05 * 2 ** (attempt - 1))
            for _ in range(50):
                delay = rpc.backoff_delay(attempt, 0.05)
                assert 0.0 <= delay <= bound
        # An overflow-scale attempt count must still respect the cap.
        assert rpc.backoff_delay(64, 0.05) <= rpc.MAX_BACKOFF

    def test_no_sleep_after_final_attempt(self, monkeypatch):
        # Regression: the retry loop used to sleep and then give up —
        # pure added latency on an already-failed call.
        sleeps = []
        monkeypatch.setattr(rpc.time, "sleep", sleeps.append)
        client = rpc.RpcClient("127.0.0.1", 1, retries=2, backoff=0.01)
        with pytest.raises(ShardUnavailableError):
            client.call({"op": "ping"})
        assert len(sleeps) == 2  # three attempts, two sleeps between
        assert all(0.0 <= delay <= rpc.MAX_BACKOFF for delay in sleeps)

    def test_no_sleep_without_retries(self, monkeypatch):
        sleeps = []
        monkeypatch.setattr(rpc.time, "sleep", sleeps.append)
        client = rpc.RpcClient("127.0.0.1", 1, retries=0)
        with pytest.raises(ShardUnavailableError):
            client.call({"op": "ping"})
        with pytest.raises(ShardUnavailableError):
            list(client.stream({"op": "select"}))
        assert sleeps == []


# --------------------------------------------------------------------------- #
# Coordinator HTTP front.
# --------------------------------------------------------------------------- #

@pytest.fixture(scope="module")
def http_cluster(source_container, tmp_path_factory):
    directory = tmp_path_factory.mktemp("http-cluster")
    cluster = _Cluster(source_container, directory / "c", 2)
    server = CoordinatorServer(("127.0.0.1", 0), cluster.service, quiet=True)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield cluster, f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)
    cluster.close()


def _http(url, body=None):
    data = None if body is None else json.dumps(body).encode("utf-8")
    request = urllib.request.Request(
        url, data=data, method="POST" if data else "GET",
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestCoordinatorHttp:
    def test_query(self, http_cluster):
        _, base = http_cluster
        status, body = _http(base + "/query",
                             {"sparql": QUERIES[0], "limit": 5})
        assert status == 200
        assert body["variables"] == ["s", "o"]
        assert len(body["bindings"]) == 5
        assert body["incomplete"] is False

    def test_update_and_read_back(self, http_cluster):
        _, base = http_cluster
        status, body = _http(base + "/update",
                             {"insert": [[5101, 5100, 5102]]})
        assert status == 200
        assert body["inserted"] == 1
        status, body = _http(base + "/query",
                             {"sparql": "SELECT ?s ?o WHERE { ?s 5100 ?o }"})
        assert status == 200
        assert body["bindings"] == [{"s": 5101, "o": 5102}]

    def test_compact(self, http_cluster):
        _, base = http_cluster
        status, body = _http(base + "/compact", {})
        assert status == 200
        assert "shards" in body

    def test_healthz_aggregates_shards(self, http_cluster):
        _, base = http_cluster
        status, body = _http(base + "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["num_shards"] == 2
        assert {"combined_epoch", "wal_lag", "num_triples"} <= set(body)
        assert len(body["shards"]) == 2

    def test_stats_and_metrics(self, http_cluster):
        _, base = http_cluster
        status, body = _http(base + "/stats")
        assert status == 200
        assert set(body) == {"cluster", "coordinator", "shards"}
        request = urllib.request.Request(base + "/metrics")
        with urllib.request.urlopen(request, timeout=30) as response:
            text = response.read().decode()
        assert "repro_index_triples" in text

    def test_dead_shard_maps_to_503(self, source_container,
                                    tmp_path_factory):
        directory = tmp_path_factory.mktemp("http-503")
        cluster = _Cluster(source_container, directory / "c", 2)
        server = CoordinatorServer(("127.0.0.1", 0), cluster.service,
                                   quiet=True)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        try:
            cluster.kill(1)
            status, body = _http(base + "/query",
                                 {"sparql": QUERIES[1], "cache": False})
            assert status == 503
            assert body["error"]["type"] == "ShardUnavailableError"
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
            cluster.close()


# --------------------------------------------------------------------------- #
# Distributed tracing: one stitched span tree per cluster query.
# --------------------------------------------------------------------------- #

def _span_names(span):
    yield span["name"]
    for child in span.get("children", ()):
        yield from _span_names(child)


def _find_span(span, name):
    if span["name"] == name:
        return span
    for child in span.get("children", ()):
        found = _find_span(child, name)
        if found is not None:
            return found
    return None


class TestClusterTracing:
    STAR = "SELECT ?b ?c WHERE { ?a 0 ?b . ?a 1 ?c }"

    def test_pushdown_profile_stitches_both_shards(self, source_container,
                                                   tmp_path):
        cluster = _Cluster(source_container, tmp_path / "c", 2)
        try:
            result = cluster.service.execute(self.STAR, profile=True,
                                             use_cache=False)
            profile = result.profile
            assert profile is not None
            assert len(profile["trace_id"]) == 32
            root = profile["root"]
            assert root["name"] == "coordinator"
            names = set(_span_names(root))
            assert {"plan", "execute", "shard:0", "shard:1"} <= names
            plan = _find_span(root, "plan")
            assert plan["attrs"]["route"] == "broadcast"
            assert plan["attrs"]["shards"] == 2
            for shard_id in (0, 1):
                shard_span = _find_span(root, f"shard:{shard_id}")
                # The shard's own span tree is grafted under the RPC span:
                # its engine root, then stage spans, then operator spans.
                grafted = _find_span(shard_span, "query")
                assert grafted is not None
                execute = _find_span(grafted, "execute")
                assert execute is not None and execute["children"]
                operator = execute["children"][0]
                assert operator["name"].split(":")[0] in ("pattern", "var")
                # The graft preserves the parent/child link: the shard ran
                # under the coordinator's trace, not a fresh one.
                assert grafted["parent_span_id"] == shard_span["span_id"]
        finally:
            cluster.close()

    def test_coordinator_side_join_still_profiles(self, source_container,
                                                  tmp_path):
        cluster = _Cluster(source_container, tmp_path / "c", 2)
        try:
            # A path join is not subject-star pushdownable: it executes on
            # the coordinator over the scatter-gather index, so the span
            # tree is the single-box shape under the coordinator's trace.
            result = cluster.service.execute(QUERIES[2], profile=True,
                                             use_cache=False)
            root = result.profile["root"]
            assert root["name"] == "query"
            # The coordinator parses before delegating, so the tree starts
            # at the plan stage (no parse span for a pre-parsed query).
            assert {"plan", "execute"} <= set(_span_names(root))
        finally:
            cluster.close()

    def test_best_effort_drop_is_recorded_in_profile(self, source_container,
                                                     tmp_path):
        cluster = _Cluster(source_container, tmp_path / "c", 2,
                           best_effort=True)
        try:
            cluster.kill(1)
            result = cluster.service.execute(self.STAR, profile=True,
                                             use_cache=False)
            assert result.statistics["incomplete"] is True
            shard_span = _find_span(result.profile["root"], "shard:1")
            assert shard_span["attrs"]["dropped"] is True
            assert shard_span["attrs"]["error"]
        finally:
            cluster.close()

    def test_profile_does_not_change_cluster_results(self, source_container,
                                                     tmp_path):
        cluster = _Cluster(source_container, tmp_path / "c", 2)
        try:
            for query in QUERIES:
                plain = cluster.service.execute(query, use_cache=False)
                profiled = cluster.service.execute(query, profile=True,
                                                   use_cache=False)
                assert profiled.bindings == plain.bindings
        finally:
            cluster.close()

    def test_http_profile_round_trip(self, http_cluster):
        _, base = http_cluster
        status, body = _http(base + "/query",
                             {"sparql": self.STAR, "profile": True,
                              "cache": False})
        assert status == 200
        profile = body["profile"]
        names = set(_span_names(profile["root"]))
        assert {"shard:0", "shard:1"} <= names
        # One trace id covers the coordinator and every grafted shard span.
        assert len(profile["trace_id"]) == 32

    def test_coordinator_slow_log_records_stitched_profile(
            self, source_container, tmp_path):
        slow_path = tmp_path / "slow.jsonl"
        cluster = _Cluster(source_container, tmp_path / "c", 2,
                           slow_log=str(slow_path), slow_ms=0.0)
        try:
            cluster.service.execute(self.STAR, use_cache=False)
        finally:
            cluster.close()
        entries = [json.loads(line)
                   for line in slow_path.read_text().splitlines()]
        assert entries
        names = set(_span_names(entries[0]["profile"]["root"]))
        assert {"shard:0", "shard:1"} <= names
