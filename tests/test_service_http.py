"""Tests for the HTTP front-end: endpoints, error mapping, concurrency.

One threaded server (bound to an ephemeral port) is shared by the whole
module; every test talks real HTTP through ``urllib`` — no handler mocking.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.builder import build_index
from repro.rdf.dictionary import RdfDictionary
from repro.service import QueryService, build_server

KNOWS = "<http://example.org/knows>"
LIKES = "<http://example.org/likes>"


def _person(name):
    return f"<http://example.org/{name}>"


TERM_TRIPLES = [
    (_person("alice"), KNOWS, _person("bob")),
    (_person("alice"), KNOWS, _person("carol")),
    (_person("bob"), KNOWS, _person("carol")),
    (_person("bob"), KNOWS, _person("dave")),
    (_person("carol"), KNOWS, _person("dave")),
    (_person("alice"), LIKES, _person("dave")),
]


@pytest.fixture(scope="module")
def server():
    dictionary, store = RdfDictionary.from_term_triples(TERM_TRIPLES)
    service = QueryService(build_index(store, "2tp"), dictionary=dictionary)
    instance = build_server(service, host="127.0.0.1", port=0, quiet=True)
    thread = threading.Thread(target=instance.serve_forever, daemon=True)
    thread.start()
    yield instance
    instance.shutdown()
    instance.server_close()
    thread.join(timeout=5)


@pytest.fixture(scope="module")
def base_url(server):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}"


def _get(url):
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _post(url, body):
    data = json.dumps(body).encode("utf-8") if isinstance(body, dict) else body
    request = urllib.request.Request(url + "/query", data=data, method="POST",
                                     headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestProbes:
    def test_healthz(self, base_url):
        status, body = _get(base_url + "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["num_triples"] == len(TERM_TRIPLES)

    def test_healthz_reports_epoch_and_lag(self, base_url):
        status, body = _get(base_url + "/healthz")
        assert status == 200
        # Uniform probe contract across single box, pool workers and
        # cluster shards: a follower's combined (generation, epoch) point
        # plus how far its view trails the published WAL.
        assert body["combined_epoch"] == 0
        assert body["wal_lag"] == 0

    def test_healthz_health_extra_hook(self):
        dictionary, store = RdfDictionary.from_term_triples(TERM_TRIPLES)
        service = QueryService(build_index(store, "2tp"),
                               dictionary=dictionary)
        instance = build_server(
            service, host="127.0.0.1", port=0, quiet=True,
            health_extra=lambda: {"combined_epoch": 7, "wal_lag": 3})
        thread = threading.Thread(target=instance.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = instance.server_address[:2]
            status, body = _get(f"http://{host}:{port}/healthz")
            assert status == 200
            assert body["combined_epoch"] == 7
            assert body["wal_lag"] == 3
        finally:
            instance.shutdown()
            instance.server_close()
            thread.join(timeout=5)

    def test_healthz_degrades_when_health_extra_fails(self):
        dictionary, store = RdfDictionary.from_term_triples(TERM_TRIPLES)
        service = QueryService(build_index(store, "2tp"),
                               dictionary=dictionary)

        def broken():
            raise RuntimeError("follower is wedged")

        instance = build_server(service, host="127.0.0.1", port=0,
                                quiet=True, health_extra=broken)
        thread = threading.Thread(target=instance.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = instance.server_address[:2]
            status, body = _get(f"http://{host}:{port}/healthz")
            assert status == 200
            assert body["status"] == "degraded"
        finally:
            instance.shutdown()
            instance.server_close()
            thread.join(timeout=5)

    def test_stats_shape(self, base_url):
        status, body = _get(base_url + "/stats")
        assert status == 200
        assert body["index"]["num_triples"] == len(TERM_TRIPLES)
        for section in ("result_cache", "plan_cache", "latency_ms",
                        "requests"):
            assert section in body
        assert 0.0 <= body["result_cache"]["hit_rate"] <= 1.0

    def test_unknown_path_is_404(self, base_url):
        status, body = _get(base_url + "/nope")
        assert status == 404
        assert body["error"]["type"] == "NotFound"

    def test_get_query_is_405(self, base_url):
        status, body = _get(base_url + "/query")
        assert status == 405


class TestQueryEndpoint:
    def test_sparql_query(self, base_url):
        status, body = _post(base_url, {
            "sparql": f"SELECT ?who WHERE {{ {_person('alice')} {KNOWS} ?who }}"})
        assert status == 200
        assert body["count"] == 2
        assert body["variables"] == ["who"]
        assert body["cached"] is False
        assert body["statistics"]["patterns_executed"] == 1

    def test_repeat_query_reports_cached(self, base_url):
        request = {"sparql": f"SELECT ?a ?b WHERE {{ ?a {LIKES} ?b }}"}
        _post(base_url, request)
        status, body = _post(base_url, request)
        assert status == 200
        assert body["cached"] is True
        assert body["count"] == 1

    def test_pagination(self, base_url):
        request = {"sparql": f"SELECT ?a ?b WHERE {{ ?a {KNOWS} ?b }}",
                   "limit": 3}
        status, first = _post(base_url, request)
        assert status == 200
        assert first["count"] == 3
        assert first["has_more"] is True
        status, rest = _post(base_url, dict(request, offset=3))
        assert rest["count"] == 2
        assert rest["has_more"] is False

    def test_pattern_query_with_decode(self, base_url, server):
        knows_id = server.service.dictionary.predicates.id_of(KNOWS)
        status, body = _post(base_url, {"pattern": [None, knows_id, None]})
        assert status == 200
        assert body["count"] == 5
        assert all(isinstance(term, int) for term in body["triples"][0])
        status, decoded = _post(base_url, {"pattern": [None, knows_id, None],
                                           "decode": True})
        assert decoded["triples"][0][1] == KNOWS

    def test_batch_mixes_successes_and_errors(self, base_url):
        status, body = _post(base_url, {"batch": [
            {"sparql": f"SELECT ?who WHERE {{ {_person('bob')} {KNOWS} ?who }}"},
            {"sparql": "SELECT nonsense"},
            {"pattern": [None, None, None], "limit": 2},
        ]})
        assert status == 200
        assert body["count"] == 3
        assert body["results"][0]["count"] == 2
        assert body["results"][1]["error"]["type"] == "ParseError"
        assert body["results"][1]["error"]["status"] == 400
        assert body["results"][2]["count"] == 2


class TestErrorPaths:
    def test_bad_sparql_is_400(self, base_url):
        status, body = _post(base_url, {"sparql": "this is not sparql"})
        assert status == 400
        assert body["error"]["type"] == "ParseError"

    def test_unknown_term_is_400(self, base_url):
        status, body = _post(base_url, {
            "sparql": f"SELECT ?x WHERE {{ <http://example.org/nobody> {KNOWS} ?x }}"})
        assert status == 400
        assert body["error"]["type"] == "DictionaryError"
        assert "unknown term" in body["error"]["message"]

    def test_timeout_is_408(self, base_url):
        status, body = _post(base_url, {
            "sparql": f"SELECT ?a ?b ?c WHERE {{ ?a {KNOWS} ?b . ?b {KNOWS} ?c }}",
            "timeout": 1e-9, "cache": False})
        assert status == 408
        assert body["error"]["type"] == "QueryTimeoutError"

    def test_invalid_json_body_is_400(self, base_url):
        status, body = _post(base_url, b"{not json")
        assert status == 400
        assert body["error"]["type"] == "ServiceError"

    def test_missing_query_field_is_400(self, base_url):
        status, body = _post(base_url, {"limit": 5})
        assert status == 400
        assert "'sparql' or a 'pattern'" in body["error"]["message"]

    def test_unknown_field_is_400(self, base_url):
        status, body = _post(base_url, {"sparql": "SELECT ?x WHERE { ?x 0 ?y }",
                                        "sparkle": True})
        assert status == 400
        assert "sparkle" in body["error"]["message"]

    def test_malformed_pattern_is_400(self, base_url):
        status, body = _post(base_url, {"pattern": [1, "two", 3]})
        assert status == 400
        assert body["error"]["type"] == "ServiceError"

    def test_negative_limit_is_400(self, base_url):
        status, body = _post(base_url, {"pattern": [None, None, None],
                                        "limit": -1})
        assert status == 400
        assert "limit" in body["error"]["message"]

    def test_negative_offset_is_400(self, base_url):
        status, body = _post(base_url, {"pattern": [None, None, None],
                                        "offset": -3})
        assert status == 400
        assert "offset" in body["error"]["message"]

    def test_boolean_limit_is_400(self, base_url):
        # bool subclasses int; it must not silently mean limit=1.
        status, body = _post(base_url, {"pattern": [None, None, None],
                                        "limit": True})
        assert status == 400
        assert "limit" in body["error"]["message"]

    @pytest.mark.parametrize("timeout", [0, 0.0, -1, -0.5, "fast", False])
    def test_nonpositive_or_nonnumeric_timeout_is_400(self, base_url, timeout):
        status, body = _post(base_url, {
            "sparql": "SELECT ?x WHERE { ?x 0 ?y }", "timeout": timeout})
        assert status == 400
        assert "timeout" in body["error"]["message"]


class TestContentLength:
    """Raw-socket cases urllib cannot produce: absent/garbled framing used
    to fall through ``int()`` and surface as an opaque 500."""

    def _raw(self, server, request_bytes):
        import socket

        host, port = server.server_address[:2]
        with socket.create_connection((host, port), timeout=10) as conn:
            conn.sendall(request_bytes)
            response = b""
            while b"\r\n\r\n" not in response:
                chunk = conn.recv(65536)
                if not chunk:
                    break
                response += chunk
            # The body may arrive after the header chunk; read until EOF
            # (these responses all close the connection).
            while True:
                chunk = conn.recv(65536)
                if not chunk:
                    break
                response += chunk
        head, _, body = response.partition(b"\r\n\r\n")
        status = int(head.split(None, 2)[1])
        return status, json.loads(body) if body else {}

    def test_missing_content_length_is_411(self, server):
        status, body = self._raw(
            server,
            b"POST /query HTTP/1.1\r\nHost: x\r\n\r\n")
        assert status == 411
        assert body["error"]["type"] == "LengthRequired"

    def test_malformed_content_length_is_400(self, server):
        status, body = self._raw(
            server,
            b"POST /query HTTP/1.1\r\nHost: x\r\n"
            b"Content-Length: banana\r\n\r\n")
        assert status == 400
        assert body["error"]["type"] == "BadRequest"

    def test_negative_content_length_is_400(self, server):
        status, body = self._raw(
            server,
            b"POST /query HTTP/1.1\r\nHost: x\r\n"
            b"Content-Length: -5\r\n\r\n")
        assert status == 400
        assert body["error"]["type"] == "BadRequest"


class TestConcurrentClients:
    def test_parallel_posts_all_answered_consistently(self, base_url):
        request = {"sparql": f"SELECT ?a ?b WHERE {{ ?a {KNOWS} ?b }}"}
        results = []
        errors = []

        def client():
            try:
                for _ in range(10):
                    status, body = _post(base_url, request)
                    results.append((status, body["count"]))
            except Exception as error:  # pragma: no cover - diagnostic aid
                errors.append(error)

        threads = [threading.Thread(target=client) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert errors == []
        assert len(results) == 80
        assert set(results) == {(200, 5)}


class TestBodySizeLimit:
    def test_oversized_body_rejected_with_413(self, base_url):
        import urllib.error
        import urllib.request

        from repro.service.http import MAX_BODY_BYTES

        request = urllib.request.Request(
            base_url + "/query", data=b"x",
            headers={"Content-Length": str(MAX_BODY_BYTES + 1)},
            method="POST")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 413
        body = json.loads(excinfo.value.read())
        assert body["error"]["type"] == "PayloadTooLarge"


def _post_path(url, path, body):
    data = json.dumps(body).encode("utf-8")
    request = urllib.request.Request(url + path, data=data, method="POST",
                                     headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


@pytest.fixture()
def writable_url():
    """A fresh writable server per test (updates mutate state)."""
    from repro.dynamic import DynamicIndex

    dictionary, store = RdfDictionary.from_term_triples(TERM_TRIPLES)
    index = DynamicIndex(build_index(store, "2tp"))
    service = QueryService(index, dictionary=dictionary)
    instance = build_server(service, host="127.0.0.1", port=0, quiet=True)
    thread = threading.Thread(target=instance.serve_forever, daemon=True)
    thread.start()
    host, port = instance.server_address[:2]
    yield f"http://{host}:{port}"
    instance.shutdown()
    instance.server_close()
    thread.join(timeout=5)


class TestUpdateEndpoint:
    def test_insert_query_compact_requery(self, writable_url):
        """The serving-loop acceptance flow, over real HTTP."""
        status, before = _post_path(writable_url, "/query",
                                    {"pattern": [None, None, None]})
        assert status == 200
        status, update = _post_path(
            writable_url, "/update",
            {"insert": [[90, 0, 91], [91, 0, 92]], "delete": [[0, 0, 1]]})
        assert status == 200
        assert update["inserted"] == 2 and update["deleted"] == 1
        # insert + delete land as ONE atomic batch: a single epoch bump.
        assert update["epoch"] == 1 and update["compacted"] is False
        status, merged = _post_path(writable_url, "/query",
                                    {"pattern": [None, None, None]})
        assert merged["count"] == before["count"] + 1
        status, compacted = _post_path(writable_url, "/compact", {})
        assert status == 200
        assert compacted["compacted"] is True
        assert compacted["absorbed_inserts"] == 2
        status, after = _post_path(writable_url, "/query",
                                   {"pattern": [None, None, None]})
        assert after["count"] == merged["count"]
        assert after["triples"] == merged["triples"]

    def test_stats_expose_delta_and_epoch_gauges(self, writable_url):
        _post_path(writable_url, "/update", {"insert": [[80, 1, 81]]})
        status, stats = _get(writable_url + "/stats")
        assert status == 200
        assert stats["index"]["writable"] is True
        assert stats["index"]["epoch"] == 1
        assert stats["updates"]["delta_inserted"] == 1
        assert stats["updates"]["applied"] == 1

    def test_malformed_updates_are_400(self, writable_url):
        # Shape errors raise ServiceError at the HTTP layer; component
        # errors raise UpdateError from the one shared validator.  Either
        # way: structured 400, nothing applied.
        for body in ({}, {"insert": "nope"}, {"insert": [[1, 2]]},
                     {"insert": [[1, 2, -3]]}, {"insert": [[1, 2, 2**63]]},
                     {"insert": [], "bogus": 1}):
            status, response = _post_path(writable_url, "/update", body)
            assert status == 400, body
            assert response["error"]["type"] in ("ServiceError",
                                                 "UpdateError")
        status, q = _post_path(writable_url, "/query",
                               {"pattern": [None, None, None]})
        assert q["count"] == len(TERM_TRIPLES)

    def test_compact_rejects_a_body(self, writable_url):
        status, response = _post_path(writable_url, "/compact",
                                      {"unexpected": True})
        assert status == 400
        assert "empty body" in response["error"]["message"]

    def test_read_only_server_rejects_updates(self, base_url):
        status, response = _post_path(base_url, "/update",
                                      {"insert": [[1, 1, 1]]})
        assert status == 400
        assert "read-only" in response["error"]["message"]
