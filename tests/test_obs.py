"""Tests for the observability layer: spans, slow-query log, structured
logs, percentiles, the ``profile`` request knob and the metrics families
it feeds.

Three layers:

* pure-unit tests for :mod:`repro.obs` (span trees, trace-context codec,
  slow-log atomicity and truncation, structured log formats, the explain
  renderer);
* :class:`QueryService`-level tests that profiling yields the documented
  span tree — and, property-tested across both engines, all four layouts
  and a delta overlay, never changes a query's results or their order;
* HTTP-level tests for the ``"profile": true`` knob, the ``X-Trace-Id``
  header and the Prometheus exposition (content type and field-set parity
  between a single-box block and a pool-sized block).
"""

import io
import json
import logging
import threading
import urllib.request

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.builder import build_index
from repro.dynamic import DynamicIndex
from repro.obs import (
    OperatorCounters,
    QueryProfile,
    SlowQueryLog,
    Span,
    StructuredLogger,
    decode_trace_context,
    encode_trace_context,
    new_span_id,
    new_trace_id,
    render_profile,
)
from repro.obs.slowlog import ATOMIC_LINE_BYTES
from repro.rdf.triples import TripleStore
from repro.service import MetricsBlock, QueryService, build_server
from repro.service.engine import _percentile, latency_report
from repro.service.metrics import render_prometheus

KNOWS, WORKS_FOR, LIKES = 0, 1, 2

TRIPLES = sorted(
    {(i, KNOWS, (i + 1) % 24) for i in range(24)}
    | {(i, KNOWS, (i + 5) % 24) for i in range(24)}
    | {(i, WORKS_FOR, 100 + i % 3) for i in range(24)}
    | {(i, LIKES, 200 + i % 7) for i in range(0, 24, 2)}
)

JOIN_QUERY = "SELECT ?x ?y ?c WHERE { ?x 0 ?y . ?y 1 ?c }"
TRIANGLE_QUERY = "SELECT ?x ?y ?z WHERE { ?x 0 ?y . ?y 0 ?z . ?x 0 ?z }"


@pytest.fixture(scope="module")
def store():
    return TripleStore.from_triples(TRIPLES)


@pytest.fixture(scope="module")
def index(store):
    return build_index(store, "2tp")


# --------------------------------------------------------------------------- #
# Span trees and the trace-context codec.
# --------------------------------------------------------------------------- #

class TestSpans:
    def test_ids_are_lowercase_hex(self):
        trace_id, span_id = new_trace_id(), new_span_id()
        assert len(trace_id) == 32 and int(trace_id, 16) >= 0
        assert len(span_id) == 16 and int(span_id, 16) >= 0
        assert trace_id == trace_id.lower()
        assert new_trace_id() != trace_id

    def test_json_round_trip(self):
        profile = QueryProfile(name="query")
        with profile.span("execute") as execute:
            execute.attrs["engine"] = "wcoj"
            child = execute.child("var:?x")
            child.counters["seeks"] = 3
            child.finish()
        profile.finish()
        doc = profile.to_json()
        assert set(doc) == {"trace_id", "root"}
        rebuilt = QueryProfile.from_json(doc)
        assert rebuilt.to_json() == doc
        names = [span.name for span in rebuilt.root.walk()]
        assert names == ["query", "execute", "var:?x"]

    def test_parent_span_ids_link_the_tree(self):
        profile = QueryProfile(name="query")
        span = profile.span("plan")
        span.finish()
        assert span.parent_span_id == profile.root.span_id

    def test_finish_is_idempotent(self):
        span = Span("s")
        span.finish()
        first = span.elapsed_seconds
        span.finish()
        assert span.elapsed_seconds == first

    def test_codec_round_trip(self):
        trace_id, span_id = new_trace_id(), new_span_id()
        context = encode_trace_context(trace_id, span_id)
        assert decode_trace_context(context) == (trace_id, span_id)

    @pytest.mark.parametrize("payload", [
        None, "xx", 7, [], {},
        {"trace_id": "ZZZZ"},                 # non-hex
        {"trace_id": 123},                    # wrong type
        {"trace_id": "ab"},                   # too short
        {"trace_id": "a" * 65},               # too long
        {"parent_span_id": "g" * 16},         # non-hex parent
    ])
    def test_codec_tolerates_malformed_input(self, payload):
        trace_id, parent = decode_trace_context(payload)
        if isinstance(payload, dict) and "trace_id" not in payload:
            pass  # parent-only payloads: trace id absent, parent invalid
        assert trace_id is None
        assert parent is None

    def test_encode_drops_invalid_ids(self):
        assert encode_trace_context("not hex", "also bad") == {}

    def test_operator_counters_attach_only_nonzero(self):
        counters = OperatorCounters("?x", estimate=12.0)
        counters.visits = 2
        counters.bindings = 5
        root = Span("execute")
        span = counters.attach(root, "var")
        assert span.name == "var:?x"
        assert span.counters == {"visits": 2, "bindings": 5}
        assert span.attrs["estimated"] == 12.0
        assert span.attrs["actual"] == 5
        assert span.elapsed_seconds == 0.0


# --------------------------------------------------------------------------- #
# Slow-query log.
# --------------------------------------------------------------------------- #

class TestSlowQueryLog:
    def test_records_are_one_json_line_each(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        log = SlowQueryLog(str(path), threshold_ms=100.0)
        assert log.should_log(0.2)
        assert not log.should_log(0.05)
        log.record({"query": "SELECT", "elapsed_ms": 200.0})
        log.record({"query": "SELECT 2", "elapsed_ms": 300.0})
        log.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2 == log.records_written
        for line in lines:
            entry = json.loads(line)
            assert "ts" in entry and "pid" in entry

    def test_lines_stay_within_the_atomic_bound(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        log = SlowQueryLog(str(path), threshold_ms=0.0)
        log.record({
            "query": "SELECT " + "x" * 10_000,
            "profile": {"root": {"name": "q", "attrs": {"x": "y" * 20_000}}},
        })
        log.close()
        (line,) = path.read_text().splitlines()
        assert len(line.encode("utf-8")) + 1 <= ATOMIC_LINE_BYTES
        entry = json.loads(line)
        # The cascade drops the profile body first (keeping only the trace
        # id for correlation), then truncates the query text.
        assert set(entry["profile"]) == {"trace_id"}
        assert len(entry["query"]) <= 512
        assert entry["truncated"] is True

    def test_write_failures_never_raise(self, tmp_path):
        log = SlowQueryLog(str(tmp_path / "missing" / "slow.jsonl"),
                           threshold_ms=0.0)
        log.record({"query": "SELECT"})  # ENOENT swallowed
        assert log.records_written == 0
        log.close()


# --------------------------------------------------------------------------- #
# Structured logs.
# --------------------------------------------------------------------------- #

class TestStructuredLogs:
    def _capture(self, log_format):
        stream = io.StringIO()
        logger = StructuredLogger("testsub", log_format, stream=stream)
        return logger, stream

    def test_json_lines_parse(self):
        logger, stream = self._capture("json")
        logger.info("access", method="POST", path="/query", status=200,
                    trace_id="ab" * 16, skipped=None)
        entry = json.loads(stream.getvalue())
        assert entry["event"] == "access"
        assert entry["level"] == "info"
        assert entry["logger"] == "repro.testsub"
        assert entry["status"] == 200
        assert "skipped" not in entry  # None fields are dropped

    def test_text_lines_quote_awkward_values(self):
        logger, stream = self._capture("text")
        logger.warning("http", message="bad request syntax")
        line = stream.getvalue().strip()
        assert "repro.testsub http" in line
        assert 'message="bad request syntax"' in line

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError):
            StructuredLogger("x", "xml")

    def test_logging_integration_level(self):
        logger, stream = self._capture("json")
        assert logging.getLogger("repro.testsub").propagate is False
        logger.error("boom", reason="test")
        assert json.loads(stream.getvalue())["level"] == "error"


# --------------------------------------------------------------------------- #
# Percentiles: p50 <= p90 <= p99 for every window.
# --------------------------------------------------------------------------- #

class TestPercentiles:
    @given(st.lists(st.floats(min_value=0.0, max_value=10.0), max_size=40))
    @settings(max_examples=200, deadline=None)
    def test_percentiles_are_monotone(self, latencies):
        report = latency_report(latencies)
        assert report["p50"] <= report["p90"] <= report["p99"]
        assert report["p99"] <= report["max"] or not latencies
        assert report["window"] == len(latencies)

    def test_single_sample_window(self):
        report = latency_report([0.002])
        assert report["p50"] == report["p90"] == report["p99"] == 2.0
        assert report["max"] == 2.0

    def test_empty_window(self):
        assert _percentile([], 0.5) == 0.0
        report = latency_report([])
        assert report["mean"] == report["p99"] == report["max"] == 0.0

    def test_nearest_rank_values(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert _percentile(values, 0.50) == 2.0
        assert _percentile(values, 0.90) == 4.0
        assert _percentile(values, 1.00) == 4.0


# --------------------------------------------------------------------------- #
# Service-level profiling.
# --------------------------------------------------------------------------- #

class TestServiceProfile:
    def _service(self, index, **options):
        return QueryService(index, **options)

    def test_profile_off_by_default(self, index):
        result = self._service(index).execute(JOIN_QUERY)
        assert result.profile is None
        assert set(result.stages) == {"parse", "plan", "execute"}

    def test_profile_tree_shape_nested(self, index):
        result = self._service(index, engine="nested").execute(
            JOIN_QUERY, profile=True)
        profile = result.profile
        assert profile is not None
        root = profile["root"]
        assert root["attrs"]["engine"] == "nested"
        stages = [child["name"] for child in root["children"]]
        assert stages == ["parse", "plan", "execute"]
        execute = root["children"][-1]
        operators = [child["name"] for child in execute["children"]]
        assert operators == ["pattern:?x 0 ?y", "pattern:?y 1 ?c"]
        for operator in execute["children"]:
            assert operator["attrs"]["actual"] >= 0
            assert operator["attrs"]["estimated"] >= 0

    def test_profile_tree_shape_wcoj(self, index):
        result = self._service(index, engine="wcoj").execute(
            TRIANGLE_QUERY, profile=True)
        execute = result.profile["root"]["children"][-1]
        operators = [child["name"] for child in execute["children"]]
        assert sorted(operators) == ["var:?x", "var:?y", "var:?z"]
        assert execute["counters"]["seeks"] >= 1
        total_bindings = sum(child["counters"].get("bindings", 0)
                             for child in execute["children"])
        assert total_bindings >= result.count

    def test_profile_actuals_match_result_count(self, index):
        result = self._service(index, engine="nested").execute(
            JOIN_QUERY, profile=True)
        last = result.profile["root"]["children"][-1]["children"][-1]
        assert last["attrs"]["actual"] == len(result.bindings)

    def test_cache_hit_profile_is_marked(self, index):
        service = self._service(index)
        service.execute(JOIN_QUERY, profile=True)
        warm = service.execute(JOIN_QUERY, profile=True)
        assert warm.cached is True
        execute = [child for child in warm.profile["root"]["children"]
                   if child["name"] == "execute"][0]
        assert execute["attrs"]["cache_hit"] is True

    def test_trace_context_is_honored(self, index):
        trace_id = new_trace_id()
        result = self._service(index).execute(
            JOIN_QUERY, profile=True,
            trace={"trace_id": trace_id, "parent_span_id": new_span_id()})
        assert result.profile["trace_id"] == trace_id

    def test_malformed_trace_context_mints_fresh(self, index):
        result = self._service(index).execute(
            JOIN_QUERY, profile=True, trace={"trace_id": "nope"})
        assert len(result.profile["trace_id"]) == 32

    def test_statistics_count_profile_requests(self, index):
        service = self._service(index)
        service.execute(JOIN_QUERY, profile=True)
        service.execute(JOIN_QUERY)
        report = service.statistics()
        assert report["requests"]["profile_requests"] == 1
        assert report["requests"]["slow_queries"] == 0
        assert report["latency_ms"]["p50"] <= report["latency_ms"]["p99"]

    def test_slow_log_records_offending_queries(self, index, tmp_path):
        path = tmp_path / "slow.jsonl"
        service = self._service(index, slow_log=str(path), slow_ms=0.0)
        service.execute(JOIN_QUERY)          # every query is "slow" at 0ms
        service.execute(JOIN_QUERY)          # cache hit logs too
        service.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        entries = [json.loads(line) for line in lines]
        for entry in entries:
            assert entry["query"] == JOIN_QUERY
            assert entry["elapsed_ms"] >= 0.0
            assert entry["profile"]["root"]["name"] == "query"
        assert entries[1]["cached"] is True
        assert service.statistics()["requests"]["slow_queries"] == 2

    def test_slow_log_does_not_leak_profile_to_caller(self, index, tmp_path):
        service = self._service(index, slow_log=str(tmp_path / "s.jsonl"),
                                slow_ms=0.0)
        result = service.execute(JOIN_QUERY)
        assert result.profile is None        # armed log != requested profile
        service.close()

    def test_failed_query_is_slow_logged(self, index, tmp_path):
        from repro.errors import QueryTimeoutError
        path = tmp_path / "slow.jsonl"
        service = self._service(index, slow_log=str(path), slow_ms=0.0)
        with pytest.raises(QueryTimeoutError):
            service.execute(JOIN_QUERY, timeout=1e-9)
        service.close()
        entries = [json.loads(line) for line in path.read_text().splitlines()]
        assert any(entry.get("error") == "QueryTimeoutError"
                   for entry in entries)


# --------------------------------------------------------------------------- #
# Profiling never changes results: both engines x all layouts x overlay.
# --------------------------------------------------------------------------- #

@st.composite
def _graphs(draw):
    edges = draw(st.lists(
        st.tuples(st.integers(0, 12), st.integers(0, 2), st.integers(0, 12)),
        min_size=1, max_size=60))
    return sorted(set(edges))


class TestProfileInvariance:
    @given(triples=_graphs(), layout=st.sampled_from(("3t", "cc", "2tp", "2to")),
           engine=st.sampled_from(("nested", "wcoj")),
           overlay=st.booleans())
    @settings(max_examples=25, deadline=None)
    def test_profile_never_changes_results(self, triples, layout, engine,
                                           overlay):
        index = build_index(TripleStore.from_triples(triples), layout)
        if overlay:
            index = DynamicIndex(index)
            index.insert([(90, 0, 91), (91, 1, 92)])
            index.delete(triples[:1])
        service = QueryService(index, result_cache_size=0, engine=engine)
        for query in (JOIN_QUERY, TRIANGLE_QUERY):
            plain = service.execute(query)
            profiled = service.execute(query, profile=True)
            assert profiled.bindings == plain.bindings
            assert profiled.variables == plain.variables
            assert profiled.statistics["patterns_executed"] == \
                plain.statistics["patterns_executed"]
            assert profiled.profile is not None


# --------------------------------------------------------------------------- #
# Explain renderer.
# --------------------------------------------------------------------------- #

class TestExplainRender:
    def test_renders_tree_with_est_and_act(self, index):
        result = QueryService(index, engine="wcoj").execute(
            JOIN_QUERY, profile=True)
        text = render_profile(result.profile)
        assert text.startswith("trace ")
        assert "├─ " in text and "└─ " in text
        assert "est=" in text and "act=" in text
        assert "var:?x" in text or "var:?y" in text

    def test_handles_missing_profile(self):
        assert render_profile(None) == "(no profile)"
        assert render_profile("garbage") == "(no profile)"


# --------------------------------------------------------------------------- #
# HTTP: the profile knob, trace header, metrics exposition.
# --------------------------------------------------------------------------- #

def _post(url, body, headers=None):
    request = urllib.request.Request(
        url + "/query", data=json.dumps(body).encode("utf-8"), method="POST",
        headers={"Content-Type": "application/json", **(headers or {})})
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read()), \
                response.headers
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), error.headers


@pytest.fixture(scope="module")
def http_server(index):
    block = MetricsBlock(1)
    service = QueryService(index)
    server = build_server(service, host="127.0.0.1", port=0, quiet=True,
                          metrics=block.worker(0), metrics_block=block)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)
    block.close()


class TestHttpProfile:
    def test_profile_knob_returns_span_tree(self, http_server):
        status, body, headers = _post(http_server,
                                      {"sparql": JOIN_QUERY, "profile": True})
        assert status == 200
        assert body["profile"]["root"]["attrs"]["engine"]
        assert body["profile"]["trace_id"] == headers["X-Trace-Id"]

    def test_profile_defaults_off_the_wire(self, http_server):
        status, body, _ = _post(http_server, {"sparql": JOIN_QUERY})
        assert status == 200
        assert "profile" not in body

    def test_profile_must_be_boolean(self, http_server):
        status, body, _ = _post(http_server,
                                {"sparql": JOIN_QUERY, "profile": "yes"})
        assert status == 400
        assert body["error"]["type"] == "ServiceError"

    def test_profile_rejected_for_patterns(self, http_server):
        status, body, _ = _post(
            http_server, {"pattern": [None, 0, None], "profile": True})
        assert status == 400
        assert "SPARQL" in body["error"]["message"]

    def test_trace_id_header_round_trips(self, http_server):
        trace_id = new_trace_id()
        status, body, headers = _post(http_server,
                                      {"sparql": JOIN_QUERY, "profile": True},
                                      headers={"X-Trace-Id": trace_id})
        assert status == 200
        assert headers["X-Trace-Id"] == trace_id
        assert body["profile"]["trace_id"] == trace_id

    def test_invalid_trace_header_is_replaced(self, http_server):
        status, _, headers = _post(http_server, {"sparql": JOIN_QUERY},
                                   headers={"X-Trace-Id": "!!injection!!"})
        assert status == 200
        assert headers["X-Trace-Id"] != "!!injection!!"
        assert len(headers["X-Trace-Id"]) == 32

    def test_metrics_content_type_is_prometheus(self, http_server):
        request = urllib.request.Request(http_server + "/metrics")
        with urllib.request.urlopen(request, timeout=10) as response:
            assert response.headers["Content-Type"] == \
                "text/plain; version=0.0.4; charset=utf-8"
            text = response.read().decode("utf-8")
        assert "repro_profile_requests_total" in text
        assert "repro_slow_queries_total" in text
        assert 'repro_engine_seeks_total{engine="wcoj"}' in text
        assert "repro_plan_seconds_bucket" in text
        assert "repro_execute_seconds_count" in text
        assert "repro_serialize_seconds_sum" in text

    def test_stage_histograms_count_requests(self, http_server):
        def counts(text):
            return {line.split()[0]: float(line.split()[1])
                    for line in text.splitlines()
                    if line.startswith(("repro_plan_seconds_count",
                                        "repro_execute_seconds_count",
                                        "repro_serialize_seconds_count"))}
        with urllib.request.urlopen(http_server + "/metrics") as response:
            before = counts(response.read().decode("utf-8"))
        _post(http_server, {"sparql": JOIN_QUERY})
        with urllib.request.urlopen(http_server + "/metrics") as response:
            after = counts(response.read().decode("utf-8"))
        for name in before:
            assert after[name] == before[name] + 1

    def test_stats_reports_profile_counters(self, http_server):
        _post(http_server, {"sparql": JOIN_QUERY, "profile": True})
        with urllib.request.urlopen(http_server + "/stats") as response:
            report = json.loads(response.read())
        assert report["requests"]["profile_requests"] >= 1
        assert "slow_queries" in report["requests"]
        latency = report["latency_ms"]
        assert latency["p50"] <= latency["p90"] <= latency["p99"]


class TestMetricsParity:
    def test_field_sets_identical_across_block_sizes(self):
        single, pool = MetricsBlock(1), MetricsBlock(4)
        try:
            def families(block):
                names = set()
                for line in render_prometheus(block).splitlines():
                    if line and not line.startswith("#"):
                        names.add(line.split("{")[0].split(" ")[0])
                return names
            assert families(single) == families(pool)
        finally:
            single.close()
            pool.close()
