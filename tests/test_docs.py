"""The documentation must not rot: every fenced Python snippet in the
README and ``docs/*.md`` has to stay syntactically valid, and every
``repro.*`` dotted name the docs mention has to resolve against the live
package (module, or attribute of a module).  CI runs this as its docs
step, so a refactor that renames a documented module or function fails
the build instead of silently orphaning the spec.
"""

import importlib
import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
DOCUMENTS = sorted([ROOT / "README.md", *(ROOT / "docs").glob("*.md")])

_SNIPPET = re.compile(r"```python\n(.*?)```", re.DOTALL)
_DOTTED = re.compile(r"\brepro(?:\.[A-Za-z_][A-Za-z0-9_]*)+")


def _snippets():
    for document in DOCUMENTS:
        for i, match in enumerate(_SNIPPET.finditer(
                document.read_text(encoding="utf-8"))):
            yield pytest.param(match.group(1),
                               id=f"{document.name}-{i}")


def _dotted_names():
    names = set()
    for document in DOCUMENTS:
        text = document.read_text(encoding="utf-8")
        names.update(_DOTTED.findall(text))
    return sorted(names)


def test_documents_exist():
    assert any(d.name == "ARCHITECTURE.md" for d in DOCUMENTS)
    assert any(d.name == "STORAGE_FORMAT.md" for d in DOCUMENTS)


@pytest.mark.parametrize("snippet", _snippets())
def test_python_snippets_compile(snippet):
    compile(snippet, "<doc-snippet>", "exec")


@pytest.mark.parametrize("name", _dotted_names())
def test_dotted_references_resolve(name):
    parts = name.split(".")
    for split in range(len(parts), 0, -1):
        module_name = ".".join(parts[:split])
        try:
            target = importlib.import_module(module_name)
        except ImportError:
            continue
        for attribute in parts[split:]:
            assert hasattr(target, attribute), (
                f"{name}: {module_name} has no attribute {attribute!r}")
            target = getattr(target, attribute)
        return
    pytest.fail(f"{name}: no importable prefix")
