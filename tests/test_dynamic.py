"""Tests for the dynamic update subsystem.

Covers the delta store's set semantics and pattern lookups, the merged
overlay (``select`` and the seekable-cursor protocol) across all four index
layouts, WAL durability including a real SIGKILL crash-recovery run, the
container's ``delta`` section, and compaction equivalence.
"""

import os
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.core.builder import IndexBuilder
from repro.core.patterns import PatternKind, TriplePattern, reference_select
from repro.core.trie import ArrayCursor
from repro.dynamic import (
    DeltaState,
    DynamicIndex,
    MergedCursor,
    normalize_triple,
)
from repro.errors import StorageError, UpdateError
from repro.queries.planner import execute_bgp
from repro.queries.sparql import (
    BasicGraphPattern,
    SparqlQuery,
    TriplePatternTemplate,
)
from repro.rdf.triples import TripleStore
from repro.storage import file_info, load_index
from repro.storage.wal import WriteAheadLog

LAYOUTS = ("3t", "cc", "2tp", "2to")

BASE_TRIPLES = [
    (0, 0, 1), (0, 1, 2), (1, 0, 2), (1, 1, 0), (2, 0, 0),
    (2, 1, 1), (3, 0, 3), (3, 2, 1), (0, 2, 3),
]


def build_store():
    return TripleStore.from_triples(BASE_TRIPLES, densify=True)


def solution_bag(results):
    return sorted(tuple(sorted(binding.items())) for binding in results)


# --------------------------------------------------------------------------- #
# Delta state.
# --------------------------------------------------------------------------- #

class TestDeltaState:
    def test_normalize_triple_rejects_bad_shapes(self):
        for bad in ((1, 2), (1, 2, 3, 4), (1, 2, "x"), (1, 2, -1),
                    (1, 2, True), "abc", (1, 2, 3.5)):
            with pytest.raises(UpdateError):
                normalize_triple(bad)
        assert normalize_triple((1, 2, 3)) == (1, 2, 3)
        assert normalize_triple([4, 5, 6]) == (4, 5, 6)

    def test_insert_delete_set_semantics(self):
        base = IndexBuilder(build_store()).build("2tp")
        state = DeltaState.empty()
        # Inserting a base triple is a no-op; a fresh one applies.
        state, ni, nd = state.apply(base, inserts=[(0, 0, 1), (7, 0, 7)])
        assert (ni, nd) == (1, 0)
        assert state.inserted == {(7, 0, 7)}
        # Deleting a delta insert removes it without a tombstone; deleting
        # a base triple tombstones it; deleting nothing is a no-op.
        state, ni, nd = state.apply(
            base, deletes=[(7, 0, 7), (0, 0, 1), (9, 9, 9)])
        assert (ni, nd) == (0, 2)
        assert state.inserted == frozenset()
        assert state.deleted == {(0, 0, 1)}
        # Re-inserting a tombstoned base triple just drops the tombstone.
        state, ni, nd = state.apply(base, inserts=[(0, 0, 1)])
        assert (ni, nd) == (1, 0)
        assert not state

    def test_noop_apply_returns_same_state(self):
        base = IndexBuilder(build_store()).build("2tp")
        state = DeltaState.empty()
        same, ni, nd = state.apply(base, inserts=[(0, 0, 1)])
        assert same is state and ni == 0 and nd == 0

    @pytest.mark.parametrize("kind", PatternKind.all_kinds())
    def test_matching_agrees_with_reference_on_every_kind(self, kind):
        base = IndexBuilder(build_store()).build("2tp")
        inserts = [(5, 0, 1), (5, 1, 5), (0, 0, 5), (6, 2, 2), (1, 2, 1)]
        state, _, _ = DeltaState.empty().apply(base, inserts=inserts)
        for probe in inserts + [(0, 0, 1), (9, 9, 9)]:
            pattern = TriplePattern.from_triple_with_wildcards(probe, kind)
            assert (sorted(state.matching(pattern))
                    == reference_select(inserts, pattern))

    def test_candidates_are_sorted_distinct(self):
        base = IndexBuilder(build_store()).build("2tp")
        inserts = [(5, 0, 1), (5, 0, 3), (5, 1, 3), (6, 0, 2)]
        state, _, _ = DeltaState.empty().apply(base, inserts=inserts)
        assert state.candidates({0: 5}, 2) == [1, 3]
        assert state.candidates({0: 5, 1: 0}, 2) == [1, 3]
        assert state.candidates({}, 0) == [5, 6]
        assert state.candidates({2: 3}, 0) == [5]
        assert state.candidates({0: 9}, 1) == []

    def test_columns_round_trip(self):
        base = IndexBuilder(build_store()).build("2tp")
        state, _, _ = DeltaState.empty().apply(
            base, inserts=[(5, 0, 1), (6, 1, 2)], deletes=[(0, 0, 1)])
        restored = DeltaState.from_columns(state.to_columns())
        assert restored.inserted == state.inserted
        assert restored.deleted == state.deleted


# --------------------------------------------------------------------------- #
# Merged cursor.
# --------------------------------------------------------------------------- #

class TestMergedCursor:
    def drain(self, cursor):
        values = []
        while cursor.key is not None:
            values.append(cursor.key)
            cursor.advance()
        return values

    def test_union_deduplicates(self):
        cursor = MergedCursor(ArrayCursor([1, 3, 5, 7]), ArrayCursor([2, 3, 8]))
        assert self.drain(cursor) == [1, 2, 3, 5, 7, 8]

    def test_empty_sides(self):
        assert self.drain(MergedCursor(ArrayCursor([]), ArrayCursor([4]))) == [4]
        assert self.drain(MergedCursor(ArrayCursor([4]), ArrayCursor([]))) == [4]
        assert MergedCursor(ArrayCursor([]), ArrayCursor([])).key is None

    def test_remaining_block_unions_both_sides(self):
        cursor = MergedCursor(ArrayCursor([1, 3, 5]), ArrayCursor([2, 3, 8]))
        cursor.advance()
        assert cursor.remaining_block().tolist() == [2, 3, 5, 8]
        # Producing the block must not move the cursor.
        assert cursor.key == 2

    def test_no_block_when_a_side_cannot_produce_one(self):
        """A child without ``remaining_block`` (the predicate-filtered
        cursors) must leave the merged cursor block-less — the engines'
        ``getattr`` probe then routes to the scalar walk instead of
        crashing inside a union of a method that does not exist."""
        class ScalarOnly:
            def __init__(self, values):
                self._inner = ArrayCursor(values)

            @property
            def key(self):
                return self._inner.key

            def advance(self):
                self._inner.advance()

            def seek(self, value):
                self._inner.seek(value)

        cursor = MergedCursor(ScalarOnly([1, 4]), ArrayCursor([2, 4, 6]))
        assert getattr(cursor, "remaining_block", None) is None
        assert self.drain(cursor) == [1, 2, 4, 6]

    def test_seek(self):
        cursor = MergedCursor(ArrayCursor([1, 4, 9]), ArrayCursor([2, 6, 9]))
        cursor.seek(3)
        assert cursor.key == 4
        cursor.seek(5)
        assert cursor.key == 6
        cursor.seek(9)
        assert cursor.key == 9
        cursor.advance()
        assert cursor.key is None
        cursor.seek(100)  # exhausted cursors tolerate further seeks
        assert cursor.key is None


# --------------------------------------------------------------------------- #
# The overlay, across every layout.
# --------------------------------------------------------------------------- #

@pytest.mark.parametrize("layout", LAYOUTS)
class TestDynamicOverlay:
    def build(self, layout):
        store = build_store()
        return store, DynamicIndex(IndexBuilder(store).build(layout))

    def test_select_merges_and_filters(self, layout):
        store, dyn = self.build(layout)
        dyn.insert([(5, 0, 1), (0, 2, 0)])
        dyn.delete([(1, 0, 2), (3, 2, 1)])
        current = set(BASE_TRIPLES) - {(1, 0, 2), (3, 2, 1)}
        current |= {(5, 0, 1), (0, 2, 0)}
        for kind in PatternKind.all_kinds():
            for probe in sorted(current) + [(9, 9, 9)]:
                pattern = TriplePattern.from_triple_with_wildcards(probe, kind)
                assert (sorted(dyn.select(pattern))
                        == reference_select(current, pattern)), (kind, probe)
        assert dyn.num_triples == len(current)

    def test_contains_sees_the_merged_view(self, layout):
        _, dyn = self.build(layout)
        dyn.insert([(7, 1, 7)])
        dyn.delete([(0, 0, 1)])
        assert dyn.contains((7, 1, 7))
        assert not dyn.contains((0, 0, 1))
        assert dyn.contains((1, 0, 2))

    def test_engines_agree_under_delta(self, layout):
        _, dyn = self.build(layout)
        dyn.insert([(2, 0, 3), (3, 0, 0), (0, 0, 3)])
        dyn.delete([(2, 0, 0)])
        bgp = BasicGraphPattern([
            TriplePatternTemplate("?a", 0, "?b"),
            TriplePatternTemplate("?b", 0, "?c"),
        ])
        query = SparqlQuery(projection=bgp.variables(), bgp=bgp)
        nested, _ = execute_bgp(dyn, query, engine="nested")
        wcoj, statistics = execute_bgp(dyn, query, engine="wcoj")
        assert solution_bag(nested) == solution_bag(wcoj)
        assert statistics.engine == "wcoj"

    def test_seek_cursor_becomes_inexact_under_tombstones(self, layout):
        _, dyn = self.build(layout)
        native = dyn.seek_cursor({1: 0}, 0)
        if native is None:
            pytest.skip("layout serves this shape via materialisation")
        dyn.delete([(1, 0, 2)])
        demoted = dyn.seek_cursor({1: 0}, 0)
        assert demoted is not None
        _, exact = demoted
        assert exact is False

    def test_seek_cursor_union_includes_delta(self, layout):
        _, dyn = self.build(layout)
        dyn.insert([(11, 0, 1)])
        native = dyn.seek_cursor({1: 0}, 0)
        if native is None:
            pytest.skip("layout serves this shape via materialisation")
        cursor, _ = native
        values = []
        while cursor.key is not None:
            values.append(cursor.key)
            cursor.advance()
        assert 11 in values
        assert values == sorted(set(values))

    def test_compaction_preserves_solutions(self, layout):
        _, dyn = self.build(layout)
        dyn.insert([(4, 0, 4), (4, 0, 1), (0, 0, 4)])
        dyn.delete([(0, 0, 1), (3, 0, 3)])
        before = sorted(dyn.select((None, None, None)))
        bgp = BasicGraphPattern([
            TriplePatternTemplate("?a", 0, "?b"),
            TriplePatternTemplate("?b", 0, "?c"),
        ])
        query = SparqlQuery(projection=bgp.variables(), bgp=bgp)
        before_bag = solution_bag(execute_bgp(dyn, query, engine="wcoj")[0])
        result = dyn.compact()
        assert result.compacted
        assert result.layout == layout
        assert not dyn.delta
        assert sorted(dyn.select((None, None, None))) == before
        for engine in ("nested", "wcoj"):
            assert solution_bag(
                execute_bgp(dyn, query, engine=engine)[0]) == before_bag


class TestDynamicIndexLifecycle:
    def test_epoch_counts_effective_mutations(self):
        dyn = DynamicIndex(IndexBuilder(build_store()).build("2tp"))
        assert dyn.epoch == 0
        dyn.insert([(9, 0, 9)])
        assert dyn.epoch == 1
        dyn.insert([(9, 0, 9)])  # no-op batch: epoch unchanged
        assert dyn.epoch == 1
        dyn.delete([(9, 0, 9)])
        assert dyn.epoch == 2
        dyn.compact()  # empty delta: no-op
        assert dyn.epoch == 2

    def test_snapshot_isolation_across_mutations(self):
        dyn = DynamicIndex(IndexBuilder(build_store()).build("2tp"))
        snapshot = dyn.snapshot()
        dyn.insert([(9, 0, 9)])
        assert not snapshot.contains((9, 0, 9))
        assert dyn.contains((9, 0, 9))

    def test_compact_noop_and_empty_guard(self):
        dyn = DynamicIndex(IndexBuilder(build_store()).build("2tp"))
        assert dyn.compact().compacted is False
        dyn.delete(list(BASE_TRIPLES))
        assert dyn.num_triples == 0
        with pytest.raises(UpdateError, match="empty"):
            dyn.compact()

    def test_auto_compaction_ratio(self):
        dyn = DynamicIndex(IndexBuilder(build_store()).build("2tp"),
                           compaction_ratio=0.5)
        result = dyn.insert([(20 + i, 0, i) for i in range(6)])
        assert result.compaction is not None
        assert result.compaction.compacted
        assert not dyn.delta
        assert dyn.num_triples == len(BASE_TRIPLES) + 6

    def test_cannot_stack_dynamic_indexes(self):
        dyn = DynamicIndex(IndexBuilder(build_store()).build("2tp"))
        with pytest.raises(UpdateError):
            DynamicIndex(dyn)


# --------------------------------------------------------------------------- #
# Write-ahead log.
# --------------------------------------------------------------------------- #

class TestWriteAheadLog:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "log.wal"
        with WriteAheadLog(path) as wal:
            wal.append(inserts=[(1, 2, 3), (4, 5, 6)])
            wal.append(deletes=[(1, 2, 3)])
            wal.append(inserts=[(7, 7, 7)], deletes=[(4, 5, 6)])
            assert wal.num_records == 3
        with WriteAheadLog(path) as wal:
            assert list(wal.replay()) == [
                ([(1, 2, 3), (4, 5, 6)], []),
                ([], [(1, 2, 3)]),
                ([(7, 7, 7)], [(4, 5, 6)]),
            ]

    def test_mixed_batch_is_one_record(self, tmp_path):
        """Crash atomicity: inserts and their paired deletes share a record,
        so replay can never surface one half without the other."""
        path = tmp_path / "log.wal"
        with WriteAheadLog(path) as wal:
            wal.append(inserts=[(1, 0, 2)], deletes=[(3, 0, 4)])
            assert wal.num_records == 1
        # Truncate ANY amount off the tail: the whole batch disappears.
        with open(path, "r+b") as handle:
            handle.seek(0, os.SEEK_END)
            handle.truncate(handle.tell() - 1)
        with WriteAheadLog(path) as wal:
            assert list(wal.replay()) == []

    def test_torn_tail_is_discarded_and_log_stays_appendable(self, tmp_path):
        path = tmp_path / "log.wal"
        with WriteAheadLog(path) as wal:
            wal.append(inserts=[(1, 1, 1)])
            wal.append(inserts=[(2, 2, 2)])
        with open(path, "r+b") as handle:
            handle.seek(0, os.SEEK_END)
            handle.truncate(handle.tell() - 3)
        with WriteAheadLog(path) as wal:
            assert list(wal.replay()) == [([(1, 1, 1)], [])]
            wal.append(deletes=[(3, 3, 3)])
        with WriteAheadLog(path) as wal:
            assert list(wal.replay()) == [([(1, 1, 1)], []),
                                          ([], [(3, 3, 3)])]

    def test_corrupt_payload_stops_replay(self, tmp_path):
        path = tmp_path / "log.wal"
        with WriteAheadLog(path) as wal:
            wal.append(inserts=[(1, 1, 1)])
            end_of_first = wal.size_bytes()
            wal.append(inserts=[(2, 2, 2)])
        data = bytearray(path.read_bytes())
        data[end_of_first + 12] ^= 0xFF  # flip a byte inside record 2
        path.write_bytes(bytes(data))
        with WriteAheadLog(path) as wal:
            assert list(wal.replay()) == [([(1, 1, 1)], [])]

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "log.wal"
        path.write_bytes(b"NOTAWAL!" + b"\x00" * 16)
        with pytest.raises(StorageError, match="bad magic"):
            WriteAheadLog(path)

    def test_reset_drops_records(self, tmp_path):
        path = tmp_path / "log.wal"
        with WriteAheadLog(path) as wal:
            wal.append(inserts=[(1, 1, 1)])
            wal.reset()
            assert wal.num_records == 0
        with WriteAheadLog(path) as wal:
            assert list(wal.replay()) == []

    def test_replay_through_dynamic_index(self, tmp_path):
        base = IndexBuilder(build_store()).build("2tp")
        path = tmp_path / "log.wal"
        dyn = DynamicIndex.open(base, wal_path=path)
        dyn.insert([(9, 0, 9), (10, 1, 10)])
        dyn.delete([(0, 0, 1)])
        expected = sorted(dyn.select((None, None, None)))
        dyn.close()
        recovered = DynamicIndex.open(base, wal_path=path)
        assert sorted(recovered.select((None, None, None))) == expected
        recovered.close()


CRASH_SCRIPT = textwrap.dedent("""
    import os, signal, sys
    from repro.dynamic import DynamicIndex
    from repro.storage import load_index

    index_path, wal_path = sys.argv[1], sys.argv[2]
    dyn = DynamicIndex.open(load_index(index_path).index, wal_path=wal_path)
    dyn.insert([(101, 0, 102), (103, 1, 104)])
    dyn.delete([(0, 0, 1)])
    print("ACK", flush=True)
    os.kill(os.getpid(), signal.SIGKILL)  # no atexit, no flush, no close
""")


class TestCrashRecovery:
    def test_sigkill_after_ack_loses_nothing(self, tmp_path):
        """Acceptance: acknowledged inserts survive a hard process kill."""
        store = build_store()
        index_path = tmp_path / "base.ridx"
        IndexBuilder(store).build("2tp").save(index_path)
        wal_path = tmp_path / "crash.wal"
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.run(
            [sys.executable, "-c", CRASH_SCRIPT,
             str(index_path), str(wal_path)],
            capture_output=True, text=True, env=env, timeout=120)
        # The process must have ACKed the writes, then died by SIGKILL.
        assert "ACK" in process.stdout
        assert process.returncode == -signal.SIGKILL
        recovered = DynamicIndex.open(load_index(index_path).index,
                                      wal_path=wal_path)
        assert recovered.contains((101, 0, 102))
        assert recovered.contains((103, 1, 104))
        assert not recovered.contains((0, 0, 1))
        assert recovered.delta.num_inserted == 2
        assert recovered.delta.num_deleted == 1
        recovered.close()


# --------------------------------------------------------------------------- #
# Container integration (the ``delta`` section).
# --------------------------------------------------------------------------- #

class TestDeltaPersistence:
    def test_delta_section_round_trip(self, tmp_path):
        path = tmp_path / "dyn.ridx"
        dyn = DynamicIndex(IndexBuilder(build_store()).build("cc"))
        dyn.insert([(9, 0, 9)])
        dyn.delete([(2, 0, 0)])
        dyn.save(path)
        info = file_info(path)
        assert info["format_version"] == 2
        assert "delta" in info["section_bytes"]
        assert info["meta"]["has_delta"] is True
        assert info["meta"]["delta_inserted"] == 1
        assert info["meta"]["delta_deleted"] == 1
        loaded = load_index(path)
        assert loaded.delta is not None
        merged = loaded.queryable()
        assert isinstance(merged, DynamicIndex)
        assert sorted(merged.select((None, None, None))) \
            == sorted(dyn.select((None, None, None)))

    def test_empty_delta_writes_a_plain_file(self, tmp_path):
        path = tmp_path / "plain.ridx"
        dyn = DynamicIndex(IndexBuilder(build_store()).build("2tp"))
        dyn.save(path)
        info = file_info(path)
        assert info["format_version"] == 1
        assert "delta" not in info["section_bytes"]
        assert load_index(path).delta is None

    def test_queryable_without_delta_is_the_bare_index(self, tmp_path):
        path = tmp_path / "plain.ridx"
        IndexBuilder(build_store()).build("2tp").save(path)
        loaded = load_index(path)
        assert loaded.queryable() is loaded.index
        assert isinstance(loaded.queryable(writable=True), DynamicIndex)


# --------------------------------------------------------------------------- #
# Dynamic dictionary growth.
# --------------------------------------------------------------------------- #

class TestDictionaryGrowth:
    def test_add_keeps_existing_ids_and_prefix_ranges(self):
        from repro.rdf.dictionary import Dictionary
        dictionary = Dictionary(["<http://a/1>", "<http://a/2>", "<http://b/1>"])
        before = {term: dictionary.id_of(term) for term in dictionary.terms()}
        fresh = dictionary.add("<http://a/0>")  # lexicographically early
        assert fresh == 3  # appended, not resorted
        assert dictionary.add("<http://a/0>") == fresh
        for term, identifier in before.items():
            assert dictionary.id_of(term) == identifier
        low, high = dictionary.prefix_range("<http://a/")
        assert (low, high) == (0, 2)  # appended region excluded

    def test_restore_recovers_sorted_prefix(self, tmp_path):
        from repro.rdf.dictionary import Dictionary
        dictionary = Dictionary(["b", "c"])
        dictionary.add("a")
        path = tmp_path / "dict.bin"
        dictionary.save(path)
        restored = Dictionary.load(path)
        assert restored.terms() == ["b", "c", "a"]
        assert restored.id_of("a") == 2
        assert restored.prefix_range("b") == (0, 1)

    def test_encode_or_add_shares_resource_ids(self):
        from repro.rdf.dictionary import RdfDictionary
        dictionary, _ = RdfDictionary.from_term_triples(
            [("<s>", "<p>", "<o>")])
        s, p, o = dictionary.encode_or_add("<new>", "<p2>", "<new>")
        assert s == o  # shared resource dictionary: same entity, same ID
        assert dictionary.decode((s, p, o)) == ("<new>", "<p2>", "<new>")

    def test_typed_load_refuses_delta_files(self, tmp_path):
        from repro.core.index_2t import TwoTrieIndex
        path = tmp_path / "dyn.ridx"
        dyn = DynamicIndex(IndexBuilder(build_store()).build("2tp"))
        dyn.insert([(9, 0, 9)])
        dyn.save(path)
        # Returning the bare base would silently drop the insert.
        with pytest.raises(StorageError, match="uncompacted update delta"):
            TwoTrieIndex.load(path)


class TestReviewRegressions:
    def test_components_beyond_int64_are_rejected_up_front(self):
        from repro.dynamic.delta import MAX_COMPONENT
        dyn = DynamicIndex(IndexBuilder(build_store()).build("2tp"))
        with pytest.raises(UpdateError, match="64-bit"):
            dyn.insert([(MAX_COMPONENT + 1, 0, 0)])
        result = dyn.insert([(MAX_COMPONENT, 0, 0)])  # the edge fits
        assert result.inserted == 1
        assert len(DeltaState.from_columns(
            dyn.delta.to_columns()).inserted) == 1  # and persists

    def test_update_batch_is_atomic(self):
        dyn = DynamicIndex(IndexBuilder(build_store()).build("2tp"))
        with pytest.raises(UpdateError):
            dyn.update(inserts=[(50, 0, 51)], deletes=[(0, 0, "bad")])
        # The malformed delete rejected the whole batch: nothing applied.
        assert not dyn.delta and dyn.epoch == 0
        result = dyn.update(inserts=[(50, 0, 51)], deletes=[(0, 0, 1)])
        assert result.inserted == 1 and result.deleted == 1
        assert dyn.epoch == 1  # one bump for the combined batch

    def test_non_positive_compaction_ratio_disables_the_trigger(self):
        for ratio in (0, -1.5):
            dyn = DynamicIndex(IndexBuilder(build_store()).build("2tp"),
                               compaction_ratio=ratio)
            result = dyn.insert([(60 + i, 0, i) for i in range(20)])
            assert result.compaction is None
            assert dyn.delta.num_inserted == 20

    def test_non_finite_floats_raise_update_error(self):
        dyn = DynamicIndex(IndexBuilder(build_store()).build("2tp"))
        for bad in (float("inf"), float("-inf"), float("nan")):
            with pytest.raises(UpdateError, match="integers"):
                dyn.insert([(bad, 1, 2)])

    def test_torn_wal_header_is_healed(self, tmp_path):
        path = tmp_path / "torn.wal"
        path.write_bytes(b"REPRO")  # died mid-header: nothing was durable
        with WriteAheadLog(path) as wal:
            assert list(wal.replay()) == []
            wal.append(inserts=[(1, 1, 1)])
        with WriteAheadLog(path) as wal:
            assert list(wal.replay()) == [([(1, 1, 1)], [])]

    def test_failed_append_rolls_back_to_the_record_boundary(self, tmp_path):
        path = tmp_path / "fail.wal"
        wal = WriteAheadLog(path)
        wal.append(inserts=[(1, 1, 1)])
        real_write = wal._handle.write

        def partial_write(data):
            real_write(data[:5])  # simulate disk-full mid-record
            raise OSError(28, "No space left on device")

        wal._handle.write = partial_write
        with pytest.raises(StorageError, match="cannot append"):
            wal.append(inserts=[(2, 2, 2)])
        wal._handle.write = real_write
        # The torn bytes were rolled back: the next append is replayable.
        wal.append(inserts=[(3, 3, 3)])
        wal.close()
        with WriteAheadLog(path) as reopened:
            assert list(reopened.replay()) == [([(1, 1, 1)], []),
                                               ([(3, 3, 3)], [])]

    def test_exactness_survives_unrelated_tombstones(self):
        """Only tombstones under the cursor's bound prefix demote exactness
        — one unrelated delete must not strip the leapfrog acceleration."""
        dyn = DynamicIndex(IndexBuilder(build_store()).build("3t"))
        native = dyn.seek_cursor({1: 0}, 0)
        assert native is not None
        _, exact_before = native
        dyn.delete([(3, 2, 1)])  # predicate 2: unrelated to bound {1: 0}
        unrelated = dyn.seek_cursor({1: 0}, 0)
        assert unrelated is not None and unrelated[1] == exact_before
        dyn.delete([(1, 0, 2)])  # predicate 0: under the bound prefix
        related = dyn.seek_cursor({1: 0}, 0)
        assert related is not None and related[1] is False
        # And the engines still agree on the merged view.
        bgp = BasicGraphPattern([TriplePatternTemplate("?a", 0, "?b"),
                                 TriplePatternTemplate("?b", 0, "?c")])
        query = SparqlQuery(projection=bgp.variables(), bgp=bgp)
        nested, _ = execute_bgp(dyn, query, engine="nested")
        wcoj, _ = execute_bgp(dyn, query, engine="wcoj")
        assert solution_bag(nested) == solution_bag(wcoj)

    def test_failed_auto_compaction_does_not_wedge_writes(self, monkeypatch):
        dyn = DynamicIndex(IndexBuilder(build_store()).build("2tp"),
                           compaction_ratio=0.01)
        monkeypatch.setattr(
            DynamicIndex, "compact",
            lambda self: (_ for _ in ()).throw(MemoryError("boom")))
        result = dyn.insert([(40, 0, 40)])
        # The write succeeded; the failure is recorded, the trigger disarmed.
        assert result.inserted == 1 and result.compaction is None
        assert "MemoryError" in dyn.delta_statistics()["auto_compact_error"]
        assert dyn.insert([(41, 0, 41)]).inserted == 1  # no re-trip
        monkeypatch.undo()
        explicit = dyn.compact()  # a successful compact re-arms the trigger
        assert explicit.compacted
        assert dyn.delta_statistics()["auto_compact_error"] is None


class TestDictionaryPrefixRunConsistency:
    def test_prefix_range_agrees_across_save_load(self, tmp_path):
        """In-order appends extend the lexicographic run; the live answer
        must equal what a reload re-derives from the stored term order."""
        from repro.rdf.dictionary import Dictionary
        dictionary = Dictionary(["a", "b"])
        assert dictionary.add("c") == 2       # extends the sorted run
        assert dictionary.prefix_range("c") == (2, 3)
        assert dictionary.add("aa") == 3      # out of order: run freezes
        assert dictionary.add("z") == 4       # after a freeze, stays frozen
        live = {p: dictionary.prefix_range(p) for p in ("a", "aa", "c", "z")}
        path = tmp_path / "dict.bin"
        dictionary.save(path)
        restored = Dictionary.load(path)
        for prefix, expected in live.items():
            assert restored.prefix_range(prefix) == expected, prefix


class TestOverlaySelectValues:
    """The block-building fast path (``select_values``) under live deltas.

    The contract: a returned block is *exact* (tombstoned values removed,
    delta inserts merged in), and any bound shape where per-value tombstone
    filtering is ambiguous returns None so callers fall back to the
    conservative cursor path.  See docs/ARCHITECTURE.md.
    """

    @pytest.mark.parametrize("layout", LAYOUTS)
    def test_blocks_reflect_inserts_and_deletes(self, layout):
        base = IndexBuilder(build_store()).build(layout)
        if getattr(base, "select_values", None) is None:
            pytest.skip(f"{layout} has no block fast path")
        dyn = DynamicIndex(base)
        dyn.insert([(0, 0, 7)])
        dyn.delete([(0, 0, 1)])
        block = dyn.select_values({0: 0, 1: 0}, role=2)
        if block is None:
            pytest.skip(f"{layout} returned no block for this bound shape")
        values = list(block)
        assert 7 in values      # delta insert merged in
        assert 1 not in values  # tombstone filtered out
        # And the block agrees with the merged select.
        expected = sorted(t[2] for t in dyn.select_list((0, 0, None)))
        assert values == expected

    @pytest.mark.parametrize("layout", LAYOUTS)
    def test_single_bound_with_tombstones_falls_back(self, layout):
        """With one bound role a block value may have several witnesses, so
        tombstone filtering is unsound — the overlay must return None."""
        base = IndexBuilder(build_store()).build(layout)
        if getattr(base, "select_values", None) is None:
            pytest.skip(f"{layout} has no block fast path")
        dyn = DynamicIndex(base)
        dyn.delete([(0, 0, 1)])
        assert dyn.select_values({0: 0}, role=2) is None

    def test_clean_delta_passes_base_block_through(self):
        base = IndexBuilder(build_store()).build("2tp")
        dyn = DynamicIndex(base)
        base_block = base.select_values({0: 0, 1: 0}, role=2)
        overlay_block = dyn.select_values({0: 0, 1: 0}, role=2)
        if base_block is None:
            assert overlay_block is None
        else:
            assert list(overlay_block) == list(base_block)
