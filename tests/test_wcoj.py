"""Tests for the worst-case-optimal multiway join engine and its cursors."""

import warnings

import pytest

from repro.core.builder import build_index
from repro.core.trie import ArrayCursor, FunctionCursor, RangeCursor
from repro.errors import PatternError, QueryTimeoutError
from repro.queries.planner import ExecutionStatistics, execute_bgp, stream_bgp
from repro.queries.sparql import BasicGraphPattern, parse_sparql
from repro.queries.wcoj import (
    choose_engine,
    plan_variable_order,
    stream_bgp_wcoj,
)
from repro.rdf.triples import TripleStore


def bag(results):
    """Order-insensitive multiset view of a binding list."""
    return sorted(tuple(sorted(b.items())) for b in results)


# --------------------------------------------------------------------------- #
# The seek-cursor protocol.
# --------------------------------------------------------------------------- #

class TestCursorProtocol:
    def drain(self, cursor):
        values = []
        while cursor.key is not None:
            values.append(cursor.key)
            cursor.advance()
        return values

    def test_range_cursor(self):
        cursor = RangeCursor(2, 6)
        assert cursor.key == 2
        cursor.seek(4)
        assert cursor.key == 4
        cursor.seek(3)  # backwards seek is a no-op
        assert cursor.key == 4
        cursor.seek(6)
        assert cursor.key is None
        cursor.seek(0)  # seeking an exhausted cursor stays exhausted
        assert cursor.key is None
        assert RangeCursor(3, 3).key is None

    def test_array_cursor(self):
        cursor = ArrayCursor([1, 4, 9, 12])
        assert self.drain(cursor) == [1, 4, 9, 12]
        cursor = ArrayCursor([1, 4, 9, 12])
        cursor.seek(5)
        assert cursor.key == 9
        cursor.seek(13)
        assert cursor.key is None
        assert ArrayCursor([]).key is None

    def test_function_cursor(self):
        values = [3, 7, 8, 20, 21]
        cursor = FunctionCursor(lambda i: values[i], 0, len(values))
        assert cursor.key == 3
        cursor.seek(8)
        assert cursor.key == 8
        cursor.advance()
        assert cursor.key == 20
        cursor.seek(22)
        assert cursor.key is None

    def test_level_cursors_on_trie(self, index_2tp, reference_triples):
        spo = index_2tp.trie("spo")
        subject = reference_triples[0][0]
        expected = sorted({p for s, p, o in reference_triples if s == subject})
        cursor = spo.children_cursor(subject)
        assert self.drain(cursor) == expected
        cursor = spo.children_cursor(subject)
        cursor.seek(expected[-1])
        assert cursor.key == expected[-1]
        cursor.seek(expected[-1] + 1)
        assert cursor.key is None
        # Out-of-universe parents yield empty cursors.
        assert spo.children_cursor(10 ** 9).key is None

    def test_middle_cursor_matches_enumerate(self, index_2tp, reference_triples):
        spo = index_2tp.trie("spo")
        subject, _, object_id = reference_triples[len(reference_triples) // 2]
        expected = sorted({p for s, p, o in reference_triples
                           if s == subject and o == object_id})
        assert self.drain(spo.middle_cursor(subject, object_id)) == expected

    def test_seek_cursor_exactness(self, all_indexes, reference_triples):
        subject, predicate, object_id = reference_triples[7]
        for name, index in all_indexes.items():
            cursor, exact = index.seek_cursor({0: subject, 1: predicate}, 2)
            assert exact, name
            assert self.drain(cursor) == sorted(
                {o for s, p, o in reference_triples
                 if s == subject and p == predicate}), name
            cursor, exact = index.seek_cursor({1: predicate, 2: object_id}, 0)
            assert exact, name
            assert self.drain(cursor) == sorted(
                {s for s, p, o in reference_triples
                 if p == predicate and o == object_id}), name

    def test_seek_cursor_empty_intersection_shapes(self, all_indexes):
        for name, index in all_indexes.items():
            cursor, exact = index.seek_cursor({0: 10 ** 9, 1: 0}, 2)
            assert exact and cursor.key is None, name

    def test_cc_pos_rank_cursors(self, index_cc, reference_triples):
        """The CC overrides that unmap POS ranks, driven directly.

        ``seek_cursor`` itself routes (s, p) -> o and (p, o) -> s to the SPO
        trie whenever it scores at least as well, so the POS branches are
        exercised here explicitly: they must stay correct in case a future
        scoring change (or a layout without SPO) activates them.
        """
        pos = index_cc.trie("pos")
        checked_deep = checked_middle = 0
        for subject, predicate, object_id in reference_triples[::37]:
            # k == 2: subjects of (p, o) through unmap.
            cursor = index_cc._build_trie_cursor(
                "pos", pos, {1: predicate, 2: object_id}, 0)
            assert self.drain(cursor) == sorted(
                {s for s, p, o in reference_triples
                 if p == predicate and o == object_id})
            checked_deep += 1
            # k == 1 filtered: objects of p that contain the bound subject,
            # probed through map_subject against the stored ranks.
            cursor = index_cc._build_trie_cursor(
                "pos", pos, {1: predicate, 0: subject}, 2)
            assert self.drain(cursor) == sorted(
                {o for s, p, o in reference_triples
                 if p == predicate and s == subject})
            checked_middle += 1
        assert checked_deep and checked_middle


# --------------------------------------------------------------------------- #
# The executor.
# --------------------------------------------------------------------------- #

@pytest.fixture(scope="module")
def ring_graph():
    """A ring with chords plus attributes: triangles and paths coexist."""
    knows, works_for = 0, 1
    triples = sorted({(i, knows, (i + 1) % 12) for i in range(12)}
                     | {(i, knows, (i + 5) % 12) for i in range(12)}
                     | {((i + 6) % 12, knows, i) for i in range(0, 12, 2)}
                     | {(i, works_for, 12 + i % 3) for i in range(12)})
    store = TripleStore.from_triples(triples)
    return build_index(store, "2tp"), store


class TestWcojExecutor:
    def test_single_pattern_matches_nested(self, ring_graph):
        index, store = ring_graph
        query = parse_sparql("SELECT ?s ?o WHERE { ?s 0 ?o }")
        nested, _ = execute_bgp(index, query, store=store, engine="nested")
        wcoj, stats = execute_bgp(index, query, store=store, engine="wcoj")
        assert bag(nested) == bag(wcoj)
        assert stats.engine == "wcoj"

    def test_triangle_matches_nested(self, ring_graph):
        index, store = ring_graph
        query = parse_sparql(
            "SELECT ?a ?b ?c WHERE { ?a 0 ?b . ?b 0 ?c . ?c 0 ?a }")
        nested, _ = execute_bgp(index, query, store=store, engine="nested")
        wcoj, _ = execute_bgp(index, query, store=store, engine="wcoj")
        assert bag(nested) == bag(wcoj)
        assert len(wcoj) > 0

    def test_duplicate_variable_pattern(self, ring_graph):
        index, store = ring_graph
        # ?x ?p ?x — a self-loop probe; exercised through the materialise
        # fallback because no native cursor serves duplicate positions.
        query = parse_sparql("SELECT ?x ?p WHERE { ?x ?p ?x }")
        nested, _ = execute_bgp(index, query, store=store, engine="nested")
        wcoj, _ = execute_bgp(index, query, store=store, engine="wcoj")
        assert bag(nested) == bag(wcoj)

    def test_duplicate_variable_joined(self, ring_graph):
        index, store = ring_graph
        query = parse_sparql("SELECT ?x ?y WHERE { ?x 0 ?y . ?y ?q ?y }")
        nested, _ = execute_bgp(index, query, store=store, engine="nested")
        wcoj, _ = execute_bgp(index, query, store=store, engine="wcoj")
        assert bag(nested) == bag(wcoj)

    def test_constant_only_template_present(self, ring_graph):
        index, store = ring_graph
        query = parse_sparql("SELECT ?s WHERE { ?s 0 1 . 0 0 1 }")
        nested, _ = execute_bgp(index, query, store=store, engine="nested")
        wcoj, _ = execute_bgp(index, query, store=store, engine="wcoj")
        assert bag(nested) == bag(wcoj)
        assert len(wcoj) > 0

    def test_constant_only_template_absent(self, ring_graph):
        index, store = ring_graph
        query = parse_sparql("SELECT ?s WHERE { ?s 0 1 . 1 1 1 }")
        wcoj, _ = execute_bgp(index, query, store=store, engine="wcoj")
        assert wcoj == []

    def test_empty_intersection(self, ring_graph):
        index, store = ring_graph
        # No subject both knows and is known by object 10**6.
        query = parse_sparql("SELECT ?x WHERE { ?x 0 999 . ?x 1 999 }")
        wcoj, _ = execute_bgp(index, query, store=store, engine="wcoj")
        assert wcoj == []

    def test_projection_duplicates_preserved(self, ring_graph):
        index, store = ring_graph
        # Projecting away a join variable must keep the solution multiset.
        query = parse_sparql("SELECT ?c WHERE { ?x 0 ?y . ?y 1 ?c }")
        nested, _ = execute_bgp(index, query, store=store, engine="nested")
        wcoj, _ = execute_bgp(index, query, store=store, engine="wcoj")
        assert bag(nested) == bag(wcoj)
        assert len(wcoj) > len(set(map(tuple, (sorted(b.items())
                                               for b in wcoj))))

    def test_disconnected_bgp_warns_and_matches(self, ring_graph):
        from repro.queries.planner import CartesianProductWarning

        index, store = ring_graph
        query = parse_sparql("SELECT ?a ?b ?c ?d WHERE { ?a 0 ?b . ?c 1 ?d }")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", CartesianProductWarning)
            nested, _ = execute_bgp(index, query, store=store, engine="nested")
        with pytest.warns(CartesianProductWarning):
            wcoj, stats = execute_bgp(index, query, store=store, engine="wcoj")
        assert bag(nested) == bag(wcoj)
        assert stats.cartesian_joins == 1

    def test_unknown_engine_rejected_at_call_time(self, ring_graph):
        index, store = ring_graph
        query = parse_sparql("SELECT ?s WHERE { ?s 0 ?o }")
        with pytest.raises(PatternError):
            stream_bgp(index, query, store=store, engine="quantum")

    def test_plan_with_wcoj_engine_rejected(self, ring_graph):
        index, store = ring_graph
        query = parse_sparql("SELECT ?a ?b WHERE { ?a 0 ?b . ?b 0 ?a }")
        plan = [query.bgp.templates[0], query.bgp.templates[1]]
        with pytest.raises(PatternError):
            stream_bgp(index, query, store=store, plan=plan, engine="wcoj")
        # auto + plan pins the nested executor (a plan is a nested artifact).
        statistics = ExecutionStatistics()
        list(stream_bgp(index, query, store=store, plan=plan,
                        engine="auto", statistics=statistics))
        assert statistics.engine == "nested"

    def test_all_layouts_agree_on_triangle(self, all_indexes, reference_triples):
        query = parse_sparql(
            "SELECT ?a ?b ?c WHERE { ?a 0 ?b . ?b 0 ?c . ?c 0 ?a }")
        expected = None
        for name, index in all_indexes.items():
            results, _ = execute_bgp(index, query, engine="wcoj")
            if expected is None:
                expected = bag(results)
            else:
                assert bag(results) == expected, name


class TestWcojStreamSemantics:
    """limit/offset/timeout parity with ``stream_bgp``."""

    def test_limit_zero_is_empty(self, ring_graph):
        index, store = ring_graph
        query = parse_sparql("SELECT ?s WHERE { ?s 0 ?o }")
        assert list(stream_bgp_wcoj(index, query, store=store, limit=0)) == []

    def test_pages_tile_the_stream(self, ring_graph):
        index, store = ring_graph
        query = parse_sparql("SELECT ?a ?b WHERE { ?a 0 ?b . ?b 1 ?c }")
        full = list(stream_bgp_wcoj(index, query, store=store))
        pages = []
        for offset in range(0, len(full) + 5, 5):
            pages.extend(stream_bgp_wcoj(index, query, store=store,
                                         limit=5, offset=offset))
        assert pages == full

    def test_offset_beyond_result_count(self, ring_graph):
        index, store = ring_graph
        query = parse_sparql("SELECT ?s ?o WHERE { ?s 0 ?o . ?o 1 ?c }")
        full = list(stream_bgp_wcoj(index, query, store=store))
        beyond = list(stream_bgp_wcoj(index, query, store=store,
                                      offset=len(full)))
        assert beyond == []
        beyond = list(stream_bgp_wcoj(index, query, store=store,
                                      offset=len(full) + 10, limit=3))
        assert beyond == []

    def test_limit_stops_early(self, ring_graph):
        index, store = ring_graph
        query = parse_sparql(
            "SELECT ?a ?b ?c WHERE { ?a 0 ?b . ?b 0 ?c . ?c 0 ?a }")
        statistics = ExecutionStatistics()
        limited = list(stream_bgp_wcoj(index, query, store=store, limit=2,
                                       statistics=statistics))
        assert len(limited) == 2
        full_statistics = ExecutionStatistics()
        list(stream_bgp_wcoj(index, query, store=store,
                             statistics=full_statistics))
        assert statistics.triples_matched < full_statistics.triples_matched

    def test_timeout_before_execution(self, ring_graph):
        index, store = ring_graph
        query = parse_sparql("SELECT ?s WHERE { ?s 0 ?o }")
        with pytest.raises(QueryTimeoutError):
            list(stream_bgp_wcoj(index, query, store=store, timeout=0.0))

    def test_timeout_mid_join(self, ring_graph):
        index, store = ring_graph
        query = parse_sparql(
            "SELECT ?a ?b ?c WHERE { ?a 0 ?b . ?b 0 ?c . ?c 0 ?a }")
        with pytest.raises(QueryTimeoutError):
            list(stream_bgp_wcoj(index, query, store=store, timeout=-1.0))

    def test_statistics_count_results(self, ring_graph):
        index, store = ring_graph
        query = parse_sparql("SELECT ?s ?o WHERE { ?s 0 ?o }")
        statistics = ExecutionStatistics()
        results = list(stream_bgp_wcoj(index, query, store=store,
                                       statistics=statistics))
        assert statistics.results == len(results)
        assert statistics.engine == "wcoj"
        assert statistics.patterns_executed >= 1


# --------------------------------------------------------------------------- #
# Planning: engine choice and variable order.
# --------------------------------------------------------------------------- #

class TestEnginePolicy:
    def parse_bgp(self, text):
        return parse_sparql(text).bgp

    def test_single_pattern_stays_nested(self):
        assert choose_engine(self.parse_bgp(
            "SELECT * WHERE { ?s 0 ?o }")) == "nested"

    def test_chain_stays_nested(self):
        assert choose_engine(self.parse_bgp(
            "SELECT * WHERE { ?a 0 ?b . ?b 1 ?c . ?c 2 ?d }")) == "nested"

    def test_two_pattern_star_stays_nested(self):
        assert choose_engine(self.parse_bgp(
            "SELECT * WHERE { ?a 0 ?b . ?a 1 ?c }")) == "nested"

    def test_triangle_goes_wcoj(self):
        assert choose_engine(self.parse_bgp(
            "SELECT * WHERE { ?a 0 ?b . ?b 0 ?c . ?c 0 ?a }")) == "wcoj"

    def test_multi_join_star_goes_wcoj(self):
        assert choose_engine(self.parse_bgp(
            "SELECT * WHERE { ?a 0 ?b . ?a 1 ?c . ?a 2 ?d }")) == "wcoj"

    def test_double_edge_goes_wcoj(self):
        # Two patterns sharing two variables close a cycle.
        assert choose_engine(self.parse_bgp(
            "SELECT * WHERE { ?a 0 ?b . ?b 1 ?a }")) == "wcoj"

    def test_auto_dispatch_records_engine(self, ring_graph):
        index, store = ring_graph
        triangle = parse_sparql(
            "SELECT ?a WHERE { ?a 0 ?b . ?b 0 ?c . ?c 0 ?a }")
        _, stats = execute_bgp(index, triangle, store=store, engine="auto")
        assert stats.engine == "wcoj"
        chain = parse_sparql("SELECT ?a WHERE { ?a 0 ?b . ?b 1 ?c }")
        _, stats = execute_bgp(index, chain, store=store, engine="auto")
        assert stats.engine == "nested"


class TestVariableOrder:
    def test_covers_all_variables_once(self):
        bgp = parse_sparql(
            "SELECT * WHERE { ?a 0 ?b . ?b 0 ?c . ?c 0 ?a . ?c 1 ?d }").bgp
        order = plan_variable_order(bgp)
        assert sorted(order) == sorted(bgp.variables())

    def test_empty_bgp_rejected(self):
        with pytest.raises(PatternError):
            plan_variable_order(BasicGraphPattern([]))

    def test_connected_components_not_interleaved(self):
        bgp = parse_sparql(
            "SELECT * WHERE { ?a 0 ?b . ?b 0 ?a . ?c 1 ?d . ?d 1 ?c }").bgp
        order = plan_variable_order(bgp)
        first_component = {"?a", "?b"}
        positions = [i for i, v in enumerate(order) if v in first_component]
        assert positions in ([0, 1], [2, 3])

    def test_explicit_variable_order_respected(self, ring_graph):
        index, store = ring_graph
        query = parse_sparql("SELECT ?a ?b WHERE { ?a 0 ?b }")
        default = list(stream_bgp_wcoj(index, query, store=store))
        forced = list(stream_bgp_wcoj(index, query, store=store,
                                      variable_order=("?b", "?a")))
        assert bag(default) == bag(forced)

    def test_incomplete_variable_order_rejected(self, ring_graph):
        index, store = ring_graph
        query = parse_sparql("SELECT ?a ?b WHERE { ?a 0 ?b }")
        with pytest.raises(PatternError):
            list(stream_bgp_wcoj(index, query, store=store,
                                 variable_order=("?a",)))


class TestServiceEngineKnob:
    @pytest.fixture(scope="class")
    def service(self, index_2tp):
        from repro.service import QueryService
        return QueryService(index_2tp)

    def test_engine_override_and_reporting(self, service):
        chain = "SELECT ?a ?b WHERE { ?a 0 ?b . ?b 1 ?c }"
        auto = service.execute(chain)
        assert auto.statistics["engine"] == "nested"
        forced = service.execute(chain, engine="wcoj")
        assert forced.statistics["engine"] == "wcoj"
        assert bag(forced.bindings) == bag(auto.bindings)

    def test_cache_keyed_per_engine(self, service):
        query = "SELECT ?a ?b WHERE { ?a 0 ?b . ?b 1 ?c }"
        service.execute(query, limit=3, engine="nested")
        hit = service.execute(query, limit=3, engine="nested")
        assert hit.cached is True
        other = service.execute(query, limit=3, engine="wcoj")
        assert other.cached is False
        assert other.statistics["engine"] == "wcoj"

    def test_invalid_engine_rejected(self, service):
        from repro.errors import ServiceError
        with pytest.raises(ServiceError):
            service.execute("SELECT ?a WHERE { ?a 0 ?b }", engine="quantum")

    def test_stats_count_engines(self, index_2tp):
        from repro.service import QueryService
        service = QueryService(index_2tp)
        service.execute("SELECT ?a WHERE { ?a 0 ?b }")
        service.execute("SELECT ?a WHERE { ?a 0 ?b . ?b 0 ?c . ?c 0 ?a }")
        statistics = service.statistics()
        assert statistics["requests"]["engines"]["nested"] == 1
        assert statistics["requests"]["engines"]["wcoj"] == 1
        assert statistics["engine"] == "auto"

    def test_engine_counters_skip_cache_hits(self, index_2tp):
        from repro.service import QueryService
        service = QueryService(index_2tp)
        query = "SELECT ?a WHERE { ?a 0 ?b . ?b 0 ?c . ?c 0 ?a }"
        service.execute(query)
        assert service.execute(query).cached is True
        statistics = service.statistics()
        # Only the cold execution ran the executor.
        assert statistics["requests"]["engines"]["wcoj"] == 1
        assert statistics["requests"]["queries"] == 2

    def test_wcoj_plan_cache_shared_across_renamings(self, index_2tp):
        from repro.service import QueryService
        service = QueryService(index_2tp)
        triangle = "SELECT ?a ?b ?c WHERE { ?a 0 ?b . ?b 0 ?c . ?c 0 ?a }"
        renamed = "SELECT ?x ?y ?z WHERE { ?x 0 ?y . ?y 0 ?z . ?z 0 ?x }"
        first = service.execute(triangle, use_cache=False)
        second = service.execute(renamed, use_cache=False)
        assert first.statistics["engine"] == "wcoj"
        assert second.statistics["engine"] == "wcoj"
        assert sorted(tuple(sorted(b.values())) for b in first.bindings) == \
            sorted(tuple(sorted(b.values())) for b in second.bindings)
        plan_cache = service.statistics()["plan_cache"]
        assert plan_cache["misses"] == 1 and plan_cache["hits"] == 1
