"""Persistence tests: container format, codec round trips, index round trips,
corruption and wrong-version error handling."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import HdtFoqIndex
from repro.core.builder import IndexBuilder, build_index
from repro.core.pairs import PairStructure
from repro.core.patterns import PatternKind, TriplePattern
from repro.core.trie import PermutationTrie, TrieConfig
from repro.errors import StorageError
from repro.rdf.dictionary import Dictionary, NumericIndex, RdfDictionary
from repro.rdf.triples import TripleStore
from repro.sequences.base import EncodedSequence
from repro.sequences.bitvector import BitVector
from repro.sequences.compact import CompactVector
from repro.sequences.elias_fano import EliasFano
from repro.sequences.partitioned_elias_fano import PartitionedEliasFano
from repro.sequences.vbyte import VByte
from repro.storage import (
    dumps_object,
    file_info,
    load_index,
    load_object,
    loads_object,
    read_container,
    save_index,
    save_object,
    verify_container,
    write_container,
)
from repro.storage import container as container_module

MONOTONE_CODECS = (EliasFano, PartitionedEliasFano)
GENERAL_CODECS = (CompactVector, VByte)
ALL_CODECS = MONOTONE_CODECS + GENERAL_CODECS

monotone_values = st.lists(st.integers(0, 2000), min_size=0, max_size=300).map(sorted)
general_values = st.lists(st.integers(0, 2000), min_size=0, max_size=300)
bit_lists = st.lists(st.integers(0, 1), min_size=1, max_size=400)


# --------------------------------------------------------------------------- #
# Container format.
# --------------------------------------------------------------------------- #

class TestContainer:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "c.bin"
        sections = {"meta": b"m" * 10, "payload": bytes(range(256)), "x": b""}
        written = write_container(path, sections)
        assert written == path.stat().st_size
        assert read_container(path) == sections

    def test_not_a_container(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"definitely not an index file, but long enough")
        with pytest.raises(StorageError, match="bad magic"):
            read_container(path)

    def test_too_short(self, tmp_path):
        path = tmp_path / "short.bin"
        path.write_bytes(b"RE")
        with pytest.raises(StorageError, match="too short"):
            read_container(path)

    def test_wrong_version_rejected(self, tmp_path, monkeypatch):
        path = tmp_path / "future.bin"
        monkeypatch.setattr(container_module, "FORMAT_VERSION", 999)
        write_container(path, {"payload": b"hello"})
        monkeypatch.undo()
        with pytest.raises(StorageError, match="unsupported container format version 999"):
            read_container(path)

    def test_corrupted_payload_detected(self, tmp_path):
        path = tmp_path / "c.bin"
        write_container(path, {"payload": b"A" * 64})
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(StorageError, match="checksum mismatch"):
            read_container(path)

    def test_corrupted_header_detected(self, tmp_path):
        path = tmp_path / "c.bin"
        write_container(path, {"payload": b"A" * 64})
        data = bytearray(path.read_bytes())
        data[18] ^= 0x01  # inside the section table (a section-name byte)
        path.write_bytes(bytes(data))
        with pytest.raises(StorageError, match="header checksum mismatch"):
            read_container(path)

    def test_truncated_file_detected(self, tmp_path):
        path = tmp_path / "c.bin"
        write_container(path, {"payload": b"A" * 64})
        data = path.read_bytes()
        path.write_bytes(data[:-10])
        with pytest.raises(StorageError):
            read_container(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(StorageError, match="cannot read"):
            read_container(tmp_path / "nope.bin")


class TestVerifyContainer:
    def test_clean_report(self, tmp_path):
        path = tmp_path / "c.bin"
        sections = {"meta": b"m" * 10, "payload": bytes(range(256))}
        write_container(path, sections)
        report = verify_container(path)
        assert report["ok"] is True
        assert report["problems"] == []
        assert [s["name"] for s in report["sections"]] == ["meta", "payload"]
        assert all(s["crc_ok"] for s in report["sections"])

    def test_aligned_report(self, tmp_path):
        path = tmp_path / "c.bin"
        write_container(path, {"a": b"x" * 70, "b": b"y" * 3},
                        version=container_module.ALIGNED_FORMAT_VERSION)
        report = verify_container(path)
        assert report["ok"] is True
        assert report["aligned"] is True
        for section in report["sections"]:
            assert section["offset"] % container_module.SECTION_ALIGNMENT == 0

    def test_reports_every_corrupted_section(self, tmp_path):
        path = tmp_path / "c.bin"
        write_container(path, {"a": b"A" * 64, "b": b"B" * 64})
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF          # corrupt section "b"
        data[-70] ^= 0xFF         # corrupt section "a"
        path.write_bytes(bytes(data))
        report = verify_container(path)
        assert report["ok"] is False
        # One pass reports *both* damaged sections, unlike read_container
        # which stops at the first.
        assert [s["crc_ok"] for s in report["sections"]] == [False, False]
        assert len(report["problems"]) == 2

    def test_misaligned_section_reported(self, tmp_path):
        path = tmp_path / "c.bin"
        write_container(path, {"a": b"A" * 64})
        data = bytearray(path.read_bytes())
        # Advertise the aligned format without the aligned layout.
        struct_at = container_module._FIXED_HEADER
        magic, _version, count = struct_at.unpack_from(data, 0)
        struct_at.pack_into(data, 0, magic,
                            container_module.ALIGNED_FORMAT_VERSION, count)
        # Re-seal the header CRC so only the alignment claim is wrong.
        crc_offset = len(data) - 64 - container_module._CRC.size
        container_module._CRC.pack_into(
            data, crc_offset, container_module._crc32(bytes(data[:crc_offset])))
        path.write_bytes(bytes(data))
        report = verify_container(path)
        assert report["ok"] is False
        assert any("aligned" in problem for problem in report["problems"])

    def test_structural_damage_still_raises(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"definitely not an index file, but long enough")
        with pytest.raises(StorageError, match="bad magic"):
            verify_container(path)

    def test_real_index_file_verifies(self, tmp_path, index_2tp):
        path = tmp_path / "idx.repro"
        save_index(index_2tp, path, aligned=True)
        report = verify_container(path)
        assert report["ok"] is True
        assert report["aligned"] is True
        assert {s["name"] for s in report["sections"]} >= {"meta", "index"}


# --------------------------------------------------------------------------- #
# Codec round trips.
# --------------------------------------------------------------------------- #

def _assert_sequence_equal(loaded, original, values):
    assert type(loaded) is type(original)
    assert len(loaded) == len(original)
    assert loaded.to_list() == list(values)
    assert loaded.size_in_bits() == original.size_in_bits()
    if values:
        middle = len(values) // 2
        assert loaded.access(middle) == values[middle]
        if list(values) == sorted(values):
            assert loaded.find(0, len(values), values[middle]) == \
                original.find(0, len(values), values[middle])


class TestCodecRoundTrips:
    @pytest.mark.parametrize("codec_class", ALL_CODECS)
    @settings(max_examples=25, deadline=None)
    @given(values=monotone_values)
    def test_in_memory_round_trip(self, codec_class, values):
        """Property: load(save(seq)) is observationally identical, all codecs."""
        original = codec_class.from_values(values)
        loaded = loads_object(dumps_object(original))
        _assert_sequence_equal(loaded, original, values)

    @pytest.mark.parametrize("codec_class", GENERAL_CODECS)
    @settings(max_examples=25, deadline=None)
    @given(values=general_values)
    def test_non_monotone_round_trip(self, codec_class, values):
        original = codec_class.from_values(values)
        loaded = loads_object(dumps_object(original))
        _assert_sequence_equal(loaded, original, values)

    @settings(max_examples=25, deadline=None)
    @given(bits=bit_lists)
    def test_bitvector_round_trip(self, bits):
        original = BitVector.from_bits(bits)
        loaded = loads_object(dumps_object(original))
        assert loaded.to_list() == bits
        assert loaded.num_ones == original.num_ones
        for k in range(original.num_ones):
            assert loaded.select1(k) == original.select1(k)
        for position in range(0, len(bits) + 1, max(1, len(bits) // 7)):
            assert loaded.rank1(position) == original.rank1(position)

    @pytest.mark.parametrize("codec_class", ALL_CODECS)
    def test_file_round_trip(self, codec_class, tmp_path):
        values = sorted([1, 1, 5, 9, 20, 21, 300, 301, 302, 9000])
        original = codec_class.from_values(values)
        path = tmp_path / "seq.bin"
        written = original.save(path)
        assert written == path.stat().st_size
        loaded = codec_class.load(path)
        _assert_sequence_equal(loaded, original, values)
        # The untyped base-class load accepts any codec.
        assert EncodedSequence.load(path).to_list() == values

    def test_typed_load_rejects_other_codec(self, tmp_path):
        path = tmp_path / "seq.bin"
        CompactVector.from_values([1, 2, 3]).save(path)
        with pytest.raises(StorageError, match="holds a CompactVector"):
            EliasFano.load(path)

    def test_bitvector_file_round_trip(self, tmp_path):
        original = BitVector.from_positions(100, [0, 3, 64, 65, 99])
        path = tmp_path / "bv.bin"
        original.save(path)
        loaded = BitVector.load(path)
        assert loaded.to_list() == original.to_list()

    def test_save_load_save_is_byte_identical(self, tmp_path):
        """Determinism: a loaded structure re-saves to the identical file."""
        first = tmp_path / "a.bin"
        second = tmp_path / "b.bin"
        PartitionedEliasFano.from_values(list(range(0, 4000, 3))).save(first)
        PartitionedEliasFano.load(first).save(second)
        assert first.read_bytes() == second.read_bytes()

    def test_unregistered_type_raises(self):
        with pytest.raises(StorageError, match="no serializer registered"):
            dumps_object(object())


# --------------------------------------------------------------------------- #
# Trie and pair-structure round trips.
# --------------------------------------------------------------------------- #

class TestTrieRoundTrip:
    def test_trie_file_round_trip(self, builder, tmp_path):
        original = builder.build_trie("spo")
        path = tmp_path / "trie.bin"
        original.save(path)
        loaded = PermutationTrie.load(path)
        assert loaded.permutation_name == original.permutation_name
        assert loaded.num_triples == original.num_triples
        assert loaded.num_pairs == original.num_pairs
        for first in range(0, original.num_first, 13):
            assert list(loaded.children_of(first)) == list(original.children_of(first))
        assert sorted(loaded.scan_all()) == sorted(original.scan_all())
        assert loaded.space_breakdown() == original.space_breakdown()

    def test_pair_structure_round_trip(self, builder, tmp_path):
        original = builder.build_ps_structure()
        path = tmp_path / "ps.bin"
        original.save(path)
        loaded = PairStructure.load(path)
        assert loaded.num_pairs == original.num_pairs
        for first in range(0, original.num_first, 3):
            assert list(loaded.values_of(first)) == list(original.values_of(first))


# --------------------------------------------------------------------------- #
# Index round trips: every family, every pattern kind.
# --------------------------------------------------------------------------- #

def _assert_indexes_answer_identically(loaded, original, triples):
    probes = triples[:: max(1, len(triples) // 6)]
    for triple in probes:
        for kind in PatternKind:
            pattern = TriplePattern.from_triple_with_wildcards(triple, kind)
            assert loaded.select_list(pattern) == original.select_list(pattern)
    assert loaded.size_in_bits() == original.size_in_bits()
    assert loaded.space_breakdown() == original.space_breakdown()


class TestIndexRoundTrips:
    @pytest.mark.parametrize("layout", ["3t", "cc", "2tp", "2to"])
    def test_layout_round_trip(self, all_indexes, reference_triples, tmp_path, layout):
        original = all_indexes[layout]
        path = tmp_path / f"{layout}.ridx"
        original.save(path)
        loaded = load_index(path)
        assert type(loaded.index) is type(original)
        assert loaded.dictionary is None
        assert loaded.meta["layout"] == original.name
        assert loaded.meta["num_triples"] == original.num_triples
        _assert_indexes_answer_identically(loaded.index, original, reference_triples)

    @pytest.mark.parametrize("level1", ["compact", "ef", "pef", "vbyte"])
    @pytest.mark.parametrize("level2", ["compact", "ef", "pef", "vbyte"])
    def test_all_codec_configurations_round_trip(self, tmp_path, level1, level2):
        """Every node-codec configuration survives a save/load round trip."""
        triples = sorted({(s % 23, s % 3, (s * 7) % 31) for s in range(160)})
        store = TripleStore.from_triples(triples, densify=True)
        triples = sorted(store)
        config = TrieConfig(level1_nodes=level1, level2_nodes=level2,
                            codec_options={"pef": {"partition_size": 32}})
        configs = {name: config for name in ("spo", "pos", "osp", "ops")}
        original = IndexBuilder(store, trie_configs=configs).build("3t")
        path = tmp_path / "cfg.ridx"
        original.save(path)
        loaded = load_index(path).index
        trie = loaded.trie("spo")
        assert trie.config.level1_nodes == level1
        assert trie.config.level2_nodes == level2
        _assert_indexes_answer_identically(loaded, original, triples)

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(triples=st.sets(st.tuples(st.integers(0, 12), st.integers(0, 3),
                                     st.integers(0, 12)),
                           min_size=1, max_size=50),
           layout=st.sampled_from(["3t", "cc", "2tp", "2to"]))
    def test_round_trip_property(self, triples, layout):
        """Property: load(save(index)) answers every pattern identically."""
        triples = sorted(triples)
        store = TripleStore.from_triples(triples)
        original = build_index(store, layout)
        loaded = loads_object(dumps_object(original))
        for triple in triples:
            for kind in PatternKind:
                pattern = TriplePattern.from_triple_with_wildcards(triple, kind)
                assert loaded.select_list(pattern) == original.select_list(pattern)

    def test_baseline_indexes_are_not_persistable(self, small_store, tmp_path):
        baseline = HdtFoqIndex(small_store)
        with pytest.raises(StorageError, match="no serializer registered"):
            baseline.save(tmp_path / "baseline.ridx")

    def test_load_object_rejects_index_file(self, all_indexes, tmp_path):
        path = tmp_path / "i.ridx"
        all_indexes["2tp"].save(path)
        with pytest.raises(StorageError, match="missing 'payload' section"):
            load_object(path)

    def test_load_index_rejects_object_file(self, tmp_path):
        path = tmp_path / "seq.bin"
        save_object(CompactVector.from_values([1, 2]), path)
        with pytest.raises(StorageError, match="missing 'index' section"):
            load_index(path)

    def test_typed_index_load_checks_layout(self, all_indexes, tmp_path):
        from repro.core.index_2t import TwoTrieIndex
        from repro.core.index_3t import PermutedTrieIndex
        path = tmp_path / "i.ridx"
        all_indexes["2tp"].save(path)
        assert isinstance(TwoTrieIndex.load(path), TwoTrieIndex)
        with pytest.raises(StorageError, match="expected PermutedTrieIndex"):
            PermutedTrieIndex.load(path)

    def test_file_info(self, all_indexes, tmp_path):
        path = tmp_path / "i.ridx"
        all_indexes["2tp"].save(path)
        info = file_info(path)
        assert info["meta"]["layout"] == "2tp"
        assert info["total_bytes"] == path.stat().st_size
        assert set(info["section_bytes"]) == {"meta", "index"}


# --------------------------------------------------------------------------- #
# Dictionary round trips.
# --------------------------------------------------------------------------- #

class TestDictionaryRoundTrips:
    def test_dictionary_round_trip(self, tmp_path):
        original = Dictionary.from_terms(["b", "a", "c", "a", "z\nnewline"])
        path = tmp_path / "dict.bin"
        original.save(path)
        loaded = Dictionary.load(path)
        assert loaded.terms() == original.terms()
        for term in original.terms():
            assert loaded.id_of(term) == original.id_of(term)

    def test_rdf_dictionary_preserves_sharing(self, tmp_path):
        term_triples = [
            ("<http://e/a>", "<http://e/p>", "<http://e/b>"),
            ("<http://e/b>", "<http://e/p>", '"lit"'),
        ]
        original, store = RdfDictionary.from_term_triples(term_triples)
        assert original.subjects is original.objects
        path = tmp_path / "rdfdict.bin"
        original.save(path)
        loaded = RdfDictionary.load(path)
        assert loaded.subjects is loaded.objects
        for triple in store:
            assert loaded.decode(triple) == original.decode(triple)

    def test_numeric_index_round_trip(self):
        original = NumericIndex([3.25, -1.5, 0.0, 10.75, 2.5], scale=2)
        loaded = loads_object(dumps_object(original))
        assert len(loaded) == len(original)
        for position in range(len(original)):
            assert loaded.value_at(position) == original.value_at(position)
        assert loaded.id_range(-1.0, 5.0) == original.id_range(-1.0, 5.0)
        assert loaded.id_range(-1.5, 2.5, inclusive=True) == \
            original.id_range(-1.5, 2.5, inclusive=True)

    def test_index_with_dictionary_round_trip(self, tmp_path):
        term_triples = [
            ("<http://e/a>", "<http://e/knows>", "<http://e/b>"),
            ("<http://e/a>", "<http://e/name>", '"A"'),
            ("<http://e/b>", "<http://e/knows>", "<http://e/a>"),
        ]
        dictionary, store = RdfDictionary.from_term_triples(term_triples)
        index = IndexBuilder(store).build("2tp")
        path = tmp_path / "full.ridx"
        save_index(index, path, dictionary=dictionary)
        loaded = load_index(path)
        assert loaded.meta["has_dictionary"] is True
        knows = loaded.dictionary.predicates.id_of("<http://e/knows>")
        results = loaded.index.select_list((None, knows, None))
        assert len(results) == 2
        decoded = {loaded.dictionary.decode(t) for t in results}
        assert ("<http://e/a>", "<http://e/knows>", "<http://e/b>") in decoded


class TestPlannerStatsPersistence:
    def _store(self):
        return TripleStore.from_triples(
            [(0, 0, 1), (0, 0, 2), (1, 0, 2), (2, 1, 3), (3, 1, 4), (3, 2, 0)])

    def test_round_trip(self, tmp_path):
        from repro.queries.planner import QueryPlanner

        store = self._store()
        index = build_index(store, "2tp")
        histograms = QueryPlanner.cardinalities_from_store(store)
        path = tmp_path / "with_stats.ridx"
        save_index(index, path, planner_stats=histograms)
        loaded = load_index(path)
        assert loaded.meta["has_planner_stats"] is True
        assert loaded.planner_stats == histograms
        # The loaded histograms drive planning exactly like the live store.
        assert QueryPlanner(cardinalities=loaded.planner_stats).cardinalities \
            == QueryPlanner(store=store).cardinalities

    def test_absent_stats_load_as_none(self, tmp_path):
        store = self._store()
        index = build_index(store, "2tp")
        path = tmp_path / "without_stats.ridx"
        save_index(index, path)
        loaded = load_index(path)
        assert loaded.planner_stats is None
        assert loaded.meta["has_planner_stats"] is False

    def test_stats_section_visible_in_file_info(self, tmp_path):
        from repro.queries.planner import QueryPlanner

        store = self._store()
        index = build_index(store, "2tp")
        path = tmp_path / "with_stats.ridx"
        save_index(index, path,
                   planner_stats=QueryPlanner.cardinalities_from_store(store))
        info = file_info(path)
        assert "stats" in info["section_bytes"]
        assert info["section_bytes"]["stats"] > 0

    def test_malformed_stats_section_raises_storage_error(self, tmp_path):
        from repro.storage import format as binary_format
        from repro.storage.container import read_container, write_container

        store = self._store()
        index = build_index(store, "2tp")
        path = tmp_path / "broken_stats.ridx"
        from repro.queries.planner import QueryPlanner
        save_index(index, path,
                   planner_stats=QueryPlanner.cardinalities_from_store(store))
        sections = dict(read_container(path))
        sections["stats"] = binary_format.dumps({"roles": [{}, {}, {}]})
        write_container(path, sections)
        with pytest.raises(StorageError, match="malformed 'stats' section"):
            load_index(path)
