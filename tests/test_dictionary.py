"""Tests for the string dictionaries and the numeric R structure."""

import pytest

from repro.errors import DictionaryError
from repro.rdf.dictionary import Dictionary, NumericIndex, RdfDictionary


class TestDictionary:
    def test_lexicographic_assignment(self):
        dictionary = Dictionary.from_terms(["banana", "apple", "cherry", "apple"])
        assert dictionary.id_of("apple") == 0
        assert dictionary.id_of("banana") == 1
        assert dictionary.id_of("cherry") == 2
        assert len(dictionary) == 3

    def test_term_of(self):
        dictionary = Dictionary.from_terms(["b", "a"])
        assert dictionary.term_of(0) == "a"
        assert dictionary.term_of(1) == "b"

    def test_unknown_term(self):
        dictionary = Dictionary.from_terms(["a"])
        with pytest.raises(DictionaryError):
            dictionary.id_of("zzz")
        assert dictionary.get("zzz") is None
        assert dictionary.get("zzz", -1) == -1

    def test_bad_identifier(self):
        dictionary = Dictionary.from_terms(["a"])
        with pytest.raises(DictionaryError):
            dictionary.term_of(5)

    def test_contains(self):
        dictionary = Dictionary.from_terms(["x"])
        assert "x" in dictionary
        assert "y" not in dictionary

    def test_terms_in_id_order(self):
        dictionary = Dictionary.from_terms(["m", "z", "a"])
        assert dictionary.terms() == ["a", "m", "z"]

    def test_prefix_range(self):
        dictionary = Dictionary.from_terms(
            ["http://a/1", "http://a/2", "http://b/1", "ftp://x"])
        lo, hi = dictionary.prefix_range("http://a/")
        matching = dictionary.terms()[lo:hi]
        assert matching == ["http://a/1", "http://a/2"]

    def test_round_trip_all(self):
        terms = [f"term-{i:03d}" for i in range(50)]
        dictionary = Dictionary.from_terms(terms)
        for term in terms:
            assert dictionary.term_of(dictionary.id_of(term)) == term


class TestNumericIndex:
    def test_value_round_trip(self):
        index = NumericIndex([5.0, 1.0, 3.0, 10.0])
        assert len(index) == 4
        assert [index.value_at(i) for i in range(4)] == [1.0, 3.0, 5.0, 10.0]

    def test_scaled_decimals(self):
        index = NumericIndex([1.25, 0.5, 2.75], scale=2)
        assert [index.value_at(i) for i in range(3)] == [0.5, 1.25, 2.75]

    def test_id_range_exclusive(self):
        index = NumericIndex([1, 2, 3, 4, 5, 6])
        lo, hi = index.id_range(2, 5)
        assert [index.value_at(i) for i in range(lo, hi)] == [3.0, 4.0]

    def test_id_range_inclusive(self):
        index = NumericIndex([1, 2, 3, 4, 5, 6])
        lo, hi = index.id_range(2, 5, inclusive=True)
        assert [index.value_at(i) for i in range(lo, hi)] == [2.0, 3.0, 4.0, 5.0]

    def test_id_range_bounds_absent_from_data(self):
        index = NumericIndex([10, 20, 30, 40])
        lo, hi = index.id_range(12, 35)
        assert [index.value_at(i) for i in range(lo, hi)] == [20.0, 30.0]

    def test_id_range_outside_universe(self):
        index = NumericIndex([10, 20, 30])
        lo, hi = index.id_range(100, 200)
        assert lo >= hi or lo == len(index)
        lo, hi = index.id_range(0, 5)
        assert list(range(lo, hi)) == []

    def test_empty(self):
        index = NumericIndex([])
        assert index.id_range(0, 10) == (0, 0)

    def test_size_in_bits_positive(self):
        assert NumericIndex([1, 2, 3]).size_in_bits() > 0


class TestRdfDictionary:
    def test_from_term_triples(self):
        term_triples = [
            ("<s1>", "<p1>", "<o1>"),
            ("<s1>", "<p2>", '"literal"'),
            ("<s2>", "<p1>", "<o1>"),
        ]
        dictionary, store = RdfDictionary.from_term_triples(term_triples)
        assert len(store) == 3
        # Subjects and objects share one resource dictionary: s1, s2, o1, literal.
        assert len(dictionary.subjects) == 4
        assert len(dictionary.predicates) == 2
        assert dictionary.objects is dictionary.subjects
        for term_triple in term_triples:
            encoded = dictionary.encode(*term_triple)
            assert encoded in store
            assert dictionary.decode(encoded) == term_triple

    def test_size_summary(self):
        dictionary, _ = RdfDictionary.from_term_triples([("<a>", "<b>", "<c>")])
        assert dictionary.size_summary() == {"subjects": 2, "predicates": 1, "objects": 2}

    def test_shared_subject_object_space(self):
        # The same term keeps one ID whether it appears as subject or object,
        # so joins on a shared variable are meaningful.
        dictionary, _ = RdfDictionary.from_term_triples(
            [("<x>", "<p>", "<x>"), ("<a>", "<p>", "<b>")])
        assert dictionary.subjects.id_of("<x>") == dictionary.objects.id_of("<x>")
