"""Property-based cross-checks: every index layout and every baseline must
agree with the naive reference on arbitrary triple sets and patterns."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import (
    BitMatIndex,
    HdtFoqIndex,
    Rdf3xIndex,
    TripleBitIndex,
    VerticalPartitioningIndex,
)
from repro.core.builder import build_index
from repro.core.patterns import PatternKind, TriplePattern, reference_select
from repro.rdf.triples import TripleStore

triple_sets = st.sets(
    st.tuples(st.integers(0, 15), st.integers(0, 4), st.integers(0, 15)),
    min_size=1, max_size=80)


def _check_index_against_reference(index, triples):
    triples = sorted(triples)
    probes = triples[:: max(1, len(triples) // 8)]
    for triple in probes:
        for kind in PatternKind:
            pattern = TriplePattern.from_triple_with_wildcards(triple, kind)
            assert index.select_list(pattern) == reference_select(triples, pattern)
    # Also probe IDs that are absent.
    assert index.select_list((1000, None, None)) == []
    assert index.select_list((None, 1000, None)) == []
    assert index.select_list((None, None, 1000)) == []


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(triple_sets, st.sampled_from(["3t", "cc", "2tp", "2to"]))
def test_paper_layouts_match_reference(triples, layout):
    """Property: the four paper layouts answer every pattern kind correctly."""
    store = TripleStore.from_triples(sorted(triples))
    index = build_index(store, layout)
    assert index.num_triples == len(triples)
    _check_index_against_reference(index, triples)


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(triple_sets,
       st.sampled_from([HdtFoqIndex, TripleBitIndex, VerticalPartitioningIndex,
                        Rdf3xIndex, BitMatIndex]))
def test_baselines_match_reference(triples, index_class):
    """Property: every baseline answers every pattern kind correctly."""
    store = TripleStore.from_triples(sorted(triples))
    index = index_class(store)
    assert index.num_triples == len(triples)
    _check_index_against_reference(index, triples)


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(triple_sets)
def test_layouts_agree_with_each_other(triples):
    """Property: all four layouts return identical result sets."""
    store = TripleStore.from_triples(sorted(triples))
    indexes = [build_index(store, layout) for layout in ("3t", "cc", "2tp", "2to")]
    probe = sorted(triples)[0]
    for kind in PatternKind:
        pattern = TriplePattern.from_triple_with_wildcards(probe, kind)
        results = [index.select_list(pattern) for index in indexes]
        assert all(r == results[0] for r in results[1:])
