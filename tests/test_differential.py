"""Cross-index, cross-executor differential testing.

Hypothesis generates random small graphs and random BGPs, and every
combination of index family (3T, CC, 2Tp, 2To) and executor (nested-loop,
wcoj) must produce the *same sorted solution multiset* as the vertical
partitioning baseline — an implementation so simple it serves as the oracle.

Join reordering and intersection code is exactly where subtle bugs hide
(off-by-one seeks, over-approximated candidate sets surviving to the output,
duplicate-variable patterns, disconnected BGPs), so this harness is the
safety net under both executors and all index families at once.

The dynamic sweep extends this to interleaved *update* sequences: random
inserts and deletes applied through the delta overlay, queried after every
step, then compacted and re-queried — the base+delta view and the
post-compaction index must agree with an oracle rebuilt from the plain
triple set at every point.

Run locally with a bigger budget::

    PYTHONPATH=src HYPOTHESIS_PROFILE=ci python -m pytest tests/test_differential.py

The ``ci`` profile disables deadlines and prints the failure blob so any
counterexample can be replayed exactly.
"""

import os
import warnings

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.vertical_partitioning import VerticalPartitioningIndex
from repro.core.builder import IndexBuilder
from repro.dynamic import DynamicIndex
from repro.queries.planner import CartesianProductWarning, execute_bgp
from repro.queries.sparql import (
    BasicGraphPattern,
    SparqlQuery,
    TriplePatternTemplate,
)
from repro.rdf.triples import TripleStore

LAYOUTS = ("3t", "cc", "2tp", "2to")
ENGINES = ("nested", "wcoj")

settings.register_profile(
    "default", max_examples=25,
    suppress_health_check=[HealthCheck.too_slow], deadline=None)
settings.register_profile(
    "ci", max_examples=60, deadline=None, print_blob=True,
    suppress_health_check=[HealthCheck.too_slow])
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))

#: Small universes keep the graphs dense enough that joins actually match.
NUM_SUBJECTS, NUM_PREDICATES, NUM_OBJECTS = 12, 3, 12
VARIABLES = ("?a", "?b", "?c", "?d")


@st.composite
def graphs(draw):
    """A deduplicated, densified triple store with 1..60 triples."""
    triples = draw(st.lists(
        st.tuples(st.integers(0, NUM_SUBJECTS - 1),
                  st.integers(0, NUM_PREDICATES - 1),
                  st.integers(0, NUM_OBJECTS - 1)),
        min_size=1, max_size=60))
    return TripleStore.from_triples(triples, densify=True)


@st.composite
def templates(draw, store):
    """One triple pattern over ``store``'s dense ID spaces."""
    terms = []
    for universe in (store.num_subjects, store.num_predicates,
                     store.num_objects):
        if draw(st.booleans()):
            terms.append(draw(st.sampled_from(VARIABLES)))
        else:
            # Mostly in-universe constants; occasionally out of range to
            # exercise the empty-result paths.
            value = draw(st.integers(0, universe + 1))
            terms.append(value)
    return TriplePatternTemplate(*terms)


@st.composite
def cases(draw):
    store = draw(graphs())
    num_templates = draw(st.integers(1, 3))
    bgp = BasicGraphPattern([draw(templates(store))
                             for _ in range(num_templates)])
    return store, bgp


def solution_bag(results):
    return sorted(tuple(sorted(binding.items())) for binding in results)


def reference_solutions(store, query):
    """Oracle: the nested-loop executor over the vertical partitioning index."""
    oracle = VerticalPartitioningIndex(store)
    results, _ = execute_bgp(oracle, query, store=store, engine="nested")
    return solution_bag(results)


@given(cases())
def test_executors_and_layouts_agree(case):
    store, bgp = case
    if not bgp.variables():
        # Variable-free BGPs are containment checks; covered elsewhere.
        return
    query = SparqlQuery(projection=bgp.variables(), bgp=bgp)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", CartesianProductWarning)
        expected = reference_solutions(store, query)
        builder = IndexBuilder(store)
        for layout in LAYOUTS:
            index = builder.build(layout)
            for engine in ENGINES:
                results, statistics = execute_bgp(index, query, store=store,
                                                  engine=engine)
                assert solution_bag(results) == expected, (
                    f"{layout}/{engine} diverged from the oracle on "
                    f"{[t.terms() for t in bgp.templates]}")
                assert statistics.engine == engine


@given(cases(), st.integers(0, 70), st.integers(0, 10))
def test_pagination_is_consistent_per_engine(case, offset, limit):
    """offset/limit slice the engine's own full enumeration, on every layout."""
    store, bgp = case
    if not bgp.variables():
        return
    query = SparqlQuery(projection=bgp.variables(), bgp=bgp)
    index = IndexBuilder(store).build("2tp")
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", CartesianProductWarning)
        for engine in ENGINES:
            full, _ = execute_bgp(index, query, store=store, engine=engine)
            page, _ = execute_bgp(index, query, store=store, engine=engine,
                                  offset=offset, limit=limit)
            assert page == full[offset:offset + limit]


@given(cases())
def test_wcoj_oracle_fallback_without_seek_cursors(case):
    """The wcoj executor is correct on indexes with no native cursor support."""
    store, bgp = case
    if not bgp.variables():
        return
    query = SparqlQuery(projection=bgp.variables(), bgp=bgp)
    oracle = VerticalPartitioningIndex(store)
    assert not hasattr(oracle, "seek_cursor")
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", CartesianProductWarning)
        expected = reference_solutions(store, query)
        results, _ = execute_bgp(oracle, query, store=store, engine="wcoj")
        assert solution_bag(results) == expected


@st.composite
def update_sequences(draw):
    """A base graph, a BGP, and 2..4 interleaved insert/delete steps."""
    store = draw(graphs())
    num_templates = draw(st.integers(1, 3))
    bgp = BasicGraphPattern([draw(templates(store))
                             for _ in range(num_templates)])
    triple = st.tuples(st.integers(0, NUM_SUBJECTS - 1),
                       st.integers(0, NUM_PREDICATES - 1),
                       st.integers(0, NUM_OBJECTS - 1))
    base_triples = list(store)
    steps = []
    for _ in range(draw(st.integers(2, 4))):
        op = draw(st.sampled_from(("insert", "delete")))
        if op == "delete" and base_triples and draw(st.booleans()):
            # Bias deletes toward triples that actually exist.
            batch = draw(st.lists(st.sampled_from(base_triples),
                                  min_size=1, max_size=4))
        else:
            batch = draw(st.lists(triple, min_size=1, max_size=4))
        steps.append((op, batch))
    return store, bgp, steps


def oracle_solutions(triples, query, store):
    """The VP baseline rebuilt from the plain triple set."""
    if not triples:
        return []  # every template needs a matching triple: no solutions
    oracle = VerticalPartitioningIndex(TripleStore.from_triples(triples))
    results, _ = execute_bgp(oracle, query, store=store, engine="nested")
    return solution_bag(results)


@given(update_sequences())
def test_interleaved_updates_match_oracle(case):
    """Acceptance: base+delta equals the oracle at every step, both engines,
    all layouts — and equals itself again after ``compact``."""
    store, bgp, steps = case
    if not bgp.variables():
        return
    query = SparqlQuery(projection=bgp.variables(), bgp=bgp)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", CartesianProductWarning)
        builder = IndexBuilder(store)
        dynamics = {layout: DynamicIndex(builder.build(layout))
                    for layout in LAYOUTS}
        current = set(store)
        for op, batch in steps:
            if op == "insert":
                current |= set(batch)
            else:
                current -= set(batch)
            for dynamic in dynamics.values():
                if op == "insert":
                    dynamic.insert(batch)
                else:
                    dynamic.delete(batch)
            expected = oracle_solutions(current, query, store)
            for layout, dynamic in dynamics.items():
                assert sorted(dynamic.select((None, None, None))) \
                    == sorted(current), f"{layout} triple set diverged"
                for engine in ENGINES:
                    results, _ = execute_bgp(dynamic, query, store=store,
                                             engine=engine)
                    assert solution_bag(results) == expected, (
                        f"{layout}/{engine} diverged under delta on "
                        f"{[t.terms() for t in bgp.templates]} after "
                        f"{op} {batch}")
        if not current:
            return  # compaction of a fully-deleted index is refused
        expected = oracle_solutions(current, query, store)
        for layout, dynamic in dynamics.items():
            before = {engine: solution_bag(
                execute_bgp(dynamic, query, store=store, engine=engine)[0])
                for engine in ENGINES}
            dynamic.compact()
            for engine in ENGINES:
                results, _ = execute_bgp(dynamic, query, store=store,
                                         engine=engine)
                # The same query must return the same solution multiset
                # before and after compaction, and match the oracle.
                assert solution_bag(results) == before[engine] == expected, (
                    f"{layout}/{engine} diverged after compact")


@pytest.mark.parametrize("layout", LAYOUTS)
def test_known_triangle_fixture(layout):
    """A deterministic anchor next to the generative sweep."""
    store = TripleStore.from_triples(
        [(0, 0, 1), (1, 0, 2), (2, 0, 0), (1, 0, 0), (2, 1, 2)], densify=True)
    index = IndexBuilder(store).build(layout)
    bgp = BasicGraphPattern([
        TriplePatternTemplate("?a", 0, "?b"),
        TriplePatternTemplate("?b", 0, "?c"),
        TriplePatternTemplate("?c", 0, "?a"),
    ])
    query = SparqlQuery(projection=bgp.variables(), bgp=bgp)
    nested, _ = execute_bgp(index, query, store=store, engine="nested")
    wcoj, _ = execute_bgp(index, query, store=store, engine="wcoj")
    assert solution_bag(nested) == solution_bag(wcoj)
    assert solution_bag(wcoj) == reference_solutions(store, query)
