"""Shared fixtures for the test suite.

Heavier artifacts (stores, indexes) are session-scoped so the cost of building
them is paid once; tests must therefore treat them as read-only.
"""

from __future__ import annotations

import random

import pytest

from repro.core.builder import IndexBuilder
from repro.datasets.synthetic import generate_from_profile
from repro.datasets.watdiv import generate_watdiv
from repro.rdf.triples import TripleStore


def make_skewed_triples(count: int, num_subjects: int = 180, num_predicates: int = 12,
                        num_objects: int = 260, seed: int = 13) -> list:
    """Random triples with mild skew, deduplicated and sorted."""
    rng = random.Random(seed)
    triples = set()
    while len(triples) < count:
        subject = min(rng.randint(0, num_subjects - 1),
                      rng.randint(0, num_subjects - 1))
        predicate = min(rng.randint(0, num_predicates - 1),
                        rng.randint(0, num_predicates - 1))
        obj = min(rng.randint(0, num_objects - 1), rng.randint(0, num_objects - 1))
        triples.add((subject, predicate, obj))
    return sorted(triples)


@pytest.fixture(scope="session")
def small_store() -> TripleStore:
    """A small, skewed, deduplicated store with dense per-role ID spaces."""
    return TripleStore.from_triples(make_skewed_triples(2500), densify=True)


@pytest.fixture(scope="session")
def reference_triples(small_store) -> list:
    """The triples of :func:`small_store` as a sorted ground-truth list."""
    return sorted(small_store)


@pytest.fixture(scope="session")
def builder(small_store) -> IndexBuilder:
    """An :class:`IndexBuilder` over the small store."""
    return IndexBuilder(small_store)


@pytest.fixture(scope="session")
def index_3t(builder):
    """The 3T index over the small store."""
    return builder.build("3t")


@pytest.fixture(scope="session")
def index_cc(builder):
    """The CC index over the small store."""
    return builder.build("cc")


@pytest.fixture(scope="session")
def index_2tp(builder):
    """The 2Tp index over the small store."""
    return builder.build("2tp")


@pytest.fixture(scope="session")
def index_2to(builder):
    """The 2To index over the small store."""
    return builder.build("2to")


@pytest.fixture(scope="session")
def all_indexes(index_3t, index_cc, index_2tp, index_2to):
    """All four paper layouts keyed by name."""
    return {"3t": index_3t, "cc": index_cc, "2tp": index_2tp, "2to": index_2to}


@pytest.fixture(scope="session")
def dbpedia_like_store() -> TripleStore:
    """A scaled-down DBpedia-shaped dataset (used by statistics tests)."""
    return generate_from_profile("dbpedia", 15_000, seed=5)


@pytest.fixture(scope="session")
def watdiv_dataset():
    """A small WatDiv-like dataset with numeric literals for range queries."""
    return generate_watdiv(scale=120, seed=9)
