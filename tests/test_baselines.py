"""Tests for the baseline indexes (HDT-FoQ, TripleBit, vertical partitioning,
RDF-3X-like, BitMat-like)."""

import pytest

from repro.baselines import (
    BitMatIndex,
    HdtFoqIndex,
    Rdf3xIndex,
    TripleBitIndex,
    VerticalPartitioningIndex,
)
from repro.core.patterns import PatternKind, TriplePattern, reference_select
from repro.errors import IndexBuildError
from repro.rdf.triples import TripleStore

ALL_BASELINES = [HdtFoqIndex, TripleBitIndex, VerticalPartitioningIndex,
                 Rdf3xIndex, BitMatIndex]


@pytest.fixture(scope="module", params=ALL_BASELINES,
                ids=lambda cls: cls.name)
def baseline(request, small_store):
    return request.param(small_store)


class TestCommonBehaviour:
    def test_empty_store_rejected(self):
        empty = TripleStore.from_triples([])
        for cls in ALL_BASELINES:
            with pytest.raises(IndexBuildError):
                cls(empty)

    def test_num_triples(self, baseline, reference_triples):
        assert baseline.num_triples == len(reference_triples)

    @pytest.mark.parametrize("kind", list(PatternKind))
    def test_matches_reference(self, baseline, reference_triples, kind):
        sample = reference_triples[:: max(1, len(reference_triples) // 15)][:15]
        for triple in sample:
            pattern = TriplePattern.from_triple_with_wildcards(triple, kind)
            assert baseline.select_list(pattern) == \
                reference_select(reference_triples, pattern)
            if kind is PatternKind.ALL_WILDCARDS:
                break

    def test_unknown_ids_return_nothing(self, baseline, small_store):
        max_subject = int(small_store.column(0).max())
        max_predicate = int(small_store.column(1).max())
        max_object = int(small_store.column(2).max())
        assert baseline.select_list((max_subject + 7, None, None)) == []
        assert baseline.select_list((None, max_predicate + 7, None)) == []
        assert baseline.select_list((None, None, max_object + 7)) == []

    def test_space_accounting(self, baseline):
        assert baseline.size_in_bits() > 0
        assert baseline.bits_per_triple() > 0
        breakdown = baseline.space_breakdown()
        assert sum(breakdown.values()) == pytest.approx(baseline.size_in_bits())

    def test_contains(self, baseline, reference_triples):
        assert baseline.contains(reference_triples[0])
        assert not baseline.contains((10**6, 10**6, 10**6))


class TestHdtFoq:
    def test_wavelet_tree_is_used_for_predicates(self, small_store):
        index = HdtFoqIndex(small_store)
        assert "predicates_wavelet_tree" in index.space_breakdown()

    def test_object_index_components(self, small_store):
        index = HdtFoqIndex(small_store)
        breakdown = index.space_breakdown()
        assert "object_index_pointers" in breakdown
        assert "object_index_positions" in breakdown

    def test_predicate_pattern_via_wavelet_select(self, small_store, reference_triples):
        index = HdtFoqIndex(small_store)
        predicate = reference_triples[0][1]
        expected = sorted(t for t in reference_triples if t[1] == predicate)
        assert index.select_list((None, predicate, None)) == expected


class TestTripleBit:
    def test_two_buckets_per_predicate(self, small_store):
        index = TripleBitIndex(small_store)
        breakdown = index.space_breakdown()
        assert breakdown["so_buckets"] > 0
        assert breakdown["os_buckets"] > 0

    def test_duplicated_storage_is_larger_than_single_permutation(self, small_store):
        triplebit = TripleBitIndex(small_store)
        vertical = VerticalPartitioningIndex(small_store)
        assert triplebit.size_in_bits() > vertical.size_in_bits()

    def test_supported_kinds_include_spo(self, small_store):
        assert "spo" in TripleBitIndex(small_store).supported_kinds()


class TestRdf3x:
    def test_six_permutations_materialised(self, small_store):
        index = Rdf3xIndex(small_store)
        breakdown = index.space_breakdown()
        for name in ("spo", "sop", "pso", "pos", "osp", "ops"):
            assert name in breakdown

    def test_aggregates_add_space(self, small_store):
        with_aggregates = Rdf3xIndex(small_store, include_aggregates=True)
        without = Rdf3xIndex(small_store, include_aggregates=False)
        assert with_aggregates.size_in_bits() > without.size_in_bits()

    def test_rdf3x_is_much_larger_than_2tp(self, small_store, index_2tp):
        index = Rdf3xIndex(small_store)
        assert index.size_in_bits() > 2 * index_2tp.size_in_bits()


class TestBitMat:
    def test_two_slice_sets(self, small_store):
        index = BitMatIndex(small_store)
        breakdown = index.space_breakdown()
        assert breakdown["subject_object_slices"] > 0
        assert breakdown["object_subject_slices"] > 0

    def test_bitmat_larger_than_2tp(self, small_store, index_2tp):
        # The paper measures 483 bits/triple for BitMat vs 54 for 2Tp.
        assert BitMatIndex(small_store).size_in_bits() > index_2tp.size_in_bits()


class TestVerticalPartitioning:
    def test_one_table_per_predicate(self, small_store):
        index = VerticalPartitioningIndex(small_store)
        # One entry per predicate table plus the table directory.
        assert len(index.space_breakdown()) == small_store.num_predicates + 1

    def test_predicate_bound_patterns(self, small_store, reference_triples):
        index = VerticalPartitioningIndex(small_store)
        s, p, o = reference_triples[0]
        expected = sorted(t for t in reference_triples if t[1] == p)
        assert index.select_list((None, p, None)) == expected
