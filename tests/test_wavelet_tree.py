"""Tests for the wavelet tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.structures.wavelet_tree import WaveletTree

SEQUENCE = [3, 1, 4, 1, 5, 2, 6, 5, 3, 5, 0, 7, 1]


class TestConstruction:
    def test_round_trip(self):
        tree = WaveletTree(SEQUENCE)
        assert tree.to_list() == SEQUENCE
        assert len(tree) == len(SEQUENCE)

    def test_empty(self):
        tree = WaveletTree([])
        assert len(tree) == 0
        assert tree.to_list() == []

    def test_single_symbol(self):
        tree = WaveletTree([4, 4, 4, 4])
        assert tree.to_list() == [4, 4, 4, 4]
        assert tree.count(4) == 4
        assert tree.count(3) == 0

    def test_negative_rejected(self):
        with pytest.raises(EncodingError):
            WaveletTree([1, -1])

    def test_num_levels(self):
        assert WaveletTree([0, 1]).num_levels == 1
        assert WaveletTree([0, 7]).num_levels == 3
        assert WaveletTree([0, 8]).num_levels == 4
        assert WaveletTree(SEQUENCE).max_symbol == 7


class TestAccess:
    def test_access_each_position(self):
        tree = WaveletTree(SEQUENCE)
        for i, symbol in enumerate(SEQUENCE):
            assert tree.access(i) == symbol
            assert tree[i] == symbol

    def test_access_out_of_range(self):
        tree = WaveletTree([1, 2])
        with pytest.raises(IndexError):
            tree.access(2)


class TestRank:
    def test_rank_matches_prefix_counts(self):
        tree = WaveletTree(SEQUENCE)
        for symbol in range(8):
            for position in range(len(SEQUENCE) + 1):
                expected = SEQUENCE[:position].count(symbol)
                assert tree.rank(symbol, position) == expected

    def test_rank_unknown_symbol(self):
        tree = WaveletTree(SEQUENCE)
        assert tree.rank(100, len(SEQUENCE)) == 0

    def test_rank_range(self):
        tree = WaveletTree(SEQUENCE)
        assert tree.rank_range(5, 4, 10) == SEQUENCE[4:10].count(5)
        with pytest.raises(IndexError):
            tree.rank_range(5, 6, 2)

    def test_count(self):
        tree = WaveletTree(SEQUENCE)
        assert tree.count(1) == 3
        assert tree.count(5) == 3
        assert tree.count(7) == 1


class TestSelect:
    def test_select_matches_occurrences(self):
        tree = WaveletTree(SEQUENCE)
        for symbol in set(SEQUENCE):
            occurrences = [i for i, s in enumerate(SEQUENCE) if s == symbol]
            for k, expected in enumerate(occurrences):
                assert tree.select(symbol, k) == expected

    def test_select_too_many(self):
        tree = WaveletTree(SEQUENCE)
        with pytest.raises(IndexError):
            tree.select(7, 1)

    def test_select_unknown_symbol(self):
        tree = WaveletTree(SEQUENCE)
        with pytest.raises(IndexError):
            tree.select(99, 0)

    def test_occurrences_iterator(self):
        tree = WaveletTree(SEQUENCE)
        assert list(tree.occurrences(5)) == [4, 7, 9]


class TestSpace:
    def test_size_scales_with_alphabet(self):
        narrow = WaveletTree([i % 2 for i in range(1000)])
        wide = WaveletTree([i % 256 for i in range(1000)])
        assert narrow.size_in_bits() < wide.size_in_bits()


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=300), min_size=1, max_size=250))
def test_wavelet_tree_properties(values):
    """Property: access/rank/select agree with the plain list."""
    tree = WaveletTree(values)
    assert tree.to_list() == values
    probe_symbols = set(values[:10]) | {max(values), min(values)}
    for symbol in probe_symbols:
        occurrences = [i for i, s in enumerate(values) if s == symbol]
        assert tree.count(symbol) == len(occurrences)
        for k, expected in enumerate(occurrences):
            assert tree.select(symbol, k) == expected
        assert tree.rank(symbol, len(values)) == len(occurrences)
