"""Tests for the 3-level PermutationTrie and its algorithms."""

import numpy as np
import pytest

from repro.core.trie import PermutationTrie, TrieConfig
from repro.errors import IndexBuildError

# The running example of the paper's Fig. 1.
FIG1_TRIPLES = [(0, 0, 2), (0, 0, 3), (0, 1, 0), (1, 0, 4), (1, 2, 0), (1, 2, 1),
                (2, 0, 2), (2, 1, 0), (3, 2, 1), (3, 2, 2), (4, 2, 4)]


def build_trie(triples=FIG1_TRIPLES, config=None, **kwargs):
    triples = sorted(triples)
    array = np.asarray(triples, dtype=np.int64)
    return PermutationTrie.from_sorted_columns(
        array[:, 0], array[:, 1], array[:, 2], config=config, **kwargs)


class TestConstruction:
    def test_counts(self):
        trie = build_trie()
        assert trie.num_triples == len(FIG1_TRIPLES)
        assert trie.num_first == 5
        assert trie.num_pairs == len({(s, p) for s, p, o in FIG1_TRIPLES})

    def test_children_ranges_match_fig1(self):
        # Fig. 1 pointers: levels[0].pointers = 0 2 3 4 6 7 8 10 11 for level 1
        # grouped as 0..2, 2..3, ... ; the level-0 pointers are 0 2 4 6 7 8.
        trie = build_trie()
        assert trie.children_range(0) == (0, 2)
        assert trie.children_range(1) == (2, 4)
        assert trie.children_range(2) == (4, 6)
        assert trie.children_range(3) == (6, 7)
        assert trie.children_range(4) == (7, 8)

    def test_children_values(self):
        trie = build_trie()
        assert list(trie.children_of(0)) == [0, 1]
        assert list(trie.children_of(1)) == [0, 2]
        assert list(trie.children_of(4)) == [2]
        assert trie.num_children(0) == 2

    def test_pair_children_range(self):
        trie = build_trie()
        # Pair (0, 0) is the first level-1 node and has children {2, 3}.
        begin, end = trie.pair_children_range(0)
        assert list(trie.scan_third(begin, end)) == [2, 3]

    def test_empty_input_builds_empty_trie(self):
        # Empty shards are legitimate; every pointer range collapses to
        # [0, 0) and all traversals come back empty.
        empty = np.zeros(0, dtype=np.int64)
        trie = PermutationTrie.from_sorted_columns(empty, empty, empty)
        assert trie.num_triples == 0
        assert list(trie.children_of(0)) == []
        assert trie.num_children(0) == 0

    def test_mismatched_columns_rejected(self):
        with pytest.raises(IndexBuildError):
            PermutationTrie.from_sorted_columns(
                np.array([0, 1]), np.array([0]), np.array([0, 1]))

    def test_gap_in_first_level_is_supported(self):
        # First-level IDs need not be contiguous; missing IDs have no children.
        triples = [(0, 0, 1), (3, 0, 2)]
        trie = build_trie(triples)
        assert trie.num_first == 4
        assert trie.children_range(1) == (1, 1)
        assert list(trie.select(1, None, None)) == []
        assert list(trie.select(3, None, None)) == [(3, 0, 2)]

    def test_num_first_override(self):
        trie = build_trie(num_first=10)
        assert trie.num_first == 10
        assert list(trie.select(9, None, None)) == []

    def test_third_override_must_match_length(self):
        array = np.asarray(sorted(FIG1_TRIPLES), dtype=np.int64)
        with pytest.raises(IndexBuildError):
            PermutationTrie.from_sorted_columns(
                array[:, 0], array[:, 1], array[:, 2],
                third_override=np.array([1, 2, 3]))


class TestSelect:
    def test_paper_example_pattern(self):
        # The paper walks pattern (1, 2, ?) and expects (1, 2, 0) and (1, 2, 1).
        trie = build_trie()
        assert list(trie.select(1, 2, None)) == [(1, 2, 0), (1, 2, 1)]

    def test_full_lookup(self):
        trie = build_trie()
        assert list(trie.select(3, 2, 2)) == [(3, 2, 2)]
        assert list(trie.select(3, 2, 9)) == []

    def test_one_bound_component(self):
        trie = build_trie()
        assert list(trie.select(0, None, None)) == [(0, 0, 2), (0, 0, 3), (0, 1, 0)]

    def test_out_of_range_first(self):
        trie = build_trie()
        assert list(trie.select(99, None, None)) == []

    def test_missing_second(self):
        trie = build_trie()
        assert list(trie.select(0, 2, None)) == []

    def test_scan_all(self):
        trie = build_trie()
        assert list(trie.scan_all()) == sorted(FIG1_TRIPLES)
        assert list(trie.select(None, None, None)) == sorted(FIG1_TRIPLES)

    def test_non_prefix_pattern_rejected(self):
        trie = build_trie()
        with pytest.raises(IndexBuildError):
            list(trie.select(None, 2, None))

    @pytest.mark.parametrize("config", [
        TrieConfig(level1_nodes="compact", level2_nodes="compact"),
        TrieConfig(level1_nodes="ef", level2_nodes="ef"),
        TrieConfig(level1_nodes="pef", level2_nodes="vbyte"),
        TrieConfig(level1_nodes="vbyte", level2_nodes="pef"),
    ])
    def test_all_codecs_agree(self, config):
        trie = build_trie(config=config)
        assert list(trie.scan_all()) == sorted(FIG1_TRIPLES)
        assert list(trie.select(1, 2, None)) == [(1, 2, 0), (1, 2, 1)]
        assert list(trie.enumerate_pairs(1, 0)) == [(1, 2, 0)]


class TestEnumerate:
    def test_enumerate_pairs(self):
        trie = build_trie()
        # subject 1 relates to object 0 through predicate 2 only.
        assert list(trie.enumerate_pairs(1, 0)) == [(1, 2, 0)]
        # subject 0 relates to object 2 only through predicate 0.
        assert list(trie.enumerate_pairs(0, 2)) == [(0, 0, 2)]
        assert list(trie.enumerate_pairs(0, 4)) == []
        assert list(trie.enumerate_pairs(42, 0)) == []

    def test_enumerate_multiple_predicates(self):
        triples = [(5, 0, 7), (5, 1, 7), (5, 2, 8)]
        trie = build_trie(triples)
        assert list(trie.enumerate_pairs(5, 7)) == [(5, 0, 7), (5, 1, 7)]


class TestChildHelpers:
    def test_find_child_and_rank(self):
        trie = build_trie()
        assert trie.find_child(1, 2) == 3
        assert trie.find_child(1, 1) == -1
        assert trie.child_rank(1, 2) == 1
        assert trie.child_rank(1, 0) == 0
        assert trie.child_rank(1, 1) == -1

    def test_child_by_rank(self):
        trie = build_trie()
        assert trie.child_by_rank(1, 0) == 0
        assert trie.child_by_rank(1, 1) == 2
        with pytest.raises(IndexError):
            trie.child_by_rank(1, 2)

    def test_map_unmap_round_trip(self):
        trie = build_trie()
        for first in range(trie.num_first):
            for child in trie.children_of(first):
                rank = trie.child_rank(first, child)
                assert trie.child_by_rank(first, rank) == child


class TestSpaceAndStats:
    def test_space_breakdown_keys(self):
        trie = build_trie()
        breakdown = trie.space_breakdown()
        assert set(breakdown) == {"pointers0", "nodes1", "pointers1", "nodes2"}
        assert trie.size_in_bits() == sum(breakdown.values())
        assert trie.size_in_bits() > 0

    def test_children_statistics(self):
        trie = build_trie()
        stats = trie.children_statistics()
        assert stats["level1"]["maximum"] == 2
        assert stats["level1"]["average"] == pytest.approx(8 / 5)
        assert stats["level2"]["maximum"] == 2
        assert stats["level2"]["average"] == pytest.approx(11 / 8)
