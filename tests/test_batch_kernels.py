"""Property tests for the vectorised batch cursor kernels.

The batch protocol's contract (see ``docs/ARCHITECTURE.md``) is exactness:
``decode_block(begin, end)`` must equal the scalar ``scan`` of the same
range, and ``next_geq_batch(values, begin, end)`` must equal the scalar
``next_geq`` probe by probe — including the no-successor ``(end, -1)``
sentinel.  Hypothesis drives every codec through random monotone sequences,
random sub-ranges and random probe sets (in and out of universe) so the
vectorised kernels cannot quietly diverge from the reference loops.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sequences.compact import CompactVector
from repro.sequences.elias_fano import EliasFano
from repro.sequences.partitioned_elias_fano import PartitionedEliasFano
from repro.sequences.vbyte import VByte

CODECS = {
    "elias-fano": lambda values: EliasFano.from_values(values),
    "pef": lambda values: PartitionedEliasFano.from_values(
        values, partition_size=8),
    "vbyte": lambda values: VByte.from_values(values, block_size=8),
    "compact": lambda values: CompactVector.from_values(values),
}

# Small partition/block sizes above force the multi-partition code paths
# even with modest sequences; values stay small so duplicates and dense
# runs (the RUN/BITMAP partition kinds) occur often.
monotone_values = st.lists(
    st.integers(min_value=0, max_value=300), min_size=1, max_size=80,
).map(sorted)

probe_values = st.lists(
    st.integers(min_value=-5, max_value=350), min_size=0, max_size=20)


@st.composite
def sequence_range_probes(draw):
    values = draw(monotone_values)
    begin = draw(st.integers(min_value=0, max_value=len(values)))
    end = draw(st.integers(min_value=begin, max_value=len(values)))
    probes = draw(probe_values)
    return values, begin, end, probes


@pytest.mark.parametrize("codec", sorted(CODECS))
@settings(max_examples=60, deadline=None)
@given(case=sequence_range_probes())
def test_next_geq_batch_matches_scalar(codec, case):
    values, begin, end, probes = case
    sequence = CODECS[codec](values)
    positions, elements = sequence.next_geq_batch(probes, begin, end)
    assert positions.shape == elements.shape == (len(probes),)
    for i, probe in enumerate(probes):
        expected_position, expected_element = sequence.next_geq(
            probe, begin, end)
        assert int(positions[i]) == expected_position, (codec, probe)
        assert int(elements[i]) == expected_element, (codec, probe)


@pytest.mark.parametrize("codec", sorted(CODECS))
@settings(max_examples=60, deadline=None)
@given(case=sequence_range_probes())
def test_decode_block_matches_scan(codec, case):
    values, begin, end, _ = case
    sequence = CODECS[codec](values)
    block = sequence.decode_block(begin, end)
    assert block.dtype == np.int64
    assert block.tolist() == list(sequence.scan(begin, end))
    assert block.tolist() == values[begin:end]


@pytest.mark.parametrize("codec", sorted(CODECS))
def test_batch_kernels_validate_ranges(codec):
    sequence = CODECS[codec]([1, 2, 3])
    with pytest.raises(IndexError):
        sequence.decode_block(0, 4)
    with pytest.raises(IndexError):
        sequence.next_geq_batch([1], 2, 1)


@pytest.mark.parametrize("codec", sorted(CODECS))
def test_no_successor_yields_end_sentinel(codec):
    sequence = CODECS[codec]([2, 4, 6])
    positions, elements = sequence.next_geq_batch([7, 100], 0, 3)
    assert positions.tolist() == [3, 3]
    assert elements.tolist() == [-1, -1]
