"""Tests for the Elias-Fano codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.sequences.elias_fano import EliasFano


class TestConstruction:
    def test_round_trip(self):
        values = [0, 0, 3, 7, 7, 12, 100, 100, 1000]
        sequence = EliasFano.from_values(values)
        assert sequence.to_list() == values
        assert len(sequence) == len(values)

    def test_empty(self):
        sequence = EliasFano.from_values([])
        assert len(sequence) == 0
        assert sequence.to_list() == []

    def test_single_element(self):
        sequence = EliasFano.from_values([42])
        assert sequence.access(0) == 42

    def test_non_monotone_rejected(self):
        with pytest.raises(EncodingError):
            EliasFano.from_values([3, 2, 5])

    def test_negative_rejected(self):
        with pytest.raises(EncodingError):
            EliasFano.from_values([-1, 2])

    def test_explicit_universe(self):
        sequence = EliasFano.from_values([1, 5, 9], universe=1000)
        assert sequence.universe == 1000
        assert sequence.to_list() == [1, 5, 9]

    def test_universe_too_small_rejected(self):
        with pytest.raises(EncodingError):
            EliasFano.from_values([1, 5, 9], universe=9)

    def test_all_zeros(self):
        sequence = EliasFano.from_values([0] * 50)
        assert sequence.to_list() == [0] * 50

    def test_dense_consecutive(self):
        values = list(range(1000))
        sequence = EliasFano.from_values(values)
        assert sequence.access(500) == 500
        # Dense sequences need roughly 2 bits per element plus overhead.
        assert sequence.bits_per_element() < 5


class TestAccess:
    def test_access_positions(self):
        values = [2, 4, 4, 10, 90, 91, 2000]
        sequence = EliasFano.from_values(values)
        for i, expected in enumerate(values):
            assert sequence.access(i) == expected

    def test_access_out_of_range(self):
        sequence = EliasFano.from_values([1, 2])
        with pytest.raises(IndexError):
            sequence.access(2)

    def test_low_bits_zero_case(self):
        # Universe smaller than size forces zero low bits.
        values = [0, 0, 1, 1, 2, 2, 3, 3]
        sequence = EliasFano.from_values(values)
        assert sequence.low_bits == 0
        assert sequence.to_list() == values


class TestNextGeqAndFind:
    def test_next_geq_basic(self):
        sequence = EliasFano.from_values([3, 7, 7, 15, 40])
        assert sequence.next_geq(0) == (0, 3)
        assert sequence.next_geq(3) == (0, 3)
        assert sequence.next_geq(4) == (1, 7)
        assert sequence.next_geq(8) == (3, 15)
        assert sequence.next_geq(40) == (4, 40)
        assert sequence.next_geq(41) == (5, -1)

    def test_next_geq_restricted_range(self):
        sequence = EliasFano.from_values([3, 7, 7, 15, 40])
        position, element = sequence.next_geq(5, begin=2, end=4)
        assert (position, element) == (2, 7)
        position, element = sequence.next_geq(50, begin=0, end=3)
        assert position == 3 and element == -1

    def test_find(self):
        sequence = EliasFano.from_values([1, 5, 5, 9, 20])
        assert sequence.find(0, 5, 5) == 1
        assert sequence.find(0, 5, 9) == 3
        assert sequence.find(0, 5, 2) == -1
        assert sequence.find(2, 4, 5) == 2
        assert sequence.find(0, 5, 100) == -1

    def test_find_invalid_range(self):
        sequence = EliasFano.from_values([1, 2, 3])
        with pytest.raises(IndexError):
            sequence.find(0, 4, 1)


class TestScan:
    def test_scan_full(self):
        values = [0, 5, 6, 6, 30, 31, 100]
        sequence = EliasFano.from_values(values)
        assert list(sequence.scan()) == values

    def test_scan_range(self):
        values = [0, 5, 6, 6, 30, 31, 100]
        sequence = EliasFano.from_values(values)
        assert list(sequence.scan(2, 5)) == [6, 6, 30]
        assert list(sequence.scan(3, 3)) == []

    def test_iterator_protocol(self):
        values = [1, 2, 3]
        assert list(EliasFano.from_values(values)) == values


class TestSpace:
    def test_space_close_to_theory(self):
        # n log(u/n) + 2n plus small overheads.
        values = list(range(0, 100_000, 7))
        sequence = EliasFano.from_values(values)
        n = len(values)
        universe = values[-1] + 1
        theoretical = n * max(1, (universe // n).bit_length()) + 2 * n
        assert sequence.size_in_bits() <= theoretical * 1.6 + 512

    def test_sparse_vs_dense(self):
        dense = EliasFano.from_values(list(range(1000)))
        sparse = EliasFano.from_values([i * 10_000 for i in range(1000)])
        assert dense.bits_per_element() < sparse.bits_per_element()


monotone_lists = st.lists(st.integers(min_value=0, max_value=200), min_size=1,
                          max_size=300).map(
    lambda gaps: [sum(gaps[:i + 1]) for i in range(len(gaps))])


@settings(max_examples=60, deadline=None)
@given(monotone_lists)
def test_round_trip_property(values):
    """Property: Elias-Fano round-trips arbitrary monotone sequences."""
    sequence = EliasFano.from_values(values)
    assert sequence.to_list() == values


@settings(max_examples=40, deadline=None)
@given(monotone_lists, st.integers(min_value=0, max_value=60_000))
def test_next_geq_property(values, needle):
    """Property: next_geq returns the leftmost element >= needle."""
    sequence = EliasFano.from_values(values)
    position, element = sequence.next_geq(needle)
    candidates = [i for i, v in enumerate(values) if v >= needle]
    if candidates:
        assert position == candidates[0]
        assert element == values[candidates[0]]
    else:
        assert position == len(values)
        assert element == -1


@settings(max_examples=40, deadline=None)
@given(monotone_lists, st.integers(min_value=0, max_value=60_000))
def test_find_property(values, needle):
    """Property: find locates the first occurrence or returns -1."""
    sequence = EliasFano.from_values(values)
    position = sequence.find(0, len(values), needle)
    if needle in values:
        assert position == values.index(needle)
    else:
        assert position == -1
