"""Tests for triple selection patterns."""

import pytest

from repro.core.patterns import PatternKind, TriplePattern, reference_select
from repro.errors import PatternError


class TestPatternKind:
    def test_all_eight_kinds(self):
        assert len(PatternKind) == 8
        assert len(PatternKind.all_kinds()) == 8

    def test_num_wildcards(self):
        assert PatternKind.SPO.num_wildcards == 0
        assert PatternKind.SP.num_wildcards == 1
        assert PatternKind.P.num_wildcards == 2
        assert PatternKind.ALL_WILDCARDS.num_wildcards == 3

    def test_bound_roles(self):
        assert PatternKind.SPO.bound_roles == (0, 1, 2)
        assert PatternKind.SO.bound_roles == (0, 2)
        assert PatternKind.P.bound_roles == (1,)
        assert PatternKind.ALL_WILDCARDS.bound_roles == ()


class TestTriplePattern:
    def test_kind_detection(self):
        assert TriplePattern(1, 2, 3).kind is PatternKind.SPO
        assert TriplePattern(1, 2, None).kind is PatternKind.SP
        assert TriplePattern(1, None, None).kind is PatternKind.S
        assert TriplePattern(None, 2, 3).kind is PatternKind.PO
        assert TriplePattern(None, 2, None).kind is PatternKind.P
        assert TriplePattern(None, None, 3).kind is PatternKind.O
        assert TriplePattern(1, None, 3).kind is PatternKind.SO
        assert TriplePattern(None, None, None).kind is PatternKind.ALL_WILDCARDS

    def test_from_tuple(self):
        pattern = TriplePattern.from_tuple((1, None, 3))
        assert pattern == TriplePattern(1, None, 3)
        assert TriplePattern.from_tuple(pattern) is pattern

    def test_from_tuple_wrong_arity(self):
        with pytest.raises(PatternError):
            TriplePattern.from_tuple((1, 2))

    def test_negative_component_rejected(self):
        with pytest.raises(PatternError):
            TriplePattern(-1, None, None)

    def test_from_triple_with_wildcards(self):
        triple = (7, 8, 9)
        assert TriplePattern.from_triple_with_wildcards(triple, PatternKind.SP) == \
            TriplePattern(7, 8, None)
        assert TriplePattern.from_triple_with_wildcards(triple, PatternKind.O) == \
            TriplePattern(None, None, 9)
        assert TriplePattern.from_triple_with_wildcards(
            triple, PatternKind.ALL_WILDCARDS) == TriplePattern(None, None, None)

    def test_matches(self):
        pattern = TriplePattern(1, None, 3)
        assert pattern.matches((1, 5, 3))
        assert not pattern.matches((1, 5, 4))
        assert TriplePattern(None, None, None).matches((0, 0, 0))

    def test_component_and_as_tuple(self):
        pattern = TriplePattern(4, None, 6)
        assert pattern.as_tuple() == (4, None, 6)
        assert pattern.component(0) == 4
        assert pattern.component(1) is None

    def test_num_wildcards(self):
        assert TriplePattern(1, None, None).num_wildcards == 2

    def test_str(self):
        assert str(TriplePattern(1, None, 3)) == "(1, ?, 3)"


class TestReferenceSelect:
    def test_filters_and_sorts(self):
        triples = [(2, 0, 0), (1, 0, 0), (1, 1, 5), (0, 0, 0)]
        assert reference_select(triples, (1, None, None)) == [(1, 0, 0), (1, 1, 5)]
        assert reference_select(triples, (None, None, None)) == sorted(triples)
        assert reference_select(triples, (9, None, None)) == []
