"""Tests for the measurement harness and the table renderer."""

import pytest

from repro.bench.measure import (
    QueryTiming,
    measure_pattern_workload,
    measure_sequence_operations,
    nanoseconds_per_triple,
)
from repro.bench.tables import (
    format_bits_per_triple_table,
    format_table,
    space_overhead_percent,
    speedup,
)
from repro.core.patterns import TriplePattern
from repro.sequences.elias_fano import EliasFano


class TestQueryTiming:
    def test_ns_per_triple(self):
        timing = QueryTiming("x", "sp?", num_queries=10, matched_triples=1000,
                             elapsed_seconds=0.001)
        assert timing.ns_per_triple == pytest.approx(1000.0)
        assert timing.us_per_query == pytest.approx(100.0)

    def test_zero_matches(self):
        timing = QueryTiming("x", "spo", num_queries=0, matched_triples=0,
                             elapsed_seconds=0.5)
        assert timing.ns_per_triple == 0.0
        assert timing.us_per_query == 0.0


class TestMeasurement:
    def test_measure_pattern_workload(self, index_2tp, reference_triples):
        patterns = [TriplePattern(s, None, None) for s, _, _ in reference_triples[:20]]
        timing = measure_pattern_workload(index_2tp, patterns, kind="s??")
        expected = sum(sum(1 for t in reference_triples if t[0] == p.subject)
                       for p in patterns)
        assert timing.matched_triples == expected
        assert timing.num_queries == 20
        assert timing.elapsed_seconds > 0
        assert timing.kind == "s??"

    def test_nanoseconds_per_triple_shorthand(self, index_2tp, reference_triples):
        patterns = [TriplePattern(*reference_triples[0])]
        assert nanoseconds_per_triple(index_2tp, patterns) > 0

    def test_measure_sequence_operations(self):
        sequence = EliasFano.from_values(list(range(0, 1000, 3)))
        result = measure_sequence_operations(
            sequence, positions=[1, 5, 100], ranges=[(0, 50), (50, 200)],
            values=[9, 222])
        assert set(result) == {"access_ns", "find_ns", "scan_ns"}
        assert all(v >= 0 for v in result.values())


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["a", "bbb"], [[1, 2.3456], ["xy", None]])
        lines = text.splitlines()
        assert "a" in lines[0] and "bbb" in lines[0]
        assert "2.35" in text
        assert "—" in text

    def test_format_table_with_title(self):
        text = format_table(["x"], [[1]], title="My table")
        assert text.splitlines()[0] == "My table"

    def test_bits_per_triple_matrix(self):
        text = format_bits_per_triple_table(
            {"2tp": {"dblp": 52.0, "dbpedia": 54.1}, "3t": {"dblp": 75.2}})
        assert "2tp" in text and "dbpedia" in text

    def test_speedup_and_overhead(self):
        assert speedup(2.0, 8.0) == 4.0
        assert speedup(0.0, 8.0) is None
        assert space_overhead_percent(52.0, 76.9) == pytest.approx(32.4, abs=0.1)
        assert space_overhead_percent(50.0, 0.0) is None
