"""Tests for the partitioned Elias-Fano codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.sequences.elias_fano import EliasFano
from repro.sequences.partitioned_elias_fano import PartitionedEliasFano


class TestConstruction:
    def test_round_trip(self):
        values = [0, 1, 1, 4, 9, 9, 9, 200, 201, 500, 10_000]
        sequence = PartitionedEliasFano.from_values(values, partition_size=4)
        assert sequence.to_list() == values
        assert len(sequence) == len(values)

    def test_empty(self):
        sequence = PartitionedEliasFano.from_values([])
        assert len(sequence) == 0

    def test_non_monotone_rejected(self):
        with pytest.raises(EncodingError):
            PartitionedEliasFano.from_values([5, 4])

    def test_negative_rejected(self):
        with pytest.raises(EncodingError):
            PartitionedEliasFano.from_values([-3, 4])

    def test_invalid_partition_size(self):
        with pytest.raises(EncodingError):
            PartitionedEliasFano.from_values([1, 2], partition_size=0)

    def test_partition_count(self):
        values = list(range(0, 1000, 2))
        sequence = PartitionedEliasFano.from_values(values, partition_size=128)
        assert sequence.num_partitions == (len(values) + 127) // 128
        assert sequence.partition_size == 128

    def test_run_partition_is_free(self):
        # A strictly consecutive run should use the "run" encoder: almost no
        # payload beyond the per-partition header.
        run = PartitionedEliasFano.from_values(list(range(1, 257)), partition_size=128)
        scattered = PartitionedEliasFano.from_values(
            [i * 37 for i in range(256)], partition_size=128)
        assert run.size_in_bits() < scattered.size_in_bits()
        assert run.to_list() == list(range(1, 257))

    def test_duplicates_across_partition_boundary(self):
        values = [5] * 300
        sequence = PartitionedEliasFano.from_values(values, partition_size=128)
        assert sequence.to_list() == values

    def test_dense_partition_uses_bitmap_or_ef(self):
        values = sorted(set(range(1, 200, 2)) | set(range(200, 260)))
        sequence = PartitionedEliasFano.from_values(values, partition_size=64)
        assert sequence.to_list() == values


class TestAccessAndFind:
    def test_access(self):
        values = [3 * i + (i % 3) for i in range(500)]
        sequence = PartitionedEliasFano.from_values(values, partition_size=64)
        for i in (0, 1, 63, 64, 65, 127, 128, 300, 499):
            assert sequence.access(i) == values[i]

    def test_access_out_of_range(self):
        sequence = PartitionedEliasFano.from_values([1, 2, 3])
        with pytest.raises(IndexError):
            sequence.access(3)

    def test_find_within_single_partition(self):
        values = [2, 4, 6, 8, 10, 12]
        sequence = PartitionedEliasFano.from_values(values, partition_size=128)
        assert sequence.find(0, 6, 8) == 3
        assert sequence.find(0, 6, 7) == -1
        assert sequence.find(2, 5, 10) == 4

    def test_find_across_partitions(self):
        values = list(range(0, 1000, 3))
        sequence = PartitionedEliasFano.from_values(values, partition_size=32)
        for needle in (0, 3, 96, 300, 999):
            expected = values.index(needle) if needle in values else -1
            assert sequence.find(0, len(values), needle) == expected

    def test_find_restricted_range(self):
        values = list(range(100))
        sequence = PartitionedEliasFano.from_values(values, partition_size=16)
        assert sequence.find(50, 60, 55) == 55
        assert sequence.find(50, 60, 70) == -1
        assert sequence.find(10, 10, 10) == -1

    def test_find_invalid_range(self):
        sequence = PartitionedEliasFano.from_values([1, 2, 3])
        with pytest.raises(IndexError):
            sequence.find(0, 4, 2)

    def test_scan(self):
        values = [0, 1, 5, 5, 9, 22, 23, 23, 40]
        sequence = PartitionedEliasFano.from_values(values, partition_size=4)
        assert list(sequence.scan(2, 7)) == values[2:7]


class TestSpace:
    def test_partitioning_helps_clustered_data(self):
        # Clustered values: long consecutive runs separated by huge jumps.
        # Most partitions fall entirely inside a run and cost almost nothing,
        # while plain Elias-Fano pays the large universe on every element.
        values = []
        base = 0
        for _cluster in range(40):
            values.extend(base + i for i in range(1, 513))
            base += 1_000_000
        pef = PartitionedEliasFano.from_values(values, partition_size=64)
        ef = EliasFano.from_values(values)
        assert pef.size_in_bits() < ef.size_in_bits()

    def test_size_positive(self):
        sequence = PartitionedEliasFano.from_values([5])
        assert sequence.size_in_bits() > 0


monotone_lists = st.lists(st.integers(min_value=0, max_value=50), min_size=1,
                          max_size=400).map(
    lambda gaps: [sum(gaps[:i + 1]) for i in range(len(gaps))])


@settings(max_examples=50, deadline=None)
@given(monotone_lists, st.integers(min_value=2, max_value=64))
def test_round_trip_property(values, partition_size):
    """Property: PEF round-trips monotone sequences for any partition size."""
    sequence = PartitionedEliasFano.from_values(values, partition_size=partition_size)
    assert sequence.to_list() == values


@settings(max_examples=40, deadline=None)
@given(monotone_lists, st.integers(min_value=0, max_value=20_000))
def test_find_matches_naive(values, needle):
    """Property: PEF find agrees with the naive first-occurrence search."""
    sequence = PartitionedEliasFano.from_values(values, partition_size=16)
    position = sequence.find(0, len(values), needle)
    if needle in values:
        assert position == values.index(needle)
    else:
        assert position == -1


@settings(max_examples=40, deadline=None)
@given(monotone_lists, st.integers(min_value=2, max_value=64),
       st.integers(min_value=0, max_value=60), st.data())
def test_next_geq_matches_naive(values, partition_size, needle, data):
    """Property: partition-pruned next_geq agrees with a naive scan."""
    from bisect import bisect_left

    values = sorted(values)
    sequence = PartitionedEliasFano.from_values(values,
                                                partition_size=partition_size)
    begin = data.draw(st.integers(0, len(values)))
    end = data.draw(st.integers(begin, len(values)))
    position, element = sequence.next_geq(needle, begin, end)
    expected = bisect_left(values, needle, begin, end)
    if expected == end:
        assert (position, element) == (end, -1)
    else:
        assert (position, element) == (expected, values[expected])
