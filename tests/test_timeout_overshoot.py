"""Regression tests: wall-clock timeouts must cancel work *inside* the
vectorised block paths.

Both executors have fast paths that bypass the per-binding deadline
check: the nested-loop pipeline's ``final_level_block`` consumes a whole
``select_values`` block per innermost visit, and the worst-case-optimal
engine fetches and intersects one block per pattern at the last variable
of the elimination order.  On hub-heavy graphs those blocks hold
thousands of candidates each, so a deadline consulted only *between*
bindings used to overshoot the budget by the full block-processing time.
The checks now live between block fetches, between pairwise intersection
steps, and every 1024 yielded values — these tests pin the resulting
bound.
"""

import random
import time

import pytest

from repro.core.builder import build_index
from repro.errors import QueryTimeoutError
from repro.queries.planner import execute_bgp
from repro.queries.sparql import parse_sparql
from repro.rdf.triples import TripleStore

#: Generous slack for CI stalls — still ~20x below the seconds the
#: un-cancelled triangle join takes on this graph.
OVERSHOOT_TOLERANCE = 1.0

TIMEOUT = 0.05

TRIANGLE = "SELECT ?a ?b ?c WHERE { ?a 0 ?b . ?b 0 ?c . ?c 0 ?a }"


@pytest.fixture(scope="module")
def hub_graph():
    """Hubs wired to every node: every last-level candidate block is huge."""
    rng = random.Random(11)
    n = 1200
    triples = set()
    for hub in range(6):
        for i in range(n):
            triples.add((hub, 0, i))
            triples.add((i, 0, hub))
    for _ in range(20000):
        triples.add((rng.randrange(n), 0, rng.randrange(n)))
    store = TripleStore.from_triples(sorted(triples))
    return build_index(store, "2tp"), store


def _assert_deadline_bounded(index, store, engine):
    query = parse_sparql(TRIANGLE)
    started = time.monotonic()
    with pytest.raises(QueryTimeoutError):
        results, _ = execute_bgp(index, query, store=store, engine=engine,
                                 timeout=TIMEOUT)
        del results  # force materialisation if no timeout fired
    elapsed = time.monotonic() - started
    assert elapsed <= TIMEOUT + OVERSHOOT_TOLERANCE, (
        f"{engine} overshot its {TIMEOUT}s deadline: ran {elapsed:.3f}s")


class TestTimeoutOvershoot:
    def test_wcoj_block_path_obeys_deadline(self, hub_graph):
        index, store = hub_graph
        _assert_deadline_bounded(index, store, "wcoj")

    def test_nested_block_path_obeys_deadline(self, hub_graph):
        index, store = hub_graph
        _assert_deadline_bounded(index, store, "nested")

    def test_results_identical_without_timeout(self, hub_graph):
        """The added checks must not change what the engines produce:
        paginated slices from both engines still agree on a solution
        count over the block-heavy graph."""
        index, store = hub_graph
        query = parse_sparql(TRIANGLE)
        nested, _ = execute_bgp(index, query, store=store, engine="nested",
                                limit=2000)
        wcoj, _ = execute_bgp(index, query, store=store, engine="wcoj",
                              limit=2000)
        assert len(nested) == len(wcoj) == 2000
