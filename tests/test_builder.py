"""Tests for the IndexBuilder."""

import pytest

from repro.core.builder import DEFAULT_TRIE_CONFIGS, LAYOUTS, IndexBuilder, build_index
from repro.core.cross_compression import CrossCompressedIndex
from repro.core.index_2t import TwoTrieIndex
from repro.core.index_3t import PermutedTrieIndex
from repro.core.trie import TrieConfig
from repro.errors import IndexBuildError
from repro.rdf.triples import TripleStore


class TestBuild:
    def test_layout_types(self, builder):
        assert isinstance(builder.build("3t"), PermutedTrieIndex)
        assert isinstance(builder.build("cc"), CrossCompressedIndex)
        assert isinstance(builder.build("2tp"), TwoTrieIndex)
        assert isinstance(builder.build("2to"), TwoTrieIndex)

    def test_layouts_constant(self):
        assert set(LAYOUTS) == {"3t", "cc", "2tp", "2to"}

    def test_unknown_layout(self, builder):
        with pytest.raises(IndexBuildError):
            builder.build("7t")

    @pytest.mark.parametrize("layout", sorted(LAYOUTS))
    def test_empty_store_builds_empty_index(self, layout):
        # An empty shard of a hash-partitioned cluster is legitimate: the
        # index must build and answer every pattern with zero rows.
        index = IndexBuilder(TripleStore.from_triples([])).build(layout)
        assert index.num_triples == 0
        assert list(index.select((None, None, None))) == []
        assert list(index.select((0, None, 5))) == []

    def test_build_index_convenience(self, small_store, reference_triples):
        index = build_index(small_store, "2tp")
        assert index.num_triples == len(reference_triples)

    def test_case_insensitive_layout(self, builder):
        assert isinstance(builder.build("2TP"), TwoTrieIndex)

    def test_unknown_permutation(self, builder):
        with pytest.raises(IndexBuildError):
            builder.build_trie("xyz")


class TestConfigs:
    def test_default_config_matches_paper(self):
        # PEF everywhere except the last level of SPO (Compact).
        assert DEFAULT_TRIE_CONFIGS["spo"].level2_nodes == "compact"
        assert DEFAULT_TRIE_CONFIGS["spo"].level1_nodes == "pef"
        assert DEFAULT_TRIE_CONFIGS["pos"].level2_nodes == "pef"
        assert DEFAULT_TRIE_CONFIGS["osp"].level2_nodes == "pef"

    def test_config_override(self, small_store, reference_triples):
        configs = {"spo": TrieConfig(level1_nodes="compact", level2_nodes="compact")}
        index = IndexBuilder(small_store, trie_configs=configs).build("2tp")
        assert index.select_list((reference_triples[0][0], None, None)) == \
            sorted(t for t in reference_triples if t[0] == reference_triples[0][0])

    def test_config_for(self, builder):
        assert builder.config_for("spo").level2_nodes == "compact"

    def test_codec_options_are_forwarded(self, small_store):
        configs = {
            "spo": TrieConfig(level1_nodes="pef", level2_nodes="pef",
                              codec_options={"pef": {"partition_size": 32}}),
        }
        trie = IndexBuilder(small_store, trie_configs=configs).build_trie("spo")
        assert list(trie.scan_all()) == sorted(small_store)


class TestPieces:
    def test_build_single_trie(self, builder, reference_triples):
        trie = builder.build_trie("osp")
        assert trie.permutation_name == "osp"
        assert trie.num_triples == len(reference_triples)

    def test_ps_structure(self, builder, reference_triples):
        ps = builder.build_ps_structure()
        predicate = reference_triples[0][1]
        expected = sorted({s for s, p, _ in reference_triples if p == predicate})
        assert list(ps.values_of(predicate)) == expected

    def test_store_property(self, builder, small_store):
        assert builder.store is small_store
