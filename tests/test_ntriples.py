"""Tests for the N-Triples parser and writer."""

import pytest

from repro.errors import ParseError
from repro.rdf.ntriples import (
    Term,
    parse_ntriples,
    parse_ntriples_file,
    term_triples_to_keys,
    write_ntriples,
)

SAMPLE = """\
# a comment line
<http://example.org/s> <http://example.org/p> <http://example.org/o> .

<http://example.org/s> <http://example.org/name> "Alice" .
<http://example.org/s> <http://example.org/age> "42"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://example.org/s> <http://example.org/label> "Bonjour"@fr .
_:blank1 <http://example.org/p> _:blank2 .
"""


class TestParsing:
    def test_parse_all_statements(self):
        triples = list(parse_ntriples(SAMPLE.splitlines()))
        assert len(triples) == 5

    def test_iri_terms(self):
        s, p, o = next(iter(parse_ntriples(SAMPLE.splitlines())))
        assert s == Term("iri", "http://example.org/s")
        assert p.kind == "iri"
        assert o.kind == "iri"

    def test_plain_literal(self):
        triples = list(parse_ntriples(SAMPLE.splitlines()))
        literal = triples[1][2]
        assert literal.kind == "literal"
        assert literal.value == "Alice"
        assert literal.language is None
        assert literal.datatype is None

    def test_typed_literal(self):
        triples = list(parse_ntriples(SAMPLE.splitlines()))
        literal = triples[2][2]
        assert literal.datatype.endswith("integer")
        assert literal.is_numeric()
        assert literal.numeric_value() == 42.0

    def test_language_tagged_literal(self):
        triples = list(parse_ntriples(SAMPLE.splitlines()))
        literal = triples[3][2]
        assert literal.language == "fr"
        assert literal.value == "Bonjour"

    def test_blank_nodes(self):
        triples = list(parse_ntriples(SAMPLE.splitlines()))
        s, _, o = triples[4]
        assert s.kind == "bnode"
        assert o.kind == "bnode"

    def test_escaped_quotes(self):
        line = '<http://e/s> <http://e/p> "say \\"hi\\"" .'
        (_, _, o), = parse_ntriples([line])
        assert o.value == 'say "hi"'

    def test_malformed_line(self):
        with pytest.raises(ParseError) as excinfo:
            list(parse_ntriples(["<only> <two> ."]))
        assert "line 1" in str(excinfo.value)

    def test_literal_subject_rejected(self):
        with pytest.raises(ParseError):
            list(parse_ntriples(['"literal" <http://e/p> <http://e/o> .']))

    def test_non_numeric_literal(self):
        term = Term("literal", "abc")
        assert not term.is_numeric()
        with pytest.raises(ParseError):
            term.numeric_value()


class TestSerialisation:
    def test_round_trip_via_file(self, tmp_path):
        triples = list(parse_ntriples(SAMPLE.splitlines()))
        path = tmp_path / "out.nt"
        count = write_ntriples(triples, path)
        assert count == len(triples)
        parsed_back = list(parse_ntriples_file(path))
        assert parsed_back == triples

    def test_term_serialisation(self):
        assert Term("iri", "http://x").ntriples() == "<http://x>"
        assert Term("bnode", "_:b0").ntriples() == "_:b0"
        assert Term("literal", "hi").ntriples() == '"hi"'
        assert Term("literal", "hi", language="en").ntriples() == '"hi"@en'
        assert Term("literal", "5", datatype="http://dt").ntriples() == '"5"^^<http://dt>'

    def test_keys_are_distinct_across_kinds(self):
        iri = Term("iri", "x")
        literal = Term("literal", "x")
        assert iri.key() != literal.key()

    def test_term_triples_to_keys(self):
        triples = list(parse_ntriples(SAMPLE.splitlines()))
        keys = term_triples_to_keys(triples)
        assert len(keys) == len(triples)
        assert all(len(key) == 3 for key in keys)
        assert keys[0][0] == "<http://example.org/s>"
