"""Tests for the pre-fork serving pool and its supporting machinery.

Two layers:

* in-process unit tests for :class:`AdmissionControl`,
  :class:`TokenBucketLimiter`, :class:`MetricsBlock` and
  :class:`WalReader` — plus 429/503 shedding over a real (threaded,
  single-process) HTTP server;
* subprocess integration tests that start ``repro serve --workers N``
  against a saved index file and exercise the master/writer/worker
  machinery over real HTTP: multi-worker serving, read-your-writes after
  proxied updates, epoch publication after compaction, crash respawn,
  writer respawn, and graceful SIGTERM drain with an in-flight request.

The integration fixture is module-scoped (one pool serves many tests);
tests that mutate the served data use predicate IDs disjoint from the
base graph so the read-only differential test stays order-independent.
"""

import json
import os
import re
import signal
import socket
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

import repro
from repro.core.builder import build_index
from repro.rdf.triples import TripleStore
from repro.service import (
    AdmissionControl,
    MetricsBlock,
    QueryService,
    TokenBucketLimiter,
    build_server,
)
from repro.service.metrics import LATENCY_BUCKETS, render_prometheus
from repro.storage import save_index
from repro.storage.wal import WalReader, WriteAheadLog

KNOWS = 0  # base-graph predicate; update tests use predicates >= 7

BASE_TRIPLES = sorted(
    {(i, KNOWS, (i * 7 + 1) % 97) for i in range(97)}
    | {(i, KNOWS, (i + 13) % 97) for i in range(97)}
    | {(i, 1, 100 + i % 5) for i in range(97)}
)


# --------------------------------------------------------------------------- #
# Unit layer: admission control, rate limiting, metrics, WAL follower.
# --------------------------------------------------------------------------- #

class TestAdmissionControl:
    def test_bounds_inflight(self):
        gate = AdmissionControl(2)
        assert gate.try_acquire() and gate.try_acquire()
        assert gate.inflight == 2
        assert not gate.try_acquire()
        gate.release()
        assert gate.try_acquire()

    def test_release_never_goes_negative(self):
        gate = AdmissionControl(1)
        gate.release()
        assert gate.inflight == 0
        assert gate.try_acquire()

    def test_rejects_nonpositive_limit(self):
        with pytest.raises(ValueError):
            AdmissionControl(0)


class TestTokenBucketLimiter:
    def test_burst_then_reject(self):
        limiter = TokenBucketLimiter(rate=0.001, burst=2)
        assert limiter.allow("10.0.0.1")
        assert limiter.allow("10.0.0.1")
        assert not limiter.allow("10.0.0.1")
        # Other clients have their own bucket.
        assert limiter.allow("10.0.0.2")

    def test_refills_over_time(self):
        limiter = TokenBucketLimiter(rate=200.0, burst=1)
        assert limiter.allow("c")
        assert not limiter.allow("c")
        time.sleep(0.05)  # 200/s refills a whole token in 5ms
        assert limiter.allow("c")

    def test_default_burst_is_twice_rate(self):
        assert TokenBucketLimiter(rate=5).burst == 10.0
        assert TokenBucketLimiter(rate=0.1).burst == 1.0  # floor of one

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            TokenBucketLimiter(rate=0)


class TestMetricsBlock:
    def test_slots_are_independent_and_totals_sum(self):
        block = MetricsBlock(2)
        try:
            block.worker(0).add("requests", 3)
            block.worker(1).add("requests", 4)
            block.master().add("restarts")
            totals = block.totals()
            assert totals["requests"] == 7
            assert totals["restarts"] == 0  # master slot excluded
            assert block.master().get("restarts") == 1
        finally:
            block.close()

    def test_worker_slot_range_checked(self):
        block = MetricsBlock(1)
        try:
            with pytest.raises(IndexError):
                block.worker(1)
        finally:
            block.close()

    def test_latency_histogram_buckets(self):
        block = MetricsBlock(1)
        try:
            slot = block.worker(0)
            slot.observe_latency(0.003)   # falls in the <= 0.005 bucket
            slot.observe_latency(99.0)    # beyond every bound: +Inf only
            assert slot.get("latency_count") == 2
            assert slot.get("latency_sum_us") == int(0.003 * 1e6) + int(99e6)
            text = render_prometheus(block)
            bound = LATENCY_BUCKETS[1]
            assert f'repro_request_seconds_bucket{{le="{bound}"}} 1' in text
            assert 'repro_request_seconds_bucket{le="+Inf"} 2' in text
            assert "repro_request_seconds_count 2" in text
        finally:
            block.close()

    def test_render_includes_gauges(self):
        text = render_prometheus(None, {"index_triples": 42.0})
        assert "repro_index_triples 42.0" in text


class TestWalReader:
    def test_incremental_read(self, tmp_path):
        path = tmp_path / "log.wal"
        reader = WalReader(path)
        assert reader.read() == []  # no file yet
        with WriteAheadLog(path) as wal:
            wal.append(inserts=[(1, 2, 3)])
            assert reader.read() == [([(1, 2, 3)], [])]
            assert reader.read() == []  # nothing new
            wal.append(deletes=[(1, 2, 3)])
            wal.append(inserts=[(4, 5, 6)])
            assert reader.read(limit=1) == [([], [(1, 2, 3)])]
            assert reader.read() == [([(4, 5, 6)], [])]
        assert reader.records_read == 3

    def test_torn_tail_stops_then_resumes(self, tmp_path):
        path = tmp_path / "log.wal"
        with WriteAheadLog(path) as wal:
            wal.append(inserts=[(1, 1, 1)])
        size = path.stat().st_size
        with WriteAheadLog(path) as wal:
            wal.append(inserts=[(2, 2, 2)])
        whole = path.read_bytes()
        path.write_bytes(whole[:size + 4])  # half a record header
        reader = WalReader(path)
        assert reader.read() == [([(1, 1, 1)], [])]  # stops at the tear
        path.write_bytes(whole)  # the append "completes"
        assert reader.read() == [([(2, 2, 2)], [])]

    def test_shrunk_log_rewinds(self, tmp_path):
        path = tmp_path / "log.wal"
        with WriteAheadLog(path) as wal:
            wal.append(inserts=[(1, 1, 1)])
            wal.append(inserts=[(2, 2, 2)])
        reader = WalReader(path)
        assert len(reader.read()) == 2
        with WriteAheadLog(path) as wal:  # writer compacted: reset the log
            wal.reset()
            wal.append(inserts=[(9, 9, 9)])
        assert reader.read() == [([(9, 9, 9)], [])]
        assert reader.records_read == 1  # progress restarted from zero


# --------------------------------------------------------------------------- #
# Shedding over real HTTP (single process, in-process server).
# --------------------------------------------------------------------------- #

def _service():
    store = TripleStore.from_triples(BASE_TRIPLES)
    return QueryService(build_index(store, "2tp"))


def _post_json(url, path, body, headers=None):
    data = json.dumps(body).encode("utf-8")
    request = urllib.request.Request(
        url + path, data=data, method="POST",
        headers={"Content-Type": "application/json", **(headers or {})})
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read()), response.headers
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), error.headers


def _get_json(url, path):
    try:
        with urllib.request.urlopen(url + path, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestLoadShedding:
    def _serve(self, **options):
        server = build_server(_service(), host="127.0.0.1", port=0,
                              quiet=True, **options)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        return server, thread, f"http://{host}:{port}"

    def test_admission_full_sheds_503(self):
        gate = AdmissionControl(1)
        server, thread, url = self._serve(admission=gate)
        try:
            assert gate.try_acquire()  # occupy the only slot
            status, body, headers = _post_json(url, "/query",
                                               {"pattern": [None, None, None]})
            assert status == 503
            assert body["error"]["type"] == "Overloaded"
            assert headers["Retry-After"] == "1"
            gate.release()
            status, _, _ = _post_json(url, "/query",
                                      {"pattern": [0, None, None]})
            assert status == 200
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_rate_limit_sheds_429_posts_only(self):
        block = MetricsBlock(1)
        server, thread, url = self._serve(
            rate_limiter=TokenBucketLimiter(rate=0.001, burst=2),
            metrics=block.worker(0), metrics_block=block)
        try:
            body = {"pattern": [0, None, None]}
            statuses = [_post_json(url, "/query", body)[0] for _ in range(4)]
            assert statuses[:2] == [200, 200]
            assert set(statuses[2:]) == {429}
            # Probes are never shed: monitoring keeps working under limit.
            assert _get_json(url, "/healthz")[0] == 200
            status, _ = _get_text(url, "/metrics")
            assert status == 200
            assert block.totals()["ratelimited"] == 2
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
            block.close()


# --------------------------------------------------------------------------- #
# The pre-fork pool, over real processes.
# --------------------------------------------------------------------------- #

def _repro_env():
    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parent.parent)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return env


def _start_pool(index_path, *extra_args, timeout=45.0):
    """Spawn ``repro serve`` and wait for its "serving on" banner."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", str(index_path),
         "--port", "0", "--quiet", *extra_args],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        env=_repro_env(), text=True)
    watchdog = threading.Timer(timeout, proc.kill)
    watchdog.start()
    try:
        line = proc.stdout.readline()
    finally:
        watchdog.cancel()
    match = re.search(r"http://[\d.]+:(\d+)", line or "")
    if match is None:
        proc.kill()
        raise RuntimeError(
            f"pool failed to start: {line!r}\n{proc.stderr.read()}")
    return proc, f"http://127.0.0.1:{match.group(1)}"


def _stop_pool(proc):
    if proc.poll() is None:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=20)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=10)
    proc.stdout.close()
    proc.stderr.close()


def _wait_until(predicate, timeout=20.0, interval=0.1):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def _metric_value(url, name):
    status, text = _get_text(url, "/metrics")
    assert status == 200
    for line in text.splitlines():
        if line.startswith(name + " "):
            return float(line.split()[1])
    raise AssertionError(f"metric {name} not exposed:\n{text}")


def _get_text(url, path):
    with urllib.request.urlopen(url + path, timeout=10) as response:
        return response.status, response.read().decode("utf-8")


@pytest.fixture(scope="module")
def pool(tmp_path_factory):
    root = tmp_path_factory.mktemp("pool")
    index_path = root / "idx.bin"
    store = TripleStore.from_triples(BASE_TRIPLES)
    save_index(build_index(store, "2tp"), index_path, aligned=True)
    proc, url = _start_pool(index_path, "--workers", "2",
                            "--wal", str(root / "idx.wal"))
    yield {"proc": proc, "url": url, "root": root,
           "index_path": index_path}
    _stop_pool(proc)


class TestPoolServing:
    def test_concurrent_requests_hit_multiple_workers(self, pool):
        pids = set()
        errors = []

        def client():
            try:
                for _ in range(10):
                    status, body = _get_json(pool["url"], "/healthz")
                    assert status == 200
                    pids.add(body["pid"])
            except Exception as error:  # pragma: no cover - diagnostic aid
                errors.append(error)

        threads = [threading.Thread(target=client) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert len(pids) >= 2, f"all requests served by one worker: {pids}"

    def test_healthz_reports_follower_epoch_and_lag(self, pool):
        status, body = _get_json(pool["url"], "/healthz")
        assert status == 200
        # Workers answer through an EpochFollower; the probe must expose
        # its combined (generation, epoch) point and WAL-tail lag so
        # orchestrators can tell a wedged follower from a healthy one.
        assert body["combined_epoch"] == body["epoch"]
        assert body["wal_lag"] == 0
        assert body["generation"] >= 0
        _post_json(pool["url"], "/update", {"insert": [[910, 7, 911]]})

        def converged():
            status, body = _get_json(pool["url"], "/healthz")
            return status == 200 and body["wal_lag"] == 0 \
                and body["combined_epoch"] >= 1
        assert _wait_until(converged, timeout=20)

    def test_differential_vs_single_process(self, pool):
        """Every worker answers base-graph queries byte-identically to an
        in-process service over the same index file."""
        reference = QueryService.from_file(pool["index_path"])
        patterns = ([None, KNOWS, None], [5, KNOWS, None],
                    [None, KNOWS, 13], [None, 1, 102], [3, 1, None])
        for pattern in patterns:
            expected = [list(t) for t in
                        reference.select(pattern).triples]
            for _ in range(4):  # spread over both workers
                status, body, _ = _post_json(pool["url"], "/query",
                                             {"pattern": pattern})
                assert status == 200
                assert body["triples"] == expected

    def test_update_gives_read_your_writes_everywhere(self, pool):
        status, body, _ = _post_json(pool["url"], "/update",
                                     {"insert": [[500, 7, 501]]})
        assert status == 200
        assert body["inserted"] == 1
        # Strict read-your-writes: every subsequent request — whichever
        # worker accepts it — sees the acknowledged triple immediately.
        for _ in range(8):
            status, result, _ = _post_json(pool["url"], "/query",
                                           {"pattern": [500, 7, None],
                                            "cache": False})
            assert status == 200
            assert result["triples"] == [[500, 7, 501]]

    def test_update_validation_stays_local_400(self, pool):
        status, body, _ = _post_json(pool["url"], "/update",
                                     {"insert": [[1, 2]]})
        assert status == 400
        assert body["error"]["type"] in ("ServiceError", "UpdateError")

    def test_compact_publishes_new_generation(self, pool):
        _post_json(pool["url"], "/update", {"insert": [[600, 7, 601]]})
        status, report, _ = _post_json(pool["url"], "/compact", {})
        assert status == 200
        assert report["compacted"] is True
        # The generation bump is folded into the published epoch
        # (generation << 32), so every worker's advertised epoch crosses
        # the next generation boundary once it re-maps.
        def all_remapped():
            epochs = [_get_json(pool["url"], "/healthz")[1]["epoch"]
                      for _ in range(4)]
            return all(epoch >= (1 << 32) for epoch in epochs)
        assert _wait_until(all_remapped, timeout=20)
        status, result, _ = _post_json(pool["url"], "/query",
                                       {"pattern": [600, 7, None],
                                        "cache": False})
        assert result["triples"] == [[600, 7, 601]]

    def test_worker_crash_respawns_and_serving_continues(self, pool):
        before = _metric_value(pool["url"], "repro_worker_restarts_total")
        victim = _get_json(pool["url"], "/healthz")[1]["pid"]
        os.kill(victim, signal.SIGKILL)
        assert _wait_until(
            lambda: _metric_value(pool["url"],
                                  "repro_worker_restarts_total") >= before + 1)
        assert _wait_until(
            lambda: _metric_value(pool["url"], "repro_workers") == 2)
        for _ in range(10):
            status, body = _get_json(pool["url"], "/healthz")
            assert status == 200
        # The fresh worker converged onto the published epoch.
        pids = {_get_json(pool["url"], "/healthz")[1]["pid"]
                for _ in range(12)}
        assert victim not in pids

    def test_writer_crash_respawns_without_losing_acked_writes(self, pool):
        status, _, _ = _post_json(pool["url"], "/update",
                                  {"insert": [[700, 7, 701]]})
        assert status == 200
        epoch_doc = json.loads((pool["root"] / "idx.wal.epoch").read_text())
        os.kill(epoch_doc["pid"], signal.SIGKILL)

        def update_accepted_again():
            status, _, _ = _post_json(pool["url"], "/update",
                                      {"insert": [[701, 7, 702]]})
            return status == 200
        assert _wait_until(update_accepted_again, timeout=25)
        # Both the pre-crash acked write and the post-respawn write serve.
        status, result, _ = _post_json(pool["url"], "/query",
                                       {"pattern": [None, 7, None],
                                        "cache": False})
        triples = result["triples"]
        assert [700, 7, 701] in triples and [701, 7, 702] in triples

    def test_metrics_aggregate_across_workers(self, pool):
        status, text = _get_text(pool["url"], "/metrics")
        assert status == 200
        assert _metric_value(pool["url"], "repro_http_requests_total") > 0
        assert "repro_request_seconds_bucket" in text
        assert _metric_value(pool["url"], "repro_update_triples_total") >= 3


class TestPoolDrain:
    def test_sigterm_drains_inflight_request(self, tmp_path):
        index_path = tmp_path / "idx.bin"
        store = TripleStore.from_triples(BASE_TRIPLES)
        save_index(build_index(store, "2tp"), index_path, aligned=True)
        proc, url = _start_pool(index_path, "--workers", "2")
        try:
            port = int(url.rsplit(":", 1)[1])
            body = json.dumps({"pattern": [None, KNOWS, None]}).encode()
            conn = socket.create_connection(("127.0.0.1", port), timeout=15)
            head = (f"POST /query HTTP/1.1\r\nHost: x\r\n"
                    f"Content-Type: application/json\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    f"Connection: close\r\n\r\n").encode()
            # Send the headers and HALF the body: the handler is now
            # in-flight, blocked reading the rest.
            conn.sendall(head + body[:4])
            time.sleep(0.3)
            proc.send_signal(signal.SIGTERM)
            time.sleep(0.5)
            conn.sendall(body[4:])  # complete the request mid-drain
            response = b""
            while True:
                chunk = conn.recv(65536)
                if not chunk:
                    break
                response += chunk
            conn.close()
            assert response.startswith(b"HTTP/1.1 200"), response[:200]
            assert proc.wait(timeout=20) == 0
        finally:
            _stop_pool(proc)

    def test_read_only_pool_rejects_updates(self, tmp_path):
        index_path = tmp_path / "idx.bin"
        store = TripleStore.from_triples(BASE_TRIPLES)
        save_index(build_index(store, "2tp"), index_path, aligned=True)
        proc, url = _start_pool(index_path, "--workers", "2")
        try:
            status, body, _ = _post_json(url, "/update",
                                         {"insert": [[1, 1, 1]]})
            assert status == 400
            assert "read-only" in body["error"]["message"]
            status, result, _ = _post_json(url, "/query",
                                           {"pattern": [5, KNOWS, None]})
            assert status == 200 and result["count"] > 0
        finally:
            _stop_pool(proc)


class TestPoolObservability:
    """Slow-log atomicity under worker SIGKILL, plus metrics parity."""

    SPARQL = "SELECT ?x ?y ?c WHERE { ?x 0 ?y . ?y 1 ?c }"

    def test_slow_log_survives_worker_sigkill_untorn(self, tmp_path):
        index_path = tmp_path / "idx.bin"
        slow_path = tmp_path / "slow.jsonl"
        store = TripleStore.from_triples(BASE_TRIPLES)
        save_index(build_index(store, "2tp"), index_path, aligned=True)
        proc, url = _start_pool(index_path, "--workers", "2",
                                "--slow-log", str(slow_path),
                                "--slow-ms", "0")
        stop = threading.Event()
        errors = []

        def client():
            while not stop.is_set():
                try:
                    _post_json(url, "/query",
                               {"sparql": self.SPARQL, "cache": False})
                except Exception as exc:  # dying worker resets are expected
                    errors.append(exc)

        threads = [threading.Thread(target=client) for _ in range(4)]
        try:
            for thread in threads:
                thread.start()
            assert _wait_until(
                lambda: slow_path.exists()
                and len(slow_path.read_bytes().splitlines()) >= 10)
            victim = _get_json(url, "/healthz")[1]["pid"]
            os.kill(victim, signal.SIGKILL)
            assert _wait_until(
                lambda: _metric_value(url, "repro_workers") == 2)
            before = len(slow_path.read_bytes().splitlines())
            assert _wait_until(
                lambda: len(slow_path.read_bytes().splitlines())
                >= before + 10)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=10)
            _stop_pool(proc)
        # The contract under SIGKILL: every line in the file — written
        # concurrently by multiple workers, one of them killed mid-request
        # — is one complete, parseable JSON object.
        lines = slow_path.read_bytes().splitlines()
        assert len(lines) >= 20
        pids = set()
        for line in lines:
            entry = json.loads(line)  # raises on any torn/interleaved line
            assert entry["query"] == self.SPARQL
            pids.add(entry["pid"])
        assert len(pids) >= 2  # both workers actually appended

    def test_metrics_field_set_matches_single_box(self, pool):
        def families(text):
            return sorted({line.split("{")[0].split(" ")[0]
                           for line in text.splitlines()
                           if line and not line.startswith("#")})

        status, pool_text = _get_text(pool["url"], "/metrics")
        assert status == 200

        block = MetricsBlock(1)
        server = build_server(_service(), host="127.0.0.1", port=0,
                              quiet=True, metrics=block.worker(0),
                              metrics_block=block)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            status, single_text = _get_text(f"http://{host}:{port}",
                                            "/metrics")
            assert status == 200
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
            block.close()
        # Byte-identical field sets: dashboards written against one
        # deployment shape must work unchanged against the other.
        assert families(single_text) == families(pool_text)

    def test_metrics_content_type_from_pool(self, pool):
        with urllib.request.urlopen(pool["url"] + "/metrics",
                                    timeout=10) as response:
            assert response.headers["Content-Type"] == \
                "text/plain; version=0.0.4; charset=utf-8"
