"""Round-trip laws for the transport-agnostic wire codec.

Every ``encode_*``/``decode_*`` pair in :mod:`repro.wire` must satisfy
``decode(encode(x)) == x`` over the payload classes the cluster RPC and
the HTTP endpoints exchange: bindings, triples, errors, execution
statistics and pushed-down BGP queries.  The encoded form must also be
JSON-stable (``json.loads(json.dumps(payload))`` decodes identically),
because both transports ship the payloads as JSON text.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import errors as repro_errors
from repro import wire
from repro.errors import (
    ClusterError,
    QueryTimeoutError,
    ReproError,
    ShardUnavailableError,
    StorageError,
)
from repro.queries.planner import ExecutionStatistics
from repro.queries.sparql import (
    BasicGraphPattern,
    SparqlQuery,
    TriplePatternTemplate,
)

_names = st.text(alphabet="abcdefghijklmnopqrstuvwxyz_0123456789",
                 min_size=1, max_size=8).map(lambda s: "v" + s)
_ids = st.integers(min_value=0, max_value=2**40)


def _json_round(payload):
    return json.loads(json.dumps(payload))


# --------------------------------------------------------------------------- #
# Bindings.
# --------------------------------------------------------------------------- #

@st.composite
def _binding_sets(draw):
    variables = draw(st.lists(_names, min_size=1, max_size=4, unique=True))
    sigiled = tuple("?" + name for name in variables)
    rows = draw(st.lists(
        st.fixed_dictionaries({v: _ids for v in sigiled}),
        min_size=0, max_size=8))
    return sigiled, rows


@given(_binding_sets())
@settings(max_examples=60, deadline=None)
def test_bindings_round_trip(case):
    variables, rows = case
    payload = _json_round(wire.encode_bindings(variables, rows))
    assert wire.decode_bindings(payload) == (variables, rows)


def test_variable_spelling_is_idempotent():
    assert wire.variable_name("?x") == "x"
    assert wire.variable_name("x") == "x"
    assert wire.variable_sigil("x") == "?x"
    assert wire.variable_sigil("?x") == "?x"


# --------------------------------------------------------------------------- #
# Triples.
# --------------------------------------------------------------------------- #

@given(st.lists(st.tuples(_ids, _ids, _ids), max_size=16))
@settings(max_examples=60, deadline=None)
def test_triples_round_trip(triples):
    payload = _json_round(wire.encode_triples(triples))
    assert wire.decode_triples(payload) == triples


# --------------------------------------------------------------------------- #
# Errors.
# --------------------------------------------------------------------------- #

@pytest.mark.parametrize("error_type", [
    ReproError, StorageError, QueryTimeoutError,
    ClusterError, ShardUnavailableError,
])
def test_error_round_trip(error_type):
    original = error_type("shard 3 went away")
    decoded = wire.decode_error(_json_round(wire.encode_error(original)))
    assert type(decoded) is error_type
    assert str(decoded) == str(original)


def test_every_repro_error_type_is_decodable():
    for name, value in vars(repro_errors).items():
        if isinstance(value, type) and issubclass(value, ReproError):
            assert wire.ERROR_TYPES[name] is value


def test_unknown_error_type_degrades_to_base():
    decoded = wire.decode_error({"type": "FutureError", "message": "boom"})
    assert type(decoded) is ReproError
    assert "FutureError" in str(decoded) and "boom" in str(decoded)


# --------------------------------------------------------------------------- #
# Execution statistics.
# --------------------------------------------------------------------------- #

_counters = st.integers(min_value=0, max_value=2**32)


@given(_counters, _counters, _counters,
       st.sampled_from(["nested", "wcoj"]))
@settings(max_examples=60, deadline=None)
def test_statistics_round_trip(executed, matched, cartesian, engine):
    statistics = ExecutionStatistics()
    statistics.patterns_executed = executed
    statistics.triples_matched = matched
    statistics.cartesian_joins = cartesian
    statistics.engine = engine
    payload = _json_round(wire.encode_statistics(statistics))
    decoded = wire.decode_statistics(payload)
    assert wire.encode_statistics(decoded) == payload


@given(st.lists(st.fixed_dictionaries({
    "patterns_executed": _counters,
    "triples_matched": _counters,
    "cartesian_joins": _counters,
    "engine": st.sampled_from(["nested", "wcoj"]),
}), max_size=5))
@settings(max_examples=60, deadline=None)
def test_merge_statistics_sums_counters(payloads):
    merged = wire.merge_statistics(payloads, engine="wcoj")
    assert merged["engine"] == "wcoj"
    for counter in ("patterns_executed", "triples_matched",
                    "cartesian_joins"):
        assert merged[counter] == sum(p[counter] for p in payloads)


def test_merge_statistics_defaults():
    assert wire.merge_statistics([])["engine"] == "nested"
    merged = wire.merge_statistics([{"engine": "wcoj",
                                     "patterns_executed": 2}])
    assert merged["engine"] == "wcoj"
    assert merged["patterns_executed"] == 2


# --------------------------------------------------------------------------- #
# Pushed-down queries.
# --------------------------------------------------------------------------- #

_terms = st.one_of(_ids, _names.map(lambda n: "?" + n))


@given(st.lists(st.tuples(_terms, _terms, _terms),
                min_size=1, max_size=4))
@settings(max_examples=60, deadline=None)
def test_query_round_trip(rows):
    templates = [TriplePatternTemplate(*row) for row in rows]
    variables = sorted({term for row in rows for term in row
                        if isinstance(term, str)})
    query = SparqlQuery(projection=tuple(variables),
                        bgp=BasicGraphPattern(templates))
    payload = _json_round(wire.encode_query(query))
    decoded = wire.decode_query(payload)
    assert decoded.projection == query.projection
    assert [t.terms() for t in decoded.bgp] == [t.terms() for t in query.bgp]


def test_jsonio_delegates_to_wire():
    from repro.service import jsonio
    variables, rows = jsonio.bindings_to_json(
        ["?a", "?b"], [{"?a": 1, "?b": 2}])
    assert variables == ["a", "b"]
    assert rows == [{"a": 1, "b": 2}]
