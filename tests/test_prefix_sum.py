"""Tests for the range-aware sequence views (prefix-sum transform)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.sequences.compact import CompactVector
from repro.sequences.elias_fano import EliasFano
from repro.sequences.factory import make_ranged_sequence
from repro.sequences.partitioned_elias_fano import PartitionedEliasFano
from repro.sequences.prefix_sum import PrefixSummedSequence, RangedSequence

# A trie-level-like input: each sibling range is sorted, the concatenation is
# not globally monotone.
VALUES = [2, 3, 0, 4, 0, 1, 2, 0, 1, 2, 4]
BOUNDARIES = [0, 2, 3, 4, 6, 7, 8, 10, 11]


def ranges():
    return [(BOUNDARIES[i], BOUNDARIES[i + 1]) for i in range(len(BOUNDARIES) - 1)]


class TestRangedSequencePassThrough:
    def test_access_and_scan(self):
        view = RangedSequence(CompactVector.from_values(VALUES))
        for begin, end in ranges():
            assert list(view.scan_range(begin, end)) == VALUES[begin:end]
            for i in range(begin, end):
                assert view.access_in_range(begin, end, i) == VALUES[i]

    def test_find(self):
        view = RangedSequence(CompactVector.from_values(VALUES))
        assert view.find_in_range(0, 2, 3) == 1
        assert view.find_in_range(0, 2, 5) == -1
        assert view.find_in_range(4, 6, 1) == 5

    def test_len_and_size(self):
        view = RangedSequence(CompactVector.from_values(VALUES))
        assert len(view) == len(VALUES)
        assert view.size_in_bits() > 0

    def test_to_list_by_ranges(self):
        view = RangedSequence(CompactVector.from_values(VALUES))
        assert view.to_list_by_ranges(BOUNDARIES) == VALUES


class TestPrefixSummedSequence:
    @pytest.mark.parametrize("codec", [EliasFano, PartitionedEliasFano])
    def test_round_trip(self, codec):
        view = PrefixSummedSequence.from_values(VALUES, BOUNDARIES, codec)
        assert view.to_list_by_ranges(BOUNDARIES) == VALUES

    @pytest.mark.parametrize("codec", [EliasFano, PartitionedEliasFano])
    def test_access_in_range(self, codec):
        view = PrefixSummedSequence.from_values(VALUES, BOUNDARIES, codec)
        for begin, end in ranges():
            for i in range(begin, end):
                assert view.access_in_range(begin, end, i) == VALUES[i]

    @pytest.mark.parametrize("codec", [EliasFano, PartitionedEliasFano])
    def test_find_in_range(self, codec):
        view = PrefixSummedSequence.from_values(VALUES, BOUNDARIES, codec)
        for begin, end in ranges():
            for i in range(begin, end):
                assert view.find_in_range(begin, end, VALUES[i]) == VALUES[begin:end].index(VALUES[i]) + begin
            missing = max(VALUES[begin:end]) + 1
            assert view.find_in_range(begin, end, missing) == -1

    def test_access_outside_range_rejected(self):
        view = PrefixSummedSequence.from_values(VALUES, BOUNDARIES, EliasFano)
        with pytest.raises(IndexError):
            view.access_in_range(0, 2, 5)

    def test_empty_range(self):
        values = [1, 2, 7]
        boundaries = [0, 2, 2, 3]
        view = PrefixSummedSequence.from_values(values, boundaries, EliasFano)
        assert list(view.scan_range(2, 2)) == []
        assert view.find_in_range(2, 2, 7) == -1
        assert view.access_in_range(2, 3, 2) == 7

    def test_unsorted_sibling_range_rejected(self):
        with pytest.raises(EncodingError):
            PrefixSummedSequence.from_values([3, 1], [0, 2], EliasFano)

    def test_bad_boundaries_rejected(self):
        with pytest.raises(EncodingError):
            PrefixSummedSequence.from_values([1, 2, 3], [0, 2], EliasFano)
        with pytest.raises(EncodingError):
            PrefixSummedSequence.from_values([1, 2], [0, 2, 1, 2], EliasFano)


class TestFactory:
    def test_monotone_codec_gets_transform(self):
        view = make_ranged_sequence(VALUES, BOUNDARIES, "pef")
        assert isinstance(view, PrefixSummedSequence)
        assert view.to_list_by_ranges(BOUNDARIES) == VALUES

    def test_direct_codec_passthrough(self):
        view = make_ranged_sequence(VALUES, BOUNDARIES, "compact")
        assert isinstance(view, RangedSequence)
        assert not isinstance(view, PrefixSummedSequence)
        assert view.to_list_by_ranges(BOUNDARIES) == VALUES

    def test_vbyte_passthrough(self):
        view = make_ranged_sequence(VALUES, BOUNDARIES, "vbyte")
        assert view.to_list_by_ranges(BOUNDARIES) == VALUES

    def test_unknown_codec(self):
        with pytest.raises(EncodingError):
            make_ranged_sequence(VALUES, BOUNDARIES, "nope")


@st.composite
def level_like(draw):
    """Random (values, boundaries) pairs with sorted sibling ranges."""
    num_ranges = draw(st.integers(min_value=1, max_value=20))
    values = []
    boundaries = [0]
    for _ in range(num_ranges):
        chunk = sorted(draw(st.lists(st.integers(min_value=0, max_value=500),
                                     min_size=0, max_size=15)))
        values.extend(chunk)
        boundaries.append(len(values))
    return values, boundaries


@settings(max_examples=50, deadline=None)
@given(level_like(), st.sampled_from(["ef", "pef", "compact", "vbyte"]))
def test_ranged_round_trip_property(data, codec):
    """Property: any codec round-trips a level addressed by its sibling ranges."""
    values, boundaries = data
    if not values:
        return
    view = make_ranged_sequence(values, boundaries, codec)
    assert view.to_list_by_ranges(boundaries) == values
    # find_in_range agrees with membership for each range.
    for k in range(len(boundaries) - 1):
        begin, end = boundaries[k], boundaries[k + 1]
        if begin == end:
            continue
        target = values[begin]
        position = view.find_in_range(begin, end, target)
        assert begin <= position < end
        assert view.access_in_range(begin, end, position) == target
