"""Tests for the TripleStore container."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IndexBuildError
from repro.rdf.triples import Triple, TripleStore

TRIPLES = [(0, 0, 2), (0, 0, 3), (0, 1, 0), (1, 0, 4), (1, 2, 0), (1, 2, 1),
           (2, 0, 2), (2, 1, 0), (3, 2, 1), (3, 2, 2), (4, 2, 4)]


class TestTriple:
    def test_as_tuple_and_component(self):
        triple = Triple(1, 2, 3)
        assert triple.as_tuple() == (1, 2, 3)
        assert triple.component(0) == 1
        assert triple.component(2) == 3

    def test_ordering(self):
        assert Triple(0, 1, 2) < Triple(0, 2, 0)


class TestConstruction:
    def test_from_triples(self):
        store = TripleStore.from_triples(TRIPLES)
        assert len(store) == len(TRIPLES)
        assert sorted(store) == sorted(TRIPLES)

    def test_from_triple_objects(self):
        store = TripleStore.from_triples([Triple(1, 2, 3), Triple(0, 0, 0)])
        assert sorted(store) == [(0, 0, 0), (1, 2, 3)]

    def test_deduplication(self):
        store = TripleStore.from_triples(TRIPLES + TRIPLES)
        assert len(store) == len(TRIPLES)

    def test_dedup_disabled(self):
        store = TripleStore.from_triples([(1, 1, 1), (1, 1, 1)], dedup=False)
        assert len(store) == 2

    def test_from_columns(self):
        store = TripleStore.from_columns([1, 0], [2, 2], [3, 3])
        assert sorted(store) == [(0, 2, 3), (1, 2, 3)]

    def test_empty(self):
        store = TripleStore.from_triples([])
        assert len(store) == 0
        assert store.statistics()["triples"] == 0

    def test_negative_rejected(self):
        with pytest.raises(IndexBuildError):
            TripleStore.from_triples([(1, -2, 3)])

    def test_mismatched_columns_rejected(self):
        with pytest.raises(IndexBuildError):
            TripleStore(np.array([1, 2]), np.array([1]), np.array([1, 2]))

    def test_contains(self):
        store = TripleStore.from_triples(TRIPLES)
        assert (1, 2, 0) in store
        assert (9, 9, 9) not in store

    def test_densify(self):
        store = TripleStore.from_triples([(10, 5, 100), (20, 5, 100), (10, 7, 300)])
        dense, mappings = store.densified()
        assert dense.is_dense()
        assert len(dense) == 3
        assert mappings["subject"].tolist() == [10, 20]
        assert mappings["predicate"].tolist() == [5, 7]
        assert mappings["object"].tolist() == [100, 300]

    def test_densify_flag_in_constructor(self):
        store = TripleStore.from_triples([(10, 5, 100)], densify=True)
        assert sorted(store) == [(0, 0, 0)]


class TestAccessors:
    def test_columns_and_column(self):
        store = TripleStore.from_triples(TRIPLES)
        subjects, predicates, objects = store.columns()
        assert subjects.size == len(TRIPLES)
        assert store.column(1).tolist() == predicates.tolist()

    def test_to_array(self):
        store = TripleStore.from_triples(TRIPLES)
        array = store.to_array()
        assert array.shape == (len(TRIPLES), 3)
        assert sorted(map(tuple, array.tolist())) == sorted(TRIPLES)

    def test_triples_iterator(self):
        store = TripleStore.from_triples(TRIPLES)
        assert all(isinstance(t, Triple) for t in store.triples())

    def test_sample_deterministic(self):
        store = TripleStore.from_triples(TRIPLES)
        assert store.sample(5, seed=3) == store.sample(5, seed=3)
        assert len(store.sample(5, seed=3)) == 5
        assert all(tuple(t) in set(TRIPLES) for t in store.sample(5, seed=3))

    def test_sample_empty(self):
        assert TripleStore.from_triples([]).sample(3) == []


class TestSorting:
    def test_sorted_columns_spo(self):
        store = TripleStore.from_triples(TRIPLES)
        first, second, third = store.sorted_columns((0, 1, 2))
        combined = list(zip(first.tolist(), second.tolist(), third.tolist()))
        assert combined == sorted(TRIPLES)

    def test_sorted_columns_pos(self):
        store = TripleStore.from_triples(TRIPLES)
        first, second, third = store.sorted_columns((1, 2, 0))
        combined = list(zip(first.tolist(), second.tolist(), third.tolist()))
        expected = sorted((p, o, s) for s, p, o in TRIPLES)
        assert combined == expected

    def test_invalid_order_rejected(self):
        store = TripleStore.from_triples(TRIPLES)
        with pytest.raises(IndexBuildError):
            store.sorted_columns((0, 0, 2))


class TestStatistics:
    def test_distinct_counts(self):
        store = TripleStore.from_triples(TRIPLES)
        assert store.num_subjects == 5
        assert store.num_predicates == 3
        assert store.num_objects == 5

    def test_pair_counts(self):
        store = TripleStore.from_triples(TRIPLES)
        stats = store.statistics()
        assert stats["sp_pairs"] == len({(s, p) for s, p, o in TRIPLES})
        assert stats["po_pairs"] == len({(p, o) for s, p, o in TRIPLES})
        assert stats["os_pairs"] == len({(o, s) for s, p, o in TRIPLES})

    def test_is_dense(self):
        assert TripleStore.from_triples(TRIPLES).is_dense()
        assert not TripleStore.from_triples([(5, 0, 0)]).is_dense()


@settings(max_examples=30, deadline=None)
@given(st.sets(st.tuples(st.integers(0, 30), st.integers(0, 5), st.integers(0, 30)),
               min_size=1, max_size=200))
def test_store_preserves_triple_set(triples):
    """Property: the store is exactly the deduplicated input set."""
    store = TripleStore.from_triples(list(triples))
    assert set(store) == triples
    stats = store.statistics()
    assert stats["triples"] == len(triples)
    assert stats["subjects"] == len({s for s, _, _ in triples})
