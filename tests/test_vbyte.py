"""Tests for the blocked Variable-Byte codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.sequences.vbyte import (
    VByte,
    decode_vbyte_stream,
    encode_vbyte_stream,
)


class TestStreamCoding:
    def test_small_values_one_byte(self):
        stream = encode_vbyte_stream([0, 1, 127])
        assert len(stream) == 3
        assert decode_vbyte_stream(bytes(stream), 3) == [0, 1, 127]

    def test_multi_byte_values(self):
        values = [128, 16_384, 2_097_152, 300_000_000]
        stream = encode_vbyte_stream(values)
        assert decode_vbyte_stream(bytes(stream), len(values)) == values

    def test_control_bit_on_last_byte(self):
        stream = encode_vbyte_stream([300])
        # 300 = 0b100101100 -> two bytes, the second carries the stop bit.
        assert len(stream) == 2
        assert stream[0] & 0x80 == 0
        assert stream[1] & 0x80 == 0x80

    def test_negative_rejected(self):
        with pytest.raises(EncodingError):
            encode_vbyte_stream([-1])

    def test_truncated_stream_rejected(self):
        stream = bytes(encode_vbyte_stream([128]))[:1]
        with pytest.raises(EncodingError):
            decode_vbyte_stream(stream, 1)

    def test_offset_decoding(self):
        stream = bytes(encode_vbyte_stream([7, 300]))
        assert decode_vbyte_stream(stream, 1, offset=1) == [300]


class TestVByteSequence:
    def test_round_trip_non_monotone(self):
        values = [500, 3, 90, 90, 2, 10_000, 0]
        sequence = VByte.from_values(values, block_size=4)
        assert sequence.to_list() == values
        assert not sequence.is_gapped

    def test_round_trip_monotone_uses_gaps(self):
        values = [1, 5, 5, 100, 1000, 1000, 20_000]
        sequence = VByte.from_values(values, block_size=4)
        assert sequence.is_gapped
        assert sequence.to_list() == values

    def test_empty(self):
        sequence = VByte.from_values([])
        assert len(sequence) == 0
        assert sequence.to_list() == []

    def test_single(self):
        sequence = VByte.from_values([77])
        assert sequence.access(0) == 77

    def test_invalid_block_size(self):
        with pytest.raises(EncodingError):
            VByte.from_values([1], block_size=0)

    def test_negative_rejected(self):
        with pytest.raises(EncodingError):
            VByte.from_values([1, -1])

    def test_access_across_blocks(self):
        values = list(range(0, 700, 7))
        sequence = VByte.from_values(values, block_size=16)
        for i in (0, 15, 16, 17, 31, 32, 99):
            assert sequence.access(i) == values[i]

    def test_access_out_of_range(self):
        sequence = VByte.from_values([1, 2])
        with pytest.raises(IndexError):
            sequence.access(2)

    def test_find_sorted_range(self):
        values = [3, 9, 9, 12, 40, 41, 100, 200, 201, 500]
        sequence = VByte.from_values(values, block_size=4)
        assert sequence.find(0, len(values), 40) == 4
        assert sequence.find(0, len(values), 41) == 5
        assert sequence.find(0, len(values), 42) == -1
        assert sequence.find(3, 7, 100) == 6
        assert sequence.find(0, 0, 3) == -1

    def test_find_invalid_range(self):
        sequence = VByte.from_values([1, 2, 3])
        with pytest.raises(IndexError):
            sequence.find(1, 4, 2)

    def test_scan_range(self):
        values = [10, 20, 30, 40, 50, 60, 70]
        sequence = VByte.from_values(values, block_size=3)
        assert list(sequence.scan(2, 6)) == [30, 40, 50, 60]
        assert list(sequence.scan()) == values

    def test_gapped_compresses_better_than_raw(self):
        monotone = [i * 1000 for i in range(2000)]
        gapped = VByte.from_values(monotone)
        shuffled = list(monotone)
        shuffled[0], shuffled[-1] = shuffled[-1], shuffled[0]
        raw = VByte.from_values(shuffled)
        assert gapped.size_in_bits() < raw.size_in_bits()


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=2**35), min_size=1, max_size=300),
       st.integers(min_value=1, max_value=64))
def test_round_trip_property(values, block_size):
    """Property: VByte round-trips arbitrary non-negative sequences."""
    sequence = VByte.from_values(values, block_size=block_size)
    assert sequence.to_list() == values


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=5000), min_size=1, max_size=200))
def test_stream_round_trip_property(values):
    """Property: the raw stream encoder/decoder are inverses."""
    stream = bytes(encode_vbyte_stream(values))
    assert decode_vbyte_stream(stream, len(values)) == values
