"""Tests for workloads, the SPARQL front-end, the planner and the query logs."""

import pytest

from repro.core.builder import build_index
from repro.core.patterns import PatternKind, TriplePattern
from repro.datasets.lubm import LUBM_PREDICATES
from repro.datasets.watdiv import WATDIV_PREDICATES
from repro.errors import ParseError, PatternError
from repro.queries.logs import lubm_query_log, watdiv_query_log
from repro.queries.planner import QueryPlanner, decompose_into_patterns, execute_bgp
from repro.queries.sparql import (
    BasicGraphPattern,
    TriplePatternTemplate,
    is_variable,
    parse_sparql,
)
from repro.queries.workload import (
    DEFAULT_WORKLOAD_SIZE,
    build_workloads,
    deduplicate_workload,
    sample_patterns,
)
from repro.rdf.dictionary import RdfDictionary
from repro.rdf.triples import TripleStore


class TestWorkloads:
    def test_sample_patterns_shape(self, small_store):
        workload = sample_patterns(small_store, PatternKind.SP, count=50, seed=1)
        assert len(workload) == 50
        assert all(p.kind is PatternKind.SP for p in workload)

    def test_patterns_come_from_real_triples(self, small_store, reference_triples):
        triple_set = set(reference_triples)
        workload = sample_patterns(small_store, PatternKind.PO, count=30, seed=2)
        for pattern in workload:
            assert any(pattern.matches(t) for t in triple_set)

    def test_build_workloads_all_kinds(self, small_store):
        workloads = build_workloads(small_store, count=20, seed=0)
        assert set(workloads) == set(PatternKind.all_kinds())
        assert len(workloads[PatternKind.ALL_WILDCARDS]) == 1
        assert len(workloads[PatternKind.SP]) == 20

    def test_default_size_matches_paper(self):
        assert DEFAULT_WORKLOAD_SIZE == 5000

    def test_deduplicate(self, small_store):
        workload = sample_patterns(small_store, PatternKind.P, count=100, seed=3)
        unique = deduplicate_workload(workload)
        assert len(unique) <= len(workload)
        assert len({p.as_tuple() for p in unique}) == len(unique)


class TestSparqlParsing:
    def test_parse_with_integer_constants(self):
        query = parse_sparql("SELECT ?x WHERE { ?x 3 ?y . ?y 4 7 . }")
        assert query.projection == ("?x",)
        assert len(query.bgp) == 2
        assert query.bgp.templates[0] == TriplePatternTemplate("?x", 3, "?y")
        assert query.bgp.templates[1] == TriplePatternTemplate("?y", 4, 7)

    def test_parse_with_symbols(self):
        query = parse_sparql("SELECT ?s WHERE { ?s {knows} {Alice} . }",
                             symbols={"knows": 2, "Alice": 9})
        assert query.bgp.templates[0] == TriplePatternTemplate("?s", 2, 9)

    def test_parse_with_dictionary(self):
        dictionary, _ = RdfDictionary.from_term_triples(
            [("<s>", "<p>", "<o>"), ("<s2>", "<p>", "<o2>")])
        query = parse_sparql("SELECT ?x WHERE { <s> <p> ?x . }", dictionary=dictionary)
        template = query.bgp.templates[0]
        assert template.subject == dictionary.subjects.id_of("<s>")
        assert template.predicate == dictionary.predicates.id_of("<p>")

    def test_star_projection(self):
        query = parse_sparql("SELECT * WHERE { ?a 1 ?b . }")
        assert set(query.projection) == {"?a", "?b"}

    def test_malformed_query(self):
        with pytest.raises(ParseError):
            parse_sparql("ASK { ?x 1 ?y }")
        with pytest.raises(ParseError):
            parse_sparql("SELECT ?x WHERE { ?x 1 . }")
        with pytest.raises(ParseError):
            parse_sparql("SELECT ?x WHERE { }")

    def test_unknown_symbol(self):
        with pytest.raises(ParseError):
            parse_sparql("SELECT ?x WHERE { ?x {nope} ?y . }", symbols={})

    def test_constant_without_dictionary(self):
        with pytest.raises(ParseError):
            parse_sparql("SELECT ?x WHERE { <s> 1 ?x . }")

    def test_template_helpers(self):
        template = TriplePatternTemplate("?x", 5, "?y")
        assert template.variables() == ("?x", "?y")
        assert template.num_bound() == 1
        assert is_variable("?x") and not is_variable(5)
        bound = template.bind({"?x": 7})
        assert bound == TriplePatternTemplate(7, 5, "?y")
        assert bound.to_selection_pattern() == TriplePattern(7, 5, None)

    def test_bgp_variables_in_order(self):
        bgp = BasicGraphPattern([TriplePatternTemplate("?b", 1, "?a"),
                                 TriplePatternTemplate("?a", 2, "?c")])
        assert bgp.variables() == ("?b", "?a", "?c")


class TestSparqlSeparators:
    """Regression tests: ``.`` separators must work with any spacing.

    The historical parser only split single-line bodies on the exact string
    ``" . "``; a separator written ``" ."`` or ``". "`` silently merged two
    patterns into one malformed statement.
    """

    def test_separator_without_trailing_space(self):
        query = parse_sparql("SELECT * WHERE { ?x 1 ?y .?y 2 ?z }")
        assert len(query.bgp) == 2
        assert query.bgp.templates[1] == TriplePatternTemplate("?y", 2, "?z")

    def test_separator_without_leading_space(self):
        query = parse_sparql("SELECT * WHERE { ?x 1 ?y. ?y 2 ?z }")
        assert len(query.bgp) == 2

    def test_bare_dot_separator(self):
        query = parse_sparql("SELECT * WHERE { ?x 1 ?y.?y 2 ?z.?z 3 7 }")
        assert len(query.bgp) == 3
        assert query.bgp.templates[2] == TriplePatternTemplate("?z", 3, 7)

    def test_trailing_dot_tolerated(self):
        query = parse_sparql("SELECT * WHERE { ?x 1 ?y .?y 2 ?z. }")
        assert len(query.bgp) == 2

    def test_dotted_iri_not_split(self):
        dictionary, _ = RdfDictionary.from_term_triples(
            [("<http://ex.org/a.b>", "<http://ex.org/p.q>", "<http://ex.org/c.d>")])
        query = parse_sparql(
            "SELECT * WHERE { <http://ex.org/a.b> <http://ex.org/p.q> ?o"
            " .?s <http://ex.org/p.q> <http://ex.org/c.d> }",
            dictionary=dictionary)
        assert len(query.bgp) == 2
        assert query.bgp.templates[0].subject == \
            dictionary.subjects.id_of("<http://ex.org/a.b>")

    def test_dotted_literal_not_split(self):
        dictionary, _ = RdfDictionary.from_term_triples(
            [("<s>", "<p>", '"v. 1.2"')])
        query = parse_sparql('SELECT * WHERE { ?s <p> "v. 1.2".?s <p> ?o }',
                             dictionary=dictionary)
        assert len(query.bgp) == 2
        assert query.bgp.templates[0].object == \
            dictionary.objects.id_of('"v. 1.2"')

    def test_multiline_without_dots_still_parses(self):
        query = parse_sparql("""
            SELECT ?x WHERE {
                ?x 1 ?y
                ?y 2 ?z
            }
        """)
        assert len(query.bgp) == 2

    def test_multiline_with_mixed_dot_styles(self):
        query = parse_sparql("""
            SELECT ?x WHERE {
                ?x 1 ?y .
                ?y 2 ?z.
                ?z 3 ?w }
        """)
        assert len(query.bgp) == 3

    def test_merged_statement_still_rejected(self):
        with pytest.raises(ParseError):
            parse_sparql("SELECT * WHERE { ?x 1 ?y ?y 2 ?z }")


class TestPlanner:
    def test_most_selective_first(self, small_store):
        bgp = BasicGraphPattern([
            TriplePatternTemplate("?x", "?p", "?y"),      # 0 bound
            TriplePatternTemplate("?x", 0, 1),            # 2 bound
            TriplePatternTemplate("?x", 0, "?y"),         # 1 bound
        ])
        plan = QueryPlanner(small_store).plan(bgp)
        assert plan[0].num_bound() == 2

    def test_connected_templates_preferred(self):
        bgp = BasicGraphPattern([
            TriplePatternTemplate("?a", 0, "?b"),
            TriplePatternTemplate("?c", 1, "?d"),   # disconnected from ?a/?b
            TriplePatternTemplate("?b", 2, "?e"),
        ])
        plan = QueryPlanner().plan(bgp)
        first_vars = set(plan[0].variables())
        assert first_vars.intersection(plan[1].variables())

    def test_empty_bgp_rejected(self):
        with pytest.raises(PatternError):
            QueryPlanner().plan(BasicGraphPattern([]))

    def test_decompose_helper(self):
        query = parse_sparql("SELECT ?x WHERE { ?x 1 ?y . ?y 2 3 . }")
        plan = decompose_into_patterns(query)
        assert len(plan) == 2


class TestExecution:
    @pytest.fixture(scope="class")
    def graph_index(self):
        # A small social-like graph: 0 knows 1/2, 1 knows 2, 2 worksFor 10, ...
        knows, works_for, likes = 0, 1, 2
        triples = [
            (0, knows, 1), (0, knows, 2), (1, knows, 2), (3, knows, 0),
            (2, works_for, 10), (1, works_for, 10), (3, works_for, 11),
            (0, likes, 20), (1, likes, 20), (2, likes, 21),
        ]
        store = TripleStore.from_triples(triples)
        return build_index(store, "2tp"), store, (knows, works_for, likes)

    def test_single_pattern(self, graph_index):
        index, store, (knows, _, _) = graph_index
        query = parse_sparql("SELECT ?x ?y WHERE { ?x {knows} ?y . }",
                             symbols={"knows": knows})
        results, stats = execute_bgp(index, query, store=store)
        assert {(r["?x"], r["?y"]) for r in results} == \
            {(0, 1), (0, 2), (1, 2), (3, 0)}
        assert stats.patterns_executed == 1

    def test_two_pattern_join(self, graph_index):
        index, store, (knows, works_for, _) = graph_index
        query = parse_sparql(
            "SELECT ?x ?y ?c WHERE { ?x {knows} ?y . ?y {worksFor} ?c . }",
            symbols={"knows": knows, "worksFor": works_for})
        results, stats = execute_bgp(index, query, store=store)
        assert {(r["?x"], r["?y"], r["?c"]) for r in results} == \
            {(0, 1, 10), (0, 2, 10), (1, 2, 10)}
        assert stats.patterns_executed >= 2
        assert stats.results == 3

    def test_repeated_variable_in_template(self, graph_index):
        index, store, (knows, _, _) = graph_index
        # ?x knows ?x has no solutions in this graph.
        query = parse_sparql("SELECT ?x WHERE { ?x {knows} ?x . }",
                             symbols={"knows": knows})
        results, _ = execute_bgp(index, query, store=store)
        assert results == []

    def test_max_results_caps_output(self, graph_index):
        index, store, (knows, _, _) = graph_index
        query = parse_sparql("SELECT ?x ?y WHERE { ?x {knows} ?y . }",
                             symbols={"knows": knows})
        results, _ = execute_bgp(index, query, store=store, max_results=2)
        assert len(results) <= 2

    def test_statistics_record_patterns(self, graph_index):
        index, store, (knows, works_for, _) = graph_index
        query = parse_sparql(
            "SELECT ?x ?c WHERE { ?x {knows} ?y . ?y {worksFor} ?c . }",
            symbols={"knows": knows, "worksFor": works_for})
        _, stats = execute_bgp(index, query, store=store)
        assert len(stats.executed_patterns) == stats.patterns_executed
        assert all(isinstance(p, TriplePattern) for p in stats.executed_patterns)


class TestQueryLogs:
    def test_watdiv_log_parses(self):
        queries = watdiv_query_log()
        assert len(queries) >= 10
        assert all(len(q.bgp) >= 2 for q in queries)
        assert all(q.name for q in queries)

    def test_lubm_log_parses(self):
        queries = lubm_query_log()
        assert len(queries) >= 8
        names = {q.name for q in queries}
        assert {"Q1", "Q2", "Q9"} <= names

    def test_watdiv_log_runs_on_generated_data(self, watdiv_dataset):
        index = build_index(watdiv_dataset.store, "2tp")
        type_id = WATDIV_PREDICATES["type"]
        assert index.count((None, type_id, None)) > 0
        total_results = 0
        for query in watdiv_query_log():
            results, stats = execute_bgp(index, query, store=watdiv_dataset.store,
                                         max_results=500)
            assert stats.patterns_executed >= 1
            total_results += len(results)
        assert total_results > 0

    def test_lubm_log_runs_on_generated_data(self):
        from repro.datasets.lubm import generate_lubm
        store = generate_lubm(1, seed=7)
        index = build_index(store, "2tp")
        assert index.count((None, LUBM_PREDICATES["takesCourse"], None)) > 0
        total_results = 0
        for query in lubm_query_log():
            results, stats = execute_bgp(index, query, store=store, max_results=500)
            assert stats.patterns_executed >= 1
            total_results += len(results)
        assert total_results > 0


class TestStreamingExecution:
    @pytest.fixture(scope="class")
    def graph(self):
        knows, works_for = 0, 1
        triples = sorted({(i, knows, (i + 1) % 12) for i in range(12)}
                         | {(i, knows, (i + 3) % 12) for i in range(12)}
                         | {(i, works_for, 100 + i % 2) for i in range(12)})
        store = TripleStore.from_triples(triples)
        return build_index(store, "2tp"), store

    def test_stream_yields_lazily(self, graph):
        from itertools import islice

        from repro.queries.planner import ExecutionStatistics, stream_bgp

        index, store = graph
        query = parse_sparql("SELECT ?s ?o WHERE { ?s 0 ?o }")
        statistics = ExecutionStatistics()
        stream = stream_bgp(index, query, store=store, statistics=statistics)
        first_three = list(islice(stream, 3))
        assert len(first_three) == 3
        # Only the consumed solutions were computed, not the 24 matches.
        assert statistics.triples_matched == 3

    def test_limit_stops_the_join_early(self, graph):
        index, store = graph
        query = parse_sparql("SELECT ?x ?c WHERE { ?x 0 ?y . ?y 1 ?c }")
        results, stats = execute_bgp(index, query, store=store, limit=2)
        assert len(results) == 2
        full, full_stats = execute_bgp(index, query, store=store)
        assert stats.triples_matched < full_stats.triples_matched

    def test_offset_pages_tile(self, graph):
        index, store = graph
        query = parse_sparql("SELECT ?s ?o WHERE { ?s 0 ?o }")
        full, _ = execute_bgp(index, query, store=store)
        page, _ = execute_bgp(index, query, store=store, limit=5, offset=3)
        assert page == full[3:8]

    def test_limit_zero_is_empty(self, graph):
        index, store = graph
        query = parse_sparql("SELECT ?s WHERE { ?s 0 ?o }")
        results, _ = execute_bgp(index, query, store=store, limit=0)
        assert results == []

    def test_max_results_and_limit_smaller_wins(self, graph):
        index, store = graph
        query = parse_sparql("SELECT ?s ?o WHERE { ?s 0 ?o }")
        results, _ = execute_bgp(index, query, store=store,
                                 max_results=4, limit=9)
        assert len(results) == 4

    def test_timeout_expires(self, graph):
        from repro.errors import QueryTimeoutError

        index, store = graph
        query = parse_sparql("SELECT ?s ?o WHERE { ?s 0 ?o }")
        with pytest.raises(QueryTimeoutError):
            execute_bgp(index, query, store=store, timeout=0.0)

    def test_results_match_pre_streaming_semantics(self, graph):
        index, store = graph
        query = parse_sparql("SELECT ?x ?c WHERE { ?x 0 ?y . ?y 1 ?c }")
        results, stats = execute_bgp(index, query, store=store)
        assert {(r["?x"], r["?c"]) for r in results} == \
            {(i, 100 + ((i + 1) % 12) % 2) for i in range(12)} \
            | {(i, 100 + ((i + 3) % 12) % 2) for i in range(12)}
        assert stats.results == len(results)


class TestDisconnectedBgp:
    @pytest.fixture(scope="class")
    def graph(self):
        triples = [(0, 0, 1), (0, 0, 2), (3, 1, 4), (5, 1, 6), (5, 1, 7)]
        store = TripleStore.from_triples(triples)
        return build_index(store, "2tp"), store

    def test_cartesian_product_fallback_warns(self, graph):
        from repro.queries.planner import CartesianProductWarning

        index, store = graph
        query = parse_sparql("SELECT ?a ?b ?c ?d WHERE { ?a 0 ?b . ?c 1 ?d }")
        with pytest.warns(CartesianProductWarning):
            results, stats = execute_bgp(index, query, store=store)
        # 2 matches of (?a 0 ?b) x 3 matches of (?c 1 ?d).
        assert len(results) == 6
        assert stats.cartesian_joins == 1
        assert {(r["?a"], r["?b"], r["?c"], r["?d"]) for r in results} == {
            (a, b, c, d)
            for (a, b) in ((0, 1), (0, 2))
            for (c, d) in ((3, 4), (5, 6), (5, 7))}

    def test_connected_bgp_does_not_warn(self, graph):
        import warnings as warnings_module

        from repro.queries.planner import CartesianProductWarning

        index, store = graph
        query = parse_sparql("SELECT ?a ?b WHERE { ?a 0 ?b . 0 0 ?b }")
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error", CartesianProductWarning)
            results, stats = execute_bgp(index, query, store=store)
        assert stats.cartesian_joins == 0
        assert len(results) == 2


class TestStreamBgpEdgePaths:
    """Regression tests: offset/limit/timeout on the Cartesian and error paths.

    The streaming executor's Cartesian-product fallback and timeout handling
    previously had no direct assertions for ``offset`` at or beyond the
    result count; these pin the boundary behaviour down for both executors.
    """

    @pytest.fixture(scope="class")
    def graph(self):
        triples = [(0, 0, 1), (0, 0, 2), (3, 1, 4), (5, 1, 6), (5, 1, 7)]
        store = TripleStore.from_triples(triples)
        return build_index(store, "2tp"), store

    @pytest.fixture(scope="class")
    def cartesian_query(self):
        # 2 matches of (?a 0 ?b) x 3 matches of (?c 1 ?d) = 6 solutions.
        return parse_sparql("SELECT ?a ?b ?c ?d WHERE { ?a 0 ?b . ?c 1 ?d }")

    @pytest.mark.parametrize("engine", ["nested", "wcoj"])
    def test_offset_equal_to_result_count(self, graph, cartesian_query, engine):
        import warnings as warnings_module

        from repro.queries.planner import CartesianProductWarning

        index, store = graph
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("ignore", CartesianProductWarning)
            results, stats = execute_bgp(index, cartesian_query, store=store,
                                         offset=6, engine=engine)
        assert results == []
        assert stats.results == 0

    @pytest.mark.parametrize("engine", ["nested", "wcoj"])
    def test_offset_beyond_result_count(self, graph, cartesian_query, engine):
        import warnings as warnings_module

        from repro.queries.planner import CartesianProductWarning

        index, store = graph
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("ignore", CartesianProductWarning)
            results, _ = execute_bgp(index, cartesian_query, store=store,
                                     offset=100, limit=5, engine=engine)
        assert results == []

    @pytest.mark.parametrize("engine", ["nested", "wcoj"])
    def test_last_solution_reachable_by_offset(self, graph, cartesian_query,
                                               engine):
        import warnings as warnings_module

        from repro.queries.planner import CartesianProductWarning

        index, store = graph
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("ignore", CartesianProductWarning)
            full, _ = execute_bgp(index, cartesian_query, store=store,
                                  engine=engine)
            last, _ = execute_bgp(index, cartesian_query, store=store,
                                  offset=5, engine=engine)
        assert len(full) == 6
        assert last == full[5:]

    @pytest.mark.parametrize("engine", ["nested", "wcoj"])
    def test_cartesian_pages_tile(self, graph, cartesian_query, engine):
        import warnings as warnings_module

        from repro.queries.planner import CartesianProductWarning

        index, store = graph
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("ignore", CartesianProductWarning)
            full, _ = execute_bgp(index, cartesian_query, store=store,
                                  engine=engine)
            pages = []
            for offset in range(0, 8, 2):
                page, _ = execute_bgp(index, cartesian_query, store=store,
                                      offset=offset, limit=2, engine=engine)
                pages.extend(page)
        assert pages == full

    @pytest.mark.parametrize("engine", ["nested", "wcoj"])
    def test_timeout_on_cartesian_fallback(self, graph, cartesian_query,
                                           engine):
        import warnings as warnings_module

        from repro.errors import QueryTimeoutError
        from repro.queries.planner import CartesianProductWarning

        index, store = graph
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("ignore", CartesianProductWarning)
            with pytest.raises(QueryTimeoutError):
                execute_bgp(index, cartesian_query, store=store,
                            timeout=0.0, engine=engine)

    @pytest.mark.parametrize("engine", ["nested", "wcoj"])
    def test_timeout_not_triggered_while_skipping_offset(self, graph, engine):
        # A generous timeout with a large offset must complete, not raise.
        index, store = graph
        query = parse_sparql("SELECT ?a ?b WHERE { ?a 0 ?b }")
        results, _ = execute_bgp(index, query, store=store, offset=50,
                                 timeout=30.0, engine=engine)
        assert results == []


class TestPlannerCardinalities:
    def test_explicit_cardinalities_plan_like_a_store(self, small_store):
        from repro.queries.planner import QueryPlanner

        histograms = QueryPlanner.cardinalities_from_store(small_store)
        bgp = BasicGraphPattern([
            TriplePatternTemplate("?x", 0, "?y"),
            TriplePatternTemplate("?y", 1, "?z"),
            TriplePatternTemplate("?x", 2, 3),
        ])
        from_store = QueryPlanner(store=small_store).plan(bgp)
        from_histograms = QueryPlanner(cardinalities=histograms).plan(bgp)
        assert from_store == from_histograms

    def test_cardinalities_property_exposed(self, small_store):
        from repro.queries.planner import QueryPlanner

        assert QueryPlanner().cardinalities is None
        planner = QueryPlanner(store=small_store)
        assert planner.cardinalities is not None
        assert set(planner.cardinalities) == {0, 1, 2}
