"""End-to-end integration tests: N-Triples -> dictionary -> index -> queries,
and a full pipeline on generated WatDiv data including range queries."""

import pytest

from repro.core.builder import IndexBuilder, build_index
from repro.core.patterns import reference_select
from repro.core.range_queries import RangeQueryEngine
from repro.core.stats import children_statistics_table, space_breakdown_percentages
from repro.datasets.watdiv import WATDIV_PREDICATES
from repro.queries import execute_bgp, parse_sparql
from repro.rdf.dictionary import RdfDictionary
from repro.rdf.ntriples import parse_ntriples, term_triples_to_keys

NTRIPLES = """\
<http://ex/alice> <http://ex/knows> <http://ex/bob> .
<http://ex/alice> <http://ex/knows> <http://ex/carol> .
<http://ex/bob> <http://ex/knows> <http://ex/carol> .
<http://ex/alice> <http://ex/worksFor> <http://ex/acme> .
<http://ex/bob> <http://ex/worksFor> <http://ex/acme> .
<http://ex/carol> <http://ex/worksFor> <http://ex/initech> .
<http://ex/alice> <http://ex/name> "Alice" .
<http://ex/bob> <http://ex/name> "Bob" .
<http://ex/carol> <http://ex/name> "Carol" .
"""


class TestNTriplesPipeline:
    @pytest.fixture(scope="class")
    def pipeline(self):
        terms = term_triples_to_keys(parse_ntriples(NTRIPLES.splitlines()))
        dictionary, store = RdfDictionary.from_term_triples(terms)
        index = build_index(store, "2tp")
        return dictionary, store, index

    def test_counts(self, pipeline):
        dictionary, store, index = pipeline
        assert len(store) == 9
        assert index.num_triples == 9
        assert len(dictionary.predicates) == 3

    def test_pattern_query_with_decoding(self, pipeline):
        dictionary, store, index = pipeline
        knows = dictionary.predicates.id_of("<http://ex/knows>")
        results = [dictionary.decode(t) for t in index.select((None, knows, None))]
        assert ("<http://ex/alice>", "<http://ex/knows>", "<http://ex/bob>") in results
        assert len(results) == 3

    def test_sparql_over_dictionary(self, pipeline):
        dictionary, store, index = pipeline
        query = parse_sparql(
            "SELECT ?x ?y WHERE { ?x <http://ex/knows> ?y . "
            "?y <http://ex/worksFor> <http://ex/acme> . }",
            dictionary=dictionary)
        results, stats = execute_bgp(index, query, store=store)
        decoded = {(dictionary.subjects.term_of(r["?x"]),) for r in results}
        assert ("<http://ex/alice>",) in decoded
        assert stats.patterns_executed >= 2

    def test_all_layouts_agree(self, pipeline):
        _, store, _ = pipeline
        triples = sorted(store)
        builder = IndexBuilder(store)
        for layout in ("3t", "cc", "2tp", "2to"):
            index = builder.build(layout)
            assert index.select_list((None, None, None)) == triples


class TestWatDivPipeline:
    def test_full_pipeline(self, watdiv_dataset):
        store = watdiv_dataset.store
        index = build_index(store, "2tp")
        triples = sorted(store)

        # Selection patterns agree with the reference.
        probe = triples[len(triples) // 3]
        for pattern in [(probe[0], None, None), (None, probe[1], probe[2]),
                        (probe[0], None, probe[2])]:
            assert index.select_list(pattern) == reference_select(triples, pattern)

        # Range queries through the numeric structure.
        engine = RangeQueryEngine(index, watdiv_dataset.numeric_index,
                                  watdiv_dataset.numeric_id_offset)
        price = WATDIV_PREDICATES["price"]
        matches = list(engine.select_object_range((None, price, None), 0.0, 1000.0))
        expected_count = index.count((None, price, None))
        assert len(matches) == expected_count

        # Statistics helpers run end-to-end.
        table2 = children_statistics_table(store)
        assert table2["spo"][1]["average"] >= 1.0
        percentages = space_breakdown_percentages(build_index(store, "3t"))
        assert sum(percentages.values()) == pytest.approx(100.0)

    def test_layouts_have_expected_space_ordering(self, watdiv_dataset):
        builder = IndexBuilder(watdiv_dataset.store)
        sizes = {layout: builder.build(layout).size_in_bits()
                 for layout in ("3t", "cc", "2tp")}
        assert sizes["3t"] > sizes["cc"] > sizes["2tp"]
