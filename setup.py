"""Setup shim.

The environment this reproduction targets has no ``wheel`` package available,
so PEP 660 editable installs (``pip install -e .``) cannot build the editable
wheel.  This legacy ``setup.py`` lets ``python setup.py develop`` (or
``pip install -e . --no-use-pep517`` on older pips) provide the same editable
install.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
