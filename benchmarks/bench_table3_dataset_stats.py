"""Table 3 — dataset statistics.

Generates a scaled-down dataset for each of the paper's six profiles and
compares the measured statistics (distinct subjects / predicates / objects and
SP / PO / OS pairs, as *ratios of the triple count*) with the paper's
published values, which is the meaningful comparison once the scale differs.
"""

from __future__ import annotations

from functools import lru_cache

import common
from repro.bench.tables import format_table
from repro.datasets.profiles import DATASET_PROFILES

#: Smaller than the default benchmark size: six datasets are generated.
NUM_TRIPLES = max(10_000, common.DEFAULT_TRIPLES // 2)


@lru_cache(maxsize=None)
def _table() -> str:
    rows = []
    for name, profile in DATASET_PROFILES.items():
        store = common.dataset(name, NUM_TRIPLES)
        measured = store.statistics()
        n = measured["triples"]
        rows.append([
            name, n,
            measured["subjects"] / n, profile.subjects / profile.triples,
            measured["objects"] / n, profile.objects / profile.triples,
            measured["sp_pairs"] / n, profile.sp_pairs / profile.triples,
            measured["po_pairs"] / n, profile.po_pairs / profile.triples,
            measured["os_pairs"] / n, profile.os_pairs / profile.triples,
        ])
    headers = ["dataset", "triples",
               "S/T", "S/T paper", "O/T", "O/T paper",
               "SP/T", "SP/T paper", "PO/T", "PO/T paper",
               "OS/T", "OS/T paper"]
    return format_table(headers, rows, precision=3,
                        title="Table 3 — dataset statistics (measured vs paper ratios)")


def test_report_table3(benchmark):
    """Emit Table 3 and benchmark the statistics computation on one dataset."""
    store = common.dataset("dblp", NUM_TRIPLES)
    benchmark(lambda: store.statistics())
    common.write_result("table3_dataset_stats", _table())
