"""Section 4.2 in-text claims — RDF-3X and BitMat space blow-up.

The paper cites (rather than re-measures) that RDF-3X is 3-4.6x larger than
HDT-FoQ and that BitMat reaches 483.72 bits/triple on DBpedia.  Because both
baselines are implemented here, this benchmark regenerates the space
comparison directly, plus a spot-check of their query speed on ?PO.
"""

from __future__ import annotations

from functools import lru_cache

import pytest

import common
from repro.bench.measure import measure_pattern_workload
from repro.bench.tables import format_table, space_overhead_percent
from repro.core.patterns import PatternKind

PROFILE = "dbpedia"
INDEXES = ("2tp", "hdt-foq", "triplebit", "rdf-3x", "bitmat", "vertical-partitioning")


def _index(name: str):
    if name == "2tp":
        return common.index_for(PROFILE, "2tp")
    return common.baseline_for(PROFILE, name)


@lru_cache(maxsize=None)
def _table() -> str:
    reference = _index("2tp").bits_per_triple()
    workload = common.workloads_for(PROFILE)[PatternKind.PO].patterns[:150]
    rows = []
    for name in INDEXES:
        index = _index(name)
        bits = index.bits_per_triple()
        timing = measure_pattern_workload(index, workload, kind="?po")
        rows.append([name, bits, space_overhead_percent(reference, bits),
                     timing.ns_per_triple])
    return format_table(
        ["index", "bits/triple", "(+% vs 2Tp)", "?PO ns/triple"], rows, precision=1,
        title=f"RDF-3X / BitMat space blow-up ({PROFILE}-like, "
              f"{len(common.dataset(PROFILE))} triples)")


def test_report_rdf3x_bitmat(benchmark):
    """Emit the table; benchmark RDF-3X construction (its dominant cost)."""
    from repro.baselines import Rdf3xIndex
    store = common.dataset(PROFILE)
    benchmark.pedantic(lambda: Rdf3xIndex(store), rounds=1, iterations=1)
    common.write_result("extra_rdf3x_bitmat", _table())


@pytest.mark.parametrize("name", ["rdf-3x", "bitmat"])
def test_po_pattern_speed(benchmark, name):
    """Benchmark the extra baselines on ?PO."""
    index = _index(name)
    patterns = common.workloads_for(PROFILE)[PatternKind.PO].patterns[:100]

    def run():
        for pattern in patterns:
            for _ in index.select(pattern):
                pass

    benchmark.pedantic(run, rounds=2, iterations=1)
