"""Persistence round trip — save/load time vs rebuild time, and on-disk
bits/triple next to the in-memory figures.

This is the build-once/serve-many argument behind the storage subsystem: a
saved index loads directly from its stored words (no re-encoding, no
re-sorting), so process start-up pays file-read time instead of index-build
time.  The table reports, per layout: in-memory and on-disk bits/triple, the
one-off build and save costs, the eager and mmap load costs, and the
build/load speedup.

The mmap rows exercise ``load_index(path, mmap=True)``: the container is
page-mapped and array leaves are zero-copy views, so load time is O(1) in
index size.  Eager load is O(bytes) (read + CRC + copy), so the eager/mmap
ratio grows with the dataset — the ``mmap at scale`` measurement uses a
larger 2Tp index (``REPRO_BENCH_MMAP_TRIPLES``) where the asymptotic gap is
visible, while the per-layout table stays at the quick default size.

Run standalone for a smoke check::

    python benchmarks/bench_persistence.py --mmap --triples 20000
"""

import argparse
import os
import tempfile
import time
from functools import lru_cache
from pathlib import Path

import pytest

import common
from repro.bench.tables import format_table
from repro.core.builder import IndexBuilder
from repro.storage import load_index, save_index

LAYOUTS = ("3t", "cc", "2to", "2tp")
PROFILE = "dbpedia"

#: Dataset size for the dedicated eager-vs-mmap load comparison.  Large
#: enough that eager load is dominated by its per-byte work (read, CRC,
#: array copies) rather than fixed Python overhead.
MMAP_TRIPLES = int(os.environ.get("REPRO_BENCH_MMAP_TRIPLES", "2000000"))

_LOAD_ROUNDS = 5


def _best_load(path: Path, rounds: int = _LOAD_ROUNDS, **kwargs) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        load_index(path, **kwargs)
        best = min(best, time.perf_counter() - started)
    return best


@lru_cache(maxsize=None)
def _measurements():
    store = common.dataset(PROFILE)
    rows = []
    stats = {}
    for layout in LAYOUTS:
        started = time.perf_counter()
        index = IndexBuilder(store).build(layout)
        build_seconds = time.perf_counter() - started

        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / f"{layout}.ridx"
            started = time.perf_counter()
            index.save(path)
            save_seconds = time.perf_counter() - started
            on_disk_bytes = path.stat().st_size
            load_seconds = _best_load(path)
            mmap_seconds = _best_load(path, mmap=True)

            # Sanity: the loaded index answers like the built one.
            probe = store.sample(1, seed=11)[0]
            loaded = load_index(path, mmap=True).index
            assert loaded.select_list(probe) == index.select_list(probe)

        n = index.num_triples
        rows.append([
            layout.upper(),
            index.bits_per_triple(),
            on_disk_bytes * 8 / n,
            build_seconds,
            save_seconds,
            load_seconds,
            mmap_seconds,
            build_seconds / load_seconds if load_seconds else float("inf"),
        ])
        stats[layout] = {
            "disk_bytes": on_disk_bytes,
            "build_s": build_seconds,
            "save_s": save_seconds,
            "eager_load_s": load_seconds,
            "mmap_load_s": mmap_seconds,
        }
    return rows, stats


@lru_cache(maxsize=None)
def _mmap_at_scale(num_triples: int = MMAP_TRIPLES, layout: str = "2tp"):
    """Eager vs mmap load on one large index (asymptotic regime)."""
    store = common.dataset(PROFILE, num_triples=num_triples)
    index = IndexBuilder(store).build(layout)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / f"{layout}.ridx"
        save_index(index, path, aligned=True)
        on_disk_bytes = path.stat().st_size
        eager_seconds = _best_load(path)
        mmap_seconds = _best_load(path, mmap=True)
        probe = store.sample(1, seed=11)[0]
        loaded = load_index(path, mmap=True).index
        assert loaded.select_list(probe) == index.select_list(probe)
    return {
        "layout": layout,
        "num_triples": num_triples,
        "disk_bytes": on_disk_bytes,
        "eager_load_s": eager_seconds,
        "mmap_load_s": mmap_seconds,
        "speedup": eager_seconds / mmap_seconds if mmap_seconds else float("inf"),
    }


def _tables() -> tuple:
    rows, stats = _measurements()
    headers = ["index", "memory bits/triple", "disk bits/triple",
               "build s", "save s", "load s", "mmap load s", "build/load x"]
    main = format_table(headers, rows, precision=4,
                        title=f"Persistence — save/load round trip ({PROFILE}, "
                              f"{common.DEFAULT_TRIPLES} triples)")
    scale = _mmap_at_scale()
    scale_rows = [[
        scale["layout"].upper() + " (aligned v3)",
        scale["num_triples"],
        scale["disk_bytes"],
        scale["eager_load_s"],
        scale["mmap_load_s"],
        scale["speedup"],
    ]]
    scale_table = format_table(
        ["index", "triples", "disk bytes", "eager load s", "mmap load s",
         "eager/mmap x"],
        scale_rows, precision=4,
        title="Persistence — zero-copy mmap load at scale")
    data = {"layouts": stats, "mmap_at_scale": scale,
            "num_triples": common.DEFAULT_TRIPLES}
    return main + "\n\n" + scale_table, data


def test_report_persistence(benchmark):
    """Emit the persistence table; benchmark one full save+load round trip."""
    index = common.index_for(PROFILE, "2tp")

    def round_trip():
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "bench.ridx"
            index.save(path)
            return load_index(path).index.num_triples

    benchmark.pedantic(round_trip, rounds=3, iterations=1)
    text, data = _tables()
    common.write_result("persistence", text, data=data)


@pytest.mark.parametrize("layout", LAYOUTS)
def test_loaded_index_answers_identically(layout):
    """The loaded index returns byte-identical answers on a sampled workload."""
    store = common.dataset(PROFILE)
    index = common.index_for(PROFILE, layout)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / f"{layout}.ridx"
        index.save(path)
        loaded = load_index(path).index
    for s, p, o in store.sample(25, seed=3):
        assert loaded.select_list((s, None, None)) == index.select_list((s, None, None))
        assert loaded.select_list((None, p, o)) == index.select_list((None, p, o))
        assert loaded.select_list((s, None, o)) == index.select_list((s, None, o))


@pytest.mark.parametrize("layout", LAYOUTS)
def test_load_speed(benchmark, layout):
    """Benchmark pure load time per layout (the serve-side start-up cost)."""
    index = common.index_for(PROFILE, layout)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / f"{layout}.ridx"
        index.save(path)
        benchmark(lambda: load_index(path).index)


@pytest.mark.parametrize("layout", LAYOUTS)
def test_mmap_load_speed(benchmark, layout):
    """Benchmark zero-copy mmap load per layout."""
    index = common.index_for(PROFILE, layout)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / f"{layout}.ridx"
        save_index(index, path, aligned=True)
        benchmark(lambda: load_index(path, mmap=True).index)


def main(argv=None) -> int:
    """Standalone entry point (used by the CI benchmark-smoke step)."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--mmap", action="store_true",
                        help="run the eager-vs-mmap load comparison only")
    parser.add_argument("--triples", type=int, default=None,
                        help="dataset size (default: REPRO_BENCH_MMAP_TRIPLES "
                             "for --mmap, REPRO_BENCH_TRIPLES otherwise)")
    parser.add_argument("--layout", default="2tp", choices=LAYOUTS)
    args = parser.parse_args(argv)
    if args.mmap:
        result = _mmap_at_scale(args.triples or MMAP_TRIPLES, args.layout)
        print(f"{result['layout']} x {result['num_triples']} triples "
              f"({result['disk_bytes']} bytes): "
              f"eager {result['eager_load_s'] * 1e3:.3f} ms, "
              f"mmap {result['mmap_load_s'] * 1e3:.3f} ms, "
              f"speedup {result['speedup']:.1f}x")
        return 0
    text, data = _tables()
    common.write_result("persistence", text, data=data)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
