"""Persistence round trip — save/load time vs rebuild time, and on-disk
bits/triple next to the in-memory figures.

This is the build-once/serve-many argument behind the storage subsystem: a
saved index loads directly from its stored words (no re-encoding, no
re-sorting), so process start-up pays file-read time instead of index-build
time.  The table reports, per layout: in-memory and on-disk bits/triple, the
one-off build and save costs, the load cost, and the build/load speedup.
"""

import tempfile
import time
from functools import lru_cache
from pathlib import Path

import pytest

import common
from repro.bench.tables import format_table
from repro.core.builder import IndexBuilder
from repro.storage import load_index

LAYOUTS = ("3t", "cc", "2to", "2tp")
PROFILE = "dbpedia"


@lru_cache(maxsize=None)
def _measurements():
    store = common.dataset(PROFILE)
    rows = []
    for layout in LAYOUTS:
        started = time.perf_counter()
        index = IndexBuilder(store).build(layout)
        build_seconds = time.perf_counter() - started

        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / f"{layout}.ridx"
            started = time.perf_counter()
            index.save(path)
            save_seconds = time.perf_counter() - started
            on_disk_bytes = path.stat().st_size
            started = time.perf_counter()
            loaded = load_index(path).index
            load_seconds = time.perf_counter() - started

        # Sanity: the loaded index answers like the built one.
        probe = store.sample(1, seed=11)[0]
        assert loaded.select_list(probe) == index.select_list(probe)

        n = index.num_triples
        rows.append([
            layout.upper(),
            index.bits_per_triple(),
            on_disk_bytes * 8 / n,
            build_seconds,
            save_seconds,
            load_seconds,
            build_seconds / load_seconds if load_seconds else float("inf"),
        ])
    return rows


@lru_cache(maxsize=None)
def _table() -> str:
    headers = ["index", "memory bits/triple", "disk bits/triple",
               "build s", "save s", "load s", "build/load x"]
    return format_table(headers, _measurements(), precision=2,
                        title=f"Persistence — save/load round trip ({PROFILE}, "
                              f"{common.DEFAULT_TRIPLES} triples)")


def test_report_persistence(benchmark):
    """Emit the persistence table; benchmark one full save+load round trip."""
    index = common.index_for(PROFILE, "2tp")

    def round_trip():
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "bench.ridx"
            index.save(path)
            return load_index(path).index.num_triples

    benchmark.pedantic(round_trip, rounds=3, iterations=1)
    common.write_result("persistence", _table())


@pytest.mark.parametrize("layout", LAYOUTS)
def test_loaded_index_answers_identically(layout):
    """The loaded index returns byte-identical answers on a sampled workload."""
    store = common.dataset(PROFILE)
    index = common.index_for(PROFILE, layout)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / f"{layout}.ridx"
        index.save(path)
        loaded = load_index(path).index
    for s, p, o in store.sample(25, seed=3):
        assert loaded.select_list((s, None, None)) == index.select_list((s, None, None))
        assert loaded.select_list((None, p, o)) == index.select_list((None, p, o))
        assert loaded.select_list((s, None, o)) == index.select_list((s, None, o))


@pytest.mark.parametrize("layout", LAYOUTS)
def test_load_speed(benchmark, layout):
    """Benchmark pure load time per layout (the serve-side start-up cost)."""
    index = common.index_for(PROFILE, layout)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / f"{layout}.ridx"
        index.save(path)
        benchmark(lambda: load_index(path).index)
