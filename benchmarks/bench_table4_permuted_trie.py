"""Table 4 — 3T vs CC vs 2To vs 2Tp: space and per-pattern query speed.

Reproduces the upper part of Table 4 (bits/triple for the four layouts) and
its lower part (average nanoseconds per returned triple for every selection
pattern) on two profile-shaped datasets.
"""

from __future__ import annotations

from functools import lru_cache

import pytest

import common
from repro.bench.measure import measure_pattern_workload
from repro.bench.tables import format_table, space_overhead_percent
from repro.core.patterns import PatternKind

LAYOUTS = ("3t", "cc", "2to", "2tp")
PROFILES = ("dblp", "dbpedia")
KINDS = (PatternKind.SPO, PatternKind.SP, PatternKind.S, PatternKind.ALL_WILDCARDS,
         PatternKind.SO, PatternKind.PO, PatternKind.O, PatternKind.P)

#: Per-kind workload caps so the low-selectivity patterns (?P?, ??O, ???)
#: keep the whole suite at laptop-scale runtimes.
KIND_LIMITS = {
    PatternKind.P: 25,
    PatternKind.O: 120,
    PatternKind.ALL_WILDCARDS: 1,
}


def _patterns(profile: str, kind: PatternKind):
    workload = common.workloads_for(profile)[kind]
    return workload.patterns[: KIND_LIMITS.get(kind, len(workload.patterns))]


@lru_cache(maxsize=None)
def _space_table() -> str:
    rows = []
    for layout in LAYOUTS:
        row = [layout.upper()]
        for profile in PROFILES:
            bits = common.index_for(profile, layout).bits_per_triple()
            best = min(common.index_for(profile, other).bits_per_triple()
                       for other in LAYOUTS)
            overhead = space_overhead_percent(best, bits)
            row.append(bits)
            row.append(overhead)
        rows.append(row)
    headers = ["index"]
    for profile in PROFILES:
        headers.extend([f"{profile} bits/triple", f"{profile} (+%)"])
    return format_table(headers, rows,
                        title="Table 4 (space) — permuted trie layouts, bits/triple")


@lru_cache(maxsize=None)
def _time_table() -> str:
    rows = []
    for kind in KINDS:
        for layout in LAYOUTS:
            row = [kind.value.upper(), layout.upper()]
            for profile in PROFILES:
                index = common.index_for(profile, layout)
                timing = measure_pattern_workload(index, _patterns(profile, kind),
                                                  kind=kind.value)
                row.append(timing.ns_per_triple)
            rows.append(row)
    headers = ["pattern", "index"] + [f"{p} ns/triple" for p in PROFILES]
    return format_table(headers, rows, precision=1,
                        title="Table 4 (time) — ns per returned triple per pattern")


def test_report_table4_space(benchmark):
    """Emit the space half of Table 4; benchmark building the 2Tp index."""
    store = common.dataset(PROFILES[0])
    from repro.core.builder import IndexBuilder
    benchmark.pedantic(lambda: IndexBuilder(store).build("2tp"), rounds=1, iterations=1)
    common.write_result("table4_space", _space_table())


def test_report_table4_time(benchmark):
    """Emit the time half of Table 4; benchmark the 2Tp ?PO workload."""
    index = common.index_for(PROFILES[0], "2tp")
    workload = common.workloads_for(PROFILES[0])[PatternKind.PO]
    benchmark(lambda: measure_pattern_workload(index, workload.patterns))
    common.write_result("table4_time", _time_table())


@pytest.mark.parametrize("layout", LAYOUTS)
@pytest.mark.parametrize("kind", [PatternKind.SO, PatternKind.PO, PatternKind.P,
                                  PatternKind.O])
def test_pattern_speed(benchmark, layout, kind):
    """Benchmark every layout on the patterns where the layouts differ."""
    index = common.index_for(PROFILES[0], layout)
    patterns = common.workloads_for(PROFILES[0])[kind].patterns[:150]

    def run():
        matched = 0
        for pattern in patterns:
            for _ in index.select(pattern):
                matched += 1
        return matched

    benchmark(run)
