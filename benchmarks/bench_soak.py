"""Soak the pre-fork pool: 1k+ concurrent connections, p99, chaos.

Four phases against a real ``repro serve`` process tree (master + writer
+ N forked workers over one shared listener):

1. **ramp** — open ``--connections`` keep-alive connections (default
   1000) from one selector-driven, single-threaded client;
2. **measure** — every connection continuously POSTs small pattern
   queries; reports throughput, p50/p99 latency and the failure count
   (the acceptance bar is ZERO failed requests);
3. **chaos** — a sequence of ``POST /update`` writes runs while one
   worker is SIGKILLed mid-stream; every *acknowledged* write must still
   be answered by the (respawned) pool — the publish-before-ack contract
   means a kill can fail an in-flight request, never un-acknowledge one;
4. **baseline** — the same measurement against ``--workers 1`` (the
   single-process threaded server) for the multi-process speedup ratio.
   The bar scales with what the box can physically deliver
   (``min(workers, cpus)``-way parallelism): 2.5x at 4-way and above,
   1.3x at 2-3-way, 0.5x (oversubscription overhead, but no collapse)
   on a single core — and is always asserted, so a saturated CI runner
   still gates on "forking must not fall off a cliff".

Run directly (``python benchmarks/bench_soak.py``) or as the CI smoke
profile (``--ci --workers 2``: shorter windows, same phases including
the chaos kill).  Writes ``benchmarks/results/BENCH_soak.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import selectors
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import common  # noqa: E402

from repro.core.builder import build_index  # noqa: E402
from repro.rdf.triples import TripleStore  # noqa: E402
from repro.storage import save_index  # noqa: E402

#: The base graph: hub-and-ring, ~50k triples — big enough that queries do
#: real index work, small enough to build in a second.
NUM_NODES = 4000


def speedup_bar_for(parallelism: int) -> float:
    """The multi-process speedup bar for ``min(workers, cpus)``-way
    parallelism.  Forking cannot beat the core count, so the bar tracks
    the hardware: ambitious on real multi-core boxes, and on a single
    core — where extra workers only buy scheduling and IPC overhead —
    merely "not catastrophically slower".  Always gated, so a saturated
    CI runner still catches a pathological collapse."""
    if parallelism >= 4:
        return 2.5
    if parallelism >= 2:
        return 1.3
    return 0.5


def _build_index_file(path: Path) -> int:
    triples = set()
    for i in range(NUM_NODES):
        triples.add((i, 0, (i * 7 + 1) % NUM_NODES))
        triples.add((i, 0, (i + 13) % NUM_NODES))
        triples.add((i, 1, NUM_NODES + i % 31))
    for hub in range(8):
        for i in range(0, NUM_NODES, 2):
            triples.add((hub, 2, i))
    store = TripleStore.from_triples(sorted(triples))
    index = build_index(store, "2tp")
    save_index(index, path, aligned=True)
    return index.num_triples


def _start_pool(index_path: Path, workers: int, wal: Path,
                max_inflight: int) -> tuple:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", str(index_path),
         "--port", "0", "--quiet", "--workers", str(workers),
         "--wal", str(wal), "--max-inflight", str(max_inflight)],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env, text=True)
    watchdog = threading.Timer(60, proc.kill)
    watchdog.start()
    match = None
    lines = []
    try:
        # The single-process server prints a "loaded ..." line before its
        # banner; scan until the bound address appears.
        for line in proc.stdout:
            lines.append(line)
            match = re.search(r"http://([\d.]+):(\d+)", line)
            if match is not None:
                break
    finally:
        watchdog.cancel()
    if match is None:
        proc.kill()
        raise RuntimeError(f"pool failed to start: {lines!r}\n"
                           f"{proc.stderr.read()}")
    return proc, match.group(1), int(match.group(2))


def _stop_pool(proc) -> None:
    if proc.poll() is None:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=10)
    proc.stdout.close()
    proc.stderr.close()


# --------------------------------------------------------------------------- #
# The selector client: many keep-alive connections, one thread.
# --------------------------------------------------------------------------- #

_BODIES = [json.dumps({"pattern": [s, 0, None]}).encode("utf-8")
           for s in range(0, NUM_NODES, 97)]


def _request_bytes(body: bytes) -> bytes:
    return (f"POST /query HTTP/1.1\r\nHost: soak\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n\r\n").encode() + body


class _Connection:
    __slots__ = ("sock", "outbox", "inbox", "started", "sequence",
                 "expected")

    def __init__(self, sock):
        self.sock = sock
        self.outbox = b""
        self.inbox = b""
        self.started = 0.0
        self.sequence = 0
        self.expected = -1  # -1: headers not complete yet

    def begin(self, now: float) -> None:
        body = _BODIES[self.sequence % len(_BODIES)]
        self.sequence += 1
        self.outbox = _request_bytes(body)
        self.inbox = b""
        self.expected = -1
        self.started = now

    def response_complete(self) -> bool:
        if self.expected < 0:
            head_end = self.inbox.find(b"\r\n\r\n")
            if head_end < 0:
                return False
            match = re.search(rb"[Cc]ontent-[Ll]ength:\s*(\d+)",
                              self.inbox[:head_end])
            self.expected = head_end + 4 + (int(match.group(1))
                                            if match else 0)
        return len(self.inbox) >= self.expected

    def status(self) -> int:
        return int(self.inbox.split(None, 2)[1])


def _open_connections(host: str, port: int, count: int) -> list:
    connections = []
    for i in range(count):
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(20)
        sock.connect((host, port))
        sock.setblocking(False)
        connections.append(_Connection(sock))
        if i % 100 == 99:
            time.sleep(0.02)  # let the accept queue drain
    return connections


def _run_load(host: str, port: int, num_connections: int,
              duration: float) -> dict:
    """Hammer the pool for ``duration`` seconds; return the measurements."""
    selector = selectors.DefaultSelector()
    connections = _open_connections(host, port, num_connections)
    now = time.monotonic()
    for connection in connections:
        connection.begin(now)
        selector.register(connection.sock, selectors.EVENT_WRITE, connection)
    latencies = []
    failures = 0
    statuses = {}
    deadline = now + duration
    while time.monotonic() < deadline:
        for key, events in selector.select(timeout=0.5):
            connection = key.data
            try:
                if events & selectors.EVENT_WRITE:
                    sent = connection.sock.send(connection.outbox)
                    connection.outbox = connection.outbox[sent:]
                    if not connection.outbox:
                        selector.modify(connection.sock,
                                        selectors.EVENT_READ, connection)
                if events & selectors.EVENT_READ:
                    chunk = connection.sock.recv(65536)
                    if not chunk:
                        raise ConnectionError("server closed the connection")
                    connection.inbox += chunk
                    if connection.response_complete():
                        status = connection.status()
                        statuses[status] = statuses.get(status, 0) + 1
                        if status != 200:
                            failures += 1
                        latencies.append(
                            time.monotonic() - connection.started)
                        connection.begin(time.monotonic())
                        selector.modify(connection.sock,
                                        selectors.EVENT_WRITE, connection)
            except (OSError, ConnectionError, ValueError):
                failures += 1
                selector.unregister(connection.sock)
                connection.sock.close()
    for key in list(selector.get_map().values()):
        selector.unregister(key.fileobj)
        key.fileobj.close()
    selector.close()
    latencies.sort()

    def percentile(fraction: float) -> float:
        if not latencies:
            return float("nan")
        return latencies[min(len(latencies) - 1,
                             int(fraction * len(latencies)))] * 1e3

    return {
        "connections": num_connections,
        "duration_seconds": duration,
        "requests": len(latencies),
        "throughput_rps": len(latencies) / duration,
        "p50_ms": percentile(0.50),
        "p99_ms": percentile(0.99),
        "max_ms": latencies[-1] * 1e3 if latencies else float("nan"),
        "failures": failures,
        "statuses": statuses,
    }


# --------------------------------------------------------------------------- #
# Chaos: kill one worker mid-write-stream; no acked write may vanish.
# --------------------------------------------------------------------------- #

def _post(url: str, path: str, body: dict, timeout: float = 15.0):
    data = json.dumps(body).encode("utf-8")
    request = urllib.request.Request(
        url + path, data=data, method="POST",
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, json.loads(response.read())


def _run_chaos(url: str, num_writes: int) -> dict:
    acked = []
    killed_pid = None
    retried = 0
    for i in range(num_writes):
        triple = [100_000 + i, 9, i]
        if i == num_writes // 2:
            # Mid-stream, SIGKILL whichever worker answers the probe.
            killed_pid = json.loads(urllib.request.urlopen(
                url + "/healthz", timeout=10).read())["pid"]
            os.kill(killed_pid, signal.SIGKILL)
        for attempt in range(60):
            try:
                status, body = _post(url, "/update", {"insert": [triple]})
            except (urllib.error.URLError, ConnectionError, OSError):
                retried += 1  # the killed worker took this connection down
                time.sleep(0.2)
                continue
            if status == 200:
                acked.append(triple)  # the writer's ack: durable + published
                break
            retried += 1  # 503 WriterUnavailable while respawning, etc.
            time.sleep(0.2)
        else:
            raise RuntimeError(f"update {triple} never acknowledged")
    status, result = _post(url, "/query",
                           {"pattern": [None, 9, None], "cache": False,
                            "limit": num_writes + 10})
    served = {tuple(t) for t in result["triples"]}
    lost = [t for t in acked if tuple(t) not in served]
    return {
        "writes_acknowledged": len(acked),
        "killed_worker_pid": killed_pid,
        "retries": retried,
        "acked_writes_lost": len(lost),
        "lost": lost,
    }


# --------------------------------------------------------------------------- #
# Orchestration.
# --------------------------------------------------------------------------- #

def run_soak(workers: int, connections: int, duration: float,
             chaos_writes: int) -> dict:
    tmp = Path(tempfile.mkdtemp(prefix="repro-soak-"))
    index_path = tmp / "soak.bin"
    num_triples = _build_index_file(index_path)
    cpus = os.cpu_count() or 1
    parallelism = min(workers, cpus)
    report = {
        "workers": workers,
        "cpus": cpus,
        "num_triples": num_triples,
        "speedup_parallelism": parallelism,
        "speedup_bar": speedup_bar_for(parallelism),
    }

    proc, host, port = _start_pool(index_path, workers, tmp / "soak.wal",
                                   max_inflight=max(4096, connections))
    try:
        url = f"http://{host}:{port}"
        _run_load(host, port, min(64, connections), 1.0)  # warm-up
        report["measure"] = _run_load(host, port, connections, duration)
        report["chaos"] = _run_chaos(url, chaos_writes)
        metrics = urllib.request.urlopen(url + "/metrics",
                                         timeout=10).read().decode()
        restarts = re.search(r"repro_worker_restarts_total (\d+)", metrics)
        report["worker_restarts"] = int(restarts.group(1)) if restarts else 0
    finally:
        _stop_pool(proc)

    # Single-process baseline (``--workers 1`` takes the threaded in-process
    # path): same load shape, smaller connection count so one process is
    # measured on throughput, not on accept-queue overflow.
    proc, host, port = _start_pool(index_path, 1, tmp / "base.wal",
                                   max_inflight=max(4096, connections))
    try:
        baseline_connections = min(connections, 256)
        _run_load(host, port, min(64, baseline_connections), 1.0)
        report["baseline"] = _run_load(host, port, baseline_connections,
                                       duration)
    finally:
        _stop_pool(proc)

    report["speedup_vs_single_process"] = (
        report["measure"]["throughput_rps"]
        / report["baseline"]["throughput_rps"]
        if report["baseline"]["throughput_rps"] else float("nan"))
    return report


def check_bars(report: dict) -> list:
    problems = []
    if report["measure"]["failures"]:
        problems.append(
            f"{report['measure']['failures']} failed requests in the "
            f"measure phase (bar: zero)")
    if report["chaos"]["acked_writes_lost"]:
        problems.append(
            f"chaos lost {report['chaos']['acked_writes_lost']} "
            f"acknowledged writes: {report['chaos']['lost']} (bar: zero)")
    if report["speedup_vs_single_process"] < report["speedup_bar"]:
        problems.append(
            f"multi-worker throughput only "
            f"{report['speedup_vs_single_process']:.2f}x the single-process "
            f"baseline (bar: {report['speedup_bar']}x at "
            f"{report['speedup_parallelism']}-way parallelism — "
            f"{report['workers']} workers on {report['cpus']} CPU(s))")
    return problems


def _format_report(report: dict) -> str:
    measure, baseline, chaos = (report["measure"], report["baseline"],
                                report["chaos"])
    gate = (f"{report['speedup_parallelism']}-way parallelism, "
            f"{report['cpus']} CPU(s)")
    return "\n".join([
        f"Soak — {report['workers']} workers, "
        f"{measure['connections']} concurrent connections, "
        f"{measure['duration_seconds']:.0f}s measure window",
        f"  requests        {measure['requests']}",
        f"  throughput      {measure['throughput_rps']:.0f} req/s",
        f"  p50 / p99 / max {measure['p50_ms']:.1f} / {measure['p99_ms']:.1f}"
        f" / {measure['max_ms']:.1f} ms",
        f"  failures        {measure['failures']}",
        f"  chaos           killed pid {chaos['killed_worker_pid']}, "
        f"{chaos['writes_acknowledged']} acked writes, "
        f"{chaos['acked_writes_lost']} lost, {chaos['retries']} retries",
        f"  baseline        {baseline['throughput_rps']:.0f} req/s over "
        f"{baseline['connections']} connections (1 process)",
        f"  speedup         {report['speedup_vs_single_process']:.2f}x "
        f"({gate}; bar {report['speedup_bar']}x)",
    ])


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--connections", type=int, default=1000)
    parser.add_argument("--duration", type=float, default=10.0,
                        help="measure window, seconds")
    parser.add_argument("--chaos-writes", type=int, default=40)
    parser.add_argument("--ci", action="store_true",
                        help="short smoke profile: 4s window, 20 writes")
    args = parser.parse_args(argv)
    if args.ci:
        args.duration = min(args.duration, 4.0)
        args.chaos_writes = min(args.chaos_writes, 20)

    report = run_soak(args.workers, args.connections, args.duration,
                      args.chaos_writes)
    problems = check_bars(report)
    report["problems"] = problems
    common.write_result("soak", _format_report(report), data=report)
    if problems:
        for problem in problems:
            print(f"BAR FAILED: {problem}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
