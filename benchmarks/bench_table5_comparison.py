"""Table 5 — 2Tp against the state of the art (HDT-FoQ, TripleBit).

Reproduces the paper's headline comparison: total space in bits/triple and
average nanoseconds per returned triple for the selection patterns of Table 5
(?PO, S?O, SP?, S??, ?P?, ??O), on two profile-shaped datasets.
"""

from __future__ import annotations

from functools import lru_cache

import pytest

import common
from repro.bench.measure import measure_pattern_workload
from repro.bench.tables import format_table, space_overhead_percent, speedup
from repro.core.patterns import PatternKind

PROFILES = ("dblp", "dbpedia")
COMPETITORS = ("hdt-foq", "triplebit", "vertical-partitioning")
KINDS = (PatternKind.PO, PatternKind.SO, PatternKind.SP, PatternKind.S,
         PatternKind.P, PatternKind.O)

#: Per-kind workload caps (the slow baselines make low-selectivity patterns
#: expensive to sweep in full).
KIND_LIMITS = {
    PatternKind.P: 15,
    PatternKind.O: 60,
    PatternKind.SO: 150,
    PatternKind.S: 200,
}


def _patterns(profile: str, kind: PatternKind):
    workload = common.workloads_for(profile)[kind]
    return workload.patterns[: KIND_LIMITS.get(kind, len(workload.patterns))]


def _index(profile: str, name: str):
    if name == "2tp":
        return common.index_for(profile, "2tp")
    return common.baseline_for(profile, name)


@lru_cache(maxsize=None)
def _space_table() -> str:
    rows = []
    for name in ("2tp",) + COMPETITORS:
        row = [name]
        for profile in PROFILES:
            bits = _index(profile, name).bits_per_triple()
            reference = _index(profile, "2tp").bits_per_triple()
            row.extend([bits, space_overhead_percent(reference, bits)])
        rows.append(row)
    headers = ["index"]
    for profile in PROFILES:
        headers.extend([f"{profile} bits/triple", f"{profile} (+% vs 2Tp)"])
    return format_table(headers, rows,
                        title="Table 5 (space) — 2Tp vs state of the art")


@lru_cache(maxsize=None)
def _time_table() -> str:
    rows = []
    for kind in KINDS:
        reference_ns = {}
        for name in ("2tp",) + COMPETITORS:
            row = [kind.value.upper(), name]
            for profile in PROFILES:
                index = _index(profile, name)
                timing = measure_pattern_workload(index, _patterns(profile, kind),
                                                  kind=kind.value)
                ns = timing.ns_per_triple
                if name == "2tp":
                    reference_ns[profile] = ns
                factor = speedup(reference_ns.get(profile, 0.0), ns)
                row.extend([ns, factor])
            rows.append(row)
    headers = ["pattern", "index"]
    for profile in PROFILES:
        headers.extend([f"{profile} ns/triple", f"{profile} x vs 2Tp"])
    return format_table(headers, rows, precision=1,
                        title="Table 5 (time) — ns per returned triple vs state of the art")


def test_report_table5_space(benchmark):
    """Emit the space half of Table 5; benchmark HDT-FoQ construction."""
    from repro.baselines import HdtFoqIndex
    store = common.dataset(PROFILES[0])
    benchmark.pedantic(lambda: HdtFoqIndex(store), rounds=1, iterations=1)
    common.write_result("table5_space", _space_table())


def test_report_table5_time(benchmark):
    """Emit the time half of Table 5; benchmark HDT-FoQ on ?P? (its weak spot)."""
    index = common.baseline_for(PROFILES[0], "hdt-foq")
    patterns = common.workloads_for(PROFILES[0])[PatternKind.P].patterns[:30]
    benchmark.pedantic(
        lambda: measure_pattern_workload(index, patterns), rounds=1, iterations=1)
    common.write_result("table5_time", _time_table())


@pytest.mark.parametrize("name", ("2tp",) + COMPETITORS)
def test_so_pattern_speed(benchmark, name):
    """Benchmark S?O — the pattern with the paper's largest speedups (up to 2057x)."""
    index = _index(PROFILES[0], name)
    patterns = common.workloads_for(PROFILES[0])[PatternKind.SO].patterns[:100]

    def run():
        for pattern in patterns:
            for _ in index.select(pattern):
                pass

    benchmark.pedantic(run, rounds=2, iterations=1)
