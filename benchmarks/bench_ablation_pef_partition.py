"""Ablation — PEF partition size.

The partitioned Elias-Fano codec trades compression for locality through its
partition size.  This ablation encodes the POS third level (the largest
component of the 3T index) under several partition sizes and reports space and
find speed, justifying the default of 128 used throughout.
"""

from __future__ import annotations

import time
from functools import lru_cache
from typing import List, Tuple

import pytest

import common
from repro.bench.tables import format_table
from repro.core.builder import IndexBuilder
from repro.core.trie import TrieConfig

PROFILE = "dbpedia"
PARTITION_SIZES = (32, 64, 128, 256, 512)


@lru_cache(maxsize=None)
def _trie(partition_size: int):
    store = common.dataset(PROFILE)
    config = TrieConfig(level1_nodes="pef", level2_nodes="pef",
                        codec_options={"pef": {"partition_size": partition_size}})
    return IndexBuilder(store, trie_configs={"pos": config}).build_trie("pos")


@lru_cache(maxsize=None)
def _find_jobs() -> List[Tuple[int, int, int]]:
    """(range, subject) jobs on the POS third level for the find measurement."""
    store = common.dataset(PROFILE)
    trie = _trie(128)
    jobs = []
    for s, p, o in store.sample(1500, seed=31):
        position = trie.find_child(p, o)
        if position < 0:
            continue
        begin, end = trie.pair_children_range(position)
        jobs.append((begin, end, s))
    return jobs


def _measure_find(trie) -> float:
    jobs = _find_jobs()
    start = time.perf_counter()
    for begin, end, subject in jobs:
        trie.find_third(begin, end, subject)
    return (time.perf_counter() - start) * 1e9 / max(1, len(jobs))


@lru_cache(maxsize=None)
def _table() -> str:
    num_triples = len(common.dataset(PROFILE))
    rows = []
    for partition_size in PARTITION_SIZES:
        trie = _trie(partition_size)
        rows.append([partition_size,
                     trie.nodes_level2.size_in_bits() / num_triples,
                     trie.size_in_bits() / num_triples,
                     _measure_find(trie)])
    return format_table(
        ["partition size", "POS level-3 bits/triple", "POS trie bits/triple",
         "find ns"],
        rows, precision=2,
        title="Ablation — PEF partition size on the POS trie")


def test_report_pef_partition_ablation(benchmark):
    """Emit the ablation table; benchmark find at the default partition size."""
    trie = _trie(128)
    benchmark(lambda: _measure_find(trie))
    common.write_result("ablation_pef_partition", _table())


@pytest.mark.parametrize("partition_size", PARTITION_SIZES)
def test_find_speed_by_partition_size(benchmark, partition_size):
    """Benchmark find on the POS third level for each partition size."""
    trie = _trie(partition_size)
    benchmark(lambda: _measure_find(trie))
