"""Table 2 — number of children of the trie nodes (DBpedia).

Reports the average and maximum fan-out of the first and second levels of the
SPO, POS and OSP tries: the statistic the paper uses to motivate both the
cross-compression technique (Section 3.2) and the enumerate algorithm
(Section 3.3).
"""

from __future__ import annotations

from functools import lru_cache

import common
from repro.bench.tables import format_table
from repro.core.stats import children_statistics_from_store

PROFILE = "dbpedia"


@lru_cache(maxsize=None)
def _table() -> str:
    store = common.dataset(PROFILE)
    rows = [[row.trie.upper(), row.level, row.average, row.maximum]
            for row in children_statistics_from_store(store)]
    return format_table(
        ["trie", "level", "average", "maximum"], rows,
        title=f"Table 2 — children per trie node ({PROFILE}-like, {len(store)} triples)")


def test_report_table2(benchmark):
    """Emit Table 2 and benchmark the statistics computation itself."""
    store = common.dataset(PROFILE)
    benchmark(lambda: children_statistics_from_store(store))
    common.write_result("table2_children_stats", _table())
