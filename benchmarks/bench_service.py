"""Serving-layer throughput: cold vs. result-cache-warm, 1 thread vs. a pool.

The service's argument is build-once/serve-many taken one step further than
persistence: one loaded index answers *many* queries, so the marginal cost of
a repeated query should collapse to a cache lookup and concurrent clients
should share the read-only index without stepping on each other.  Measured
here, per LUBM log query and in aggregate:

* **cold** — every query planned and executed from scratch (caches off);
* **warm** — the same queries answered from the result cache;
* the cold/warm speedup (the acceptance bar is >= 10x for a repeated query);
* queries/second for 1 thread vs. a thread pool hammering one service.

Writes ``benchmarks/results/BENCH_service.json`` (the machine-readable
numbers) next to the usual plain-text table.
"""

from __future__ import annotations

import json
import os
import threading
import time
from functools import lru_cache

import common
from repro.bench.tables import format_table
from repro.core.builder import IndexBuilder
from repro.queries import QueryPlanner, lubm_query_log
from repro.service import QueryService

NUM_THREADS = 8
#: Repetitions per query when timing single executions.
ROUNDS = int(os.environ.get("REPRO_BENCH_SERVICE_ROUNDS", "3"))
#: Total requests for the throughput (queries/second) comparison; the cold
#: side re-executes every query, so it gets a smaller budget.
WARM_REQUESTS = int(os.environ.get("REPRO_BENCH_SERVICE_WARM_REQUESTS", "640"))
COLD_REQUESTS = int(os.environ.get("REPRO_BENCH_SERVICE_COLD_REQUESTS", "64"))
MAX_LIMIT = 1_000

#: Sum of per-query cold execution times over the LUBM log, measured at the
#: previous PR's head (commit e5505de, same machine/dataset/defaults).
#: Kept in the JSON so successive PRs can read the trajectory without
#: checking out old commits; re-measure when the dataset defaults change.
PR5_COLD_TOTAL_SECONDS = 0.415


@lru_cache(maxsize=None)
def _setup():
    store = common.lubm_dataset()
    index = IndexBuilder(store).build("2tp")
    cardinalities = QueryPlanner.cardinalities_from_store(store)
    queries = lubm_query_log()
    return index, cardinalities, queries


def _service(index, cardinalities, result_cache_size=256) -> QueryService:
    return QueryService(index, cardinalities=cardinalities,
                        result_cache_size=result_cache_size,
                        max_limit=MAX_LIMIT)


def _best_of(callable_, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - started)
    return best


@lru_cache(maxsize=None)
def _measurements():
    index, cardinalities, queries = _setup()
    service = _service(index, cardinalities)

    per_query = []
    for query in queries:
        cold_seconds = _best_of(
            lambda: service.execute(query, use_cache=False), ROUNDS)
        service.execute(query)  # populate the cache
        warm_seconds = _best_of(lambda: service.execute(query), ROUNDS)
        assert service.execute(query).cached is True
        per_query.append({
            "query": query.name,
            "results": service.execute(query).count,
            "cold_us": cold_seconds * 1e6,
            "warm_us": warm_seconds * 1e6,
            "speedup": cold_seconds / warm_seconds if warm_seconds else float("inf"),
        })

    def _throughput(num_threads: int, use_cache: bool) -> float:
        throughput_service = _service(
            index, cardinalities, result_cache_size=256 if use_cache else 0)
        if use_cache:
            for query in queries:
                throughput_service.execute(query)
        total = WARM_REQUESTS if use_cache else COLD_REQUESTS
        per_thread = total // num_threads
        barrier = threading.Barrier(num_threads + 1)

        def worker(offset: int):
            barrier.wait()
            for position in range(per_thread):
                query = queries[(offset + position) % len(queries)]
                throughput_service.execute(query, use_cache=use_cache)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(num_threads)]
        for thread in threads:
            thread.start()
        barrier.wait()
        started = time.perf_counter()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        return (per_thread * num_threads) / elapsed

    throughput = {
        "cold_1_thread_qps": _throughput(1, use_cache=False),
        "cold_pool_qps": _throughput(NUM_THREADS, use_cache=False),
        "warm_1_thread_qps": _throughput(1, use_cache=True),
        "warm_pool_qps": _throughput(NUM_THREADS, use_cache=True),
    }
    return per_query, throughput


def _report() -> dict:
    per_query, throughput = _measurements()
    speedups = [entry["speedup"] for entry in per_query]
    cold_total = sum(entry["cold_us"] for entry in per_query) / 1e6
    return {
        "dataset": "lubm",
        "num_queries": len(per_query),
        "per_query": per_query,
        "median_cached_speedup": sorted(speedups)[len(speedups) // 2],
        "min_cached_speedup": min(speedups),
        "cold_total_seconds": cold_total,
        "throughput": throughput,
        "num_threads": NUM_THREADS,
        "baseline": {
            "pr5_cold_total_seconds": PR5_COLD_TOTAL_SECONDS,
            "cold_speedup_vs_pr5": PR5_COLD_TOTAL_SECONDS / cold_total,
        },
    }


def test_result_cache_speedup_meets_bar():
    """A repeated (cached) query is >= 10x faster than its cold execution."""
    report = _report()
    assert report["median_cached_speedup"] >= 10.0, report["per_query"]


def test_report_service():
    """Emit the serving table and BENCH_service.json."""
    report = _report()
    rows = [[entry["query"], entry["results"], entry["cold_us"],
             entry["warm_us"], entry["speedup"]]
            for entry in report["per_query"]]
    table = format_table(
        ["query", "results", "cold us", "cached us", "speedup x"], rows,
        precision=1,
        title=f"Service — result-cache speedup (LUBM log) and throughput; "
              f"median speedup {report['median_cached_speedup']:.0f}x")
    throughput = report["throughput"]
    table += (
        f"\nthroughput (qps; {COLD_REQUESTS} cold / {WARM_REQUESTS} warm "
        f"requests): "
        f"cold 1-thread {throughput['cold_1_thread_qps']:.0f}, "
        f"cold {NUM_THREADS}-thread {throughput['cold_pool_qps']:.0f}, "
        f"warm 1-thread {throughput['warm_1_thread_qps']:.0f}, "
        f"warm {NUM_THREADS}-thread {throughput['warm_pool_qps']:.0f}")
    common.write_result("service", table)
    common.RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (common.RESULTS_DIR / "BENCH_service.json").write_text(
        json.dumps(report, indent=2) + "\n", encoding="utf-8")
