"""Ablation — codec choice per trie level (paper Section 3.1 design choices).

The paper settles on PEF for node sequences (Compact for the last level of
SPO) after the Table 1 analysis.  This ablation builds the full 2Tp index
under alternative uniform codec choices and reports the resulting space and
?PO / SP? speed, making the trade-off the paper describes directly visible.
"""

from __future__ import annotations

from functools import lru_cache

import pytest

import common
from repro.bench.measure import measure_pattern_workload
from repro.bench.tables import format_table
from repro.core.builder import IndexBuilder
from repro.core.patterns import PatternKind
from repro.core.trie import TrieConfig

PROFILE = "dbpedia"
CONFIGS = {
    "paper (pef + compact SPO L3)": None,  # the builder default
    "all compact": TrieConfig(level1_nodes="compact", level2_nodes="compact"),
    "all ef": TrieConfig(level1_nodes="ef", level2_nodes="ef"),
    "all pef": TrieConfig(level1_nodes="pef", level2_nodes="pef"),
    "all vbyte": TrieConfig(level1_nodes="vbyte", level2_nodes="vbyte"),
}


@lru_cache(maxsize=None)
def _index(config_name: str):
    store = common.dataset(PROFILE)
    config = CONFIGS[config_name]
    if config is None:
        return IndexBuilder(store).build("2tp")
    overrides = {name: config for name in ("spo", "pos")}
    return IndexBuilder(store, trie_configs=overrides).build("2tp")


@lru_cache(maxsize=None)
def _table() -> str:
    workloads = common.workloads_for(PROFILE)
    rows = []
    for config_name in CONFIGS:
        index = _index(config_name)
        po = measure_pattern_workload(index, workloads[PatternKind.PO].patterns[:250])
        sp = measure_pattern_workload(index, workloads[PatternKind.SP].patterns[:250])
        rows.append([config_name, index.bits_per_triple(),
                     po.ns_per_triple, sp.ns_per_triple])
    return format_table(
        ["codec configuration", "bits/triple", "?PO ns/triple", "SP? ns/triple"],
        rows, precision=2,
        title="Ablation — codec choice for the 2Tp trie levels")


def test_report_codec_ablation(benchmark):
    """Emit the ablation table; benchmark the paper-default configuration."""
    index = _index("paper (pef + compact SPO L3)")
    patterns = common.workloads_for(PROFILE)[PatternKind.PO].patterns[:250]
    benchmark(lambda: measure_pattern_workload(index, patterns))
    common.write_result("ablation_codecs", _table())


@pytest.mark.parametrize("config_name", list(CONFIGS))
def test_codec_config_speed(benchmark, config_name):
    """Benchmark SP? for each codec configuration."""
    index = _index(config_name)
    patterns = common.workloads_for(PROFILE)[PatternKind.SP].patterns[:200]

    def run():
        for pattern in patterns:
            for _ in index.select(pattern):
                pass

    benchmark.pedantic(run, rounds=2, iterations=1)
