"""Profiling overhead: the observability layer must be (nearly) free.

The span-tree profiler tallies per-operator counters inside both join
engines; the acceptance bar is that running the LUBM query mix (the same
mix ``bench_service.py`` uses) with ``profile=True`` costs at most **5%**
over the unprofiled baseline, and that merely *having* the feature in the
codebase costs nothing when disabled (the disabled pass is measured twice,
bracketing the profiled pass, so drift shows up as disagreement between
the two off measurements rather than as phantom overhead).

Writes ``benchmarks/results/BENCH_obs.json``::

    {"baseline_seconds": ..., "profiled_seconds": ...,
     "overhead_enabled_pct": ..., "overhead_disabled_pct": ...,
     "per_query": [...], "problems": [...]}

Run directly (``--ci`` for the short smoke profile used by the workflow).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import common  # noqa: E402

from repro.bench.tables import format_table  # noqa: E402
from repro.core.builder import IndexBuilder  # noqa: E402
from repro.queries import QueryPlanner, lubm_query_log  # noqa: E402
from repro.service import QueryService  # noqa: E402

OVERHEAD_BAR_PCT = 5.0
MAX_LIMIT = 1_000


def _timed(callable_) -> float:
    started = time.perf_counter()
    callable_()
    return time.perf_counter() - started


def run_bench(rounds: int) -> dict:
    store = common.lubm_dataset()
    index = IndexBuilder(store).build("2tp")
    cardinalities = QueryPlanner.cardinalities_from_store(store)
    queries = lubm_query_log()
    # Caches off: a cache hit would measure dictionary lookups, not the
    # engine instrumentation under test.
    service = QueryService(index, cardinalities=cardinalities,
                           result_cache_size=0, max_limit=MAX_LIMIT)

    per_query = []
    for query in queries:
        service.execute(query, use_cache=False)  # warm plan cache + pages

        def run(profile):
            return _timed(lambda: service.execute(query, use_cache=False,
                                                  profile=profile))

        # Interleave off/on/off *within every round* (not as three
        # contiguous blocks) so a noise burst — scheduler preemption,
        # thermal throttling, a noisy neighbour — hits all three modes
        # alike instead of masquerading as profiling overhead, then take
        # the per-mode best across rounds.
        off_before = profiled = off_after = float("inf")
        for _ in range(rounds):
            off_before = min(off_before, run(False))
            profiled = min(profiled, run(True))
            off_after = min(off_after, run(False))
        baseline = min(off_before, off_after)
        per_query.append({
            "query": query.name,
            "baseline_us": baseline * 1e6,
            "profiled_us": profiled * 1e6,
            "off_before_us": off_before * 1e6,
            "off_after_us": off_after * 1e6,
            "overhead_pct": (profiled / baseline - 1.0) * 100.0,
        })

    baseline_total = sum(entry["baseline_us"] for entry in per_query) / 1e6
    profiled_total = sum(entry["profiled_us"] for entry in per_query) / 1e6
    # The two off passes measure the same code; their disagreement is the
    # noise floor, and the "disabled overhead" is bounded by it.
    off_before_total = sum(e["off_before_us"] for e in per_query) / 1e6
    off_after_total = sum(e["off_after_us"] for e in per_query) / 1e6
    disabled_pct = abs(off_after_total / off_before_total - 1.0) * 100.0

    report = {
        "dataset": "lubm",
        "num_queries": len(per_query),
        "rounds": rounds,
        "per_query": per_query,
        "baseline_seconds": baseline_total,
        "profiled_seconds": profiled_total,
        "overhead_enabled_pct": (profiled_total / baseline_total - 1.0) * 100.0,
        "overhead_disabled_pct": disabled_pct,
        "overhead_bar_pct": OVERHEAD_BAR_PCT,
    }
    return report


def check_bars(report: dict) -> list:
    problems = []
    if report["overhead_enabled_pct"] > OVERHEAD_BAR_PCT:
        problems.append(
            f"profiling overhead {report['overhead_enabled_pct']:.2f}% "
            f"exceeds the {OVERHEAD_BAR_PCT:.0f}% bar")
    return problems


def _format_report(report: dict) -> str:
    rows = [[entry["query"], entry["baseline_us"], entry["profiled_us"],
             entry["overhead_pct"]]
            for entry in report["per_query"]]
    table = format_table(
        ["query", "baseline us", "profiled us", "overhead %"], rows,
        precision=1,
        title=f"Observability — profile=True overhead on the LUBM mix: "
              f"{report['overhead_enabled_pct']:+.2f}% enabled "
              f"(bar {report['overhead_bar_pct']:.0f}%), "
              f"{report['overhead_disabled_pct']:.2f}% off-vs-off noise "
              f"floor")
    return table


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=25,
                        help="best-of rounds per query per mode")
    parser.add_argument("--ci", action="store_true",
                        help="CI profile (same rounds; kept for parity "
                             "with the other benchmarks)")
    args = parser.parse_args(argv)

    report = run_bench(args.rounds)
    problems = check_bars(report)
    report["problems"] = problems
    common.write_result("obs", _format_report(report), data=report)
    if problems:
        for problem in problems:
            print(f"BAR FAILED: {problem}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
