"""Ablation — what cross compression buys and what it costs (Section 3.2).

Compares 3T against CC: total space, the size of the POS third level (the
component the technique targets), and the slowdown it induces on the two
patterns that must run the unmap indirection (?PO and ?P?).  Also reports the
OSP level-2 codec choice (Compact vs PEF) that the paper discusses for keeping
unmap cheap.
"""

from __future__ import annotations

from functools import lru_cache

import pytest

import common
from repro.bench.measure import measure_pattern_workload
from repro.bench.tables import format_table
from repro.core.patterns import PatternKind

PROFILE = "dbpedia"


@lru_cache(maxsize=None)
def _table() -> str:
    index_3t = common.index_for(PROFILE, "3t")
    index_cc = common.index_for(PROFILE, "cc")
    workloads = common.workloads_for(PROFILE)
    rows = []
    for name, index in (("3T", index_3t), ("CC", index_cc)):
        po = measure_pattern_workload(index, workloads[PatternKind.PO].patterns[:250])
        p = measure_pattern_workload(index, workloads[PatternKind.P].patterns[:30])
        breakdown = index.space_breakdown()
        n = index.num_triples
        rows.append([name, index.bits_per_triple(),
                     breakdown["pos.nodes2"] / n,
                     breakdown["osp.nodes1"] / n,
                     po.ns_per_triple, p.ns_per_triple])
    return format_table(
        ["index", "bits/triple", "POS level-3 bits/triple", "OSP level-2 bits/triple",
         "?PO ns/triple", "?P? ns/triple"],
        rows, precision=2,
        title="Ablation — cross compression of the POS third level")


def test_report_cross_compression_ablation(benchmark):
    """Emit the ablation table; benchmark the CC ?PO path (with unmap)."""
    index = common.index_for(PROFILE, "cc")
    patterns = common.workloads_for(PROFILE)[PatternKind.PO].patterns[:250]
    benchmark(lambda: measure_pattern_workload(index, patterns))
    common.write_result("ablation_cross_compression", _table())


@pytest.mark.parametrize("layout", ["3t", "cc"])
def test_po_with_and_without_unmap(benchmark, layout):
    """Benchmark ?PO with and without the unmap indirection."""
    index = common.index_for(PROFILE, layout)
    patterns = common.workloads_for(PROFILE)[PatternKind.PO].patterns[:250]

    def run():
        for pattern in patterns:
            for _ in index.select(pattern):
                pass

    benchmark(run)
