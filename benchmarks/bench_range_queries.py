"""Section 4.1 — range queries on WatDiv.

The paper tests ?P? / ?PO patterns with numeric range constraints on the
object, handled by the POS trie of 2Tp plus the auxiliary sorted structure R,
reporting ~4.3 ns/triple and < 0.1 bits/triple of extra space.  This benchmark
reproduces the measurement at reduced scale.
"""

from __future__ import annotations

import time
from functools import lru_cache


import common
from repro.bench.tables import format_table
from repro.core.builder import IndexBuilder
from repro.core.range_queries import RangeQueryEngine
from repro.datasets.watdiv import WATDIV_PREDICATES


@lru_cache(maxsize=None)
def _engine():
    dataset = common.watdiv_dataset()
    index = IndexBuilder(dataset.store).build("2tp")
    return RangeQueryEngine(index, dataset.numeric_index,
                            dataset.numeric_id_offset), dataset


def _range_workload():
    return [
        ("price", WATDIV_PREDICATES["price"], 10.0, 120.0),
        ("price", WATDIV_PREDICATES["price"], 200.0, 450.0),
        ("rating", WATDIV_PREDICATES["rating"], 2.0, 8.0),
        ("rating", WATDIV_PREDICATES["rating"], 7.0, 10.0),
        ("age", WATDIV_PREDICATES["age"], 20.0, 45.0),
        ("age", WATDIV_PREDICATES["age"], 50.0, 75.0),
    ]


@lru_cache(maxsize=None)
def _table() -> str:
    engine, dataset = _engine()
    rows = []
    for name, predicate, low, high in _range_workload():
        start = time.perf_counter()
        matched = sum(1 for _ in engine.select_object_range((None, predicate, None),
                                                            low, high))
        elapsed = time.perf_counter() - start
        rows.append([name, low, high, matched,
                     elapsed * 1e9 / max(1, matched)])
    rows.append(["R structure extra space (bits/triple)", None, None, None,
                 engine.extra_bits_per_triple()])
    return format_table(
        ["attribute", "low", "high", "matches", "ns/triple"], rows, precision=3,
        title=f"Range queries on WatDiv-like data ({len(dataset.store)} triples)")


def test_report_range_queries(benchmark):
    """Emit the range-query table; benchmark the full range workload."""
    engine, _ = _engine()

    def run():
        total = 0
        for _name, predicate, low, high in _range_workload():
            total += sum(1 for _ in engine.select_object_range(
                (None, predicate, None), low, high))
        return total

    benchmark.pedantic(run, rounds=2, iterations=1)
    common.write_result("range_queries", _table())


def test_range_translation_only(benchmark):
    """Benchmark just the two binary searches translating bounds into ID ranges."""
    engine, _ = _engine()
    workload = _range_workload()

    def run():
        for _name, _predicate, low, high in workload:
            engine.object_id_range(low, high)

    benchmark(run)
