"""Figure 7 — select vs enumerate for S?O as a function of subject fan-out.

The paper buckets S?O queries by the number of predicate children C of the
subject and shows that the enumerate algorithm (on SPO) beats the select
algorithm (on OSP) for small C — which is the common case, as the background
distribution of C shows — and loses only for large C.
"""

from __future__ import annotations

import time
from collections import defaultdict
from functools import lru_cache
from typing import Dict, List

import pytest

import common
from repro.bench.tables import format_table
from repro.core.patterns import TriplePattern
from repro.core.stats import subject_out_degree_distribution

PROFILE = "dbpedia"
MAX_QUERIES_PER_BUCKET = 200


@lru_cache(maxsize=None)
def _queries_by_children() -> Dict[int, List[TriplePattern]]:
    """S?O patterns bucketed by the subject's number of predicate children."""
    store = common.dataset(PROFILE)
    spo_trie = common.index_for(PROFILE, "2tp").trie("spo")
    buckets: Dict[int, List[TriplePattern]] = defaultdict(list)
    for s, p, o in store.sample(6000, seed=23):
        children = spo_trie.num_children(s)
        if len(buckets[children]) < MAX_QUERIES_PER_BUCKET:
            buckets[children].append(TriplePattern(s, None, o))
    return dict(sorted(buckets.items()))


def _measure(index, patterns) -> float:
    matched = 0
    start = time.perf_counter()
    for pattern in patterns:
        for _ in index.select(pattern):
            matched += 1
    elapsed = time.perf_counter() - start
    return elapsed * 1e9 / max(1, matched)


@lru_cache(maxsize=None)
def _table() -> str:
    select_index = common.index_for(PROFILE, "3t")    # S?O via select on OSP
    enumerate_index = common.index_for(PROFILE, "2tp")  # S?O via enumerate on SPO
    distribution = subject_out_degree_distribution(common.dataset(PROFILE))
    rows = []
    for children, patterns in _queries_by_children().items():
        rows.append([children, distribution.get(children, 0), len(patterns),
                     _measure(select_index, patterns),
                     _measure(enumerate_index, patterns)])
    return format_table(
        ["children C", "subjects with C", "queries", "select ns/triple",
         "enumerate ns/triple"],
        rows, precision=1,
        title="Figure 7 — S?O: select (OSP) vs enumerate (SPO) by subject fan-out")


def test_report_fig7(benchmark):
    """Emit the Fig. 7 series; benchmark the enumerate path on all buckets."""
    enumerate_index = common.index_for(PROFILE, "2tp")
    all_patterns = [p for patterns in _queries_by_children().values()
                    for p in patterns][:800]
    benchmark.pedantic(lambda: _measure(enumerate_index, all_patterns),
                       rounds=1, iterations=1)
    common.write_result("fig7_enumerate_vs_select", _table())


@pytest.mark.parametrize("algorithm", ["select", "enumerate"])
def test_so_algorithms(benchmark, algorithm):
    """Benchmark the two S?O algorithms over the same query mix."""
    index = common.index_for(PROFILE, "3t" if algorithm == "select" else "2tp")
    patterns = [p for patterns in _queries_by_children().values()
                for p in patterns][:500]

    def run():
        for pattern in patterns:
            for _ in index.select(pattern):
                pass

    benchmark.pedantic(run, rounds=2, iterations=1)
