"""Dynamic update subsystem: insert throughput and query-under-delta cost.

The delta overlay trades a little per-query work (tombstone filtering, a
binary-searched delta probe per pattern) for the ability to absorb writes
into an otherwise immutable index.  Measured here on a LUBM-like graph:

* **insert throughput** — WAL-backed batches into the delta store; the
  acceptance bar is >= 10 000 inserts/second *including* the fsync-ed
  write-ahead logging and base-membership checks;
* **query under delta** — a mixed selection-pattern workload plus a join
  query against base+delta, compared with the identical workload after
  ``compact`` folded the delta in; the bar is <= 3x the compacted cost;
* **compaction** — the rebuild itself, reported for context.

Writes ``benchmarks/results/BENCH_updates.json`` (the machine-readable
numbers) next to the usual plain-text table.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from functools import lru_cache

import common
from repro.bench.tables import format_table
from repro.core.builder import IndexBuilder
from repro.core.patterns import PatternKind, TriplePattern
from repro.dynamic import DynamicIndex
from repro.queries import QueryPlanner
from repro.queries.planner import execute_bgp
from repro.queries.sparql import parse_sparql

#: Fraction of the base size inserted as delta (10% is a heavy backlog).
DELTA_FRACTION = float(os.environ.get("REPRO_BENCH_DELTA_FRACTION", "0.10"))
#: Insert batch size (the service layer's natural unit).
BATCH_SIZE = int(os.environ.get("REPRO_BENCH_UPDATE_BATCH", "1000"))
#: Selection patterns per workload pass.
WORKLOAD_SIZE = int(os.environ.get("REPRO_BENCH_UPDATE_WORKLOAD", "300"))
#: Workload repetitions (best-of, to shed scheduler noise).
ROUNDS = int(os.environ.get("REPRO_BENCH_UPDATE_ROUNDS", "3"))

JOIN_QUERY = "SELECT ?a ?b ?c WHERE { ?a 0 ?b . ?b 0 ?c }"

INSERTS_PER_SECOND_BAR = 10_000.0
QUERY_UNDER_DELTA_BAR = 3.0


def _fresh_triples(store, count):
    """``count`` growth-shaped triples: new subjects over existing P/O."""
    predicates = store.column(1)
    objects = store.column(2)
    base_subjects = int(store.column(0).max()) + 1
    return [(base_subjects + i,
             int(predicates[i % len(predicates)]),
             int(objects[(i * 7) % len(objects)]))
            for i in range(count)]


def _workload(store, delta_triples):
    """Mixed-kind selection patterns drawn from base and delta triples."""
    probes = store.sample(WORKLOAD_SIZE, seed=11)
    # One probe in five targets freshly inserted data.
    for position in range(0, len(probes), 5):
        probes[position] = delta_triples[position % len(delta_triples)]
    kinds = (PatternKind.SP, PatternKind.S, PatternKind.PO, PatternKind.O,
             PatternKind.SPO, PatternKind.SO)
    return [TriplePattern.from_triple_with_wildcards(probe,
                                                     kinds[i % len(kinds)])
            for i, probe in enumerate(probes)]


def _run_workload(index, patterns, query, planner) -> float:
    best = float("inf")
    for _ in range(ROUNDS):
        started = time.perf_counter()
        matched = 0
        for pattern in patterns:
            for _triple in index.select(pattern):
                matched += 1
        for engine in ("nested", "wcoj"):
            execute_bgp(index, query, planner=planner, limit=2_000,
                        engine=engine)
        best = min(best, time.perf_counter() - started)
    return best


@lru_cache(maxsize=None)
def _measurements():
    store = common.lubm_dataset()
    base = IndexBuilder(store).build("2tp")
    num_inserts = max(BATCH_SIZE, int(len(store) * DELTA_FRACTION))
    fresh = _fresh_triples(store, num_inserts)

    with tempfile.TemporaryDirectory() as tmp:
        dynamic = DynamicIndex.open(base, wal_path=os.path.join(tmp, "b.wal"))
        started = time.perf_counter()
        for begin in range(0, len(fresh), BATCH_SIZE):
            dynamic.insert(fresh[begin:begin + BATCH_SIZE])
        insert_seconds = time.perf_counter() - started
        assert dynamic.delta.num_inserted == len(fresh)

        planner = QueryPlanner(
            cardinalities=QueryPlanner.cardinalities_from_store(store))
        patterns = _workload(store, fresh)
        query = parse_sparql(JOIN_QUERY)
        under_delta_seconds = _run_workload(dynamic, patterns, query, planner)

        compaction = dynamic.compact()
        planner = QueryPlanner(cardinalities=compaction.cardinalities)
        compacted_seconds = _run_workload(dynamic, patterns, query, planner)
        dynamic.close()

    return {
        "dataset": "lubm",
        "base_triples": int(base.num_triples),
        "delta_inserts": len(fresh),
        "batch_size": BATCH_SIZE,
        "insert_seconds": insert_seconds,
        "inserts_per_second": len(fresh) / insert_seconds,
        "workload_patterns": len(patterns),
        "query_under_delta_seconds": under_delta_seconds,
        "query_compacted_seconds": compacted_seconds,
        "query_under_delta_ratio": under_delta_seconds / compacted_seconds,
        "compaction_seconds": compaction.seconds,
        "bars": {
            "inserts_per_second_min": INSERTS_PER_SECOND_BAR,
            "query_under_delta_ratio_max": QUERY_UNDER_DELTA_BAR,
        },
    }


def test_insert_throughput_meets_bar():
    """Acceptance: >= 10k WAL-backed inserts/second into the delta store."""
    report = _measurements()
    assert report["inserts_per_second"] >= INSERTS_PER_SECOND_BAR, report


def test_query_under_delta_within_3x_of_compacted():
    """Acceptance: the delta overlay costs <= 3x the compacted index."""
    report = _measurements()
    assert report["query_under_delta_ratio"] <= QUERY_UNDER_DELTA_BAR, report


def test_report_updates():
    """Emit the updates table and BENCH_updates.json."""
    report = _measurements()
    rows = [
        ["insert throughput (WAL fsync)", f"{report['inserts_per_second']:,.0f}/s",
         f">= {INSERTS_PER_SECOND_BAR:,.0f}/s"],
        ["workload under delta", f"{report['query_under_delta_seconds'] * 1e3:.1f} ms",
         ""],
        ["workload compacted", f"{report['query_compacted_seconds'] * 1e3:.1f} ms",
         ""],
        ["under-delta / compacted", f"{report['query_under_delta_ratio']:.2f}x",
         f"<= {QUERY_UNDER_DELTA_BAR:.0f}x"],
        ["compaction rebuild", f"{report['compaction_seconds']:.2f} s", ""],
    ]
    table = format_table(
        ["metric", "measured", "bar"], rows,
        title=f"Dynamic updates — {report['delta_inserts']} inserts over a "
              f"{report['base_triples']}-triple base (LUBM), "
              f"{report['workload_patterns']}-pattern workload + joins")
    common.write_result("updates", table)
    common.RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (common.RESULTS_DIR / "BENCH_updates.json").write_text(
        json.dumps(report, indent=2) + "\n", encoding="utf-8")
