"""Shared datasets, indexes and reporting helpers for the benchmark suite.

Everything heavy is cached with ``functools.lru_cache`` so that the benchmark
files can share one build per dataset/layout within a pytest session.  The
dataset sizes are chosen so that the whole suite finishes in minutes on a
laptop while still being large enough for the paper's relative behaviours to
show; scale them up with the ``REPRO_BENCH_TRIPLES`` environment variable for
longer, higher-fidelity runs.
"""

from __future__ import annotations

import os
from functools import lru_cache
from pathlib import Path

from repro.baselines import (
    BitMatIndex,
    HdtFoqIndex,
    Rdf3xIndex,
    TripleBitIndex,
    VerticalPartitioningIndex,
)
from repro.core.builder import IndexBuilder
from repro.datasets import generate_from_profile, generate_lubm, generate_watdiv
from repro.queries import build_workloads
from repro.rdf.triples import TripleStore

#: Number of triples for the profile-driven datasets (override via env var).
DEFAULT_TRIPLES = int(os.environ.get("REPRO_BENCH_TRIPLES", "40000"))

#: Workload size (the paper uses 5 000; scaled down with the datasets).
WORKLOAD_SIZE = int(os.environ.get("REPRO_BENCH_WORKLOAD", "400"))

RESULTS_DIR = Path(__file__).resolve().parent / "results"

BASELINE_CLASSES = {
    "hdt-foq": HdtFoqIndex,
    "triplebit": TripleBitIndex,
    "vertical-partitioning": VerticalPartitioningIndex,
    "rdf-3x": Rdf3xIndex,
    "bitmat": BitMatIndex,
}


@lru_cache(maxsize=None)
def dataset(profile_name: str, num_triples: int = DEFAULT_TRIPLES,
            seed: int = 42) -> TripleStore:
    """A profile-shaped dataset, cached per (profile, size, seed)."""
    return generate_from_profile(profile_name, num_triples, seed=seed)


@lru_cache(maxsize=None)
def watdiv_dataset(scale: int = 900, seed: int = 3):
    """A WatDiv-like dataset (with numeric literals), cached per scale."""
    return generate_watdiv(scale=scale, seed=seed)


@lru_cache(maxsize=None)
def lubm_dataset(num_universities: int = 8, seed: int = 3) -> TripleStore:
    """A LUBM-like dataset, cached per size."""
    return generate_lubm(num_universities=num_universities, seed=seed)


@lru_cache(maxsize=None)
def index_for(profile_name: str, layout: str,
              num_triples: int = DEFAULT_TRIPLES):
    """A paper-layout index over a profile dataset, cached."""
    return IndexBuilder(dataset(profile_name, num_triples)).build(layout)


@lru_cache(maxsize=None)
def baseline_for(profile_name: str, baseline: str,
                 num_triples: int = DEFAULT_TRIPLES):
    """A baseline index over a profile dataset, cached."""
    return BASELINE_CLASSES[baseline](dataset(profile_name, num_triples))


@lru_cache(maxsize=None)
def workloads_for(profile_name: str, num_triples: int = DEFAULT_TRIPLES,
                  count: int = WORKLOAD_SIZE, seed: int = 7):
    """Per-pattern-kind workloads over a profile dataset, cached."""
    return build_workloads(dataset(profile_name, num_triples), count=count, seed=seed)


def write_result(name: str, text: str, data: dict | None = None) -> None:
    """Print a paper-style table and persist it under ``benchmarks/results/``.

    ``data`` (optional) additionally writes structured numbers to
    ``BENCH_<name>.json`` so that successive PRs can track the trajectory
    without parsing tables.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    if data is not None:
        import json
        (RESULTS_DIR / f"BENCH_{name}.json").write_text(
            json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    print(f"\n{text}\n")
