"""Scatter-gather, failover and chaos bars for the replicated cluster.

Four phases against real ``repro`` subprocesses (K x R shard serving
processes + the coordinator's HTTP front, exactly the production
topology):

1. **baseline** — point lookups (bound-subject patterns, cache off) over
   HTTP against a single-box ``repro serve`` process;
2. **cluster** — the same lookups against a ``repro coordinator`` over
   K shards x R=2 replicas.  The acceptance bar is a median
   scatter-gather overhead of at most :data:`OVERHEAD_BAR` (2x) — a point
   lookup routes to exactly one shard, so the coordinator adds one RPC
   hop, not a fan-out;
3. **failover** — one shard's *leader* process is SIGKILLed (a single
   process; its follower survives) and the lookups are repeated.  Reads
   must fail over to the follower with every result complete (never
   flagged ``incomplete``) and the failover read path must stay within
   the same :data:`OVERHEAD_BAR` of the single box;
4. **chaos** — routed writes stream through the coordinator (the dead
   leader forces a follower promotion mid-stream), then the shard's
   *last* replica is SIGKILLed too.  Only now may broadcast reads come
   back partial — explicitly flagged ``incomplete`` — with ZERO
   coordinator crashes; and after the shard restarts (WAL replay) ZERO
   acknowledged writes may be missing.

Run directly (``python benchmarks/bench_cluster.py``) or as the CI smoke
profile (``--ci``: fewer lookups and writes, same phases including both
kills).  Writes ``benchmarks/results/BENCH_cluster.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import signal
import statistics
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import common  # noqa: E402

from repro.core import build_index  # noqa: E402
from repro.queries.planner import QueryPlanner  # noqa: E402
from repro.rdf.dictionary import RdfDictionary  # noqa: E402
from repro.storage import save_index  # noqa: E402

NUM_SUBJECTS = 2000
OVERHEAD_BAR = 2.0
NUM_SHARDS = 2
NUM_REPLICAS = 2


def _build_index_file(path: Path) -> tuple:
    """Build the bench index; return ``(num_triples, subject_ids, p0)``.

    Subject/object terms share one sorted dictionary, so subject IDs are
    *not* ``0..N-1`` — the lookup workload must use the real IDs.
    """
    terms = []
    for i in range(NUM_SUBJECTS):
        terms.append((f"<http://b/s{i}>", "<http://b/p0>",
                      f"<http://b/o{(i * 7 + 1) % 400}>"))
        terms.append((f"<http://b/s{i}>", "<http://b/p1>",
                      f"<http://b/s{(i + 13) % NUM_SUBJECTS}>"))
        terms.append((f"<http://b/s{i}>", "<http://b/p2>",
                      f"<http://b/o{i % 31}>"))
    dictionary, store = RdfDictionary.from_term_triples(terms)
    index = build_index(store, "2tp")
    stats = QueryPlanner.cardinalities_from_store(store)
    save_index(index, path, dictionary=dictionary, planner_stats=stats,
               aligned=True)
    subject_ids = [dictionary.subjects.id_of(f"<http://b/s{i}>")
                   for i in range(NUM_SUBJECTS)]
    return (index.num_triples, subject_ids,
            dictionary.predicates.id_of("<http://b/p0>"))


# --------------------------------------------------------------------------- #
# Subprocess management.
# --------------------------------------------------------------------------- #

def _env() -> dict:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return env


def _spawn(arguments: list, ready_pattern: str) -> tuple:
    """Start a repro subprocess; return ``(proc, match)`` once ready."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", *arguments],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, env=_env(),
        text=True)
    deadline = time.monotonic() + 60
    lines = []
    match = None
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        lines.append(line)
        match = re.search(ready_pattern, line)
        if match is not None:
            return proc, match
    proc.kill()
    raise RuntimeError(f"subprocess never became ready: {lines!r}")


def _stop(proc) -> None:
    if proc.poll() is None:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=10)
    proc.stdout.close()


def _start_box(index_path: Path, wal: Path) -> tuple:
    proc, match = _spawn(
        ["serve", str(index_path), "--port", "0", "--quiet",
         "--wal", str(wal)],
        r"http://([\d.]+):(\d+)")
    return proc, f"http://{match.group(1)}:{match.group(2)}"

def _start_shard(cluster_dir: Path, shard_id: int, port: int,
                 replica: int = 0):
    proc, _ = _spawn(
        ["shard", str(cluster_dir), "--id", str(shard_id),
         "--port", str(port), "--replica", str(replica)],
        rf"shard {shard_id} \((?:leader|follower)\) serving on "
        rf"([\d.]+):(\d+)")
    return proc


def _start_coordinator(cluster_dir: Path, shard_ports: list) -> tuple:
    """``shard_ports`` is one list of replica ports per shard, leader
    first — exactly the ``--shard host:port,host:port`` CLI form."""
    arguments = ["coordinator", str(cluster_dir), "--port", "0",
                 "--quiet", "--best-effort"]
    for ports in shard_ports:
        arguments += ["--shard",
                      ",".join(f"127.0.0.1:{port}" for port in ports)]
    proc, match = _spawn(arguments, r"http://([\d.]+):(\d+)")
    return proc, f"http://{match.group(1)}:{match.group(2)}"


# --------------------------------------------------------------------------- #
# Measurement.
# --------------------------------------------------------------------------- #

def _post(url: str, path: str, body: dict, timeout: float = 30.0):
    """POST JSON; return ``(status, body)`` for error statuses too."""
    data = json.dumps(body).encode("utf-8")
    request = urllib.request.Request(
        url + path, data=data, method="POST",
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _get_health(url: str):
    try:
        with urllib.request.urlopen(url + "/healthz",
                                    timeout=10) as response:
            return json.loads(response.read())
    except urllib.error.HTTPError as error:
        return json.loads(error.read())


def _measure_point_lookups(url: str, subjects: list, p0: int,
                           count: int) -> dict:
    """Median/p90 latency of bound-subject pattern lookups, cache off."""
    latencies = []
    checked = 0
    incomplete = 0
    for i in range(count):
        subject = subjects[(i * 37) % len(subjects)]
        started = time.perf_counter()
        status, body = _post(url, "/query",
                             {"pattern": [subject, p0, None],
                              "cache": False})
        latencies.append(time.perf_counter() - started)
        assert status == 200, (status, body)
        checked += len(body["triples"])
        incomplete += bool(body.get("incomplete"))
    latencies.sort()
    return {
        "lookups": count,
        "matched_triples": checked,
        "incomplete_results": incomplete,
        "median_ms": statistics.median(latencies) * 1e3,
        "p90_ms": latencies[int(0.9 * (len(latencies) - 1))] * 1e3,
        "max_ms": latencies[-1] * 1e3,
    }


def _run_chaos(coordinator_url: str, cluster_dir: Path, shard_procs: list,
               shard_ports: list, num_writes: int) -> dict:
    """Write through a promotion, then kill the shard's last replica.

    ``shard_procs``/``shard_ports`` hold one list per shard (leader
    first).  Shard 1's leader is already dead when this runs (the
    failover phase killed it), so the very first write routed there
    exercises follower promotion.  Halfway through, the shard's last
    replica is SIGKILLed too — only then may results go partial and
    writes to that shard be rejected.
    """
    acked = []
    coordinator_errors = 0
    incomplete_seen = 0
    complete_while_replicated = 0
    write_failures_while_replicated = 0
    write_failures_while_down = 0
    whole_shard_down = False

    for i in range(num_writes):
        triple = [200_000 + i, 99, 300_000 + i]
        if i == num_writes // 2:
            # Kill the promoted follower as well: the whole shard is now
            # gone and the partial-failure policy must become visible.
            whole_shard_down = True
            shard_procs[1][1].send_signal(signal.SIGKILL)
            shard_procs[1][1].wait(timeout=10)
            for _ in range(3):
                status, body = _post(coordinator_url, "/query",
                                     {"sparql": "SELECT ?s ?o WHERE "
                                                "{ ?s 99 ?o }",
                                      "cache": False})
                if status != 200:
                    coordinator_errors += 1
                elif body.get("incomplete"):
                    incomplete_seen += 1
        elif not whole_shard_down and i % 7 == 0:
            # With one replica per shard still alive every broadcast
            # must stay complete — a single process death is invisible.
            status, body = _post(coordinator_url, "/query",
                                 {"sparql": "SELECT ?s ?o WHERE "
                                            "{ ?s 99 ?o }",
                                  "cache": False})
            if status == 200 and not body.get("incomplete"):
                complete_while_replicated += 1
        try:
            status, body = _post(coordinator_url, "/update",
                                 {"insert": [triple]})
        except (urllib.error.URLError, OSError, ValueError):
            status = None
        if status == 200:
            acked.append(triple)
        elif whole_shard_down:
            # Writes are fail-fast by contract: with every replica of an
            # owning shard down they must be *rejected*, never
            # half-acknowledged.
            write_failures_while_down += 1
        else:
            # A surviving replica existed — the promotion path should
            # have absorbed this write.
            write_failures_while_replicated += 1

    # /healthz must still answer (degraded) — the coordinator survived.
    health_during = _get_health(coordinator_url)

    # Restart the killed shard on its old ports, leader first (followers
    # tail the leader's epoch documents); WAL replay restores everything
    # the shard ever acknowledged, including post-promotion writes.
    shard_procs[1][0] = _start_shard(cluster_dir, 1, shard_ports[1][0],
                                     replica=0)
    shard_procs[1][1] = _start_shard(cluster_dir, 1, shard_ports[1][1],
                                     replica=1)
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        if _get_health(coordinator_url).get("status") == "ok":
            break
        time.sleep(0.3)

    status, result = _post(coordinator_url, "/query",
                           {"pattern": [None, 99, None], "cache": False,
                            "limit": num_writes + 10})
    served = {tuple(t) for t in result["triples"]}
    lost = [t for t in acked if tuple(t) not in served]
    return {
        "writes_attempted": num_writes,
        "writes_acknowledged": len(acked),
        "writes_failed_while_replicated": write_failures_while_replicated,
        "writes_rejected_while_down": write_failures_while_down,
        "complete_results_while_replicated": complete_while_replicated,
        "incomplete_results_seen": incomplete_seen,
        "coordinator_errors": coordinator_errors,
        "health_during_outage": health_during.get("status"),
        "acked_writes_lost": len(lost),
        "lost": lost,
    }


# --------------------------------------------------------------------------- #
# Orchestration.
# --------------------------------------------------------------------------- #

def run_bench(lookups: int, chaos_writes: int) -> dict:
    tmp = Path(tempfile.mkdtemp(prefix="repro-cluster-"))
    index_path = tmp / "box.repro"
    num_triples, subjects, p0 = _build_index_file(index_path)
    report = {"num_triples": num_triples, "num_shards": NUM_SHARDS,
              "num_replicas": NUM_REPLICAS,
              "overhead_bar": OVERHEAD_BAR, "cpus": os.cpu_count()}

    box_proc, box_url = _start_box(index_path, tmp / "box.wal")
    try:
        _measure_point_lookups(box_url, subjects, p0, min(20, lookups))
        report["single_box"] = _measure_point_lookups(
            box_url, subjects, p0, lookups)
    finally:
        _stop(box_proc)

    subprocess.run(
        [sys.executable, "-m", "repro", "partition", str(index_path),
         "-o", str(tmp / "cluster"), "--shards", str(NUM_SHARDS),
         "--replicas", str(NUM_REPLICAS)],
        env=_env(), check=True, stdout=subprocess.DEVNULL)

    # One port list per shard, leader first; leaders must be up (epoch
    # documents published) before their followers open.
    shard_ports = [[18490 + shard + replica * NUM_SHARDS
                    for replica in range(NUM_REPLICAS)]
                   for shard in range(NUM_SHARDS)]
    shard_procs = []
    for shard in range(NUM_SHARDS):
        shard_procs.append([
            _start_shard(tmp / "cluster", shard, shard_ports[shard][replica],
                         replica=replica)
            for replica in range(NUM_REPLICAS)])
    coordinator_proc, coordinator_url = _start_coordinator(
        tmp / "cluster", shard_ports)
    try:
        _measure_point_lookups(coordinator_url, subjects, p0,
                               min(20, lookups))
        report["cluster"] = _measure_point_lookups(
            coordinator_url, subjects, p0, lookups)
        report["scatter_gather_overhead"] = (
            report["cluster"]["median_ms"]
            / report["single_box"]["median_ms"]
            if report["single_box"]["median_ms"] else float("nan"))

        # Failover: SIGKILL shard 1's leader — a single process; its
        # follower keeps serving reads, so nothing may go partial.
        shard_procs[1][0].send_signal(signal.SIGKILL)
        shard_procs[1][0].wait(timeout=10)
        report["failover"] = _measure_point_lookups(
            coordinator_url, subjects, p0, lookups)
        report["failover_overhead"] = (
            report["failover"]["median_ms"]
            / report["single_box"]["median_ms"]
            if report["single_box"]["median_ms"] else float("nan"))

        report["chaos"] = _run_chaos(coordinator_url, tmp / "cluster",
                                     shard_procs, shard_ports, chaos_writes)
    finally:
        _stop(coordinator_proc)
        for group in shard_procs:
            for proc in group:
                if proc.poll() is None:
                    _stop(proc)
    return report


def check_bars(report: dict) -> list:
    problems = []
    if report["scatter_gather_overhead"] > OVERHEAD_BAR:
        problems.append(
            f"point-lookup overhead {report['scatter_gather_overhead']:.2f}x "
            f"the single box (bar: {OVERHEAD_BAR}x)")
    failover = report["failover"]
    if report["failover_overhead"] > OVERHEAD_BAR:
        problems.append(
            f"failover read path {report['failover_overhead']:.2f}x the "
            f"single box (bar: {OVERHEAD_BAR}x)")
    if failover["incomplete_results"]:
        problems.append(
            f"{failover['incomplete_results']} results flagged incomplete "
            f"with a follower still alive (bar: zero — one dead process "
            f"must be invisible)")
    chaos = report["chaos"]
    if chaos["coordinator_errors"]:
        problems.append(
            f"{chaos['coordinator_errors']} coordinator failures during the "
            f"shard outage (bar: zero — best-effort must keep answering)")
    if chaos["writes_failed_while_replicated"]:
        problems.append(
            f"{chaos['writes_failed_while_replicated']} writes failed while "
            f"a replica survived (bar: zero — promotion must absorb a dead "
            f"leader)")
    if not chaos["incomplete_results_seen"]:
        problems.append(
            "no partial result was flagged incomplete during the "
            "whole-shard outage (bar: the flag must be explicit)")
    if chaos["acked_writes_lost"]:
        problems.append(
            f"chaos lost {chaos['acked_writes_lost']} acknowledged writes: "
            f"{chaos['lost']} (bar: zero)")
    return problems


def _format_report(report: dict) -> str:
    box, cluster, failover, chaos = (report["single_box"], report["cluster"],
                                     report["failover"], report["chaos"])
    return "\n".join([
        f"Cluster — {report['num_shards']} shards x "
        f"{report['num_replicas']} replicas over "
        f"{report['num_triples']} triples, "
        f"{cluster['lookups']} point lookups per side",
        f"  single box      median {box['median_ms']:.2f} ms, "
        f"p90 {box['p90_ms']:.2f} ms",
        f"  coordinator     median {cluster['median_ms']:.2f} ms, "
        f"p90 {cluster['p90_ms']:.2f} ms",
        f"  overhead        {report['scatter_gather_overhead']:.2f}x "
        f"(bar {report['overhead_bar']}x)",
        f"  failover        median {failover['median_ms']:.2f} ms "
        f"({report['failover_overhead']:.2f}x, bar "
        f"{report['overhead_bar']}x), "
        f"{failover['incomplete_results']} incomplete",
        f"  chaos           {chaos['writes_acknowledged']} acked writes, "
        f"{chaos['writes_failed_while_replicated']} failed while "
        f"replicated, {chaos['writes_rejected_while_down']} rejected while "
        f"down, {chaos['acked_writes_lost']} lost",
        f"  outage          {chaos['incomplete_results_seen']} partial "
        f"results flagged incomplete, "
        f"{chaos['complete_results_while_replicated']} complete while "
        f"replicated, {chaos['coordinator_errors']} coordinator errors, "
        f"health {chaos['health_during_outage']}",
    ])


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--lookups", type=int, default=300)
    parser.add_argument("--chaos-writes", type=int, default=40)
    parser.add_argument("--ci", action="store_true",
                        help="short smoke profile: 100 lookups, 20 writes")
    args = parser.parse_args(argv)
    if args.ci:
        args.lookups = min(args.lookups, 100)
        args.chaos_writes = min(args.chaos_writes, 20)

    report = run_bench(args.lookups, args.chaos_writes)
    problems = check_bars(report)
    report["problems"] = problems
    common.write_result("cluster", _format_report(report), data=report)
    if problems:
        for problem in problems:
            print(f"BAR FAILED: {problem}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
