"""Table 6 — WatDiv and LUBM SPARQL query logs.

Decomposes every query of the bundled WatDiv/LUBM-style logs into a sequence
of triple selection patterns (with the same selectivity-driven planner for all
indexes, as the paper does with TripleBit's planner) and measures space plus
average seconds per query for 2Tp, HDT-FoQ and TripleBit.
"""

from __future__ import annotations

import time
from functools import lru_cache

import pytest

import common
from repro.baselines import HdtFoqIndex, TripleBitIndex
from repro.bench.tables import format_table, space_overhead_percent, speedup
from repro.core.builder import IndexBuilder
from repro.queries import execute_bgp, lubm_query_log, watdiv_query_log

MAX_RESULTS = 20_000


@lru_cache(maxsize=None)
def _stores():
    return {
        "watdiv": common.watdiv_dataset().store,
        "lubm": common.lubm_dataset(),
    }


@lru_cache(maxsize=None)
def _indexes():
    built = {}
    for dataset_name, store in _stores().items():
        built[dataset_name] = {
            "2tp": IndexBuilder(store).build("2tp"),
            "hdt-foq": HdtFoqIndex(store),
            "triplebit": TripleBitIndex(store),
        }
    return built


def _logs():
    return {"watdiv": watdiv_query_log(), "lubm": lubm_query_log()}


def _run_log(index, store, queries) -> float:
    """Average seconds per query over the log."""
    start = time.perf_counter()
    for query in queries:
        execute_bgp(index, query, store=store, max_results=MAX_RESULTS)
    return (time.perf_counter() - start) / len(queries)


@lru_cache(maxsize=None)
def _table() -> str:
    rows = []
    logs = _logs()
    for name in ("2tp", "hdt-foq", "triplebit"):
        row = [name]
        for dataset_name, store in _stores().items():
            index = _indexes()[dataset_name][name]
            reference = _indexes()[dataset_name]["2tp"]
            bits = index.bits_per_triple()
            seconds = _run_log(index, store, logs[dataset_name])
            reference_seconds = _run_log(reference, store, logs[dataset_name]) \
                if name != "2tp" else seconds
            row.extend([bits,
                        space_overhead_percent(reference.bits_per_triple(), bits),
                        seconds,
                        speedup(reference_seconds, seconds)])
        rows.append(row)
    headers = ["index"]
    for dataset_name, store in _stores().items():
        headers.extend([f"{dataset_name} bits/triple", f"{dataset_name} (+%)",
                        f"{dataset_name} sec/query", f"{dataset_name} x vs 2Tp"])
    sizes = ", ".join(f"{name}: {len(store)} triples" for name, store in _stores().items())
    return format_table(headers, rows, precision=4,
                        title=f"Table 6 — SPARQL query logs ({sizes})")


def test_report_table6(benchmark):
    """Emit Table 6; benchmark the 2Tp WatDiv log execution."""
    store = _stores()["watdiv"]
    index = _indexes()["watdiv"]["2tp"]
    queries = _logs()["watdiv"]
    benchmark.pedantic(lambda: _run_log(index, store, queries), rounds=1, iterations=1)
    common.write_result("table6_query_logs", _table())


@pytest.mark.parametrize("index_name", ["2tp", "hdt-foq", "triplebit"])
@pytest.mark.parametrize("dataset_name", ["watdiv", "lubm"])
def test_query_log(benchmark, dataset_name, index_name):
    """Benchmark each index on each query log (the Table 6 cells)."""
    store = _stores()[dataset_name]
    index = _indexes()[dataset_name][index_name]
    queries = _logs()[dataset_name]
    benchmark.pedantic(lambda: _run_log(index, store, queries), rounds=1, iterations=1)
