"""Worst-case-optimal join vs. nested-loop on cyclic BGPs.

The nested-loop pipeline enumerates one pattern at a time, so on a cyclic
BGP it materialises every partial path before discovering whether the cycle
closes — on a triangle that is the classic quadratic blow-up of intermediate
results.  The leapfrog multiway join intersects the sorted successor lists
of *all* patterns constraining a variable at once, bounding the work by the
worst-case output size.

Measured over skewed (Zipf-shaped, hub-heavy) directed graphs — the shape
where the intermediate-result blow-up actually bites — for both engines:

* **triangle** — ``?a p ?b . ?b p ?c . ?c p ?a`` on a >= 50 000-triple
  graph (the acceptance bar is a >= 2x wcoj speedup);
* **square** — a directed 4-cycle on a smaller companion graph (its result
  set grows so fast that a full-size nested-loop run is benchmark-hostile);
* a **chain** (path) query, where ``auto`` correctly keeps the nested-loop
  pipeline — wcoj has no edge without multi-pattern intersection.

Writes ``benchmarks/results/BENCH_wcoj.json`` next to the usual table.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from functools import lru_cache

import numpy as np

import common
from repro.bench.tables import format_table
from repro.core.builder import IndexBuilder
from repro.queries import QueryPlanner, choose_engine, execute_bgp
from repro.queries.sparql import parse_sparql
from repro.rdf.triples import TripleStore

#: Main graph (edges before dedup; stays comfortably >= 50k after).
NUM_EDGES = int(os.environ.get("REPRO_BENCH_WCOJ_EDGES", "55000"))
NUM_NODES = int(os.environ.get("REPRO_BENCH_WCOJ_NODES", "9000"))
#: Companion graph for the square query (4-cycle results explode with size).
SQUARE_EDGES = int(os.environ.get("REPRO_BENCH_WCOJ_SQUARE_EDGES", "15000"))
SQUARE_NODES = int(os.environ.get("REPRO_BENCH_WCOJ_SQUARE_NODES", "4000"))
NUM_PREDICATES = 3
ZIPF_EXPONENT = 0.75
LAYOUT = os.environ.get("REPRO_BENCH_WCOJ_LAYOUT", "2tp")

#: query name -> (SPARQL, which graph it runs on).
QUERIES = {
    "triangle": ("SELECT ?a ?b ?c WHERE { ?a 0 ?b . ?b 0 ?c . ?c 0 ?a }",
                 "main"),
    "square": ("SELECT ?a ?b ?c ?d WHERE "
               "{ ?a 0 ?b . ?b 1 ?c . ?c 0 ?d . ?d 1 ?a }", "small"),
    "chain": ("SELECT ?a ?b ?c WHERE { ?a 0 ?b . ?b 1 ?c }", "main"),
}

#: Queries whose join graph is cyclic — ``auto`` must route them to wcoj,
#: and the triangle must meet the acceptance speedup.
CYCLIC = ("triangle", "square")
MIN_TRIANGLE_SPEEDUP = 2.0

#: Triangle wcoj wall-clock measured at the previous PR's head (commit
#: e5505de, same machine/dataset/defaults), before the batch-cursor work.
#: Kept in the JSON so successive PRs can read the trajectory without
#: checking out old commits; re-measure when the dataset defaults change.
PR5_TRIANGLE_WCOJ_SECONDS = 3.2


def zipf_graph(num_edges: int, num_nodes: int, exponent: float,
               seed: int = 0) -> TripleStore:
    """A directed multigraph with Zipf-distributed endpoint popularity."""
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, num_nodes + 1, dtype=np.float64)
    weights = ranks ** -exponent
    weights /= weights.sum()
    subjects = rng.choice(num_nodes, size=num_edges, p=weights)
    objects = rng.choice(num_nodes, size=num_edges, p=weights)
    predicates = rng.integers(0, NUM_PREDICATES, size=num_edges)
    dense, _ = TripleStore.from_columns(subjects, predicates, objects).densified()
    return dense


@lru_cache(maxsize=None)
def _setup(which: str):
    if which == "main":
        store = zipf_graph(NUM_EDGES, NUM_NODES, ZIPF_EXPONENT)
    else:
        store = zipf_graph(SQUARE_EDGES, SQUARE_NODES, ZIPF_EXPONENT)
    index = IndexBuilder(store).build(LAYOUT)
    planner = QueryPlanner(store)
    return store, index, planner


def _run(index, planner, query, engine: str):
    started = time.perf_counter()
    results, _statistics = execute_bgp(index, query, planner=planner,
                                       engine=engine)
    return time.perf_counter() - started, results


@lru_cache(maxsize=None)
def _report() -> "dict":
    rows = []
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        for name, (text, which) in QUERIES.items():
            store, index, planner = _setup(which)
            query = parse_sparql(text, name=name)
            auto = choose_engine(query.bgp)
            wcoj_seconds, wcoj_results = _run(index, planner, query, "wcoj")
            nested_seconds, nested_results = _run(index, planner, query,
                                                  "nested")
            assert len(wcoj_results) == len(nested_results), name
            rows.append({
                "query": name,
                "triples": len(store),
                "auto_engine": auto,
                "results": len(wcoj_results),
                "nested_seconds": nested_seconds,
                "wcoj_seconds": wcoj_seconds,
                "speedup": nested_seconds / wcoj_seconds,
            })
    by_name = {row["query"]: row for row in rows}
    triangle_wcoj = by_name["triangle"]["wcoj_seconds"]
    return {
        "dataset": {
            "main_triples": len(_setup("main")[0]),
            "square_triples": len(_setup("small")[0]),
            "zipf_exponent": ZIPF_EXPONENT,
            "layout": LAYOUT,
        },
        "queries": rows,
        "baseline": {
            "pr5_triangle_wcoj_seconds": PR5_TRIANGLE_WCOJ_SECONDS,
            "triangle_speedup_vs_pr5":
                PR5_TRIANGLE_WCOJ_SECONDS / triangle_wcoj,
        },
    }


def test_dataset_is_large_enough():
    """The acceptance bar is defined over a >= 50k-triple graph."""
    store, _, _ = _setup("main")
    assert len(store) >= 50_000


def test_auto_routes_cyclic_queries_to_wcoj():
    """``auto`` picks wcoj exactly for the cyclic/multi-join shapes."""
    report = _report()
    by_name = {row["query"]: row for row in report["queries"]}
    for name in CYCLIC:
        assert by_name[name]["auto_engine"] == "wcoj", by_name[name]
    assert by_name["chain"]["auto_engine"] == "nested", by_name["chain"]


def test_wcoj_beats_nested_loop_on_triangles():
    """wcoj >= 2x faster than nested-loop on the triangle (acceptance bar)."""
    report = _report()
    by_name = {row["query"]: row for row in report["queries"]}
    assert by_name["triangle"]["speedup"] >= MIN_TRIANGLE_SPEEDUP, \
        by_name["triangle"]


def test_report_wcoj():
    """Emit the engine comparison table and BENCH_wcoj.json."""
    report = _report()
    rows = [[row["query"], row["triples"], row["auto_engine"], row["results"],
             row["nested_seconds"] * 1e3, row["wcoj_seconds"] * 1e3,
             row["speedup"]]
            for row in report["queries"]]
    table = format_table(
        ["query", "triples", "auto", "results", "nested ms", "wcoj ms",
         "speedup x"],
        rows, precision=1,
        title=f"Worst-case-optimal join vs. nested-loop "
              f"(Zipf graphs, layout {report['dataset']['layout']})")
    common.write_result("wcoj", table)
    common.RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (common.RESULTS_DIR / "BENCH_wcoj.json").write_text(
        json.dumps(report, indent=2) + "\n", encoding="utf-8")
