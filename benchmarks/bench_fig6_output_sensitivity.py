"""Figure 6 — output sensitivity of the ??O and ?P? patterns.

The paper plots the average ns/triple as queries cover a growing fraction of
the triples, ordered by decreasing number of matches, comparing:

* Fig. 6a (??O): the select algorithm (on a trie whose first level is the
  object — 3T/2To) against the inverted algorithm used by 2Tp;
* Fig. 6b (?P?): select (3T/2Tp), select+CC (the cross-compressed index) and
  the inverted algorithm used by 2To.

This benchmark regenerates both series as coverage/ns tables.
"""

from __future__ import annotations

import time
from functools import lru_cache
from typing import List, Tuple


import common
from repro.bench.tables import format_table
from repro.core.patterns import TriplePattern
from repro.core.stats import object_frequency_ranking, predicate_frequency_ranking

PROFILE = "dbpedia"
COVERAGE_STEPS = (0.14, 0.28, 0.42, 0.57, 0.71, 0.85, 1.0)


def _coverage_buckets(ranking: List[Tuple[int, int]], total: int):
    """Split a frequency-ranked ID list into cumulative coverage buckets."""
    buckets = []
    cumulative = 0
    step_index = 0
    current: List[int] = []
    for identifier, count in ranking:
        current.append(identifier)
        cumulative += count
        while step_index < len(COVERAGE_STEPS) and \
                cumulative >= COVERAGE_STEPS[step_index] * total:
            buckets.append((COVERAGE_STEPS[step_index], list(current)))
            step_index += 1
    while step_index < len(COVERAGE_STEPS):
        buckets.append((COVERAGE_STEPS[step_index], list(current)))
        step_index += 1
    return buckets


def _measure(index, patterns) -> float:
    matched = 0
    start = time.perf_counter()
    for pattern in patterns:
        for _ in index.select(pattern):
            matched += 1
    elapsed = time.perf_counter() - start
    return elapsed * 1e9 / max(1, matched)


@lru_cache(maxsize=None)
def _figure6a() -> str:
    store = common.dataset(PROFILE)
    ranking = object_frequency_ranking(store)
    buckets = _coverage_buckets(ranking, len(store))
    select_index = common.index_for(PROFILE, "2to")   # ??O solved by select on OPS
    inverted_index = common.index_for(PROFILE, "2tp")  # ??O solved by inverted
    rows = []
    for coverage, objects in buckets:
        patterns = [TriplePattern(None, None, o) for o in objects[:400]]
        rows.append([int(coverage * 100),
                     _measure(select_index, patterns),
                     _measure(inverted_index, patterns)])
    return format_table(
        ["coverage %", "select ns/triple", "inverted ns/triple"], rows, precision=1,
        title="Figure 6a — ??O by decreasing number of matches")


@lru_cache(maxsize=None)
def _figure6b() -> str:
    store = common.dataset(PROFILE)
    ranking = predicate_frequency_ranking(store)
    buckets = _coverage_buckets(ranking, len(store))
    select_index = common.index_for(PROFILE, "3t")
    cc_index = common.index_for(PROFILE, "cc")
    inverted_index = common.index_for(PROFILE, "2to")  # ?P? solved by inverted
    rows = []
    for coverage, predicates in buckets:
        patterns = [TriplePattern(None, p, None) for p in predicates[:50]]
        rows.append([int(coverage * 100),
                     _measure(select_index, patterns),
                     _measure(cc_index, patterns),
                     _measure(inverted_index, patterns)])
    return format_table(
        ["coverage %", "select ns/triple", "select+CC ns/triple", "inverted ns/triple"],
        rows, precision=1,
        title="Figure 6b — ?P? by decreasing number of matches")


def test_report_fig6a(benchmark):
    """Emit the Fig. 6a series; benchmark the inverted ??O path."""
    store = common.dataset(PROFILE)
    hot_objects = [o for o, _ in object_frequency_ranking(store)[:50]]
    index = common.index_for(PROFILE, "2tp")
    patterns = [TriplePattern(None, None, o) for o in hot_objects]
    benchmark.pedantic(lambda: _measure(index, patterns), rounds=1, iterations=1)
    common.write_result("fig6a_object_pattern", _figure6a())


def test_report_fig6b(benchmark):
    """Emit the Fig. 6b series; benchmark the select+CC ?P? path."""
    store = common.dataset(PROFILE)
    hot_predicates = [p for p, _ in predicate_frequency_ranking(store)[:10]]
    index = common.index_for(PROFILE, "cc")
    patterns = [TriplePattern(None, p, None) for p in hot_predicates]
    benchmark.pedantic(lambda: _measure(index, patterns), rounds=1, iterations=1)
    common.write_result("fig6b_predicate_pattern", _figure6b())
