"""Table 1 — codec space/time on the node levels of the SPO/POS/OSP tries.

The paper's Table 1 reports, for the DBpedia dataset, the space (bits/triple)
and the access / find / scan speed of Compact, EF, PEF and VByte applied to
the level-2 and level-3 node sequences of the three tries.  This benchmark
regenerates the same matrix on the DBpedia-shaped synthetic dataset.
"""

from __future__ import annotations

import time
from functools import lru_cache
from typing import Dict, List, Tuple

import pytest

import common
from repro.core.builder import IndexBuilder
from repro.core.permutations import PERMUTATIONS
from repro.core.trie import TrieConfig
from repro.bench.tables import format_table

CODECS = ("compact", "ef", "pef", "vbyte")
TRIES = ("spo", "pos", "osp")
PROFILE = "dbpedia"
NUM_PROBES = 1500


@lru_cache(maxsize=None)
def _tries_for_codec(codec: str):
    """All three tries with ``codec`` on both node levels."""
    store = common.dataset(PROFILE)
    builder = IndexBuilder(store, trie_configs={
        name: TrieConfig(level1_nodes=codec, level2_nodes=codec) for name in TRIES})
    return {name: builder.build_trie(name) for name in TRIES}


@lru_cache(maxsize=None)
def _probes(trie_name: str) -> List[Tuple[int, int, int]]:
    """Sampled triples permuted to the trie's component order."""
    store = common.dataset(PROFILE)
    permutation = PERMUTATIONS[trie_name]
    return [permutation.apply(t) for t in store.sample(NUM_PROBES, seed=11)]


def _measure_level(trie, probes, level: int) -> Dict[str, float]:
    """access / find / scan (ns per element) on one node level of a trie."""
    # Pre-compute the ranges and the target values, as the paper pre-computes
    # the access positions.
    jobs = []
    for first, second, third in probes:
        begin, end = trie.children_range(first)
        if begin == end:
            continue
        if level == 2:
            jobs.append((begin, end, second))
        else:
            position = trie.find_child(first, second)
            if position < 0:
                continue
            child_begin, child_end = trie.pair_children_range(position)
            jobs.append((child_begin, child_end, third))
    nodes = trie.nodes_level1 if level == 2 else trie.nodes_level2

    positions = []
    start = time.perf_counter()
    for begin, end, value in jobs:
        positions.append((begin, end, nodes.find_in_range(begin, end, value)))
    find_ns = (time.perf_counter() - start) * 1e9 / max(1, len(jobs))

    start = time.perf_counter()
    for begin, end, position in positions:
        if position >= 0:
            nodes.access_in_range(begin, end, position)
    access_ns = (time.perf_counter() - start) * 1e9 / max(1, len(positions))

    decoded = 0
    start = time.perf_counter()
    for begin, end, _ in jobs:
        for _value in nodes.scan_range(begin, end):
            decoded += 1
    scan_ns = (time.perf_counter() - start) * 1e9 / max(1, decoded)
    return {"access": access_ns, "find": find_ns, "scan": scan_ns}


@lru_cache(maxsize=None)
def _table() -> str:
    store = common.dataset(PROFILE)
    num_triples = len(store)
    rows = []
    for level, level_name in ((2, "Level 2"), (3, "Level 3")):
        for codec in CODECS:
            tries = _tries_for_codec(codec)
            row = [level_name, codec]
            for trie_name in TRIES:
                trie = tries[trie_name]
                nodes = trie.nodes_level1 if level == 2 else trie.nodes_level2
                bits = nodes.size_in_bits() / num_triples
                timing = _measure_level(trie, _probes(trie_name), level)
                row.extend([bits, timing["access"], timing["find"], timing["scan"]])
            rows.append(row)
    headers = ["level", "codec"]
    for trie_name in TRIES:
        headers.extend([f"{trie_name} bits/triple", f"{trie_name} access",
                        f"{trie_name} find", f"{trie_name} scan"])
    return format_table(
        headers, rows,
        title=f"Table 1 — codec space/time on trie node levels ({PROFILE}-like, "
              f"{num_triples} triples; times in ns)")


def test_report_table1(benchmark):
    """Emit the Table 1 reproduction and benchmark the PEF level-2 measurement."""
    benchmark(lambda: _measure_level(_tries_for_codec("pef")["spo"], _probes("spo"), 2))
    common.write_result("table1_codec_levels", _table())


@pytest.mark.parametrize("codec", CODECS)
def test_find_on_spo_level2(benchmark, codec):
    """Benchmark: find on the SPO second level, per codec (Table 1 'find')."""
    trie = _tries_for_codec(codec)["spo"]
    probes = _probes("spo")
    jobs = []
    for first, second, _third in probes:
        begin, end = trie.children_range(first)
        if begin != end:
            jobs.append((begin, end, second))

    def run():
        nodes = trie.nodes_level1
        for begin, end, value in jobs:
            nodes.find_in_range(begin, end, value)

    benchmark(run)


@pytest.mark.parametrize("codec", CODECS)
def test_access_on_spo_level3(benchmark, codec):
    """Benchmark: random access on the SPO third level, per codec."""
    trie = _tries_for_codec(codec)["spo"]
    probes = _probes("spo")
    jobs = []
    for first, second, third in probes:
        position = trie.find_child(first, second)
        if position < 0:
            continue
        child_begin, child_end = trie.pair_children_range(position)
        found = trie.find_third(child_begin, child_end, third)
        if found >= 0:
            jobs.append((child_begin, child_end, found))

    def run():
        nodes = trie.nodes_level2
        for begin, end, position in jobs:
            nodes.access_in_range(begin, end, position)

    benchmark(run)
