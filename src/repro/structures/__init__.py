"""Auxiliary succinct structures (currently the wavelet tree used by HDT-FoQ)."""

from repro.structures.wavelet_tree import WaveletTree

__all__ = ["WaveletTree"]
