"""Level-wise (pointerless) wavelet tree over an integer alphabet.

HDT-FoQ represents the predicate level of its single SPO trie with a wavelet
tree so that all occurrences of a predicate can be located with ``select``
operations.  The paper attributes HDT-FoQ's poor ``?P?`` performance to the
cache misses of exactly this structure, so the baseline reimplementation uses
a faithful wavelet tree rather than a shortcut.

The implementation is the classic level-wise layout: one bit vector per bit of
the alphabet width, with symbols routed left/right by their most significant
remaining bit.  ``access``, ``rank`` and ``select`` all run in
``O(ceil(log2 sigma))`` bit-vector operations.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

import numpy as np

from repro.errors import EncodingError
from repro.sequences.bitvector import BitVector

_WORD_BITS = 64


class _Level:
    """One level of the wavelet tree."""

    __slots__ = ("bits",)

    def __init__(self, bits: BitVector):
        self.bits = bits


class WaveletTree:
    """Wavelet tree supporting ``access``, ``rank``, ``select`` and range counting."""

    __slots__ = ("_levels", "_size", "_max_symbol", "_num_levels", "_zeros_per_level")

    def __init__(self, values: Sequence[int]):
        array = np.asarray(values, dtype=np.int64)
        if array.size and int(array.min()) < 0:
            raise EncodingError("wavelet tree symbols must be non-negative")
        self._size = int(array.size)
        self._max_symbol = int(array.max()) if array.size else 0
        self._num_levels = max(1, self._max_symbol.bit_length())
        self._levels: List[_Level] = []
        self._zeros_per_level: List[int] = []
        current = array.copy()
        for level in range(self._num_levels):
            shift = self._num_levels - level - 1
            bits = (current >> shift) & 1
            bit_vector = BitVector.from_positions(
                self._size, np.nonzero(bits)[0].astype(np.int64)
            )
            self._levels.append(_Level(bit_vector))
            self._zeros_per_level.append(int(self._size - bit_vector.num_ones))
            # Stable partition: zeros (left child) first, ones (right child) after.
            if self._size:
                order = np.argsort(bits, kind="stable")
                current = current[order]
        del current

    # ------------------------------------------------------------------ #
    # Basic properties.
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._size

    @property
    def num_levels(self) -> int:
        """Height of the tree (bits of the alphabet)."""
        return self._num_levels

    @property
    def max_symbol(self) -> int:
        """Largest symbol stored."""
        return self._max_symbol

    def size_in_bits(self) -> int:
        """Space of all level bit vectors plus per-level bookkeeping."""
        return sum(level.bits.size_in_bits() for level in self._levels) + \
            self._num_levels * _WORD_BITS

    # ------------------------------------------------------------------ #
    # Core operations.
    # ------------------------------------------------------------------ #

    def access(self, i: int) -> int:
        """Return the symbol at position ``i``."""
        if not 0 <= i < self._size:
            raise IndexError(f"index {i} out of range [0, {self._size})")
        symbol = 0
        position = i
        for level_index, level in enumerate(self._levels):
            bit = level.bits.get(position)
            symbol = (symbol << 1) | int(bit)
            if bit:
                position = self._zeros_per_level[level_index] + level.bits.rank1(position)
            else:
                position = level.bits.rank0(position)
        return symbol

    def __getitem__(self, i: int) -> int:
        return self.access(i)

    def rank(self, symbol: int, position: int) -> int:
        """Number of occurrences of ``symbol`` in ``[0, position)``."""
        if not 0 <= position <= self._size:
            raise IndexError(f"rank position {position} out of range")
        if symbol > self._max_symbol or symbol < 0:
            return 0
        begin, end = 0, position
        for level_index, level in enumerate(self._levels):
            shift = self._num_levels - level_index - 1
            bit = (symbol >> shift) & 1
            if bit:
                offset = self._zeros_per_level[level_index]
                begin = offset + level.bits.rank1(begin)
                end = offset + level.bits.rank1(end)
            else:
                begin = level.bits.rank0(begin)
                end = level.bits.rank0(end)
            if begin >= end:
                return 0
        return end - begin

    def count(self, symbol: int) -> int:
        """Total number of occurrences of ``symbol``."""
        return self.rank(symbol, self._size)

    def select(self, symbol: int, k: int) -> int:
        """Position of the ``k``-th (0-based) occurrence of ``symbol``.

        Raises :class:`IndexError` when fewer than ``k + 1`` occurrences exist.
        """
        if symbol > self._max_symbol or symbol < 0:
            raise IndexError(f"symbol {symbol} never occurs")
        # Descend to the symbol's leaf interval, then walk back up mapping the
        # k-th leaf position outward with select operations.
        begin = 0
        for level_index, level in enumerate(self._levels):
            shift = self._num_levels - level_index - 1
            bit = (symbol >> shift) & 1
            if bit:
                begin = self._zeros_per_level[level_index] + level.bits.rank1(begin)
            else:
                begin = level.bits.rank0(begin)
        position = begin + k
        if self.count(symbol) <= k:
            raise IndexError(f"symbol {symbol} has fewer than {k + 1} occurrences")
        for level_index in range(self._num_levels - 1, -1, -1):
            level = self._levels[level_index]
            shift = self._num_levels - level_index - 1
            bit = (symbol >> shift) & 1
            if bit:
                position = level.bits.select1(position - self._zeros_per_level[level_index])
            else:
                position = level.bits.select0(position)
        return position

    def occurrences(self, symbol: int) -> Iterator[int]:
        """Yield every position holding ``symbol`` in increasing order."""
        total = self.count(symbol)
        for k in range(total):
            yield self.select(symbol, k)

    def to_list(self) -> List[int]:
        """Decode the whole sequence."""
        return [self.access(i) for i in range(self._size)]

    def rank_range(self, symbol: int, begin: int, end: int) -> int:
        """Number of occurrences of ``symbol`` in ``[begin, end)``."""
        if begin > end:
            raise IndexError("invalid range")
        return self.rank(symbol, end) - self.rank(symbol, begin)
