"""Read-only replication for the pre-fork serving pool.

A worker process must see every acknowledged write without sharing any
mutable Python state with the writer process.  The writer therefore
publishes two things workers can consume through the filesystem alone:

* the **WAL** (:mod:`repro.storage.wal`) — the ordered history of mutation
  batches, already fsync-ed before any write is acknowledged; and
* an **epoch document** — a tiny JSON file, atomically replaced
  (``os.replace``) after every effective write, naming how much of the
  world is durable: ``{"generation", "epoch", "wal_records", "wal"}``.

:class:`EpochFollower` is the worker-side consumer: a read-only
:class:`~repro.core.base.TripleIndex` over ``base container + replayed WAL
tail``.  :meth:`refresh` stats the epoch document (cheap enough to run per
request); when it changed, the follower reads the newly published WAL
records through a non-truncating :class:`~repro.storage.wal.WalReader`,
folds them into a fresh immutable :class:`~repro.dynamic.SnapshotIndex`,
and swaps the view — the exact snapshot discipline
:class:`~repro.dynamic.DynamicIndex` uses in-process, driven remotely.

The ``generation`` field is the compaction signal: the writer bumps it
after persisting a compacted container and resetting the WAL, and the
follower responds by re-mapping the container from disk (mmap-loaded, so
the reload is O(header)) and rewinding its WAL reader.  Replay is safe
against every crash interleaving because both sides apply batches through
the same ordered set-semantics ``DeltaState.apply`` path: replaying a
batch that a compacted base already absorbed is a no-op.

Epochs exposed to the cache layer are ``generation * 2**32 + epoch`` so a
writer restart (which restarts its in-memory epoch counter) can never
alias a cached result page from an earlier generation.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Dict, Iterator, Mapping, Optional, Tuple

from repro.core.base import PatternLike, TripleIndex
from repro.dynamic.delta import DeltaState
from repro.dynamic.index import SnapshotIndex

#: Generations are folded into the published epoch in the high bits, so a
#: follower's epoch stays monotonic across writer restarts and compactions.
GENERATION_SHIFT = 32


def combined_epoch(generation: int, epoch: int) -> int:
    """One monotonic integer from a ``(generation, epoch)`` pair."""
    return (generation << GENERATION_SHIFT) + epoch


def read_epoch_document(path) -> Optional[dict]:
    """The currently published epoch document, or ``None`` if absent/torn.

    The writer replaces the file atomically, so a successful read is always
    a complete document; a missing file or invalid JSON (it never writes
    one, but a crashed half-provisioned deployment might) reads as "nothing
    published yet".
    """
    try:
        text = Path(path).read_text(encoding="utf-8")
        document = json.loads(text)
    except (OSError, ValueError):
        return None
    return document if isinstance(document, dict) else None


def write_epoch_document(path, document: dict) -> None:
    """Atomically publish ``document`` at ``path`` (tmp + ``os.replace``)."""
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(document, sort_keys=True), encoding="utf-8")
    os.replace(tmp, path)


class EpochFollower(TripleIndex):
    """A read-only index view that follows a writer's published epochs.

    Thread-safe: many handler threads may call :meth:`refresh` and the read
    methods concurrently; refresh work serialises on an internal lock while
    readers keep using the immutable snapshot they pinned.
    """

    name = "follower"

    def __init__(self, index_path, epoch_path, mmap: bool = True):
        from repro.storage.wal import WalReader

        self._index_path = Path(index_path)
        self._epoch_path = Path(epoch_path)
        self._mmap = mmap
        self._lock = threading.Lock()
        #: ``(st_mtime_ns, st_size)`` of the epoch file at the last applied
        #: refresh — the cheap no-change fast path.
        self._stamp: Optional[Tuple[int, int]] = None
        self._generation: Optional[int] = None
        self._reader: Optional[WalReader] = None
        self._applied_records = 0
        self._refreshes = 0
        self._reloads = 0
        self._load_container()
        self.refresh()

    # ------------------------------------------------------------------ #
    # Replication.
    # ------------------------------------------------------------------ #

    def _load_container(self) -> None:
        from repro.storage import load_index

        loaded = load_index(self._index_path, mmap=self._mmap)
        self._loaded = loaded
        self._base = loaded.index
        self._applied_records = 0
        self._view = SnapshotIndex(self._base, loaded.delta or DeltaState.empty(),
                                   epoch=0)

    @property
    def dictionary(self):
        return self._loaded.dictionary

    @property
    def planner_stats(self):
        return self._loaded.planner_stats

    @property
    def meta(self) -> dict:
        return self._loaded.meta

    def _epoch_stamp(self) -> Optional[Tuple[int, int]]:
        try:
            stat = self._epoch_path.stat()
        except OSError:
            return None
        return (stat.st_mtime_ns, stat.st_size)

    def refresh(self) -> bool:
        """Catch up with the writer; returns whether the view changed.

        Designed to be called at the start of every request: the common
        case (nothing published since last time) is one ``stat``.
        """
        from repro.storage.wal import WalReader

        stamp = self._epoch_stamp()
        if stamp is None or stamp == self._stamp:
            return False
        with self._lock:
            if stamp == self._stamp:
                return False  # another thread already applied it
            document = read_epoch_document(self._epoch_path)
            if document is None:
                return False
            self._refreshes += 1
            generation = int(document.get("generation", 0))
            if generation != self._generation:
                if self._generation is not None:
                    # The writer persisted a compacted container and reset
                    # the WAL: re-map the (new) container and start the log
                    # over.  The old mapping stays valid for in-flight
                    # queries — the container writer replaces the file via
                    # rename, never in place.
                    self._load_container()
                    self._reloads += 1
                self._generation = generation
                wal_path = document.get("wal")
                self._reader = WalReader(wal_path) if wal_path else None
                if self._reader is not None:
                    self._reader.rewind()
            target = int(document.get("wal_records", 0))
            view = self._view
            delta, base = view.delta, view.base
            while (self._reader is not None
                   and self._applied_records < target):
                batches = self._reader.read(
                    limit=target - self._applied_records)
                if not batches:
                    break  # torn tail: the next refresh catches up
                for inserts, deletes in batches:
                    delta, _, _ = delta.apply(base, inserts=inserts,
                                              deletes=deletes, validate=False)
                self._applied_records += len(batches)
            epoch = combined_epoch(generation, int(document.get("epoch", 0)))
            self._view = SnapshotIndex(base, delta, epoch=epoch)
            self._stamp = stamp
            return True

    # ------------------------------------------------------------------ #
    # Read interface (delegates to the current snapshot).
    # ------------------------------------------------------------------ #

    def snapshot(self) -> SnapshotIndex:
        """The current immutable merged view (pin it for a whole query)."""
        return self._view

    @property
    def epoch(self) -> int:
        return self._view.epoch

    @property
    def generation(self) -> int:
        return self._generation or 0

    @property
    def combined_epoch(self) -> int:
        """The view's position in the combined (generation, epoch) order.

        Alias of :attr:`epoch`, which already folds the generation in —
        named explicitly because health endpoints report it verbatim.
        """
        return self._view.epoch

    def wal_lag(self) -> int:
        """Published WAL records this follower has not yet applied.

        Zero means the view is current with the writer's last published
        epoch document; a persistently positive lag marks a stale reader
        (e.g. a torn WAL tail that never completes).  One small file read
        — cheap enough for a health probe on every scrape.
        """
        document = read_epoch_document(self._epoch_path)
        if document is None:
            return 0
        target = int(document.get("wal_records", 0))
        if int(document.get("generation", 0)) != self.generation:
            # A compaction was published that we have not replayed yet:
            # the whole new log counts as lag.
            return max(0, target)
        return max(0, target - self._applied_records)

    def select(self, pattern: PatternLike) -> Iterator[Tuple[int, int, int]]:
        return self._view.select(pattern)

    @property
    def num_triples(self) -> int:
        return self._view.num_triples

    def size_in_bits(self) -> int:
        return self._view.size_in_bits()

    def space_breakdown(self) -> Dict[str, int]:
        return self._view.space_breakdown()

    def supported_kinds(self) -> Tuple[str, ...]:
        return self._view.supported_kinds()

    def contains(self, triple: Tuple[int, int, int]) -> bool:
        return self._view.contains(triple)

    def seek_cursor(self, bound: Mapping[int, int], role: int):
        return self._view.seek_cursor(bound, role)

    def select_values(self, bound: Mapping[int, int], role: int):
        return self._view.select_values(bound, role)

    def follower_statistics(self) -> Dict[str, object]:
        """JSON-ready replication gauges (mirrors ``delta_statistics``)."""
        view = self._view
        return {
            "epoch": view.epoch,
            "generation": self.generation,
            "applied_wal_records": self._applied_records,
            "refreshes": self._refreshes,
            "container_reloads": self._reloads,
            "delta_inserted": view.delta.num_inserted,
            "delta_deleted": view.delta.num_deleted,
            "num_triples": int(view.num_triples),
        }
