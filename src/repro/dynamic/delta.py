"""The in-memory delta: inserted triples and delete tombstones.

The paper's indexes are strictly static, so the dynamic subsystem keeps
updates in an LSM-flavoured side structure: a :class:`DeltaState` holds the
triples inserted since the last compaction and the tombstones of base
triples deleted since then, as sorted in-memory permutation maps (SPO, POS
and OSP orders — the same three orders the compressed tries materialise),
so that any of the eight selection-pattern shapes can be answered with a
binary-searched prefix range rather than a scan.

States are *immutable*: a mutation builds a new state and the owner
(:class:`repro.dynamic.DynamicIndex`) swaps one reference.  Readers
therefore get snapshot isolation for free — a query that grabbed a state
keeps seeing exactly that delta for its whole execution, no locks on the
read path.  The price is a copy-on-write: each mutation batch pays
``O(len(delta))`` to rebuild the sets, so sustained ingest over an
*unbounded* delta degrades quadratically — the compaction threshold
(``repro serve`` defaults to 0.25 x base) is what keeps the delta, and
with it the per-batch cost, bounded.

Two invariants keep the bookkeeping exact:

* ``inserted`` never contains a triple present in the base index (checked
  at insert time), so the merged triple count is simply
  ``base + len(inserted) - len(deleted)`` and the overlay needs no
  deduplication;
* ``deleted`` only ever contains base triples (deleting a delta insert
  just removes it), so every tombstone suppresses exactly one base triple.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import (
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.patterns import TriplePattern
from repro.errors import UpdateError

Triple = Tuple[int, int, int]

#: The permutation orders kept as sorted views: canonical SPO plus the two
#: rotations, which together give every pattern shape a bound *prefix*.
_ORDERS: Tuple[Tuple[int, int, int], ...] = ((0, 1, 2), (1, 2, 0), (2, 0, 1))

#: Largest representable component: the WAL records and the container's
#: delta section store signed 64-bit values, so anything bigger must be
#: rejected up front — not fail deep inside struct/numpy after the insert
#: was acknowledged.
MAX_COMPONENT = (1 << 63) - 1


def normalize_triple(triple) -> Triple:
    """Validate one ``(s, p, o)`` of non-negative int64s (bools rejected)."""
    try:
        s, p, o = triple
    except (TypeError, ValueError):
        raise UpdateError(
            f"a triple needs exactly 3 components, got {triple!r}") from None
    components = []
    for value in (s, p, o):
        if isinstance(value, bool):
            raise UpdateError(
                f"triple components must be integers, got {triple!r}")
        if not isinstance(value, int):
            try:
                if value != int(value):  # reject silently-truncating floats
                    raise TypeError
                value = int(value)
            except (TypeError, ValueError, OverflowError):  # inf/nan included
                raise UpdateError(
                    f"triple components must be integers, got {triple!r}"
                ) from None
        if value < 0:
            raise UpdateError(
                f"triple components must be non-negative, got {triple!r}")
        if value > MAX_COMPONENT:
            raise UpdateError(
                f"triple components must fit in a signed 64-bit integer "
                f"(<= {MAX_COMPONENT}), got {triple!r}")
        components.append(int(value))
    return tuple(components)


class DeltaState:
    """One immutable snapshot of the delta (see the module docstring).

    The sorted permutation views are materialised lazily, once per state —
    a state that only ever serves point membership checks never pays for
    them.  The benign last-writer-wins race on the view cache is safe: both
    writers compute identical lists.
    """

    __slots__ = ("inserted", "deleted", "_views")

    def __init__(self, inserted: FrozenSet[Triple] = frozenset(),
                 deleted: FrozenSet[Triple] = frozenset()):
        self.inserted = inserted
        self.deleted = deleted
        self._views: dict = {}

    @classmethod
    def empty(cls) -> "DeltaState":
        return _EMPTY

    # ------------------------------------------------------------------ #
    # Introspection.
    # ------------------------------------------------------------------ #

    @property
    def num_inserted(self) -> int:
        return len(self.inserted)

    @property
    def num_deleted(self) -> int:
        return len(self.deleted)

    def __len__(self) -> int:
        """Total delta entries (inserts plus tombstones)."""
        return len(self.inserted) + len(self.deleted)

    def __bool__(self) -> bool:
        return bool(self.inserted) or bool(self.deleted)

    def size_in_bits(self) -> int:
        """Nominal space of the delta (3 x 64-bit words per entry)."""
        return len(self) * 3 * 64

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"DeltaState(inserted={len(self.inserted)}, "
                f"deleted={len(self.deleted)})")

    # ------------------------------------------------------------------ #
    # Mutation (returns a new state; ``self`` is never modified).
    # ------------------------------------------------------------------ #

    def apply(self, base, inserts: Iterable = (), deletes: Iterable = (),
              validate: bool = True) -> Tuple["DeltaState", int, int]:
        """Apply set-semantics updates against ``base``.

        Returns ``(new_state, num_inserted, num_deleted)`` where the counts
        are the updates that actually changed the merged triple set
        (inserting a present triple and deleting an absent one are no-ops).
        ``base`` is the immutable index underneath, consulted for membership
        so the invariants in the module docstring hold.  ``validate=False``
        skips per-triple normalisation for callers that already validated
        (the write hot path and WAL replay, whose triples are int64 by
        construction).
        """
        inserted = set(self.inserted)
        deleted = set(self.deleted)
        applied_inserts = 0
        applied_deletes = 0
        for triple in inserts:
            if validate:
                triple = normalize_triple(triple)
            if triple in deleted:
                # Un-delete: the triple is a base triple, drop its tombstone.
                deleted.discard(triple)
                applied_inserts += 1
            elif triple in inserted or base.contains(triple):
                continue
            else:
                inserted.add(triple)
                applied_inserts += 1
        for triple in deletes:
            if validate:
                triple = normalize_triple(triple)
            if triple in inserted:
                inserted.discard(triple)
                applied_deletes += 1
            elif triple in deleted:
                continue
            elif base.contains(triple):
                deleted.add(triple)
                applied_deletes += 1
        if not applied_inserts and not applied_deletes:
            return self, 0, 0
        return (DeltaState(frozenset(inserted), frozenset(deleted)),
                applied_inserts, applied_deletes)

    # ------------------------------------------------------------------ #
    # Pattern lookup over the inserted triples.
    # ------------------------------------------------------------------ #

    def _view(self, order: Tuple[int, int, int],
              deleted: bool = False) -> List[Tuple[int, int, int]]:
        key = (order, deleted)
        view = self._views.get(key)
        if view is None:
            triples = self.deleted if deleted else self.inserted
            view = sorted((t[order[0]], t[order[1]], t[order[2]])
                          for t in triples)
            self._views[key] = view
        return view

    def matching(self, pattern) -> Iterator[Triple]:
        """Inserted triples matching ``pattern``, as canonical ``(s, p, o)``.

        The permutation whose order puts the most bound components first is
        chosen, the bound prefix is located with two binary searches, and
        only the (delta-small) range is walked.
        """
        return self._matching(pattern, deleted=False)

    def deleted_matching(self, pattern) -> Iterator[Triple]:
        """Tombstones matching ``pattern`` (same lookup as :meth:`matching`)."""
        return self._matching(pattern, deleted=True)

    def has_deleted_matching(self, bound: Mapping[int, int]) -> bool:
        """Whether any tombstone is consistent with the ``bound`` components.

        The join engine's exactness question: if nothing matching the bound
        prefix was deleted, a base-exact successor cursor under that prefix
        is still exact in the merged view.
        """
        if not self.deleted:
            return False
        components: List[Optional[int]] = [None, None, None]
        for role, value in bound.items():
            components[role] = value
        return any(self._matching(tuple(components), deleted=True))

    def _matching(self, pattern, deleted: bool) -> Iterator[Triple]:
        if not (self.deleted if deleted else self.inserted):
            return
        pattern = TriplePattern.from_tuple(pattern)
        components = pattern.as_tuple()
        bound = {role: value for role, value in enumerate(components)
                 if value is not None}

        def prefix_length(order: Tuple[int, int, int]) -> int:
            length = 0
            for role in order:
                if role not in bound:
                    break
                length += 1
            return length

        order = max(_ORDERS, key=prefix_length)
        prefix = [bound[role] for role in order[:prefix_length(order)]]
        view = self._view(order, deleted=deleted)
        if prefix:
            low = bisect_left(view, tuple(prefix))
            high = bisect_left(view, tuple(prefix[:-1]) + (prefix[-1] + 1,))
        else:
            low, high = 0, len(view)
        inverse = [0, 0, 0]
        for position, role in enumerate(order):
            inverse[role] = position
        remaining = [(role, value) for role, value in bound.items()
                     if inverse[role] >= len(prefix)]
        for permuted in view[low:high]:
            if all(permuted[inverse[role]] == value
                   for role, value in remaining):
                yield (permuted[inverse[0]], permuted[inverse[1]],
                       permuted[inverse[2]])

    def candidates(self, bound: Mapping[int, int], role: int) -> List[int]:
        """Sorted distinct ``role`` values of inserts matching ``bound``.

        This is the delta side of the merged seek-cursor protocol: the join
        engine asks for the successor stream of one component given the
        components fixed by outer join levels.
        """
        if not self.inserted:
            return []
        components: List[Optional[int]] = [None, None, None]
        for fixed_role, value in bound.items():
            components[fixed_role] = value
        components[role] = None
        values = {triple[role] for triple in self.matching(tuple(components))}
        return sorted(values)

    # ------------------------------------------------------------------ #
    # Persistence support (the container's ``delta`` section).
    # ------------------------------------------------------------------ #

    def to_columns(self) -> dict:
        """Six sorted 1-D numpy columns, the ``delta`` section payload."""
        import numpy as np

        def columns(triples: Sequence[Triple]):
            ordered = sorted(triples)
            return tuple(
                np.fromiter((t[role] for t in ordered), dtype=np.int64,
                            count=len(ordered))
                for role in range(3))
        ins_s, ins_p, ins_o = columns(self.inserted)
        del_s, del_p, del_o = columns(self.deleted)
        return {"inserted_s": ins_s, "inserted_p": ins_p, "inserted_o": ins_o,
                "deleted_s": del_s, "deleted_p": del_p, "deleted_o": del_o}

    @classmethod
    def from_columns(cls, state: dict) -> "DeltaState":
        """Rebuild a state written by :meth:`to_columns`."""
        def triples(prefix: str) -> FrozenSet[Triple]:
            s, p, o = (state[prefix + "_s"], state[prefix + "_p"],
                       state[prefix + "_o"])
            return frozenset(zip((int(v) for v in s), (int(v) for v in p),
                                 (int(v) for v in o)))
        return cls(inserted=triples("inserted"), deleted=triples("deleted"))


_EMPTY = DeltaState()
