"""Dynamic updates over the paper's static indexes.

The compressed tries are immutable by construction; this package adds the
differential-index design classic RDF stores use to accept writes anyway
(RDF-3X-style deltas merged at query time, HDT-style periodic
re-materialisation):

* :class:`~repro.dynamic.delta.DeltaState` — immutable snapshot of the
  inserted triples and delete tombstones, held as sorted permutation maps;
* :class:`~repro.dynamic.index.DynamicIndex` — the updatable facade: a
  merged base+delta view behind the standard
  :class:`~repro.core.base.TripleIndex` interface (including the seekable
  cursors the worst-case-optimal join engine rides on), writes made
  durable by :class:`~repro.storage.wal.WriteAheadLog`, and an online
  compaction that folds the delta into a freshly built index;
* :class:`~repro.dynamic.index.SnapshotIndex` — one pinned epoch of that
  view, what a query actually executes against.

Two invariants the rest of the system leans on:

**Epoch/snapshot isolation.**  Every effective write bumps the epoch and
replaces the immutable ``(delta, epoch)`` snapshot; readers that pinned the
previous snapshot keep a consistent view for their whole query, with no
locks on the read path.  The serving layer keys its result cache on the
epoch, so a write retires exactly the cached pages it could have outdated.

**Tombstone-conservative exactness.**  Merged answers must never show a
deleted triple.  Scalar paths filter tombstones per candidate; any
outstanding tombstone that could intersect a pattern demotes its cursors
to *inexact*, routing the join engines through their filtered fallback.
The vectorised block path applies the same rule: ``select_values`` filters
tombstones out of a block only when two roles are bound (each block value
then names exactly one triple, so removal is sound) and returns ``None``
for shorter prefixes, falling back to cursors rather than risk an unsound
block.  See ``docs/ARCHITECTURE.md``.
"""

from repro.dynamic.delta import DeltaState, normalize_triple
from repro.dynamic.follower import (
    EpochFollower,
    combined_epoch,
    read_epoch_document,
    write_epoch_document,
)
from repro.dynamic.index import (
    CompactionResult,
    DynamicIndex,
    MergedCursor,
    SnapshotIndex,
    UpdateResult,
)

__all__ = [
    "CompactionResult",
    "DeltaState",
    "DynamicIndex",
    "EpochFollower",
    "combined_epoch",
    "read_epoch_document",
    "write_epoch_document",
    "MergedCursor",
    "SnapshotIndex",
    "UpdateResult",
    "normalize_triple",
]
