"""Dynamic updates over the paper's static indexes.

The compressed tries are immutable by construction; this package adds the
differential-index design classic RDF stores use to accept writes anyway
(RDF-3X-style deltas merged at query time, HDT-style periodic
re-materialisation):

* :class:`~repro.dynamic.delta.DeltaState` — immutable snapshot of the
  inserted triples and delete tombstones, held as sorted permutation maps;
* :class:`~repro.dynamic.index.DynamicIndex` — the updatable facade: a
  merged base+delta view behind the standard
  :class:`~repro.core.base.TripleIndex` interface (including the seekable
  cursors the worst-case-optimal join engine rides on), writes made
  durable by :class:`~repro.storage.wal.WriteAheadLog`, and an online
  compaction that folds the delta into a freshly built index;
* :class:`~repro.dynamic.index.SnapshotIndex` — one pinned epoch of that
  view, what a query actually executes against.
"""

from repro.dynamic.delta import DeltaState, normalize_triple
from repro.dynamic.index import (
    CompactionResult,
    DynamicIndex,
    MergedCursor,
    SnapshotIndex,
    UpdateResult,
)

__all__ = [
    "CompactionResult",
    "DeltaState",
    "DynamicIndex",
    "MergedCursor",
    "SnapshotIndex",
    "UpdateResult",
    "normalize_triple",
]
