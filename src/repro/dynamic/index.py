"""The dynamic overlay: an updatable facade over one immutable index.

:class:`DynamicIndex` pairs an immutable compressed base index with a
:class:`~repro.dynamic.delta.DeltaState` and answers the full
:class:`~repro.core.base.TripleIndex` interface over the *merged* view:

* ``select`` streams the base matches with tombstoned triples filtered out,
  then the delta's inserted matches — no deduplication needed because the
  delta never holds a base triple;
* ``seek_cursor`` (the worst-case-optimal join substrate) returns the
  merge-sorted union of the base cursor and the delta's candidate list.
  Exactness is preserved conservatively: any outstanding tombstone demotes
  the cursor to *inexact*, which makes the leapfrog engine fall back to
  materialising through the (tombstone-filtered) ``select`` at a pattern's
  last unbound variable — over-approximation can therefore never leak a
  deleted triple into a solution.

Writes go through :meth:`insert` / :meth:`delete`: the batch is appended to
the write-ahead log first (:mod:`repro.storage.wal`), then a new immutable
snapshot is swapped in atomically, bumping the *epoch* that the serving
layer keys its caches on.  Readers are never blocked — a running query
keeps the snapshot it started with.

:meth:`compact` folds base + delta into a freshly built compressed index
(same layout), swaps it in, clears the delta and resets the WAL.  Queries
keep streaming from the old snapshot throughout; only writers wait.  A
``compaction_ratio`` arms the size-ratio trigger: when the delta grows past
``ratio * base_triples`` entries, the mutating call compacts before
returning.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.base import PatternLike, TripleIndex
from repro.core.builder import LAYOUTS as _REBUILDABLE
from repro.core.patterns import TriplePattern
from repro.core.trie import ArrayCursor
from repro.dynamic.delta import DeltaState, Triple, normalize_triple
from repro.errors import UpdateError


class MergedCursor:
    """Sorted-union of two seekable cursors, deduplicating common keys.

    Implements the same protocol as the trie cursors (``key`` /
    ``advance`` / ``seek``): keys are strictly increasing, ``key is None``
    means exhausted, ``seek(v)`` jumps to the first key ``>= v``.

    ``remaining_block`` is an instance attribute, not a method: the union
    of two blocks only exists when *both* sides can produce one, and some
    base cursors (the predicate-filtered ones) deliberately don't.  For
    those the attribute is ``None``, which is exactly what the join
    engines' ``getattr`` probe treats as "fall back to the scalar walk".
    """

    __slots__ = ("_a", "_b", "key", "remaining_block")

    def __init__(self, a, b):
        self._a = a
        self._b = b
        block_a = getattr(a, "remaining_block", None)
        block_b = getattr(b, "remaining_block", None)
        self.remaining_block = (self._union_block
                                if block_a is not None and block_b is not None
                                else None)
        self._sync()

    def _sync(self) -> None:
        a_key, b_key = self._a.key, self._b.key
        if a_key is None:
            self.key = b_key
        elif b_key is None:
            self.key = a_key
        else:
            self.key = a_key if a_key <= b_key else b_key

    def advance(self) -> None:
        current = self.key
        if current is None:
            return
        if self._a.key == current:
            self._a.advance()
        if self._b.key == current:
            self._b.advance()
        self._sync()

    def seek(self, value: int) -> None:
        if self.key is None or value <= self.key:
            return
        if self._a.key is not None and self._a.key < value:
            self._a.seek(value)
        if self._b.key is not None and self._b.key < value:
            self._b.seek(value)
        self._sync()

    def _union_block(self) -> np.ndarray:
        """Sorted distinct union of both sides' remaining elements.

        The vectorised tail of the block-cursor protocol (see
        ``core/trie.py``): lets the join engines drain a merged cursor in
        one pass instead of stepping key by key.
        """
        return np.union1d(self._a.remaining_block(),
                          self._b.remaining_block())


class SnapshotIndex(TripleIndex):
    """One immutable merged view: ``(base, delta)`` pinned at an epoch.

    This is what a query actually executes against — grabbing a snapshot
    once per request gives snapshot isolation across the many ``select``
    calls a join issues, even while writers keep landing.
    """

    name = "dynamic"

    def __init__(self, base: TripleIndex, delta: DeltaState, epoch: int):
        self.base = base
        self.delta = delta
        self.epoch = epoch

    # ------------------------------------------------------------------ #
    # TripleIndex interface over the merged view.
    # ------------------------------------------------------------------ #

    def select(self, pattern: PatternLike) -> Iterator[Tuple[int, int, int]]:
        pattern = TriplePattern.from_tuple(pattern)
        deleted = self.delta.deleted
        if deleted:
            for triple in self.base.select(pattern):
                if triple not in deleted:
                    yield triple
        else:
            yield from self.base.select(pattern)
        yield from self.delta.matching(pattern)

    @property
    def num_triples(self) -> int:
        return (self.base.num_triples + self.delta.num_inserted
                - self.delta.num_deleted)

    def size_in_bits(self) -> int:
        return self.base.size_in_bits() + self.delta.size_in_bits()

    def space_breakdown(self) -> Dict[str, int]:
        breakdown = dict(self.base.space_breakdown())
        breakdown["delta"] = self.delta.size_in_bits()
        return breakdown

    def supported_kinds(self) -> Tuple[str, ...]:
        return self.base.supported_kinds()

    def contains(self, triple: Tuple[int, int, int]) -> bool:
        triple = tuple(triple)
        if triple in self.delta.inserted:
            return True
        if triple in self.delta.deleted:
            return False
        return self.base.contains(triple)

    def seek_cursor(self, bound: Mapping[int, int], role: int):
        """Merged successor cursor; see the module docstring for exactness.

        Returns ``None`` (= let the join engine materialise through
        ``select``) when the base index offers no native cursor for the
        shape — the materialised path already sees the merged view.
        """
        native_factory = getattr(self.base, "seek_cursor", None)
        if native_factory is None:
            return None
        native = native_factory(bound, role)
        if native is None:
            return None
        cursor, exact = native
        if self.delta.has_deleted_matching(bound):
            # A tombstone under this bound prefix may have emptied some
            # base candidate: the union can over-approximate, so exactness
            # cannot be claimed.  Tombstones elsewhere in the graph leave
            # this prefix's candidates intact — exactness (and with it the
            # leapfrog's native acceleration) survives.
            exact = False
        delta_values = self.delta.candidates(bound, role)
        if delta_values:
            cursor = MergedCursor(cursor, ArrayCursor(delta_values))
        return cursor, exact

    def select_values(self, bound: Mapping[int, int], role: int):
        """Sorted candidate block over the merged view, or ``None``.

        The vectorised analogue of :meth:`seek_cursor`: the base block is
        fetched in one pass, tombstones under the bound prefix are removed
        *per block* (only possible when ``bound`` pins both other roles, so
        every block value corresponds to exactly one base triple), and the
        delta's inserted candidates are unioned in.  When a tombstone
        matches a shorter prefix the value↔triple correspondence is lost
        and the method returns ``None`` — the scalar merged-cursor path
        then applies the conservative exactness demotion instead, so a
        deleted triple can never leak into a block-built solution.
        """
        native = getattr(self.base, "select_values", None)
        if native is None:
            return None
        block = native(bound, role)
        if block is None:
            return None
        delta = self.delta
        if delta.deleted and delta.has_deleted_matching(bound):
            if len(bound) != 2:
                return None
            components: List[Optional[int]] = [None, None, None]
            for fixed_role, value in bound.items():
                components[fixed_role] = value
            removed = {t[role]
                       for t in delta.deleted_matching(tuple(components))}
            if removed:
                block = block[~np.isin(block, sorted(removed))]
        inserts = delta.candidates(bound, role)
        if inserts:
            block = np.union1d(block, np.asarray(inserts, dtype=np.int64))
        return block


@dataclass
class UpdateResult:
    """What one :meth:`DynamicIndex.insert` / ``delete`` batch did."""

    inserted: int
    deleted: int
    epoch: int
    num_triples: int
    #: Set when the batch tripped the size-ratio trigger.
    compaction: Optional["CompactionResult"] = None

    def to_json(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "inserted": self.inserted,
            "deleted": self.deleted,
            "epoch": self.epoch,
            "num_triples": self.num_triples,
            "compacted": self.compaction is not None,
        }
        if self.compaction is not None:
            payload["compaction"] = self.compaction.to_json()
        return payload


@dataclass
class CompactionResult:
    """What one compaction did (``cardinalities`` is for the planner)."""

    compacted: bool
    num_triples: int
    absorbed_inserts: int
    absorbed_deletes: int
    epoch: int
    seconds: float
    layout: str
    cardinalities: Optional[dict] = field(default=None, repr=False)

    def to_json(self) -> Dict[str, object]:
        return {
            "compacted": self.compacted,
            "num_triples": self.num_triples,
            "absorbed_inserts": self.absorbed_inserts,
            "absorbed_deletes": self.absorbed_deletes,
            "epoch": self.epoch,
            "seconds": self.seconds,
            "layout": self.layout,
        }


class DynamicIndex(TripleIndex):
    """An updatable triple index: immutable base + WAL-backed delta.

    Read methods delegate to the current :class:`SnapshotIndex`; use
    :meth:`snapshot` to pin one view across a multi-pattern query.  Writes
    and compaction serialise on an internal lock; reads never take it.
    """

    def __init__(self, base: TripleIndex, delta: Optional[DeltaState] = None,
                 wal=None, compaction_ratio: Optional[float] = None):
        """``compaction_ratio``: auto-compact when the delta exceeds
        ``ratio * base_triples`` entries; ``None`` or ``<= 0`` disables the
        trigger (one convention for every entry point — CLI, service,
        library)."""
        if isinstance(base, (DynamicIndex, SnapshotIndex)):
            raise UpdateError("cannot stack a DynamicIndex on a dynamic view")
        if compaction_ratio is not None and compaction_ratio <= 0:
            compaction_ratio = None
        self._lock = threading.RLock()
        self._wal = wal
        self._compaction_ratio = compaction_ratio
        self._view = SnapshotIndex(base, delta or DeltaState.empty(), epoch=0)
        self._compactions = 0
        self._total_inserted = 0
        self._total_deleted = 0
        #: A failed auto-compaction disarms the trigger (writes must keep
        #: succeeding — the batch was already durable) until a successful
        #: explicit compact re-arms it; the error is surfaced in the stats.
        self._auto_compact_error: Optional[str] = None

    # ------------------------------------------------------------------ #
    # Construction.
    # ------------------------------------------------------------------ #

    @classmethod
    def open(cls, base: TripleIndex, wal_path=None,
             delta: Optional[DeltaState] = None,
             compaction_ratio: Optional[float] = None,
             sync: bool = True) -> "DynamicIndex":
        """Wrap ``base``, replaying the WAL at ``wal_path`` if one exists.

        Replay applies the logged batches on top of ``delta`` (a snapshot
        restored from a container's ``delta`` section, if any) through the
        same set-semantics path live writes use, so replaying a log twice
        is harmless.
        """
        state = delta or DeltaState.empty()
        wal = None
        if wal_path is not None:
            from repro.storage.wal import WriteAheadLog
            wal = WriteAheadLog(wal_path, sync=sync)
            for inserts, deletes in wal.replay():
                state, _, _ = state.apply(base, inserts=inserts,
                                          deletes=deletes, validate=False)
            wal.release_replay()  # the history now lives in ``state``
        return cls(base, delta=state, wal=wal,
                   compaction_ratio=compaction_ratio)

    # ------------------------------------------------------------------ #
    # Read path (delegates to the current snapshot).
    # ------------------------------------------------------------------ #

    def snapshot(self) -> SnapshotIndex:
        """The current immutable merged view (pin it for a whole query)."""
        return self._view

    @property
    def base(self) -> TripleIndex:
        return self._view.base

    @property
    def delta(self) -> DeltaState:
        return self._view.delta

    @property
    def epoch(self) -> int:
        """Monotonic version: bumped by every effective write and compaction."""
        return self._view.epoch

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"dynamic({getattr(self._view.base, 'name', '?')})"

    def select(self, pattern: PatternLike) -> Iterator[Tuple[int, int, int]]:
        return self._view.select(pattern)

    @property
    def num_triples(self) -> int:
        return self._view.num_triples

    def size_in_bits(self) -> int:
        return self._view.size_in_bits()

    def space_breakdown(self) -> Dict[str, int]:
        return self._view.space_breakdown()

    def supported_kinds(self) -> Tuple[str, ...]:
        return self._view.supported_kinds()

    def contains(self, triple: Tuple[int, int, int]) -> bool:
        return self._view.contains(triple)

    def seek_cursor(self, bound: Mapping[int, int], role: int):
        return self._view.seek_cursor(bound, role)

    def select_values(self, bound: Mapping[int, int], role: int):
        return self._view.select_values(bound, role)

    # ------------------------------------------------------------------ #
    # Write path.
    # ------------------------------------------------------------------ #

    def insert(self, triples: Sequence[Triple]) -> UpdateResult:
        """Insert a batch of ID triples; returns what actually changed."""
        return self.update(inserts=triples)

    def delete(self, triples: Sequence[Triple]) -> UpdateResult:
        """Delete a batch of ID triples (tombstoning base triples)."""
        return self.update(deletes=triples)

    def update(self, inserts: Sequence[Triple] = (),
               deletes: Sequence[Triple] = ()) -> UpdateResult:
        """Apply inserts and deletes as one atomic batch.

        Everything is validated up front and applied under one lock with
        one epoch bump: a malformed triple anywhere rejects the whole
        request before any mutation, and readers never observe the inserts
        without the deletes.
        """
        # Validate before touching the WAL so a malformed batch is rejected
        # atomically instead of half-logged (apply() then skips re-checking).
        inserts = [normalize_triple(t) for t in inserts]
        deletes = [normalize_triple(t) for t in deletes]
        with self._lock:
            view = self._view
            state, num_inserted, num_deleted = view.delta.apply(
                view.base, inserts, deletes, validate=False)
            compaction = None
            if num_inserted or num_deleted:
                if self._wal is not None:
                    # Write-ahead: durable before visible, and one record
                    # for the whole batch so a crash cannot surface the
                    # inserts without their paired deletes.
                    self._wal.append(inserts, deletes)
                self._view = SnapshotIndex(view.base, state, view.epoch + 1)
                self._total_inserted += num_inserted
                self._total_deleted += num_deleted
                if self._ratio_exceeded():
                    try:
                        compaction = self.compact()
                    except Exception as error:
                        # The batch is already durable and visible; failing
                        # the write now would wedge the endpoint (every
                        # later write would re-trip the same rebuild).
                        # Disarm the trigger and report through the stats.
                        self._auto_compact_error = (
                            f"{type(error).__name__}: {error}")
                        compaction = None
            return UpdateResult(inserted=num_inserted, deleted=num_deleted,
                                epoch=self._view.epoch,
                                num_triples=self._view.num_triples,
                                compaction=compaction)

    def _ratio_exceeded(self) -> bool:
        if self._compaction_ratio is None or self._auto_compact_error:
            return False
        view = self._view
        if view.num_triples == 0:
            return False  # nothing to rebuild from yet
        return len(view.delta) >= self._compaction_ratio * max(
            1, view.base.num_triples)

    # ------------------------------------------------------------------ #
    # Compaction.
    # ------------------------------------------------------------------ #

    def compact(self) -> CompactionResult:
        """Rebuild the compressed index from base + delta and swap it in.

        Readers keep streaming from the old snapshot for the duration; the
        swap itself is one reference assignment.  No-op (``compacted`` is
        ``False``) when the delta is empty.

        The WAL is deliberately *not* truncated here: the rebuilt index
        only exists in memory, so the log must keep the full op history
        until a :meth:`save` persists the compacted state (replaying the
        whole history onto the old on-disk base reproduces exactly the
        current merged set — the ops are ordered set-semantics).  Pass
        ``reset_wal=True`` to :meth:`save` once the container is durably
        written.
        """
        from repro.core.builder import IndexBuilder
        from repro.queries.planner import QueryPlanner
        from repro.rdf.triples import TripleStore

        with self._lock:
            started = time.perf_counter()
            view = self._view
            layout = getattr(view.base, "name", None)
            if not view.delta:
                return CompactionResult(
                    compacted=False, num_triples=view.num_triples,
                    absorbed_inserts=0, absorbed_deletes=0, epoch=view.epoch,
                    seconds=0.0, layout=layout or "?")
            if layout not in _REBUILDABLE:
                raise UpdateError(
                    f"cannot compact: base layout {layout!r} is not "
                    f"rebuildable (expected one of {_REBUILDABLE})")
            if view.num_triples == 0:
                raise UpdateError(
                    "cannot compact: every triple is deleted and an index "
                    "cannot be built from an empty store")
            deleted = view.delta.deleted
            triples: List[Triple] = [
                t for t in view.base.select((None, None, None))
                if t not in deleted]
            triples.extend(view.delta.inserted)
            try:
                # Disjoint by the delta invariants: no dedup pass needed.
                store = TripleStore.from_triples(triples, dedup=False)
                new_base = IndexBuilder(store).build(layout)
            except MemoryError:
                # The trie builders allocate universe-sized arrays: one
                # sparse, huge ID in the delta can make the rebuild
                # unbuildable.  Surface it as a structured error (the
                # delta keeps serving correctly in the meantime).
                largest = max(max(t) for t in triples)
                raise UpdateError(
                    f"compaction cannot rebuild a {layout} index over a "
                    f"universe of {largest + 1} IDs (largest inserted "
                    f"component: {largest}); delete the sparse outlier "
                    f"triples or rebuild offline with re-mapped IDs"
                ) from None
            cardinalities = QueryPlanner.cardinalities_from_store(store)
            result = CompactionResult(
                compacted=True, num_triples=new_base.num_triples,
                absorbed_inserts=view.delta.num_inserted,
                absorbed_deletes=view.delta.num_deleted,
                epoch=view.epoch + 1,
                seconds=time.perf_counter() - started,
                layout=layout, cardinalities=cardinalities)
            self._view = SnapshotIndex(new_base, DeltaState.empty(),
                                       view.epoch + 1)
            self._compactions += 1
            self._auto_compact_error = None  # re-arm the size-ratio trigger
            return result

    # ------------------------------------------------------------------ #
    # Persistence & statistics.
    # ------------------------------------------------------------------ #

    def save(self, path, dictionary=None, planner_stats=None,
             reset_wal: bool = False) -> int:
        """Persist base + delta into one container (``delta`` section).

        ``reset_wal=True`` truncates the write-ahead log *after* the
        container write succeeded — correct only when ``path`` is the file
        a later reopen will pair with this WAL (the saved base+delta then
        supersedes the logged history).  Saving a copy elsewhere must keep
        the log, so the default leaves it untouched.
        """
        from repro.storage import save_index
        with self._lock:
            view = self._view
            written = save_index(view.base, path, dictionary=dictionary,
                                 planner_stats=planner_stats,
                                 delta=view.delta)
            if reset_wal and self._wal is not None:
                self._wal.reset()
        return written

    def delta_statistics(self) -> Dict[str, object]:
        """JSON-ready gauges for ``/stats`` and the CLI."""
        view = self._view
        stats: Dict[str, object] = {
            "epoch": view.epoch,
            "delta_inserted": view.delta.num_inserted,
            "delta_deleted": view.delta.num_deleted,
            "base_triples": int(view.base.num_triples),
            "num_triples": int(view.num_triples),
            "delta_ratio": (len(view.delta)
                            / max(1, view.base.num_triples)),
            "compactions": self._compactions,
            "total_inserted": self._total_inserted,
            "total_deleted": self._total_deleted,
            "compaction_ratio": self._compaction_ratio,
            "auto_compact_error": self._auto_compact_error,
        }
        if self._wal is not None:
            stats["wal_path"] = str(self._wal.path)
            stats["wal_records"] = self._wal.num_records
            stats["wal_bytes"] = self._wal.size_bytes()
        return stats

    def close(self) -> None:
        """Close the WAL handle (the in-memory view stays usable)."""
        if self._wal is not None:
            self._wal.close()
