"""Codec registry and helpers used by the index builders.

The builders refer to codecs by the short names the paper uses in Table 1
(``compact``, ``ef``, ``pef``, ``vbyte``); :func:`make_ranged_sequence` hides
the difference between codecs that can encode raw (non-monotone) levels and
monotone-only codecs that need the prefix-sum transform.
"""

from __future__ import annotations

from typing import Dict, Sequence, Type

from repro.errors import EncodingError
from repro.sequences.base import EncodedSequence
from repro.sequences.compact import CompactVector
from repro.sequences.elias_fano import EliasFano
from repro.sequences.partitioned_elias_fano import PartitionedEliasFano
from repro.sequences.prefix_sum import PrefixSummedSequence, RangedSequence
from repro.sequences.vbyte import VByte

#: All registered codecs, keyed by the names used throughout the paper.
CODECS: Dict[str, Type[EncodedSequence]] = {
    "compact": CompactVector,
    "ef": EliasFano,
    "pef": PartitionedEliasFano,
    "vbyte": VByte,
}

#: Codecs that require monotone non-decreasing input.
MONOTONE_CODECS = frozenset(name for name, cls in CODECS.items() if cls.requires_monotone)


def codec_class(name: str) -> Type[EncodedSequence]:
    """Return the codec class registered under ``name``."""
    try:
        return CODECS[name]
    except KeyError:
        raise EncodingError(
            f"unknown codec {name!r}; available: {sorted(CODECS)}"
        ) from None


def encode_sequence(values: Sequence[int], codec: str, **kwargs) -> EncodedSequence:
    """Encode ``values`` with the codec registered under ``codec``."""
    return codec_class(codec).from_values(values, **kwargs)


def make_ranged_sequence(values: Sequence[int], boundaries: Sequence[int],
                         codec: str, **kwargs) -> RangedSequence:
    """Encode a trie node level addressed by sibling ranges.

    ``boundaries`` is the pointer sequence delimiting sibling ranges.  When the
    requested codec is monotone-only, the level is routed through
    :class:`PrefixSummedSequence` (the paper's prefix-sum transform); otherwise
    the values are encoded verbatim.
    """
    cls = codec_class(codec)
    if cls.requires_monotone:
        return PrefixSummedSequence.from_values(values, boundaries, cls, **kwargs)
    return RangedSequence(cls.from_values(values, **kwargs))
