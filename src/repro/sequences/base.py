"""Common interface for compressed integer sequences.

The interface follows the operations required by the pattern-matching
algorithms of the paper (Fig. 2 and Fig. 5): constant-or-logarithmic random
``access``, ``find`` within a sorted sibling range, and cheap sequential
``scan`` of a range.

Two *batch kernels* complement the scalar operations:

* :meth:`EncodedSequence.decode_block` — decode a contiguous ``[begin, end)``
  range into one ``numpy.int64`` array;
* :meth:`EncodedSequence.next_geq_batch` — the successor primitive for many
  probe values at once.

The base class provides reference implementations in terms of ``access`` (so
every codec supports them); codecs whose payload lives in contiguous machine
words (Elias-Fano, PEF, fixed-width, vbyte) override ``decode_block`` with a
vectorised decode, and ``next_geq_batch`` rides on it via ``searchsorted``.
The batch results are **bit-for-bit equal** to looping the scalar operation —
the property tests in ``tests/test_batch_kernels.py`` pin this down.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import EncodingError

NOT_FOUND = -1


class SequenceIterator:
    """Forward iterator over an :class:`EncodedSequence`.

    The iterator mirrors the ``iterator_at`` primitive used by the paper's
    ``select`` algorithm: it is positioned at an absolute index and yields
    consecutive values until exhausted or until the caller stops.
    """

    __slots__ = ("_sequence", "_position", "_end")

    def __init__(self, sequence: "EncodedSequence", position: int, end: Optional[int] = None):
        self._sequence = sequence
        self._position = position
        self._end = len(sequence) if end is None else end

    @property
    def position(self) -> int:
        """Absolute index of the next element to be returned."""
        return self._position

    def has_next(self) -> bool:
        """Return ``True`` if another element is available."""
        return self._position < self._end

    def next(self) -> int:
        """Return the element at the current position and advance."""
        value = self._sequence.access(self._position)
        self._position += 1
        return value

    def __iter__(self) -> Iterator[int]:
        return self

    def __next__(self) -> int:
        if not self.has_next():
            raise StopIteration
        return self.next()


class EncodedSequence(ABC):
    """Abstract compressed representation of a sequence of non-negative ints."""

    #: Whether the codec requires its input to be monotone non-decreasing.
    requires_monotone: bool = False

    #: Registry name of the codec (filled by concrete classes).
    name: str = "abstract"

    @abstractmethod
    def __len__(self) -> int:
        """Number of encoded elements."""

    @abstractmethod
    def access(self, i: int) -> int:
        """Return the ``i``-th element (0-based)."""

    @abstractmethod
    def size_in_bits(self) -> int:
        """Space of the encoded payload, in bits.

        This is the figure used for the paper's bits/triple accounting.  The
        live Python object may keep extra acceleration state (e.g. cumulative
        numpy arrays); that state is either included here at the sampling
        rates a succinct C++ implementation would use, or it is derivable
        from the payload and therefore not counted.
        """

    # ------------------------------------------------------------------ #
    # Derived operations with sensible default implementations.
    # ------------------------------------------------------------------ #

    def __getitem__(self, i: int) -> int:
        return self.access(i)

    def __iter__(self) -> Iterator[int]:
        return self.scan(0, len(self))

    def find(self, begin: int, end: int, value: int) -> int:
        """Locate ``value`` inside the sorted range ``[begin, end)``.

        Returns the absolute position of (the first occurrence of) ``value``
        or :data:`NOT_FOUND`.  The range is assumed sorted in non-decreasing
        order, which holds for every sibling range of the tries.
        """
        if begin < 0 or end > len(self) or begin > end:
            raise IndexError(f"invalid range [{begin}, {end}) for length {len(self)}")
        lo, hi = begin, end
        while lo < hi:
            mid = (lo + hi) // 2
            if self.access(mid) < value:
                lo = mid + 1
            else:
                hi = mid
        if lo < end and self.access(lo) == value:
            return lo
        return NOT_FOUND

    def next_geq(self, value: int, begin: int = 0,
                 end: Optional[int] = None) -> Tuple[int, int]:
        """Return ``(position, element)`` of the first element >= ``value``.

        The search is restricted to the sorted range ``[begin, end)``; when no
        element qualifies, returns ``(end, -1)``.  This is the successor
        primitive behind the worst-case-optimal join cursors; codecs with a
        structural shortcut (Elias-Fano ``select0``, PEF partition bounds)
        override the default binary search.
        """
        if end is None:
            end = len(self)
        if begin < 0 or end > len(self) or begin > end:
            raise IndexError(f"invalid range [{begin}, {end}) for length {len(self)}")
        lo, hi = begin, end
        while lo < hi:
            mid = (lo + hi) // 2
            if self.access(mid) < value:
                lo = mid + 1
            else:
                hi = mid
        if lo < end:
            return lo, self.access(lo)
        return end, -1

    def decode_block(self, begin: int = 0,
                     end: Optional[int] = None) -> np.ndarray:
        """Decode the contiguous range ``[begin, end)`` into an int64 array.

        Reference implementation loops ``access``; codecs with word-aligned
        payloads override it with a vectorised decode.  The result always
        equals ``np.fromiter(self.scan(begin, end), np.int64)``.
        """
        if end is None:
            end = len(self)
        if begin < 0 or end > len(self) or begin > end:
            raise IndexError(f"invalid range [{begin}, {end}) for length {len(self)}")
        return np.fromiter((self.access(i) for i in range(begin, end)),
                           dtype=np.int64, count=end - begin)

    def next_geq_batch(self, values: Sequence[int], begin: int = 0,
                       end: Optional[int] = None) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`next_geq` over many probe values.

        Returns ``(positions, elements)`` arrays where row ``i`` equals
        ``self.next_geq(values[i], begin, end)`` — in particular a probe with
        no successor in the range yields ``(end, -1)``.  The default decodes
        the block once and resolves every probe with one ``searchsorted``,
        which is the right trade when there are many probes per range.
        """
        if end is None:
            end = len(self)
        if begin < 0 or end > len(self) or begin > end:
            raise IndexError(f"invalid range [{begin}, {end}) for length {len(self)}")
        probes = np.asarray(values, dtype=np.int64)
        block = self.decode_block(begin, end)
        if block.size == 0:
            return (np.full(probes.shape, end, dtype=np.int64),
                    np.full(probes.shape, -1, dtype=np.int64))
        offsets = np.searchsorted(block, probes, side="left")
        positions = offsets + begin
        elements = np.where(offsets < block.size,
                            block[np.minimum(offsets, block.size - 1)],
                            np.int64(-1))
        return positions.astype(np.int64), elements.astype(np.int64)

    def scan(self, begin: int = 0, end: Optional[int] = None) -> Iterator[int]:
        """Yield the elements in ``[begin, end)`` in order."""
        if end is None:
            end = len(self)
        if begin < 0 or end > len(self) or begin > end:
            raise IndexError(f"invalid range [{begin}, {end}) for length {len(self)}")
        for i in range(begin, end):
            yield self.access(i)

    def iterator_at(self, i: int, end: Optional[int] = None) -> SequenceIterator:
        """Return a forward iterator positioned at absolute index ``i``."""
        return SequenceIterator(self, i, end)

    def to_list(self) -> List[int]:
        """Decode the whole sequence into a Python list."""
        return list(self.scan(0, len(self)))

    def bits_per_element(self) -> float:
        """Average number of bits spent per encoded element."""
        n = len(self)
        if n == 0:
            return 0.0
        return self.size_in_bits() / n

    # ------------------------------------------------------------------ #
    # Persistence.
    # ------------------------------------------------------------------ #

    def save(self, path) -> int:
        """Persist this sequence to ``path``; returns the bytes written.

        The file is a versioned, checksummed container (see
        :mod:`repro.storage`); loading it rebuilds the codec from the stored
        words without re-encoding anything.
        """
        from repro.storage import save_object
        return save_object(self, path)

    @classmethod
    def load(cls, path) -> "EncodedSequence":
        """Load a sequence saved with :meth:`save`.

        Called on a concrete codec class (``EliasFano.load(path)``) it
        verifies the stored codec matches; called on
        :class:`EncodedSequence` it accepts any codec.
        """
        from repro.storage import load_object
        return load_object(path, expected_type=cls)

    # ------------------------------------------------------------------ #
    # Construction helpers.
    # ------------------------------------------------------------------ #

    @staticmethod
    def check_non_negative(values: Sequence[int]) -> None:
        """Raise :class:`EncodingError` if any value is negative."""
        for v in values:
            if v < 0:
                raise EncodingError(f"negative value {v} cannot be encoded")
            break  # full validation is done vectorised by concrete codecs

    @staticmethod
    def is_monotone(values: Iterable[int]) -> bool:
        """Return ``True`` when ``values`` is non-decreasing."""
        previous = None
        for v in values:
            if previous is not None and v < previous:
                return False
            previous = v
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{self.__class__.__name__}(n={len(self)}, "
            f"bits={self.size_in_bits()}, bpe={self.bits_per_element():.2f})"
        )
