"""Partitioned Elias-Fano (PEF, Ottaviano & Venturini 2014).

The sequence is split into fixed-size partitions.  For every partition the
encoder picks the cheapest of three representations:

* ``run``    — the partition is a strictly consecutive run ``base+1 .. base+m``
               and needs no payload at all;
* ``bitmap`` — a bit vector over the partition universe, good for dense
               partitions;
* ``ef``     — a local Elias-Fano encoder, good for sparse partitions.

Partition upper bounds are themselves Elias-Fano encoded so that the partition
base can be fetched in O(1).  The paper uses this codec for most trie levels
because it adapts to the highly clustered node-ID distributions of RDF data.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import EncodingError
from repro.sequences.base import NOT_FOUND, EncodedSequence
from repro.sequences.bitvector import BitVector
from repro.sequences.compact import CompactVector
from repro.sequences.elias_fano import EliasFano

_WORD_BITS = 64

#: Default number of elements per partition.
DEFAULT_PARTITION_SIZE = 128

_KIND_RUN = 0
_KIND_BITMAP = 1
_KIND_EF = 2


class _Partition:
    """One encoded partition: values are stored relative to ``base``."""

    __slots__ = ("kind", "base", "length", "payload")

    def __init__(self, kind: int, base: int, length: int, payload):
        self.kind = kind
        self.base = base
        self.length = length
        self.payload = payload

    def access(self, i: int) -> int:
        """Return the ``i``-th (0-based, partition-relative) original value."""
        if self.kind == _KIND_RUN:
            return self.base + i + 1
        if self.kind == _KIND_BITMAP:
            return self.base + self.payload.select1(i) + 1
        return self.base + self.payload.access(i)

    def decode_block(self, lo: int, hi: int) -> np.ndarray:
        """Vectorised decode of partition-relative indices ``[lo, hi)``."""
        if self.kind == _KIND_RUN:
            return self.base + 1 + np.arange(lo, hi, dtype=np.int64)
        if self.kind == _KIND_BITMAP:
            return self.base + 1 + self.payload.ones_positions()[lo:hi]
        return self.base + self.payload.decode_block(lo, hi)

    def size_in_bits(self) -> int:
        header = 2 * 8  # kind byte + length byte equivalent
        if self.kind == _KIND_RUN:
            return header
        return header + self.payload.size_in_bits()

    @classmethod
    def encode(cls, values: np.ndarray, base: int) -> "_Partition":
        """Pick the cheapest representation for ``values`` relative to ``base``."""
        length = int(values.size)
        relative = values - base
        if np.any(relative < 0):
            raise EncodingError("partition values must be >= partition base")
        span = int(relative[-1])
        # Strictly consecutive run base+1 .. base+length.
        if span == length and np.array_equal(relative, np.arange(1, length + 1)):
            return cls(_KIND_RUN, base, length, None)
        # Dense partitions (with strictly increasing values) as a bitmap over
        # the span; ties fall back to Elias-Fano which supports duplicates.
        strictly_increasing = bool(np.all(np.diff(relative) > 0)) if length > 1 else True
        bitmap_usable = strictly_increasing and span > 0 and int(relative[0]) >= 1
        bitmap_cost = span if bitmap_usable else None
        ef_payload = EliasFano.from_values(relative.tolist())
        ef_cost = ef_payload.size_in_bits()
        if bitmap_cost is not None and bitmap_cost < ef_cost and span <= 8 * ef_cost:
            bitmap = BitVector.from_positions(span, (relative - 1).tolist())
            return cls(_KIND_BITMAP, base, length, bitmap)
        return cls(_KIND_EF, base, length, ef_payload)


def flatten_partitions(partitions) -> dict:
    """Flatten encoded partitions into parallel arrays + one word pool.

    This is the storage-format-v2/v3 on-disk shape of a PEF sequence (see
    ``docs/STORAGE_FORMAT.md``): per-partition scalars live in five parallel
    arrays and every payload's ``uint64`` words are concatenated into a
    single pool addressed by ``offsets``.  Compared with one nested object
    per partition it turns thousands of tagged-object decodes into six array
    reads — and, under the zero-copy loader, into six views over the mapped
    file.

    ``extras`` holds the one kind-specific scalar: the bitmap's bit length
    for ``bitmap`` partitions, the local Elias-Fano universe for ``ef``
    partitions, zero for runs.  An ``ef`` payload contributes its low words
    (when ``low_bits > 0``) followed by its high words; both counts are
    derivable from ``lengths``/``extras``/``low_bits``, so the pool needs no
    internal markers.
    """
    count = len(partitions)
    kinds = np.zeros(count, dtype=np.uint8)
    bases = np.zeros(count, dtype=np.int64)
    lengths = np.zeros(count, dtype=np.int64)
    extras = np.zeros(count, dtype=np.int64)
    low_bits = np.zeros(count, dtype=np.uint8)
    offsets = np.zeros(count + 1, dtype=np.int64)
    chunks: List[np.ndarray] = []
    total = 0
    for i, partition in enumerate(partitions):
        kinds[i] = partition.kind
        bases[i] = partition.base
        lengths[i] = partition.length
        offsets[i] = total
        if partition.kind == _KIND_BITMAP:
            extras[i] = len(partition.payload)
            chunks.append(partition.payload._words)
            total += partition.payload._words.size
        elif partition.kind == _KIND_EF:
            ef = partition.payload
            extras[i] = ef.universe
            low_bits[i] = ef.low_bits
            if ef._low is not None:
                chunks.append(ef._low._words)
                total += ef._low._words.size
            chunks.append(ef._high._words)
            total += ef._high._words.size
    offsets[count] = total
    words = (np.concatenate(chunks) if chunks
             else np.zeros(0, dtype=np.uint64))
    return {"kinds": kinds, "bases": bases, "lengths": lengths,
            "extras": extras, "low_bits": low_bits, "offsets": offsets,
            "words": words}


class _LazyPartitions:
    """List-like partition store decoding from flat arrays on first touch.

    The inverse of :func:`flatten_partitions`.  Partitions materialise (and
    are cached) individually, so loading a PEF sequence is O(1) in the
    number of partitions and a query that touches three partitions builds
    exactly three — the rest stay as untouched words (on-disk pages, under
    the mmap loader).
    """

    __slots__ = ("_kinds", "_bases", "_lengths", "_extras", "_low_bits",
                 "_offsets", "_words", "_cache")

    def __init__(self, kinds, bases, lengths, extras, low_bits, offsets, words):
        self._kinds = kinds
        self._bases = bases
        self._lengths = lengths
        self._extras = extras
        self._low_bits = low_bits
        self._offsets = offsets
        self._words = words
        # Sparse cache: a dict keeps construction O(1) in the partition
        # count (a [None] * n list would make every load O(partitions)).
        self._cache: dict = {}

    def __len__(self) -> int:
        return len(self._kinds)

    def __getitem__(self, index: int) -> _Partition:
        partition = self._cache.get(index)
        if partition is None:
            partition = self._cache[index] = self._materialise(index)
        return partition

    def __iter__(self) -> Iterator[_Partition]:
        for index in range(len(self._kinds)):
            yield self[index]

    def _materialise(self, index: int) -> _Partition:
        kind = int(self._kinds[index])
        base = int(self._bases[index])
        length = int(self._lengths[index])
        if kind == _KIND_RUN:
            return _Partition(_KIND_RUN, base, length, None)
        start = int(self._offsets[index])
        stop = int(self._offsets[index + 1])
        words = self._words[start:stop]
        if kind == _KIND_BITMAP:
            num_bits = int(self._extras[index])
            return _Partition(_KIND_BITMAP, base, length,
                              BitVector(words, num_bits))
        universe = int(self._extras[index])
        width = int(self._low_bits[index])
        if width:
            # CompactVector keeps one spill word past the packed payload.
            num_low_words = (length * width + _WORD_BITS - 1) // _WORD_BITS + 1
            low = CompactVector(words[:num_low_words], width, length)
        else:
            num_low_words = 0
            low = None
        num_high_bits = length + (universe >> width) + 1
        high = BitVector(words[num_low_words:], num_high_bits)
        return _Partition(_KIND_EF, base, length,
                          EliasFano(low, high, length, universe, width))


class PartitionedEliasFano(EncodedSequence):
    """Partitioned Elias-Fano encoding of a monotone non-decreasing sequence."""

    requires_monotone = True
    name = "pef"

    __slots__ = ("_partitions", "_upper_bounds", "_size", "_partition_size", "_universe")

    def __init__(self, partitions: List[_Partition], upper_bounds: EliasFano,
                 size: int, partition_size: int, universe: int):
        self._partitions = partitions
        self._upper_bounds = upper_bounds
        self._size = size
        self._partition_size = partition_size
        self._universe = universe

    # ------------------------------------------------------------------ #
    # Construction.
    # ------------------------------------------------------------------ #

    @classmethod
    def from_values(cls, values: Sequence[int],
                    partition_size: int = DEFAULT_PARTITION_SIZE) -> "PartitionedEliasFano":
        """Encode a monotone non-decreasing sequence."""
        if partition_size <= 0:
            raise EncodingError("partition size must be positive")
        array = np.asarray(values, dtype=np.int64)
        size = int(array.size)
        if size == 0:
            empty_bounds = EliasFano.from_values([])
            return cls([], empty_bounds, 0, partition_size, 0)
        if int(array.min()) < 0:
            raise EncodingError("PEF cannot encode negative values")
        if np.any(np.diff(array) < 0):
            raise EncodingError("PEF requires a monotone non-decreasing sequence")

        partitions: List[_Partition] = []
        bounds: List[int] = []
        base = 0
        for start in range(0, size, partition_size):
            chunk = array[start:start + partition_size]
            # The partition base is the last value of the previous partition,
            # but never larger than the first value of this partition (ties
            # across the boundary keep relative values non-negative).
            chunk_base = min(base, int(chunk[0]))
            partitions.append(_Partition.encode(chunk, chunk_base))
            base = int(chunk[-1])
            bounds.append(base)
        upper_bounds = EliasFano.from_values(bounds)
        return cls(partitions, upper_bounds, size, partition_size, int(array[-1]) + 1)

    # ------------------------------------------------------------------ #
    # EncodedSequence interface.
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._size

    @property
    def partition_size(self) -> int:
        """Number of elements per partition (last partition may be shorter)."""
        return self._partition_size

    @property
    def num_partitions(self) -> int:
        """Number of partitions."""
        return len(self._partitions)

    def access(self, i: int) -> int:
        if not 0 <= i < self._size:
            raise IndexError(f"index {i} out of range [0, {self._size})")
        partition_index, offset = divmod(i, self._partition_size)
        return self._partitions[partition_index].access(offset)

    def size_in_bits(self) -> int:
        payload = sum(p.size_in_bits() for p in self._partitions)
        return payload + self._upper_bounds.size_in_bits() + 2 * _WORD_BITS

    def find(self, begin: int, end: int, value: int) -> int:
        """Position of ``value`` in the sorted range ``[begin, end)`` or -1.

        The partition bounds restrict the search to at most a couple of
        partitions, mirroring the locality advantage the paper measures for
        PEF ``find`` over plain EF.
        """
        if begin < 0 or end > self._size or begin > end:
            raise IndexError(f"invalid range [{begin}, {end}) for length {self._size}")
        if begin == end:
            return NOT_FOUND
        first_partition = begin // self._partition_size
        last_partition = (end - 1) // self._partition_size
        for partition_index in range(first_partition, last_partition + 1):
            partition = self._partitions[partition_index]
            partition_start = partition_index * self._partition_size
            # Skip partitions whose upper bound is below the target.
            if self._upper_bounds.access(partition_index) < value:
                continue
            lo = max(begin, partition_start)
            hi = min(end, partition_start + partition.length)
            position = self._binary_search_partition(partition, partition_start, lo, hi, value)
            if position != NOT_FOUND:
                return position
            # If this partition's minimum already exceeds the value, later
            # partitions only contain larger values.
            if hi > lo and partition.access(lo - partition_start) > value:
                return NOT_FOUND
        return NOT_FOUND

    def next_geq(self, value: int, begin: int = 0,
                 end: Optional[int] = None) -> Tuple[int, int]:
        """First element >= ``value`` in ``[begin, end)`` (see the base class).

        The partition upper bounds — themselves Elias-Fano encoded — prune the
        search to the first partition that can contain the successor, so a
        seek touches O(1) partitions plus one local binary search.
        """
        if end is None:
            end = self._size
        if begin < 0 or end > self._size or begin > end:
            raise IndexError(f"invalid range [{begin}, {end}) for length {self._size}")
        if begin == end:
            return end, -1
        first_partition = begin // self._partition_size
        last_partition = (end - 1) // self._partition_size
        # The first partition whose upper bound reaches ``value`` is the only
        # one that can hold the successor; earlier ones are entirely smaller.
        candidate, _ = self._upper_bounds.next_geq(value, first_partition,
                                                  last_partition + 1)
        if candidate > last_partition:
            return end, -1
        partition = self._partitions[candidate]
        partition_start = candidate * self._partition_size
        lo = max(begin, partition_start)
        hi = min(end, partition_start + partition.length)
        while lo < hi:
            mid = (lo + hi) // 2
            if partition.access(mid - partition_start) < value:
                lo = mid + 1
            else:
                hi = mid
        bound = min(end, partition_start + partition.length)
        if lo < bound:
            return lo, partition.access(lo - partition_start)
        # ``value`` exceeds every element of the candidate partition that lies
        # inside [begin, end); the successor, if any, opens the next partition.
        if lo < end:
            return lo, self.access(lo)
        return end, -1

    @staticmethod
    def _binary_search_partition(partition: _Partition, partition_start: int,
                                 lo: int, hi: int, value: int) -> int:
        left, right = lo, hi
        while left < right:
            mid = (left + right) // 2
            if partition.access(mid - partition_start) < value:
                left = mid + 1
            else:
                right = mid
        if left < hi and partition.access(left - partition_start) == value:
            return left
        return NOT_FOUND

    def decode_block(self, begin: int = 0,
                     end: Optional[int] = None) -> np.ndarray:
        """Vectorised decode of ``[begin, end)``: one chunk per partition."""
        if end is None:
            end = self._size
        if begin < 0 or end > self._size or begin > end:
            raise IndexError(f"invalid range [{begin}, {end}) for length {self._size}")
        if begin == end:
            return np.zeros(0, dtype=np.int64)
        first_partition = begin // self._partition_size
        last_partition = (end - 1) // self._partition_size
        chunks: List[np.ndarray] = []
        for partition_index in range(first_partition, last_partition + 1):
            partition = self._partitions[partition_index]
            partition_start = partition_index * self._partition_size
            lo = max(begin, partition_start) - partition_start
            hi = min(end, partition_start + partition.length) - partition_start
            chunks.append(partition.decode_block(lo, hi))
        if len(chunks) == 1:
            return chunks[0]
        return np.concatenate(chunks)

    def scan(self, begin: int = 0, end: Optional[int] = None) -> Iterator[int]:
        if end is None:
            end = self._size
        if begin < 0 or end > self._size or begin > end:
            raise IndexError(f"invalid range [{begin}, {end}) for length {self._size}")
        for i in range(begin, end):
            yield self.access(i)
