"""Bit vector with rank and select support.

This is the substrate below Elias-Fano and the wavelet tree.  Bits are packed
into ``numpy.uint64`` words.  Rank uses per-word cumulative popcounts; select
either binary-searches those counts and finishes with a byte-table scan inside
the word, or — once :meth:`BitVector.ones_positions` has been materialised —
indexes straight into a positions directory.

All acceleration state (cumulative popcounts, the positions directory, even
the total popcount) is derived *lazily* from the stored words: constructing a
``BitVector`` over an existing word array is O(1).  That is what makes
mmap-backed loading near-instant — the words stay on disk until a rank or
select actually touches them.

Space accounting: :meth:`BitVector.size_in_bits` charges the raw words plus a
64-bit rank sample every 512 bits (the overhead a practical succinct C++
implementation, e.g. the one used by the paper, would pay).  The per-word
cumulative array kept in memory for speed is an implementation convenience of
this Python port and is not charged.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence

import numpy as np

from repro.errors import EncodingError

_WORD_BITS = 64
_RANK_SAMPLE_BITS = 512  # one 64-bit absolute sample every 8 words

#: popcount of every byte value, used for in-word select.
_BYTE_POPCOUNT = np.array([bin(b).count("1") for b in range(256)], dtype=np.uint8)

#: Same table as a plain list: scalar lookups in the select hot path cost a
#: fraction of a numpy fancy index.
_BYTE_POPCOUNT_LIST: List[int] = _BYTE_POPCOUNT.tolist()


def _popcount_words(words: np.ndarray) -> np.ndarray:
    """Vectorised popcount of an array of uint64 words."""
    if words.size == 0:
        return np.zeros(0, dtype=np.int64)
    as_bytes = words.view(np.uint8).reshape(-1, 8)
    return _BYTE_POPCOUNT[as_bytes].sum(axis=1).astype(np.int64)


def _select_in_word(word: int, k: int) -> int:
    """Return the position (0..63) of the ``k``-th set bit (0-based) of ``word``."""
    for byte_index in range(8):
        byte = (word >> (8 * byte_index)) & 0xFF
        count = _BYTE_POPCOUNT_LIST[byte]
        if k < count:
            bit = 8 * byte_index
            while True:
                if byte & 1:
                    if k == 0:
                        return bit
                    k -= 1
                byte >>= 1
                bit += 1
        k -= count
    raise ValueError("word does not contain enough set bits")


class BitVectorBuilder:
    """Incremental builder used when the number of set bits is known lazily."""

    def __init__(self, num_bits: int):
        if num_bits < 0:
            raise EncodingError("bit vector length must be non-negative")
        self._num_bits = num_bits
        self._words = np.zeros((num_bits + _WORD_BITS - 1) // _WORD_BITS, dtype=np.uint64)

    def set(self, position: int) -> None:
        """Set the bit at ``position`` to 1."""
        if not 0 <= position < self._num_bits:
            raise IndexError(f"bit {position} out of range [0, {self._num_bits})")
        self._words[position >> 6] |= np.uint64(1) << np.uint64(position & 63)

    def set_many(self, positions: Iterable[int]) -> None:
        """Set many bits at once (vectorised)."""
        pos = np.asarray(list(positions) if not isinstance(positions, np.ndarray) else positions,
                         dtype=np.uint64)
        if pos.size == 0:
            return
        if int(pos.max()) >= self._num_bits:
            raise IndexError("bit position out of range")
        np.bitwise_or.at(self._words, (pos >> np.uint64(6)).astype(np.int64),
                         np.uint64(1) << (pos & np.uint64(63)))

    def build(self) -> "BitVector":
        """Finalise into an immutable :class:`BitVector`."""
        return BitVector(self._words, self._num_bits)


class BitVector:
    """Immutable bit vector supporting ``rank1/rank0`` and ``select1/select0``."""

    __slots__ = ("_words", "_num_bits", "_num_ones", "_cum_list", "_word_list",
                 "_ones_np", "_ones_list")

    def __init__(self, words: np.ndarray, num_bits: int):
        expected_words = (num_bits + _WORD_BITS - 1) // _WORD_BITS
        if words.dtype != np.uint64 or words.size != expected_words:
            raise EncodingError("inconsistent word array for bit vector")
        self._words = words
        self._num_bits = num_bits
        # All counts and directories are derived lazily from the words so
        # that constructing over an mmap-backed array touches no pages.
        self._num_ones: Optional[int] = None
        # Plain-Python mirrors of the rank/select acceleration state, built
        # lazily on the first scalar operation: ``bisect`` on a list and list
        # indexing beat their numpy scalar counterparts by an order of
        # magnitude in the hot paths, but a Python int list costs ~5x the
        # numpy words, so vectors that are only ever scanned or persisted
        # never pay for it (derived state — not persisted, not charged by
        # ``size_in_bits``).
        self._cum_list: Optional[List[int]] = None
        self._word_list: Optional[List[int]] = None
        # Select directory: positions of all set bits, as a numpy array (for
        # batch kernels) plus a plain list (for scalar select1).  Lazy for
        # the same reason as the mirrors.
        self._ones_np: Optional[np.ndarray] = None
        self._ones_list: Optional[List[int]] = None

    def _mirrors(self) -> "List[int]":
        """Materialise (once) and return the plain-Python word mirror."""
        if self._word_list is None:
            counts = _popcount_words(self._words)
            self._cum_list = np.concatenate(
                ([0], np.cumsum(counts, dtype=np.int64))).tolist()
            self._word_list = self._words.tolist()
        return self._word_list

    def ones_positions(self) -> np.ndarray:
        """Positions of every set bit, as an ``int64`` array (cached).

        This is the select-1 directory: ``ones_positions()[k] == select1(k)``.
        Materialising it is one vectorised pass over the words
        (``np.unpackbits`` + ``flatnonzero``); afterwards scalar ``select1``
        is a list index and batch Elias-Fano decoding is pure numpy.
        """
        if self._ones_np is None:
            if self._words.size == 0:
                self._ones_np = np.zeros(0, dtype=np.int64)
            else:
                bits = np.unpackbits(self._words.view(np.uint8),
                                     bitorder="little")
                self._ones_np = np.flatnonzero(
                    bits[:self._num_bits]).astype(np.int64)
            if self._num_ones is None:
                self._num_ones = int(self._ones_np.size)
        return self._ones_np

    def _ones(self) -> "List[int]":
        """Materialise (once) and return the select directory as a list."""
        if self._ones_list is None:
            self._ones_list = self.ones_positions().tolist()
        return self._ones_list

    # ------------------------------------------------------------------ #
    # Construction helpers.
    # ------------------------------------------------------------------ #

    @classmethod
    def from_bits(cls, bits: Sequence[int]) -> "BitVector":
        """Build from an iterable of 0/1 values."""
        bits = list(bits)
        builder = BitVectorBuilder(len(bits))
        builder.set_many([i for i, b in enumerate(bits) if b])
        return builder.build()

    @classmethod
    def from_positions(cls, num_bits: int, positions: Iterable[int]) -> "BitVector":
        """Build a vector of ``num_bits`` bits with 1s at ``positions``."""
        builder = BitVectorBuilder(num_bits)
        builder.set_many(positions)
        return builder.build()

    # ------------------------------------------------------------------ #
    # Basic accessors.
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._num_bits

    @property
    def num_ones(self) -> int:
        """Total number of set bits (computed lazily, then cached)."""
        if self._num_ones is None:
            self._num_ones = int(_popcount_words(self._words).sum())
        return self._num_ones

    @property
    def num_zeros(self) -> int:
        """Total number of unset bits."""
        return self._num_bits - self.num_ones

    def get(self, position: int) -> bool:
        """Return the bit at ``position``."""
        if not 0 <= position < self._num_bits:
            raise IndexError(f"bit {position} out of range [0, {self._num_bits})")
        words = self._word_list
        if words is None:
            words = self._mirrors()
        return bool((words[position >> 6] >> (position & 63)) & 1)

    def __getitem__(self, position: int) -> bool:
        return self.get(position)

    def to_list(self) -> List[int]:
        """Decode all bits into a list of 0/1 integers."""
        return [1 if self.get(i) else 0 for i in range(self._num_bits)]

    # ------------------------------------------------------------------ #
    # Rank / select.
    # ------------------------------------------------------------------ #

    def rank1(self, position: int) -> int:
        """Number of 1 bits in ``[0, position)``."""
        if not 0 <= position <= self._num_bits:
            raise IndexError(f"rank position {position} out of range")
        words = self._word_list
        if words is None:
            words = self._mirrors()
        word_index = position >> 6
        offset = position & 63
        rank = self._cum_list[word_index]
        if offset:
            word = words[word_index] & ((1 << offset) - 1)
            rank += bin(word).count("1")
        return rank

    def rank0(self, position: int) -> int:
        """Number of 0 bits in ``[0, position)``."""
        return position - self.rank1(position)

    def select1(self, k: int) -> int:
        """Position of the ``k``-th (0-based) set bit.

        A list index into the lazily-built positions directory — O(1) after
        the first call, which is what makes Elias-Fano ``access`` cheap.
        """
        ones = self._ones_list
        if ones is None:
            ones = self._ones()
        if not 0 <= k < len(ones):
            raise IndexError(f"select1({k}) out of range, only {len(ones)} ones")
        return ones[k]

    def select1_batch(self, ks: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`select1` over an array of ranks."""
        ones = self.ones_positions()
        return ones[ks]

    def select0(self, k: int) -> int:
        """Position of the ``k``-th (0-based) unset bit."""
        if not 0 <= k < self.num_zeros:
            raise IndexError(f"select0({k}) out of range, only {self.num_zeros} zeros")
        # Cumulative zero counts per word are 64*i - cum_ones[i]; binary search.
        words = self._word_list
        if words is None:
            words = self._mirrors()
        cum = self._cum_list
        lo, hi = 0, self._words.size
        while lo < hi:
            mid = (lo + hi) // 2
            zeros_before = (mid << 6) - cum[mid]
            if zeros_before <= k:
                lo = mid + 1
            else:
                hi = mid
        word_index = lo - 1
        remaining = k - ((word_index << 6) - cum[word_index])
        word = ~words[word_index] & ((1 << 64) - 1)
        # Bits beyond num_bits in the last word are zero in the stored word and
        # hence 1 in the complement; they are never reachable because k is
        # bounded by num_zeros counted on valid bits only when the tail bits
        # are zero, so clamp explicitly.
        position = (word_index << 6) + _select_in_word(word, remaining)
        if position >= self._num_bits:
            raise IndexError(f"select0({k}) refers to a padding bit")
        return position

    def successor1(self, position: int) -> Optional[int]:
        """Position of the first set bit at or after ``position`` (or ``None``)."""
        if position >= self._num_bits:
            return None
        rank = self.rank1(position)
        if rank >= self.num_ones:
            return None
        return self.select1(rank)

    def iter_ones(self) -> Iterator[int]:
        """Yield the positions of all set bits in increasing order."""
        for word_index in range(self._words.size):
            word = int(self._words[word_index])
            base = word_index << 6
            while word:
                lsb = word & -word
                yield base + lsb.bit_length() - 1
                word ^= lsb

    # ------------------------------------------------------------------ #
    # Persistence.
    # ------------------------------------------------------------------ #

    def save(self, path) -> int:
        """Persist this bit vector to ``path``; returns the bytes written."""
        from repro.storage import save_object
        return save_object(self, path)

    @classmethod
    def load(cls, path) -> "BitVector":
        """Load a bit vector saved with :meth:`save`.

        The rank acceleration state is rebuilt directly from the stored
        words; the payload itself is never re-encoded.
        """
        from repro.storage import load_object
        return load_object(path, expected_type=cls)

    # ------------------------------------------------------------------ #
    # Space accounting.
    # ------------------------------------------------------------------ #

    def size_in_bits(self) -> int:
        """Raw payload bits plus rank samples every 512 bits."""
        payload = self._words.size * _WORD_BITS
        samples = ((self._num_bits // _RANK_SAMPLE_BITS) + 1) * _WORD_BITS
        return payload + samples

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BitVector(num_bits={self._num_bits}, num_ones={self.num_ones})"
