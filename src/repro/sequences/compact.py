"""Fixed-width bit packing ("Compact" in the paper).

Every element is stored with ``ceil(log2(max_value + 1))`` bits.  Random
access needs only a couple of shift/mask operations, which is why the paper
reports it as the fastest — but least space-efficient — representation.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

import numpy as np

from repro.errors import EncodingError
from repro.sequences.base import EncodedSequence

_WORD_BITS = 64


class CompactVector(EncodedSequence):
    """Sequence of non-negative integers packed at a fixed bit width."""

    requires_monotone = False
    name = "compact"

    __slots__ = ("_words", "_width", "_size", "_word_list")

    def __init__(self, words: np.ndarray, width: int, size: int):
        self._words = words
        self._width = width
        self._size = size
        # Plain-Python mirror of the packed words, built lazily on the first
        # scalar ``access``: it avoids boxing a numpy scalar per call in the
        # join hot paths, but costs ~5x the numpy words, so vectors that are
        # only scanned (vectorised) or persisted never pay for it (derived
        # state — not persisted, not charged by ``size_in_bits``).
        self._word_list: Optional[list] = None

    # ------------------------------------------------------------------ #
    # Construction.
    # ------------------------------------------------------------------ #

    @classmethod
    def from_values(cls, values: Sequence[int], width: Optional[int] = None) -> "CompactVector":
        """Encode ``values``; ``width`` defaults to the minimum usable width."""
        array = np.asarray(values, dtype=np.int64)
        if array.size and int(array.min()) < 0:
            raise EncodingError("CompactVector cannot encode negative values")
        max_value = int(array.max()) if array.size else 0
        min_width = max(1, max_value.bit_length())
        if width is None:
            width = min_width
        elif width < min_width:
            raise EncodingError(
                f"width {width} too small for maximum value {max_value}"
            )
        if width > 64:
            raise EncodingError("CompactVector supports widths up to 64 bits")

        size = int(array.size)
        num_words = (size * width + _WORD_BITS - 1) // _WORD_BITS + 1
        words = np.zeros(num_words, dtype=np.uint64)
        if size:
            unsigned = array.astype(np.uint64)
            bit_positions = np.arange(size, dtype=np.uint64) * np.uint64(width)
            word_index = (bit_positions >> np.uint64(6)).astype(np.int64)
            offsets = bit_positions & np.uint64(63)
            low_parts = unsigned << offsets
            np.bitwise_or.at(words, word_index, low_parts)
            # Values spilling over the word boundary contribute their top bits
            # to the next word.
            spill = offsets > np.uint64(64 - width)
            if np.any(spill):
                shift = (np.uint64(64) - offsets[spill])
                high_parts = unsigned[spill] >> shift
                np.bitwise_or.at(words, word_index[spill] + 1, high_parts)
        return cls(words, width, size)

    # ------------------------------------------------------------------ #
    # EncodedSequence interface.
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._size

    @property
    def width(self) -> int:
        """Number of bits used per element."""
        return self._width

    def access(self, i: int) -> int:
        if not 0 <= i < self._size:
            raise IndexError(f"index {i} out of range [0, {self._size})")
        words = self._word_list
        if words is None:
            words = self._word_list = self._words.tolist()
        bit_position = i * self._width
        word_index = bit_position >> 6
        offset = bit_position & 63
        mask = (1 << self._width) - 1
        low = words[word_index] >> offset
        if offset + self._width > _WORD_BITS:
            high = words[word_index + 1] << (_WORD_BITS - offset)
            low |= high
        return low & mask

    def scan(self, begin: int = 0, end: Optional[int] = None) -> Iterator[int]:
        if end is None:
            end = self._size
        if begin < 0 or end > self._size or begin > end:
            raise IndexError(f"invalid range [{begin}, {end}) for length {self._size}")
        decoded = self.decode_range(begin, end)
        return iter(decoded.tolist())

    def decode_range(self, begin: int, end: int) -> np.ndarray:
        """Vectorised decoding of ``[begin, end)`` into a numpy array."""
        count = end - begin
        if count <= 0:
            return np.zeros(0, dtype=np.int64)
        width = np.uint64(self._width)
        indices = np.arange(begin, end, dtype=np.uint64)
        bit_positions = indices * width
        word_index = (bit_positions >> np.uint64(6)).astype(np.int64)
        offsets = bit_positions & np.uint64(63)
        mask = np.uint64((1 << self._width) - 1)
        low = self._words[word_index] >> offsets
        needs_high = offsets > np.uint64(64 - self._width)
        if np.any(needs_high):
            high = np.zeros_like(low)
            high[needs_high] = self._words[word_index[needs_high] + 1] << (
                np.uint64(64) - offsets[needs_high]
            )
            low = low | high
        return (low & mask).astype(np.int64)

    def decode_block(self, begin: int = 0,
                     end: Optional[int] = None) -> np.ndarray:
        """Vectorised decode of ``[begin, end)`` (alias of :meth:`decode_range`)."""
        if end is None:
            end = self._size
        if begin < 0 or end > self._size or begin > end:
            raise IndexError(f"invalid range [{begin}, {end}) for length {self._size}")
        return self.decode_range(begin, end)

    def to_numpy(self) -> np.ndarray:
        """Decode the full sequence into a numpy array."""
        return self.decode_range(0, self._size)

    def size_in_bits(self) -> int:
        # Payload plus the two 64-bit header fields (width and size) a
        # serialised representation would carry.
        return self._size * self._width + 2 * _WORD_BITS

    @classmethod
    def empty(cls) -> "CompactVector":
        """An empty vector (useful as a placeholder level)."""
        return cls.from_values([])
