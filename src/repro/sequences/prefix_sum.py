"""Range-aware views over encoded sequences.

Trie node levels are *not* globally monotone: only the sub-sequences of
sibling nodes are sorted.  The paper (Section 3.1) encodes them with the
Elias-Fano family anyway by adding to every node ID the prefix sum of the
previously coded sub-sequence, which makes the whole level monotone.  The
price is that the decoder must subtract the base of the enclosing sibling
range, which is always known to the ``select`` algorithm.

Two classes implement that contract:

* :class:`RangedSequence` — trivial pass-through for codecs that store the
  original values (Compact, VByte);
* :class:`PrefixSummedSequence` — stores the transformed monotone sequence in
  a monotone codec (EF / PEF) and undoes the transform on access.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.errors import EncodingError
from repro.sequences.base import NOT_FOUND, EncodedSequence


class RangedSequence:
    """A view over an :class:`EncodedSequence` addressed by sibling ranges.

    ``begin``/``end`` arguments always delimit one sibling range, i.e. a range
    whose boundaries coincide with the trie pointers used at construction
    time.
    """

    def __init__(self, sequence: EncodedSequence):
        self._sequence = sequence

    @property
    def sequence(self) -> EncodedSequence:
        """The underlying encoded sequence."""
        return self._sequence

    def __len__(self) -> int:
        return len(self._sequence)

    def access_in_range(self, begin: int, end: int, i: int) -> int:
        """Value at absolute position ``i`` inside the sibling range ``[begin, end)``."""
        return self._sequence.access(i)

    def find_in_range(self, begin: int, end: int, value: int) -> int:
        """Absolute position of ``value`` inside ``[begin, end)``, or -1."""
        return self._sequence.find(begin, end, value)

    def next_geq_in_range(self, begin: int, end: int, value: int) -> Tuple[int, int]:
        """``(position, element)`` of the first element >= ``value`` in the
        sibling range ``[begin, end)``; ``(end, -1)`` when none qualifies.

        This is the seek primitive of the worst-case-optimal join cursors; it
        delegates to the codec's ``next_geq`` (Elias-Fano ``select0``, PEF
        partition pruning, or a plain binary search).
        """
        return self._sequence.next_geq(value, begin, end)

    def scan_range(self, begin: int, end: int) -> Iterator[int]:
        """Decode the sibling range ``[begin, end)``."""
        return self._sequence.scan(begin, end)

    def size_in_bits(self) -> int:
        """Space of the underlying representation."""
        return self._sequence.size_in_bits()

    def bits_per_element(self) -> float:
        """Average bits per element of the underlying representation."""
        return self._sequence.bits_per_element()

    def to_list_by_ranges(self, boundaries: Sequence[int]) -> List[int]:
        """Decode the whole level given its range ``boundaries`` (pointers)."""
        values: List[int] = []
        for k in range(len(boundaries) - 1):
            values.extend(self.scan_range(int(boundaries[k]), int(boundaries[k + 1])))
        return values


class PrefixSummedSequence(RangedSequence):
    """Monotone-codec view of a non-monotone level via the prefix-sum transform.

    Given the level values ``v`` and the sibling-range boundaries, the stored
    sequence is ``t[i] = v[i] + base(range of i)`` where ``base`` of a range is
    the transformed value of the last element of the previous range.  ``t`` is
    globally non-decreasing, hence encodable with EF / PEF.
    """

    def __init__(self, sequence: EncodedSequence):
        super().__init__(sequence)

    @classmethod
    def from_values(cls, values: Sequence[int], boundaries: Sequence[int],
                    codec, **codec_kwargs) -> "PrefixSummedSequence":
        """Build by transforming ``values`` (sibling ranges given by ``boundaries``).

        ``codec`` is a monotone-capable codec class exposing ``from_values``.
        ``boundaries`` is the pointer sequence: ``len(boundaries) == num_ranges + 1``
        and ``boundaries[-1] == len(values)``.
        """
        array = np.asarray(values, dtype=np.int64)
        bounds = np.asarray(boundaries, dtype=np.int64)
        if bounds.size == 0 or int(bounds[-1]) != array.size:
            raise EncodingError("boundaries must cover the whole value sequence")
        transformed = np.empty_like(array)
        base = 0
        for k in range(bounds.size - 1):
            begin, end = int(bounds[k]), int(bounds[k + 1])
            if end < begin:
                raise EncodingError("boundaries must be non-decreasing")
            if end == begin:
                continue
            chunk = array[begin:end]
            if np.any(np.diff(chunk) < 0):
                raise EncodingError("each sibling range must be sorted")
            transformed[begin:end] = chunk + base
            base = int(transformed[end - 1])
        encoded = codec.from_values(transformed.tolist(), **codec_kwargs)
        return cls(encoded)

    def _base(self, begin: int) -> int:
        if begin == 0:
            return 0
        return self._sequence.access(begin - 1)

    def access_in_range(self, begin: int, end: int, i: int) -> int:
        if not begin <= i < end:
            raise IndexError(f"position {i} outside sibling range [{begin}, {end})")
        return self._sequence.access(i) - self._base(begin)

    def find_in_range(self, begin: int, end: int, value: int) -> int:
        if begin == end:
            return NOT_FOUND
        return self._sequence.find(begin, end, value + self._base(begin))

    def next_geq_in_range(self, begin: int, end: int, value: int) -> Tuple[int, int]:
        if begin == end:
            return end, -1
        base = self._base(begin)
        position, element = self._sequence.next_geq(value + base, begin, end)
        if position == end:
            return end, -1
        return position, element - base

    def scan_range(self, begin: int, end: int) -> Iterator[int]:
        base = self._base(begin) if end > begin else 0
        for transformed in self._sequence.scan(begin, end):
            yield transformed - base
