"""Range-aware views over encoded sequences.

Trie node levels are *not* globally monotone: only the sub-sequences of
sibling nodes are sorted.  The paper (Section 3.1) encodes them with the
Elias-Fano family anyway by adding to every node ID the prefix sum of the
previously coded sub-sequence, which makes the whole level monotone.  The
price is that the decoder must subtract the base of the enclosing sibling
range, which is always known to the ``select`` algorithm.

Two classes implement that contract:

* :class:`RangedSequence` — trivial pass-through for codecs that store the
  original values (Compact, VByte);
* :class:`PrefixSummedSequence` — stores the transformed monotone sequence in
  a monotone codec (EF / PEF) and undoes the transform on access.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import EncodingError
from repro.sequences.base import NOT_FOUND, EncodedSequence


class RangedSequence:
    """A view over an :class:`EncodedSequence` addressed by sibling ranges.

    ``begin``/``end`` arguments always delimit one sibling range, i.e. a range
    whose boundaries coincide with the trie pointers used at construction
    time.
    """

    #: Number of scalar operations on a still-encoded level before the
    #: decoded mirror is built anyway: one-shot pattern lookups never pay
    #: for a full decode, while join workloads (thousands of seeks per
    #: level) converge to ``searchsorted`` after a negligible warm-up.
    ADAPTIVE_DECODE_THRESHOLD = 64

    def __init__(self, sequence: EncodedSequence):
        self._sequence = sequence
        # Lazily-decoded mirror of the whole stored sequence (the *stored*
        # domain, i.e. transformed values for PrefixSummedSequence).  It is
        # materialised by the first batch operation — or adaptively, once a
        # level has absorbed ``ADAPTIVE_DECODE_THRESHOLD`` scalar probes —
        # and turns every range operation into a numpy slice / searchsorted.
        # Like the bit-vector select directory it is derived acceleration
        # state: never persisted, not charged by ``size_in_bits``, and never
        # built at load time — so mmap-backed loads stay O(1) until a
        # consumer actually shows up.
        self._decoded: Optional[np.ndarray] = None
        self._scalar_ops = 0

    @property
    def sequence(self) -> EncodedSequence:
        """The underlying encoded sequence."""
        return self._sequence

    def __len__(self) -> int:
        return len(self._sequence)

    def _directory(self) -> np.ndarray:
        """Materialise (once) the decoded mirror of the stored sequence."""
        if self._decoded is None:
            self._decoded = self._sequence.decode_block(0, len(self._sequence))
        return self._decoded

    def access_in_range(self, begin: int, end: int, i: int) -> int:
        """Value at absolute position ``i`` inside the sibling range ``[begin, end)``."""
        decoded = self._decoded
        if decoded is None:
            # Adaptive warm-up: one-shot lookups stay on the codec's scalar
            # path; once a level has proven itself seek-heavy the mirror is
            # built and every subsequent probe is an array index.
            self._scalar_ops += 1
            if self._scalar_ops < self.ADAPTIVE_DECODE_THRESHOLD:
                return self._sequence.access(i)
            decoded = self._directory()
        return int(decoded[i])

    def find_in_range(self, begin: int, end: int, value: int) -> int:
        """Absolute position of ``value`` inside ``[begin, end)``, or -1."""
        decoded = self._decoded
        if decoded is None:
            self._scalar_ops += 1
            if self._scalar_ops < self.ADAPTIVE_DECODE_THRESHOLD:
                return self._sequence.find(begin, end, value)
            decoded = self._directory()
        window = decoded[begin:end]
        position = int(window.searchsorted(value))
        if position < end - begin and int(window[position]) == value:
            return begin + position
        return NOT_FOUND

    def next_geq_in_range(self, begin: int, end: int, value: int) -> Tuple[int, int]:
        """``(position, element)`` of the first element >= ``value`` in the
        sibling range ``[begin, end)``; ``(end, -1)`` when none qualifies.

        This is the seek primitive of the worst-case-optimal join cursors; it
        delegates to the codec's ``next_geq`` (Elias-Fano ``select0``, PEF
        partition pruning, or a plain binary search), or to a ``searchsorted``
        on the decoded mirror once a batch operation has materialised it.
        """
        decoded = self._decoded
        if decoded is None:
            self._scalar_ops += 1
            if self._scalar_ops < self.ADAPTIVE_DECODE_THRESHOLD:
                return self._sequence.next_geq(value, begin, end)
            decoded = self._directory()
        window = decoded[begin:end]
        position = int(window.searchsorted(value))
        if position < end - begin:
            return begin + position, int(window[position])
        return end, -1

    def scan_range(self, begin: int, end: int) -> Iterator[int]:
        """Decode the sibling range ``[begin, end)``."""
        return self._sequence.scan(begin, end)

    def decode_block_in_range(self, begin: int, end: int,
                              start: Optional[int] = None) -> np.ndarray:
        """Vectorised decode of ``[start or begin, end)`` within the sibling
        range ``[begin, end)``.

        Equal to ``np.fromiter(scan_range(start, end), np.int64)`` but runs
        on the decoded-mirror directory (materialised on first use) — this is
        what the block cursors and the ``select_values`` fast path ride on.
        ``begin`` must still be the range boundary because the prefix-sum
        transform derives its base from it.
        """
        return self._directory()[(begin if start is None else start):end]

    def size_in_bits(self) -> int:
        """Space of the underlying representation."""
        return self._sequence.size_in_bits()

    def bits_per_element(self) -> float:
        """Average bits per element of the underlying representation."""
        return self._sequence.bits_per_element()

    def to_list_by_ranges(self, boundaries: Sequence[int]) -> List[int]:
        """Decode the whole level given its range ``boundaries`` (pointers)."""
        values: List[int] = []
        for k in range(len(boundaries) - 1):
            values.extend(self.scan_range(int(boundaries[k]), int(boundaries[k + 1])))
        return values


class PrefixSummedSequence(RangedSequence):
    """Monotone-codec view of a non-monotone level via the prefix-sum transform.

    Given the level values ``v`` and the sibling-range boundaries, the stored
    sequence is ``t[i] = v[i] + base(range of i)`` where ``base`` of a range is
    the transformed value of the last element of the previous range.  ``t`` is
    globally non-decreasing, hence encodable with EF / PEF.
    """

    def __init__(self, sequence: EncodedSequence):
        super().__init__(sequence)

    @classmethod
    def from_values(cls, values: Sequence[int], boundaries: Sequence[int],
                    codec, **codec_kwargs) -> "PrefixSummedSequence":
        """Build by transforming ``values`` (sibling ranges given by ``boundaries``).

        ``codec`` is a monotone-capable codec class exposing ``from_values``.
        ``boundaries`` is the pointer sequence: ``len(boundaries) == num_ranges + 1``
        and ``boundaries[-1] == len(values)``.
        """
        array = np.asarray(values, dtype=np.int64)
        bounds = np.asarray(boundaries, dtype=np.int64)
        if bounds.size == 0 or int(bounds[-1]) != array.size:
            raise EncodingError("boundaries must cover the whole value sequence")
        transformed = np.empty_like(array)
        base = 0
        for k in range(bounds.size - 1):
            begin, end = int(bounds[k]), int(bounds[k + 1])
            if end < begin:
                raise EncodingError("boundaries must be non-decreasing")
            if end == begin:
                continue
            chunk = array[begin:end]
            if np.any(np.diff(chunk) < 0):
                raise EncodingError("each sibling range must be sorted")
            transformed[begin:end] = chunk + base
            base = int(transformed[end - 1])
        encoded = codec.from_values(transformed.tolist(), **codec_kwargs)
        return cls(encoded)

    def _base(self, begin: int) -> int:
        if begin == 0:
            return 0
        if self._decoded is not None:
            return int(self._decoded[begin - 1])
        return self._sequence.access(begin - 1)

    def access_in_range(self, begin: int, end: int, i: int) -> int:
        if not begin <= i < end:
            raise IndexError(f"position {i} outside sibling range [{begin}, {end})")
        decoded = self._decoded
        if decoded is not None:
            # Flattened hot path: one array read for the value, one for the
            # base (the join cursors call this once per step).
            if begin == 0:
                return int(decoded[i])
            return int(decoded[i]) - int(decoded[begin - 1])
        return super().access_in_range(begin, end, i) - self._base(begin)

    def find_in_range(self, begin: int, end: int, value: int) -> int:
        if begin == end:
            return NOT_FOUND
        decoded = self._decoded
        if decoded is not None:
            target = value if begin == 0 else value + int(decoded[begin - 1])
            window = decoded[begin:end]
            position = window.searchsorted(target)
            if position < end - begin and window[position] == target:
                return begin + int(position)
            return NOT_FOUND
        return super().find_in_range(begin, end, value + self._base(begin))

    def next_geq_in_range(self, begin: int, end: int, value: int) -> Tuple[int, int]:
        if begin == end:
            return end, -1
        decoded = self._decoded
        if decoded is not None:
            base = 0 if begin == 0 else int(decoded[begin - 1])
            window = decoded[begin:end]
            position = window.searchsorted(value + base)
            if position < end - begin:
                return begin + int(position), int(window[position]) - base
            return end, -1
        base = self._base(begin)
        position, element = super().next_geq_in_range(begin, end, value + base)
        if position == end:
            return end, -1
        return position, element - base

    def scan_range(self, begin: int, end: int) -> Iterator[int]:
        base = self._base(begin) if end > begin else 0
        for transformed in self._sequence.scan(begin, end):
            yield transformed - base

    def decode_block_in_range(self, begin: int, end: int,
                              start: Optional[int] = None) -> np.ndarray:
        if start is None:
            start = begin
        if end <= start:
            return np.zeros(0, dtype=np.int64)
        return self._directory()[start:end] - self._base(begin)
