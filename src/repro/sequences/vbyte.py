"""Variable-Byte coding with a blocked layout (paper's "VByte+SIMD" stand-in).

Every integer is split into 7-bit chunks; each byte carries 7 payload bits
plus a continuation flag, exactly as in the paper's description.  The stream
is organised in blocks of 128 integers with per-block byte offsets and, for
monotone inputs, per-block prefix sums so that ``access`` and ``find`` only
decode one block.  The original system decodes blocks with SIMD instructions
(Plaisance et al.); the Python port decodes a block at a time with numpy, which
preserves the codec's qualitative profile: fast sequential decoding, expensive
point operations, byte-aligned (hence less effective) compression.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.errors import EncodingError
from repro.sequences.base import NOT_FOUND, EncodedSequence

_WORD_BITS = 64

#: Number of integers per block.
DEFAULT_BLOCK_SIZE = 128


def encode_vbyte_stream(values: Sequence[int]) -> bytearray:
    """Encode ``values`` into a VByte stream (little-endian 7-bit groups).

    The continuation bit convention follows the paper: the control bit is set
    on the *last* byte of every integer.
    """
    out = bytearray()
    for value in values:
        if value < 0:
            raise EncodingError("VByte cannot encode negative values")
        while True:
            byte = value & 0x7F
            value >>= 7
            if value == 0:
                out.append(byte | 0x80)
                break
            out.append(byte)
    return out


def decode_vbyte_stream(data: bytes, count: int, offset: int = 0) -> List[int]:
    """Decode ``count`` integers from ``data`` starting at ``offset``."""
    values: List[int] = []
    current = 0
    shift = 0
    position = offset
    while len(values) < count:
        if position >= len(data):
            raise EncodingError("truncated VByte stream")
        byte = data[position]
        position += 1
        current |= (byte & 0x7F) << shift
        if byte & 0x80:
            values.append(current)
            current = 0
            shift = 0
        else:
            shift += 7
    return values


class VByte(EncodedSequence):
    """Blocked Variable-Byte sequence.

    For monotone inputs the stream stores d-gaps and keeps per-block prefix
    sums; for general inputs it stores raw values.  Either way ``find`` works
    on sorted ranges, as required by the trie pattern matching algorithms.
    """

    requires_monotone = False
    name = "vbyte"

    __slots__ = ("_data", "_block_offsets", "_block_firsts", "_size",
                 "_block_size", "_gapped")

    def __init__(self, data: bytes, block_offsets: np.ndarray, block_firsts: np.ndarray,
                 size: int, block_size: int, gapped: bool):
        self._data = data
        self._block_offsets = block_offsets
        self._block_firsts = block_firsts
        self._size = size
        self._block_size = block_size
        self._gapped = gapped

    # ------------------------------------------------------------------ #
    # Construction.
    # ------------------------------------------------------------------ #

    @classmethod
    def from_values(cls, values: Sequence[int],
                    block_size: int = DEFAULT_BLOCK_SIZE) -> "VByte":
        """Encode ``values``; d-gaps are used automatically for monotone input."""
        if block_size <= 0:
            raise EncodingError("block size must be positive")
        array = np.asarray(values, dtype=np.int64)
        size = int(array.size)
        if size and int(array.min()) < 0:
            raise EncodingError("VByte cannot encode negative values")
        gapped = bool(size) and bool(np.all(np.diff(array) >= 0)) if size > 1 else bool(size)

        data = bytearray()
        block_offsets = [0]
        block_firsts = []
        for start in range(0, size, block_size):
            chunk = array[start:start + block_size]
            block_firsts.append(int(chunk[0]))
            if gapped:
                encoded_values = np.diff(chunk, prepend=chunk[0]).tolist()
                encoded_values[0] = 0  # first element stored in block_firsts
            else:
                encoded_values = chunk.tolist()
            data.extend(encode_vbyte_stream(encoded_values))
            block_offsets.append(len(data))
        return cls(bytes(data),
                   np.asarray(block_offsets, dtype=np.int64),
                   np.asarray(block_firsts, dtype=np.int64),
                   size, block_size, gapped)

    # ------------------------------------------------------------------ #
    # Block decoding.
    # ------------------------------------------------------------------ #

    def _decode_block(self, block_index: int) -> List[int]:
        start = block_index * self._block_size
        length = min(self._block_size, self._size - start)
        offset = int(self._block_offsets[block_index])
        raw = decode_vbyte_stream(self._data, length, offset)
        if not self._gapped:
            return raw
        first = int(self._block_firsts[block_index])
        values = [first]
        current = first
        for gap in raw[1:]:
            current += gap
            values.append(current)
        return values

    # ------------------------------------------------------------------ #
    # EncodedSequence interface.
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._size

    @property
    def is_gapped(self) -> bool:
        """Whether the payload stores d-gaps (monotone input) or raw values."""
        return self._gapped

    def access(self, i: int) -> int:
        if not 0 <= i < self._size:
            raise IndexError(f"index {i} out of range [0, {self._size})")
        block_index, offset = divmod(i, self._block_size)
        return self._decode_block(block_index)[offset]

    def find(self, begin: int, end: int, value: int) -> int:
        if begin < 0 or end > self._size or begin > end:
            raise IndexError(f"invalid range [{begin}, {end}) for length {self._size}")
        if begin == end:
            return NOT_FOUND
        first_block = begin // self._block_size
        last_block = (end - 1) // self._block_size
        for block_index in range(first_block, last_block + 1):
            block_start = block_index * self._block_size
            decoded = self._decode_block(block_index)
            lo = max(begin, block_start) - block_start
            hi = min(end, block_start + len(decoded)) - block_start
            for position in range(lo, hi):
                element = decoded[position]
                if element == value:
                    return block_start + position
                if element > value:
                    return NOT_FOUND
        return NOT_FOUND

    def scan(self, begin: int = 0, end: Optional[int] = None) -> Iterator[int]:
        if end is None:
            end = self._size
        if begin < 0 or end > self._size or begin > end:
            raise IndexError(f"invalid range [{begin}, {end}) for length {self._size}")
        if begin == end:
            return iter(())
        return self._scan_blocks(begin, end)

    def _scan_blocks(self, begin: int, end: int) -> Iterator[int]:
        first_block = begin // self._block_size
        last_block = (end - 1) // self._block_size
        for block_index in range(first_block, last_block + 1):
            block_start = block_index * self._block_size
            decoded = self._decode_block(block_index)
            lo = max(begin, block_start) - block_start
            hi = min(end, block_start + len(decoded)) - block_start
            for position in range(lo, hi):
                yield decoded[position]

    def decode_block(self, begin: int = 0,
                     end: Optional[int] = None) -> np.ndarray:
        """Decode ``[begin, end)`` one stored block at a time into int64."""
        if end is None:
            end = self._size
        if begin < 0 or end > self._size or begin > end:
            raise IndexError(f"invalid range [{begin}, {end}) for length {self._size}")
        if begin == end:
            return np.zeros(0, dtype=np.int64)
        first_block = begin // self._block_size
        last_block = (end - 1) // self._block_size
        chunks: List[np.ndarray] = []
        for block_index in range(first_block, last_block + 1):
            block_start = block_index * self._block_size
            decoded = self._decode_block(block_index)
            lo = max(begin, block_start) - block_start
            hi = min(end, block_start + len(decoded)) - block_start
            chunks.append(np.asarray(decoded[lo:hi], dtype=np.int64))
        if len(chunks) == 1:
            return chunks[0]
        return np.concatenate(chunks)

    def size_in_bits(self) -> int:
        payload = len(self._data) * 8
        # Per-block skip data: byte offset + first value, 32 bits each is what
        # a practical implementation stores.
        skip = (len(self._block_offsets) + len(self._block_firsts)) * 32
        return payload + skip + 2 * _WORD_BITS
