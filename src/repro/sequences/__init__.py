"""Compressed integer-sequence codecs.

This subpackage is the succinct substrate of the library.  Every codec
implements the :class:`repro.sequences.base.EncodedSequence` interface, which
mirrors the operations the paper's ``select`` algorithm needs (Fig. 2):

* ``access(i)`` — random access to the ``i``-th element,
* ``find(begin, end, x)`` — position of ``x`` inside the sorted range
  ``[begin, end)`` or ``-1``,
* ``scan(begin, end)`` — sequential decoding of a range,
* ``iterator_at(i)`` — a forward iterator positioned at ``i``,
* ``size_in_bits()`` — the space accounted for in the paper's bits/triple
  figures.

Available codecs (paper Section 3.1, "Representation"):

========================  ==============================================
``CompactVector``         fixed-width bit packing ("Compact")
``EliasFano``             Elias-Fano for monotone sequences ("EF")
``PartitionedEliasFano``  partitioned Elias-Fano ("PEF")
``VByte``                 byte-aligned variable-length coding ("VByte")
========================  ==============================================

Non-monotone trie levels can still be encoded with the Elias-Fano family via
:class:`repro.sequences.prefix_sum.PrefixSummedSequence`, which applies the
per-range prefix-sum transform described in the paper.
"""

from repro.sequences.base import EncodedSequence, SequenceIterator
from repro.sequences.bitvector import BitVector, BitVectorBuilder
from repro.sequences.compact import CompactVector
from repro.sequences.elias_fano import EliasFano
from repro.sequences.partitioned_elias_fano import PartitionedEliasFano
from repro.sequences.vbyte import VByte
from repro.sequences.prefix_sum import PrefixSummedSequence, RangedSequence
from repro.sequences.factory import (
    CODECS,
    MONOTONE_CODECS,
    encode_sequence,
    make_ranged_sequence,
)

__all__ = [
    "EncodedSequence",
    "SequenceIterator",
    "BitVector",
    "BitVectorBuilder",
    "CompactVector",
    "EliasFano",
    "PartitionedEliasFano",
    "VByte",
    "PrefixSummedSequence",
    "RangedSequence",
    "CODECS",
    "MONOTONE_CODECS",
    "encode_sequence",
    "make_ranged_sequence",
]
