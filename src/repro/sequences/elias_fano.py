"""Elias-Fano encoding of monotone non-decreasing integer sequences.

A sequence ``S[0, n)`` drawn from a universe ``u`` is split into low parts of
``l = max(0, floor(log2(u / n)))`` bits stored verbatim, and high parts stored
as a unary-coded bit vector of ``n + (u >> l) + 1`` bits.  Random access costs
one ``select1`` on the high bits; ``next_geq`` (the primitive behind ``find``)
costs one ``select0`` plus a short scan.  Total space is at most
``n * ceil(log2(u / n)) + 2n`` bits, as quoted in the paper.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.errors import EncodingError
from repro.sequences.base import NOT_FOUND, EncodedSequence
from repro.sequences.bitvector import BitVector
from repro.sequences.compact import CompactVector

_WORD_BITS = 64


class EliasFano(EncodedSequence):
    """Elias-Fano representation of a monotone non-decreasing sequence."""

    requires_monotone = True
    name = "ef"

    __slots__ = ("_low", "_high", "_size", "_universe", "_low_bits")

    def __init__(self, low: Optional[CompactVector], high: BitVector, size: int,
                 universe: int, low_bits: int):
        self._low = low
        self._high = high
        self._size = size
        self._universe = universe
        self._low_bits = low_bits

    # ------------------------------------------------------------------ #
    # Construction.
    # ------------------------------------------------------------------ #

    @classmethod
    def from_values(cls, values: Sequence[int], universe: Optional[int] = None) -> "EliasFano":
        """Encode a monotone non-decreasing sequence of non-negative ints."""
        array = np.asarray(values, dtype=np.int64)
        size = int(array.size)
        if size == 0:
            empty_high = BitVector.from_positions(1, [])
            return cls(None, empty_high, 0, 0, 0)
        if int(array.min()) < 0:
            raise EncodingError("Elias-Fano cannot encode negative values")
        if np.any(np.diff(array) < 0):
            raise EncodingError("Elias-Fano requires a monotone non-decreasing sequence")
        last = int(array[-1])
        if universe is None:
            universe = last + 1
        elif universe <= last:
            raise EncodingError(f"universe {universe} not larger than maximum value {last}")

        low_bits = max(0, (universe // size).bit_length() - 1)
        unsigned = array.astype(np.uint64)
        if low_bits:
            low_values = unsigned & np.uint64((1 << low_bits) - 1)
            low = CompactVector.from_values(low_values.astype(np.int64), width=low_bits)
        else:
            low = None
        high_values = (unsigned >> np.uint64(low_bits)).astype(np.int64)
        positions = high_values + np.arange(size, dtype=np.int64)
        num_high_bits = size + (universe >> low_bits) + 1
        high = BitVector.from_positions(int(num_high_bits), positions)
        return cls(low, high, size, universe, low_bits)

    # ------------------------------------------------------------------ #
    # EncodedSequence interface.
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._size

    @property
    def universe(self) -> int:
        """Exclusive upper bound on the encoded values."""
        return self._universe

    @property
    def low_bits(self) -> int:
        """Number of bits stored verbatim per element."""
        return self._low_bits

    def access(self, i: int) -> int:
        if not 0 <= i < self._size:
            raise IndexError(f"index {i} out of range [0, {self._size})")
        high = self._high.select1(i) - i
        low = self._low.access(i) if self._low is not None else 0
        return (high << self._low_bits) | low

    def size_in_bits(self) -> int:
        low_bits = self._low.size_in_bits() if self._low is not None else 0
        return low_bits + self._high.size_in_bits() + 2 * _WORD_BITS

    def decode_block(self, begin: int = 0,
                     end: Optional[int] = None) -> np.ndarray:
        """Vectorised decode of ``[begin, end)``.

        The high parts fall straight out of the bit vector's cached select
        directory (``ones_positions()[i] - i``); the low parts use the
        fixed-width vectorised decode.  No per-element Python work at all.
        """
        if end is None:
            end = self._size
        if begin < 0 or end > self._size or begin > end:
            raise IndexError(f"invalid range [{begin}, {end}) for length {self._size}")
        if begin == end:
            return np.zeros(0, dtype=np.int64)
        ones = self._high.ones_positions()
        high = ones[begin:end] - np.arange(begin, end, dtype=np.int64)
        if self._low_bits:
            high = high << self._low_bits
        if self._low is not None:
            return high | self._low.decode_range(begin, end)
        return high

    # ------------------------------------------------------------------ #
    # Elias-Fano specific operations.
    # ------------------------------------------------------------------ #

    def next_geq(self, value: int, begin: int = 0, end: Optional[int] = None) -> Tuple[int, int]:
        """Return ``(position, element)`` of the first element >= ``value``.

        The search is restricted to ``[begin, end)``.  If no such element
        exists, returns ``(end, -1)``.
        """
        if end is None:
            end = self._size
        if self._size == 0 or begin >= end:
            return end, -1
        if value <= self.access(begin):
            return begin, self.access(begin)
        if value > self.access(end - 1):
            return end, -1
        high_value = value >> self._low_bits
        # Candidates with the same high part start after the (high_value-1)-th
        # zero of the high bit vector.
        if high_value == 0:
            position = 0
        else:
            if high_value - 1 >= self._high.num_zeros:
                return end, -1
            position = self._high.select0(high_value - 1) - (high_value - 1)
        position = max(position, begin)
        while position < end:
            element = self.access(position)
            if element >= value:
                return position, element
            position += 1
        return end, -1

    def find(self, begin: int, end: int, value: int) -> int:
        """Position of ``value`` in ``[begin, end)`` or ``-1`` (uses next_geq)."""
        if begin < 0 or end > self._size or begin > end:
            raise IndexError(f"invalid range [{begin}, {end}) for length {self._size}")
        position, element = self.next_geq(value, begin, end)
        if position < end and element == value:
            return position
        return NOT_FOUND

    def scan(self, begin: int = 0, end: Optional[int] = None) -> Iterator[int]:
        if end is None:
            end = self._size
        if begin < 0 or end > self._size or begin > end:
            raise IndexError(f"invalid range [{begin}, {end}) for length {self._size}")
        if begin == end:
            return iter(())
        return self._scan_from(begin, end)

    def _scan_from(self, begin: int, end: int) -> Iterator[int]:
        """Sequentially decode ``[begin, end)`` walking the high bit vector."""
        high_position = self._high.select1(begin)
        index = begin
        while index < end:
            while not self._high.get(high_position):
                high_position += 1
            high = high_position - index
            low = self._low.access(index) if self._low is not None else 0
            yield (high << self._low_bits) | low
            high_position += 1
            index += 1
