"""Triple selection patterns.

A selection pattern fixes zero or more of the three components of a triple and
leaves the rest as wildcards.  The paper enumerates the eight possible kinds:
``SPO``, ``SP?``, ``S??``, ``?PO``, ``?P?``, ``??O``, ``S?O`` and ``???``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Optional, Sequence, Tuple, Union

from repro.errors import PatternError

#: The value used for a wildcard component in tuple form.
WILDCARD = None


class PatternKind(Enum):
    """The eight triple selection pattern shapes of the paper.

    Member names list the bound components: ``SP`` is the paper's ``SP?``,
    ``P`` is ``?P?``, ``ALL_WILDCARDS`` is ``???``, and so on.
    """

    SPO = "spo"
    SP = "sp?"
    S = "s??"
    PO = "?po"
    P = "?p?"
    O = "??o"  # noqa: E741 - paper nomenclature (O = object-bound pattern)
    SO = "s?o"
    ALL_WILDCARDS = "???"

    @property
    def num_wildcards(self) -> int:
        """Number of wildcard components in this pattern shape."""
        return self.value.count("?")

    @property
    def bound_roles(self) -> Tuple[int, ...]:
        """Indices (0=S, 1=P, 2=O) of the specified components."""
        return tuple(i for i, c in enumerate(self.value) if c != "?")

    @classmethod
    def all_kinds(cls) -> Tuple["PatternKind", ...]:
        """All eight kinds, in the order the paper's tables list them."""
        return (cls.SPO, cls.SP, cls.S, cls.ALL_WILDCARDS, cls.SO, cls.PO, cls.O, cls.P)


@dataclass(frozen=True)
class TriplePattern:
    """A triple selection pattern; ``None`` marks a wildcard component."""

    subject: Optional[int] = None
    predicate: Optional[int] = None
    object: Optional[int] = None

    def __post_init__(self):
        for name, value in (("subject", self.subject), ("predicate", self.predicate),
                            ("object", self.object)):
            if value is not None and (not isinstance(value, (int,)) or value < 0):
                raise PatternError(f"{name} must be None or a non-negative int, got {value!r}")

    # ------------------------------------------------------------------ #
    # Construction helpers.
    # ------------------------------------------------------------------ #

    @classmethod
    def from_tuple(cls, pattern: Union["TriplePattern", Sequence[Optional[int]]]
                   ) -> "TriplePattern":
        """Accept either a :class:`TriplePattern` or an ``(s, p, o)`` tuple."""
        if isinstance(pattern, TriplePattern):
            return pattern
        items = tuple(pattern)
        if len(items) != 3:
            raise PatternError(f"pattern must have 3 components, got {len(items)}")
        return cls(*(int(x) if x is not None else None for x in items))

    @classmethod
    def from_triple_with_wildcards(cls, triple: Tuple[int, int, int],
                                   kind: PatternKind) -> "TriplePattern":
        """Mask a concrete triple into the shape ``kind``.

        This is how the paper builds its query workloads: draw real triples
        and replace components with wildcards.
        """
        components = [
            triple[i] if c != "?" else None
            for i, c in enumerate(kind.value)
        ]
        return cls(*components)

    # ------------------------------------------------------------------ #
    # Introspection.
    # ------------------------------------------------------------------ #

    def as_tuple(self) -> Tuple[Optional[int], Optional[int], Optional[int]]:
        """Return the ``(s, p, o)`` tuple with ``None`` wildcards."""
        return (self.subject, self.predicate, self.object)

    def component(self, role: int) -> Optional[int]:
        """Component at ``role`` (0=S, 1=P, 2=O)."""
        return self.as_tuple()[role]

    @property
    def kind(self) -> PatternKind:
        """The shape of this pattern."""
        key = "".join(
            c if value is not None else "?"
            for c, value in zip("spo", self.as_tuple())
        )
        return PatternKind(key)

    @property
    def num_wildcards(self) -> int:
        """Number of wildcard components."""
        return sum(1 for v in self.as_tuple() if v is None)

    def matches(self, triple: Tuple[int, int, int]) -> bool:
        """Whether a concrete triple satisfies the pattern."""
        return all(value is None or value == triple[i]
                   for i, value in enumerate(self.as_tuple()))

    def __str__(self) -> str:
        return "(" + ", ".join("?" if v is None else str(v) for v in self.as_tuple()) + ")"


def reference_select(triples: Iterable[Tuple[int, int, int]],
                     pattern: Union[TriplePattern, Sequence[Optional[int]]]
                     ) -> list:
    """Naive reference implementation of pattern matching (used by tests).

    Scans the whole collection; returned triples are sorted.
    """
    pattern = TriplePattern.from_tuple(pattern)
    return sorted(t for t in triples if pattern.matches(tuple(t)))
