"""Permutations of the (S, P, O) components.

A permutation maps canonical ``(s, p, o)`` triples to the component order a
trie is built on.  The 3T index materialises SPO, POS and OSP; the 2T variants
keep SPO plus either POS (2Tp) or OPS (2To); the baselines use others (PSO for
vertical partitioning, all six for RDF-3X).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.patterns import TriplePattern
from repro.errors import IndexBuildError


@dataclass(frozen=True)
class Permutation:
    """A component order, e.g. POS = ``(1, 2, 0)`` (predicate, object, subject)."""

    name: str
    order: Tuple[int, int, int]

    def __post_init__(self):
        if sorted(self.order) != [0, 1, 2]:
            raise IndexBuildError(f"invalid permutation order {self.order}")

    def apply(self, triple: Tuple[int, int, int]) -> Tuple[int, int, int]:
        """Permute a canonical ``(s, p, o)`` triple into this component order."""
        return (triple[self.order[0]], triple[self.order[1]], triple[self.order[2]])

    def invert(self, permuted: Tuple[int, int, int]) -> Tuple[int, int, int]:
        """Map a permuted triple back to canonical ``(s, p, o)`` order."""
        canonical = [0, 0, 0]
        for position, role in enumerate(self.order):
            canonical[role] = permuted[position]
        return tuple(canonical)

    def apply_pattern(self, pattern: TriplePattern
                      ) -> Tuple[Optional[int], Optional[int], Optional[int]]:
        """Permute a pattern's components (wildcards stay wildcards)."""
        components = pattern.as_tuple()
        return (components[self.order[0]], components[self.order[1]],
                components[self.order[2]])

    @property
    def roles(self) -> Tuple[int, int, int]:
        """Alias of :attr:`order` for readability."""
        return self.order


#: All six permutations, keyed by lowercase name.
PERMUTATIONS: Dict[str, Permutation] = {
    "spo": Permutation("spo", (0, 1, 2)),
    "sop": Permutation("sop", (0, 2, 1)),
    "pso": Permutation("pso", (1, 0, 2)),
    "pos": Permutation("pos", (1, 2, 0)),
    "osp": Permutation("osp", (2, 0, 1)),
    "ops": Permutation("ops", (2, 1, 0)),
}


def permutation(name: str) -> Permutation:
    """Look up a permutation by name (case insensitive)."""
    try:
        return PERMUTATIONS[name.lower()]
    except KeyError:
        raise IndexBuildError(
            f"unknown permutation {name!r}; available: {sorted(PERMUTATIONS)}"
        ) from None
