"""The two-trie indexes 2Tp and 2To (paper Section 3.3).

Observing that subjects have very few predicate children, the paper pattern
matches ``S?O`` directly on the SPO permutation with the ``enumerate``
algorithm (Fig. 5), which makes the OSP permutation unnecessary.  Five of the
eight patterns are then solved by SPO alone; a second permutation covers two
more, and the final pattern falls back to the ``inverted`` algorithm:

* **2Tp** (predicate-based) keeps **POS**: ``?PO`` and ``?P?`` are select
  queries on POS, while ``??O`` is answered by probing the children of every
  predicate for the object (``|P|`` find operations).
* **2To** (object-based) keeps **OPS**: ``?PO`` and ``??O`` are select queries
  on OPS, while ``?P?`` walks the auxiliary two-level ``PS`` structure (all
  subjects of a predicate) and pattern matches ``s p ?`` on SPO for each.

2Tp is the configuration the paper elects for the state-of-the-art comparison
(Tables 5 and 6) because POS is cheaper to store than OPS.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Optional, Tuple

from repro.core.base import PatternLike, TripleIndex
from repro.core.index_3t import (build_trie_cursor, plan_trie_cursor,
                                 trie_value_block)
from repro.core.pairs import PairStructure
from repro.core.patterns import PatternKind, TriplePattern
from repro.core.permutations import PERMUTATIONS
from repro.core.trie import PermutationTrie
from repro.errors import IndexBuildError, PatternError
from repro.rdf.triples import OBJECT, PREDICATE, SUBJECT


class TwoTrieIndex(TripleIndex):
    """2T: SPO plus one additional permutation (POS for 2Tp, OPS for 2To)."""

    def __init__(self, spo: PermutationTrie, second_trie: PermutationTrie,
                 variant: str, ps_structure: Optional[PairStructure] = None):
        if variant not in ("p", "o"):
            raise IndexBuildError("variant must be 'p' (2Tp) or 'o' (2To)")
        expected = "pos" if variant == "p" else "ops"
        if second_trie.permutation_name != expected:
            raise IndexBuildError(
                f"2T{variant} requires the {expected.upper()} permutation, "
                f"got {second_trie.permutation_name.upper()}")
        if variant == "o" and ps_structure is None:
            raise IndexBuildError("2To requires the auxiliary PS structure")
        self._spo = spo
        self._second = second_trie
        self._variant = variant
        self._ps = ps_structure
        # Memoised seek_cursor decisions, keyed by (bound roles, role): the
        # plan depends only on the bound *shape*, never on the values.
        self._cursor_plans: Dict[Tuple[frozenset, int],
                                 Optional[Tuple[str, bool]]] = {}

    # ------------------------------------------------------------------ #
    # Properties.
    # ------------------------------------------------------------------ #

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"2t{self._variant}"

    @property
    def variant(self) -> str:
        """``"p"`` for 2Tp, ``"o"`` for 2To."""
        return self._variant

    @property
    def num_triples(self) -> int:
        return self._spo.num_triples

    def trie(self, name: str) -> PermutationTrie:
        """Access one of the two materialised tries by permutation name."""
        if name == "spo":
            return self._spo
        if name == self._second.permutation_name:
            return self._second
        raise KeyError(f"trie {name!r} is not materialised by 2T{self._variant}")

    @property
    def ps_structure(self) -> Optional[PairStructure]:
        """The auxiliary predicate -> subjects structure (2To only)."""
        return self._ps

    # ------------------------------------------------------------------ #
    # Pattern matching.
    # ------------------------------------------------------------------ #

    def select(self, pattern: PatternLike) -> Iterator[Tuple[int, int, int]]:
        pattern = TriplePattern.from_tuple(pattern)
        kind = pattern.kind
        if kind in (PatternKind.SPO, PatternKind.SP, PatternKind.S,
                    PatternKind.ALL_WILDCARDS):
            yield from self._select_on("spo", pattern)
        elif kind is PatternKind.SO:
            yield from self._enumerate(pattern)
        elif self._variant == "p":
            if kind in (PatternKind.PO, PatternKind.P):
                yield from self._select_on("pos", pattern)
            elif kind is PatternKind.O:
                yield from self._inverted_object(pattern.object)
            else:  # pragma: no cover - all kinds are handled above
                raise PatternError(f"unhandled pattern kind {kind}")
        else:
            if kind in (PatternKind.PO, PatternKind.O):
                yield from self._select_on("ops", pattern)
            elif kind is PatternKind.P:
                yield from self._inverted_predicate(pattern.predicate)
            else:  # pragma: no cover - all kinds are handled above
                raise PatternError(f"unhandled pattern kind {kind}")

    def _select_on(self, trie_name: str, pattern: TriplePattern
                   ) -> Iterator[Tuple[int, int, int]]:
        trie = self._spo if trie_name == "spo" else self._second
        permutation = PERMUTATIONS[trie_name]
        first, second, third = permutation.apply_pattern(pattern)
        for permuted in trie.select(first, second, third):
            yield permutation.invert(permuted)

    def _enumerate(self, pattern: TriplePattern) -> Iterator[Tuple[int, int, int]]:
        """S?O on SPO with the enumerate algorithm (Fig. 5)."""
        for subject, predicate, object_id in self._spo.enumerate_pairs(
                pattern.subject, pattern.object):
            yield (subject, predicate, object_id)

    def _inverted_object(self, object_id: Optional[int]) -> Iterator[Tuple[int, int, int]]:
        """??O on 2Tp: probe every predicate's children for the object on POS."""
        if object_id is None:
            raise PatternError("??O requires a bound object")
        trie = self._second  # POS
        for predicate in range(trie.num_first):
            position = trie.find_child(predicate, object_id)
            if position < 0:
                continue
            child_begin, child_end = trie.pair_children_range(position)
            for subject in trie.scan_third(child_begin, child_end):
                yield (subject, predicate, object_id)

    def _inverted_predicate(self, predicate: Optional[int]) -> Iterator[Tuple[int, int, int]]:
        """?P? on 2To: for every subject of the predicate, match s p ? on SPO."""
        if predicate is None:
            raise PatternError("?P? requires a bound predicate")
        assert self._ps is not None
        for subject in self._ps.values_of(predicate):
            for s, p, o in self._spo.select(subject, predicate, None):
                yield (s, p, o)

    # ------------------------------------------------------------------ #
    # Seekable successor cursors (the wcoj protocol).
    # ------------------------------------------------------------------ #

    def seek_cursor(self, bound: Mapping[int, int], role: int):
        """Sorted, seekable cursor over candidate values of component ``role``.

        Same contract as :meth:`PermutedTrieIndex.seek_cursor`, restricted to
        the two materialised tries; 2To additionally serves ``?P? -> subject``
        successors exactly from its auxiliary PS structure.
        """
        plan_key = (frozenset(bound), role)
        cached = self._cursor_plans.get(plan_key, False)
        if cached is False:
            cached = self._plan_seek_cursor(bound, role)
            self._cursor_plans[plan_key] = cached
        if cached is None:
            return None
        name, exact = cached
        if name == "ps":
            return self._ps.cursor_of(bound[PREDICATE]), exact
        trie = self._spo if name == "spo" else self._second
        return build_trie_cursor(trie, PERMUTATIONS[name].order, bound,
                                 role), exact

    def select_values(self, bound: Mapping[int, int], role: int):
        """Sorted distinct candidate block without cursor construction.

        Mirrors :meth:`PermutedTrieIndex.select_values`: exact trie plans
        decode their sibling range in one vectorised pass; the auxiliary PS
        plan and block-less shapes fall back to the generic cursor path.
        """
        plan_key = (frozenset(bound), role)
        cached = self._cursor_plans.get(plan_key, False)
        if cached is False:
            cached = self._plan_seek_cursor(bound, role)
            self._cursor_plans[plan_key] = cached
        if cached is None:
            return None
        name, exact = cached
        if not exact:
            return None
        if name != "ps":
            trie = self._spo if name == "spo" else self._second
            block = trie_value_block(trie, PERMUTATIONS[name].order, bound,
                                     role)
            if block is not None:
                return block
        return super().select_values(bound, role)

    def _plan_seek_cursor(self, bound: Mapping[int, int], role: int
                          ) -> Optional[Tuple[str, bool]]:
        """The (trie name, exact) decision behind :meth:`seek_cursor`."""
        best = None
        for name, trie in (("spo", self._spo),
                           (self._second.permutation_name, self._second)):
            plan = plan_trie_cursor(PERMUTATIONS[name].order, bound, role)
            if plan is None:
                continue
            score, exact, _level = plan
            if best is None or score > best[0]:
                best = (score, exact, name, trie)
        # The PS structure lists the distinct subjects of a predicate: an
        # exact successor source for the (?s, p, ?o) shape that neither SPO
        # nor OPS can answer without a scan.
        if (self._ps is not None and role == SUBJECT and PREDICATE in bound
                and SUBJECT not in bound and OBJECT not in bound):
            ps_score = (1, 1, 1)
            if best is None or ps_score > best[0]:
                return "ps", True
        if best is None:
            return None
        _score, exact, name, _trie = best
        return name, exact

    # ------------------------------------------------------------------ #
    # Space accounting.
    # ------------------------------------------------------------------ #

    def size_in_bits(self) -> int:
        total = self._spo.size_in_bits() + self._second.size_in_bits()
        if self._ps is not None:
            total += self._ps.size_in_bits()
        return total

    def space_breakdown(self) -> Dict[str, int]:
        breakdown: Dict[str, int] = {}
        for name, trie in (("spo", self._spo),
                           (self._second.permutation_name, self._second)):
            for component, bits in trie.space_breakdown().items():
                breakdown[f"{name}.{component}"] = bits
        if self._ps is not None:
            for component, bits in self._ps.space_breakdown().items():
                breakdown[f"ps.{component}"] = bits
        return breakdown
