"""Two-level pair structures.

The 2To index keeps, for every predicate ``p``, the sorted list of subjects
appearing in triples with predicate ``p`` (the paper's ``PS`` structure); the
range-query machinery and some baselines use the analogous ``PO`` structure.
Both are a degenerate two-level trie: an Elias-Fano pointer sequence over the
first component plus a compressed, range-sorted second-component sequence.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.errors import IndexBuildError
from repro.sequences.base import NOT_FOUND
from repro.sequences.elias_fano import EliasFano
from repro.sequences.factory import make_ranged_sequence


class PairStructure:
    """Maps every first-component ID to the sorted list of its second components."""

    __slots__ = ("_num_first", "_pointers", "_values", "_num_pairs")

    def __init__(self, num_first: int, pointers: EliasFano, values, num_pairs: int):
        self._num_first = num_first
        self._pointers = pointers
        self._values = values
        self._num_pairs = num_pairs

    @classmethod
    def from_pairs(cls, firsts: np.ndarray, seconds: np.ndarray,
                   num_first: Optional[int] = None, codec: str = "pef",
                   **codec_options) -> "PairStructure":
        """Build from parallel arrays of (first, second) pairs (duplicates allowed)."""
        firsts = np.asarray(firsts, dtype=np.int64)
        seconds = np.asarray(seconds, dtype=np.int64)
        if firsts.size != seconds.size:
            raise IndexBuildError("pair columns must have equal length")
        stacked = np.stack([firsts, seconds], axis=1)
        unique = np.unique(stacked, axis=0)
        first_sorted = unique[:, 0]
        second_sorted = unique[:, 1]
        if num_first is None:
            num_first = int(first_sorted.max()) + 1 if first_sorted.size else 1
        boundaries = np.searchsorted(first_sorted, np.arange(num_first + 1))
        pointers = EliasFano.from_values(boundaries.tolist())
        values = make_ranged_sequence(second_sorted.tolist(), boundaries.tolist(),
                                      codec, **codec_options)
        return cls(num_first, pointers, values, int(unique.shape[0]))

    # ------------------------------------------------------------------ #
    # Accessors.
    # ------------------------------------------------------------------ #

    @property
    def num_first(self) -> int:
        """Number of first-component IDs covered (dense)."""
        return self._num_first

    @property
    def num_pairs(self) -> int:
        """Number of distinct (first, second) pairs stored."""
        return self._num_pairs

    def range_of(self, first: int) -> Tuple[int, int]:
        """Range ``[begin, end)`` of ``first``'s list in the value sequence."""
        if not 0 <= first < self._num_first:
            return (0, 0)
        return (self._pointers.access(first), self._pointers.access(first + 1))

    def values_of(self, first: int) -> Iterator[int]:
        """Yield the sorted second components associated with ``first``."""
        begin, end = self.range_of(first)
        return self._values.scan_range(begin, end)

    def cursor_of(self, first: int):
        """Seekable cursor over the sorted second components of ``first``."""
        from repro.core.trie import LevelCursor
        begin, end = self.range_of(first)
        return LevelCursor(self._values, begin, end)

    def count_of(self, first: int) -> int:
        """Number of second components associated with ``first``."""
        begin, end = self.range_of(first)
        return end - begin

    def contains(self, first: int, second: int) -> bool:
        """Whether the pair (first, second) is stored."""
        begin, end = self.range_of(first)
        if begin == end:
            return False
        return self._values.find_in_range(begin, end, second) != NOT_FOUND

    # ------------------------------------------------------------------ #
    # Persistence.
    # ------------------------------------------------------------------ #

    def save(self, path) -> int:
        """Persist this pair structure to ``path``; returns bytes written."""
        from repro.storage import save_object
        return save_object(self, path)

    @classmethod
    def load(cls, path) -> "PairStructure":
        """Load a pair structure saved with :meth:`save`."""
        from repro.storage import load_object
        return load_object(path, expected_type=cls)

    # ------------------------------------------------------------------ #
    # Space accounting.
    # ------------------------------------------------------------------ #

    def size_in_bits(self) -> int:
        """Total space in bits."""
        return self._pointers.size_in_bits() + self._values.size_in_bits()

    def space_breakdown(self) -> Dict[str, int]:
        """Space split between pointers and values."""
        return {
            "pointers": self._pointers.size_in_bits(),
            "values": self._values.size_in_bits(),
        }
