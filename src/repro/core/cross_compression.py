"""The cross-compressed index (CC, paper Section 3.2).

The 3T layout stores every triple three times, so the permutations contain
redundant information.  Cross compression exploits the property that the
children of a node ``x`` in the *second* level of trie ``j`` are a subset of
the children of ``x`` in the *first* level of trie ``i`` (with
``j = (i + 2) mod 3``): the larger enclosing children list can act as a code
book.

Following the paper's analysis, only the rewrite that pays off is applied: the
**third level of POS** (subject children of a (predicate, object) pair) is
re-written as positions within the children of the object in the **first level
of OSP** (all subjects co-occurring with that object).  Because objects have
very few subject children on average (< 3 on the paper's datasets), those
positions need only a couple of bits instead of 20+ bits per subject ID.

The price is the ``unmap`` indirection (Fig. 4): every subject returned by a
pattern solved on POS (``?PO`` and ``?P?``) costs one extra random access into
OSP's second level, which the paper measures as a roughly 3x slowdown for
``?PO``.  To keep that access cheap the OSP level-1 node sequence is stored
with the Compact codec, exactly as the paper recommends.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Tuple

import numpy as np

from repro.core.base import PatternLike
from repro.core.index_3t import PermutedTrieIndex
from repro.core.patterns import PatternKind, TriplePattern
from repro.core.permutations import PERMUTATIONS
from repro.core.trie import (
    ArrayCursor,
    FilteredChildrenCursor,
    FunctionCursor,
    PermutationTrie,
)
from repro.errors import IndexBuildError
from repro.sequences.base import NOT_FOUND


def compute_cross_compressed_third_level(pos_first: np.ndarray, pos_second: np.ndarray,
                                         pos_third: np.ndarray) -> np.ndarray:
    """Rewrite POS third-level subjects as ranks within their object's subject list.

    ``pos_first``/``pos_second``/``pos_third`` are the POS-sorted predicate,
    object and subject columns.  For every triple, the stored value becomes the
    rank of the subject among the *distinct* subjects co-occurring with the
    object (i.e. its position among the children of the object in the first
    level of the OSP trie).
    """
    objects = pos_second
    subjects = pos_third
    if objects.size != subjects.size or objects.size != pos_first.size:
        raise IndexBuildError("POS columns must have equal length")
    if objects.size == 0:
        return np.zeros(0, dtype=np.int64)
    # Distinct (object, subject) pairs in sorted order = children lists of the
    # OSP first level.
    pairs = np.unique(np.stack([objects, subjects], axis=1), axis=0)
    pair_objects = pairs[:, 0]
    # Rank of each pair within its object group.
    group_starts = np.searchsorted(pair_objects, pair_objects)
    ranks_within_group = np.arange(pairs.shape[0]) - group_starts
    # Locate each triple's (object, subject) pair with a single searchsorted on
    # a combined key.
    max_subject = int(subjects.max()) + 1
    pair_keys = pair_objects.astype(np.int64) * max_subject + pairs[:, 1]
    triple_keys = objects.astype(np.int64) * max_subject + subjects
    positions = np.searchsorted(pair_keys, triple_keys)
    return ranks_within_group[positions].astype(np.int64)


class CrossCompressedIndex(PermutedTrieIndex):
    """CC: the 3T index with the POS third level cross-compressed through OSP."""

    name = "cc"

    def __init__(self, tries: Dict[str, PermutationTrie]):
        super().__init__(tries)

    # ------------------------------------------------------------------ #
    # unmap (Fig. 4): recover a subject ID from its rank within the children
    # of the object in OSP's first level.
    # ------------------------------------------------------------------ #

    def unmap_subject(self, object_id: int, rank: int) -> int:
        """Recover the subject stored as ``rank`` under ``object_id``."""
        return self._tries["osp"].child_by_rank(object_id, rank)

    def map_subject(self, object_id: int, subject_id: int) -> int:
        """Rank of ``subject_id`` among the subjects of ``object_id`` (the map)."""
        return self._tries["osp"].child_rank(object_id, subject_id)

    # ------------------------------------------------------------------ #
    # Pattern matching: POS-dispatched patterns need the unmap step.
    # ------------------------------------------------------------------ #

    def select(self, pattern: PatternLike) -> Iterator[Tuple[int, int, int]]:
        pattern = TriplePattern.from_tuple(pattern)
        kind = pattern.kind
        if kind in (PatternKind.PO, PatternKind.P):
            yield from self._select_on_pos_unmapping(pattern)
        else:
            yield from super().select(pattern)

    # ------------------------------------------------------------------ #
    # Seekable successor cursors: POS stores ranks in its third level, so the
    # deep POS cursors must translate through the unmap indirection.  The
    # rank sequence under one (predicate, object) pair is strictly increasing
    # and unmap is monotone in the rank, so the translated stream stays
    # sorted and seekable (by binary search over the rank positions).
    # ------------------------------------------------------------------ #

    def _build_trie_cursor(self, name: str, trie: PermutationTrie,
                           bound: Mapping[int, int], role: int):
        order = PERMUTATIONS[name].order
        k = order.index(role)
        if name != "pos" or k == 0:
            return super()._build_trie_cursor(name, trie, bound, role)
        predicate = bound[order[0]]
        if k == 2:
            # Subjects of (predicate, object): unmap each stored rank.
            object_id = bound[order[1]]
            position = trie.find_child(predicate, object_id)
            if position == NOT_FOUND:
                return ArrayCursor([])
            begin, end = trie.pair_children_range(position)
            def subject_at(i: int) -> int:
                return self.unmap_subject(object_id,
                                          trie.third_at(begin, end, i))
            return FunctionCursor(subject_at, begin, end)
        if order[2] in bound:
            # Objects of predicate that have the bound subject: map the
            # subject to its rank under each candidate object, then probe
            # the rank among the pair's stored children.
            subject = bound[order[2]]
            level1_begin, level1_end = trie.children_range(predicate)
            def has_subject(pair_position: int) -> bool:
                object_id = trie.second_at(level1_begin, level1_end,
                                           pair_position)
                rank = self.map_subject(object_id, subject)
                if rank == NOT_FOUND:
                    return False
                begin, end = trie.pair_children_range(pair_position)
                return trie.find_third(begin, end, rank) != NOT_FOUND
            return FilteredChildrenCursor(trie, predicate, has_subject)
        # Level-1 objects are stored verbatim; the default cursor is fine.
        return super()._build_trie_cursor(name, trie, bound, role)

    def _block_from_plan(self, name: str, bound: Mapping[int, int],
                         role: int):
        if name == "pos" and PERMUTATIONS["pos"].order.index(role) == 2:
            # The deep POS level stores subject *ranks*: decoding the raw
            # block would skip the unmap indirection.  Fall back to the
            # generic cursor path, which routes through the FunctionCursor
            # built by :meth:`_build_trie_cursor`.
            return None
        return super()._block_from_plan(name, bound, role)

    def _select_on_pos_unmapping(self, pattern: TriplePattern
                                 ) -> Iterator[Tuple[int, int, int]]:
        trie = self._tries["pos"]
        permutation = PERMUTATIONS["pos"]
        first, second, third = permutation.apply_pattern(pattern)
        if third is not None:
            raise IndexBuildError(
                "patterns binding the subject are never dispatched to the "
                "cross-compressed POS trie")
        for predicate, object_id, rank in trie.select(first, second, None):
            subject = self.unmap_subject(object_id, rank)
            yield (subject, predicate, object_id)
