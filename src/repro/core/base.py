"""Common interface shared by the paper's indexes and the baselines.

Every index — 3T, CC, 2Tp, 2To, HDT-FoQ, TripleBit, vertical partitioning,
RDF-3X-like, BitMat-like — answers triple selection patterns through the same
:class:`TripleIndex` interface, which is what lets the benchmark harness treat
them uniformly (as the paper's evaluation does).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.patterns import TriplePattern

PatternLike = Union[TriplePattern, Sequence[Optional[int]]]


class TripleIndex(ABC):
    """Abstract compressed triple index answering selection patterns."""

    #: Registry name used by the builder and the benchmark harness.
    name: str = "abstract"

    # ------------------------------------------------------------------ #
    # Mandatory interface.
    # ------------------------------------------------------------------ #

    @abstractmethod
    def select(self, pattern: PatternLike) -> Iterator[Tuple[int, int, int]]:
        """Yield every triple matching ``pattern`` in canonical (s, p, o) form."""

    @abstractmethod
    def size_in_bits(self) -> int:
        """Total space of the index payload in bits (dictionary excluded)."""

    @property
    @abstractmethod
    def num_triples(self) -> int:
        """Number of indexed triples."""

    # ------------------------------------------------------------------ #
    # Derived operations.
    # ------------------------------------------------------------------ #

    def count(self, pattern: PatternLike) -> int:
        """Number of triples matching ``pattern``."""
        return sum(1 for _ in self.select(pattern))

    def contains(self, triple: Tuple[int, int, int]) -> bool:
        """Whether the fully-specified ``triple`` is present."""
        s, p, o = triple
        for _ in self.select(TriplePattern(s, p, o)):
            return True
        return False

    def select_list(self, pattern: PatternLike) -> List[Tuple[int, int, int]]:
        """Materialise the matches of ``pattern`` as a sorted list."""
        return sorted(self.select(pattern))

    def select_values(self, bound: Dict[int, int], role: int):
        """Distinct values of component ``role`` among matching triples, as a
        sorted ``numpy.int64`` array — or ``None`` when no exact block source
        exists for the shape.

        ``bound`` maps roles (0=S, 1=P, 2=O) to fixed constants, exactly as
        in ``seek_cursor``.  The default implementation asks ``seek_cursor``
        for an *exact* cursor exposing ``remaining_block()`` and decodes it
        in one vectorised pass; index families without native cursors (the
        educational baselines) return ``None`` and callers fall back to the
        scalar path.  Overlay indexes override this to apply per-block
        tombstone filtering (see :class:`repro.dynamic.SnapshotIndex`).
        """
        seek = getattr(self, "seek_cursor", None)
        if seek is None:
            return None
        native = seek(bound, role)
        if native is None:
            return None
        cursor, exact = native
        if not exact:
            return None
        block = getattr(cursor, "remaining_block", None)
        if block is None:
            return None
        return block()

    def bits_per_triple(self) -> float:
        """Average space per triple — the headline space metric of the paper."""
        if self.num_triples == 0:
            return 0.0
        return self.size_in_bits() / self.num_triples

    def space_breakdown(self) -> Dict[str, int]:
        """Per-component space in bits (overridden by concrete indexes)."""
        return {"total": self.size_in_bits()}

    # ------------------------------------------------------------------ #
    # Persistence.
    # ------------------------------------------------------------------ #

    def save(self, path, dictionary=None, planner_stats=None,
             aligned: bool = False) -> int:
        """Persist this index (plus an optional RDF dictionary) to ``path``.

        The file is a versioned, checksummed container readable by
        :func:`repro.storage.load_index` and the ``repro`` CLI.  Only the
        paper's index families are persistable; the educational baselines
        raise :class:`repro.errors.StorageError`.  ``planner_stats`` are the
        query planner's per-role cardinality histograms (see
        ``QueryPlanner.cardinalities_from_store``); bundling them lets a
        loaded index plan as well as a freshly built one.  ``aligned=True``
        writes the v3 container (64-byte aligned sections) so the file can
        later be opened with ``load_index(path, mmap=True)``.
        """
        from repro.storage import save_index
        return save_index(self, path, dictionary=dictionary,
                          planner_stats=planner_stats, aligned=aligned)

    @classmethod
    def load(cls, path) -> "TripleIndex":
        """Load the index stored in ``path`` (dictionary, if any, is dropped).

        Called on a concrete class (``TwoTrieIndex.load(path)``) it verifies
        the stored layout matches; called on :class:`TripleIndex` it accepts
        any layout.  Use :func:`repro.storage.load_index` to also recover the
        bundled dictionary.  A file carrying a dynamic-update delta is
        refused — returning the bare base would silently resurrect deleted
        triples and drop inserted ones; such files go through
        ``load_index(path).queryable()`` (or ``repro compact``) instead.
        """
        from repro.errors import StorageError
        from repro.storage import load_index
        loaded = load_index(path, load_dictionary=False)
        if loaded.delta is not None:
            raise StorageError(
                f"{path}: carries an uncompacted update delta; load it with "
                f"repro.storage.load_index(path).queryable() or fold it in "
                f"with 'repro compact' first")
        if not isinstance(loaded.index, cls):
            raise StorageError(f"{path}: holds a {type(loaded.index).__name__}, "
                               f"expected {cls.__name__}")
        return loaded.index

    def supported_kinds(self) -> Tuple[str, ...]:
        """Pattern kinds natively supported (all eight unless overridden)."""
        return ("spo", "sp?", "s??", "?po", "?p?", "??o", "s?o", "???")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"{self.__class__.__name__}(triples={self.num_triples}, "
                f"bits_per_triple={self.bits_per_triple():.2f})")
