"""Dataset and index statistics used throughout the paper's analysis.

* Table 2 — children-per-node statistics of the trie levels;
* Table 3 — dataset statistics (triples, distinct components, distinct pairs);
* Table 1 (parenthesised values) — per-level space breakdowns as percentages
  of the whole index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.index_3t import PermutedTrieIndex
from repro.core.permutations import PERMUTATIONS
from repro.rdf.triples import TripleStore


@dataclass(frozen=True)
class ChildrenStatistics:
    """Average and maximum fan-out of one trie level (one row of Table 2)."""

    trie: str
    level: int
    average: float
    maximum: int


def dataset_statistics(store: TripleStore) -> Dict[str, int]:
    """Table 3 statistics for a dataset."""
    return store.statistics()


def children_statistics_from_store(store: TripleStore) -> List[ChildrenStatistics]:
    """Table 2 statistics computed directly from the triples (no index needed).

    For each of the SPO / POS / OSP permutations, level 1 counts how many
    distinct (first, second) pairs each first-component value has, and level 2
    how many triples each (first, second) pair has.
    """
    results: List[ChildrenStatistics] = []
    for name in ("spo", "pos", "osp"):
        order = PERMUTATIONS[name].order
        first = store.column(order[0])
        second = store.column(order[1])
        pairs = np.unique(np.stack([first, second], axis=1), axis=0)
        _, level1_counts = np.unique(pairs[:, 0], return_counts=True)
        stacked = np.stack([first, second], axis=1)
        _, level2_counts = np.unique(stacked, axis=0, return_counts=True)
        results.append(ChildrenStatistics(
            name, 1, float(level1_counts.mean()), int(level1_counts.max())))
        results.append(ChildrenStatistics(
            name, 2, float(level2_counts.mean()), int(level2_counts.max())))
    return results


def children_statistics_table(store: TripleStore) -> Dict[str, Dict[int, Dict[str, float]]]:
    """Table 2 as a nested dict: trie -> level -> {average, maximum}."""
    table: Dict[str, Dict[int, Dict[str, float]]] = {}
    for row in children_statistics_from_store(store):
        table.setdefault(row.trie, {})[row.level] = {
            "average": row.average, "maximum": row.maximum,
        }
    return table


def space_breakdown_percentages(index: PermutedTrieIndex) -> Dict[str, float]:
    """Per-component space as a percentage of the whole index (Table 1 numbers)."""
    breakdown = index.space_breakdown()
    total = sum(breakdown.values())
    if total == 0:
        return {key: 0.0 for key in breakdown}
    return {key: 100.0 * bits / total for key, bits in breakdown.items()}


def bits_per_triple_breakdown(index: PermutedTrieIndex) -> Dict[str, float]:
    """Per-component space in bits/triple."""
    breakdown = index.space_breakdown()
    n = index.num_triples
    if n == 0:
        return {key: 0.0 for key in breakdown}
    return {key: bits / n for key, bits in breakdown.items()}


def subject_out_degree_distribution(store: TripleStore) -> Dict[int, int]:
    """How many subjects have exactly C predicate children (Fig. 7 background).

    The "number of children" of a subject is the number of *distinct
    predicates* it appears with, i.e. its fan-out in the first level of SPO.
    """
    subjects = store.column(0)
    predicates = store.column(1)
    pairs = np.unique(np.stack([subjects, predicates], axis=1), axis=0)
    _, counts = np.unique(pairs[:, 0], return_counts=True)
    values, frequencies = np.unique(counts, return_counts=True)
    return {int(v): int(f) for v, f in zip(values, frequencies)}


def object_frequency_ranking(store: TripleStore) -> List[Tuple[int, int]]:
    """Objects ranked by decreasing number of triples (Fig. 6a query sweep)."""
    objects = store.column(2)
    values, counts = np.unique(objects, return_counts=True)
    order = np.argsort(-counts, kind="stable")
    return [(int(values[i]), int(counts[i])) for i in order]


def predicate_frequency_ranking(store: TripleStore) -> List[Tuple[int, int]]:
    """Predicates ranked by decreasing number of triples (Fig. 6b query sweep)."""
    predicates = store.column(1)
    values, counts = np.unique(predicates, return_counts=True)
    order = np.argsort(-counts, kind="stable")
    return [(int(values[i]), int(counts[i])) for i in order]
