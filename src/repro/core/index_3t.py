"""The 3T permuted trie index (paper Section 3.1).

Three permutations are materialised — SPO, POS and OSP — so that every triple
selection pattern with one or two wildcards is a *prefix* pattern on one of
them and can be answered with the cache-friendly ``select`` algorithm:

========  =========  ==================================
pattern   trie       permuted shape
========  =========  ==================================
``SPO``   SPO        (s, p, o) — full lookup
``SP?``   SPO        (s, p, ?)
``S??``   SPO        (s, ?, ?)
``???``   SPO        full scan
``?PO``   POS        (p, o, ?)
``?P?``   POS        (p, ?, ?)
``S?O``   OSP        (o, s, ?)
``??O``   OSP        (o, ?, ?)
========  =========  ==================================
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Optional, Tuple

import numpy as np

from repro.core.base import PatternLike, TripleIndex
from repro.core.patterns import PatternKind, TriplePattern
from repro.core.permutations import PERMUTATIONS
from repro.core.trie import PermutationTrie
from repro.errors import PatternError

#: Cursor-plan score: ``(exact, constants enforced, plain level)`` — higher is
#: better.  A plain level cursor beats the filtered "middle" cursor at equal
#: strength because its per-step cost is one access instead of one find.
_CursorScore = Tuple[int, int, int]


def plan_trie_cursor(permutation_order: Tuple[int, int, int],
                     bound: Mapping[int, int], role: int
                     ) -> Optional[Tuple[_CursorScore, bool, int]]:
    """Decide how one trie permutation can serve successors of ``role``.

    ``bound`` maps roles (0=S, 1=P, 2=O) to the constants fixed so far; the
    trie can serve the target when all permuted positions before ``role``'s
    are bound.  Returns ``(score, exact, level)`` — ``exact`` means the cursor
    enumerates precisely the distinct values of ``role`` among matching
    triples; inexact cursors over-approximate (implicit roots ignore deeper
    constants) and are only safe when another variable of the same pattern is
    still to be constrained.  ``None`` means this permutation cannot help.
    """
    k = permutation_order.index(role)
    if any(r not in bound for r in permutation_order[:k]):
        return None
    if k == 0:
        return (0, 0, 1), False, 0
    if k == 1:
        if permutation_order[2] in bound:
            return (1, 2, 0), True, 1
        return (1, 1, 1), True, 1
    return (1, 2, 1), True, 2


def build_trie_cursor(trie: PermutationTrie,
                      permutation_order: Tuple[int, int, int],
                      bound: Mapping[int, int], role: int):
    """Materialise the cursor that :func:`plan_trie_cursor` selected."""
    k = permutation_order.index(role)
    if k == 0:
        return trie.root_cursor()
    first = bound[permutation_order[0]]
    if k == 1:
        if permutation_order[2] in bound:
            return trie.middle_cursor(first, bound[permutation_order[2]])
        return trie.children_cursor(first)
    return trie.prefix_cursor(first, bound[permutation_order[1]])


_EMPTY_BLOCK = np.zeros(0, dtype=np.int64)


def trie_value_block(trie: PermutationTrie,
                     permutation_order: Tuple[int, int, int],
                     bound: Mapping[int, int], role: int
                     ) -> Optional[np.ndarray]:
    """Vectorised counterpart of :func:`build_trie_cursor` for exact plans.

    Returns the sorted distinct candidate values as one int64 block without
    constructing any cursor object, or ``None`` when the selected plan has no
    single-block form (implicit root, or the filtered "middle" cursor whose
    per-child membership probes cannot be batched here).
    """
    k = permutation_order.index(role)
    if k == 0:
        return None
    first = bound[permutation_order[0]]
    if k == 1:
        if permutation_order[2] in bound:
            return None
        return trie.children_block(first)
    position = trie.find_child(first, bound[permutation_order[1]])
    if position < 0:
        return _EMPTY_BLOCK
    return trie.pair_children_block(position)


class PermutedTrieIndex(TripleIndex):
    """3T: SPO + POS + OSP permuted tries behind a single pattern interface."""

    name = "3t"

    #: pattern kind -> name of the trie that solves it.
    DISPATCH: Dict[PatternKind, str] = {
        PatternKind.SPO: "spo",
        PatternKind.SP: "spo",
        PatternKind.S: "spo",
        PatternKind.ALL_WILDCARDS: "spo",
        PatternKind.PO: "pos",
        PatternKind.P: "pos",
        PatternKind.SO: "osp",
        PatternKind.O: "osp",
    }

    def __init__(self, tries: Dict[str, PermutationTrie]):
        missing = {"spo", "pos", "osp"} - set(tries)
        if missing:
            raise PatternError(f"3T index requires tries {sorted(missing)}")
        self._tries = tries
        # seek_cursor plans depend only on *which* roles are bound, not on
        # their values, so the (bound-roles, role) -> (trie, exact) decision
        # is memoised; the join engines re-plan the same shape per binding.
        self._cursor_plans: Dict[Tuple[frozenset, int],
                                 Optional[Tuple[str, bool]]] = {}

    # ------------------------------------------------------------------ #
    # TripleIndex interface.
    # ------------------------------------------------------------------ #

    @property
    def num_triples(self) -> int:
        return self._tries["spo"].num_triples

    def trie(self, name: str) -> PermutationTrie:
        """Access one of the materialised permutation tries."""
        return self._tries[name]

    @property
    def tries(self) -> Dict[str, PermutationTrie]:
        """All materialised tries keyed by permutation name."""
        return dict(self._tries)

    def select(self, pattern: PatternLike) -> Iterator[Tuple[int, int, int]]:
        pattern = TriplePattern.from_tuple(pattern)
        trie_name = self.DISPATCH[pattern.kind]
        yield from self._select_on(trie_name, pattern)

    def _select_on(self, trie_name: str, pattern: TriplePattern
                   ) -> Iterator[Tuple[int, int, int]]:
        """Run the select algorithm of one trie and un-permute the results."""
        trie = self._tries[trie_name]
        permutation = PERMUTATIONS[trie_name]
        first, second, third = permutation.apply_pattern(pattern)
        for permuted in trie.select(first, second, third):
            yield permutation.invert(permuted)

    def size_in_bits(self) -> int:
        return sum(trie.size_in_bits() for trie in self._tries.values())

    def space_breakdown(self) -> Dict[str, int]:
        """Per-trie, per-level space in bits."""
        breakdown: Dict[str, int] = {}
        for name, trie in self._tries.items():
            for component, bits in trie.space_breakdown().items():
                breakdown[f"{name}.{component}"] = bits
        return breakdown

    # ------------------------------------------------------------------ #
    # Seekable successor cursors (the wcoj protocol).
    # ------------------------------------------------------------------ #

    def seek_cursor(self, bound: Mapping[int, int], role: int):
        """Sorted, seekable cursor over candidate values of component ``role``.

        ``bound`` maps roles to the components already fixed (constants plus
        variables bound by outer join levels).  Returns ``(cursor, exact)``
        where ``exact`` tells whether the cursor enumerates precisely the
        distinct ``role`` values of the matching triples (an inexact cursor
        yields a superset), or ``None`` when no materialised permutation can
        serve the shape — the join engine then falls back to materialising
        the candidates through :meth:`select`.
        """
        cached = self._plan(bound, role)
        if cached is None:
            return None
        name, exact = cached
        return self._build_trie_cursor(name, self._tries[name], bound,
                                       role), exact

    def _plan(self, bound: Mapping[int, int], role: int
              ) -> Optional[Tuple[str, bool]]:
        """Memoised ``(trie name, exact)`` decision for one bound shape."""
        plan_key = (frozenset(bound), role)
        cached = self._cursor_plans.get(plan_key, False)
        if cached is not False:
            return cached
        best = None
        for name, trie in self._tries.items():
            plan = plan_trie_cursor(PERMUTATIONS[name].order, bound, role)
            if plan is None:
                continue
            score, exact, _level = plan
            if best is None or score > best[0]:
                best = (score, exact, name, trie)
        if best is None:
            self._cursor_plans[plan_key] = None
            return None
        _score, exact, name, _trie = best
        self._cursor_plans[plan_key] = (name, exact)
        return name, exact

    def select_values(self, bound: Mapping[int, int], role: int
                      ) -> Optional[np.ndarray]:
        """Sorted distinct candidate block without cursor construction.

        Rides the memoised plan: exact prefix/children plans decode their
        sibling range in one vectorised pass; shapes whose plan has no block
        form fall back to the generic cursor-based implementation (which in
        turn returns ``None`` for inexact plans).
        """
        cached = self._plan(bound, role)
        if cached is None:
            return None
        name, exact = cached
        if not exact:
            return None
        block = self._block_from_plan(name, bound, role)
        if block is None:
            return super().select_values(bound, role)
        return block

    def _block_from_plan(self, name: str, bound: Mapping[int, int],
                         role: int) -> Optional[np.ndarray]:
        """Decode the chosen plan's block on one trie (hook for subclasses
        whose stored levels need a value rewrite — see
        :class:`repro.core.cross_compression.CrossCompressedIndex`)."""
        return trie_value_block(self._tries[name], PERMUTATIONS[name].order,
                                bound, role)

    def _build_trie_cursor(self, name: str, trie: PermutationTrie,
                           bound: Mapping[int, int], role: int):
        """Materialise the cursor chosen by :meth:`seek_cursor` on one trie.

        A method (not the bare function) so :class:`CrossCompressedIndex` can
        intercept the rank-rewritten POS levels.
        """
        return build_trie_cursor(trie, PERMUTATIONS[name].order, bound, role)

    # ------------------------------------------------------------------ #
    # Introspection used by the experiments.
    # ------------------------------------------------------------------ #

    def dispatch_trie(self, pattern: PatternLike) -> str:
        """Name of the trie a pattern is routed to (used by the benchmarks)."""
        return self.DISPATCH[TriplePattern.from_tuple(pattern).kind]

    def children_statistics(self) -> Dict[str, Dict[str, Dict[str, float]]]:
        """Table 2: per-trie children statistics."""
        return {name: trie.children_statistics() for name, trie in self._tries.items()}
