"""The 3T permuted trie index (paper Section 3.1).

Three permutations are materialised — SPO, POS and OSP — so that every triple
selection pattern with one or two wildcards is a *prefix* pattern on one of
them and can be answered with the cache-friendly ``select`` algorithm:

========  =========  ==================================
pattern   trie       permuted shape
========  =========  ==================================
``SPO``   SPO        (s, p, o) — full lookup
``SP?``   SPO        (s, p, ?)
``S??``   SPO        (s, ?, ?)
``???``   SPO        full scan
``?PO``   POS        (p, o, ?)
``?P?``   POS        (p, ?, ?)
``S?O``   OSP        (o, s, ?)
``??O``   OSP        (o, ?, ?)
========  =========  ==================================
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.core.base import PatternLike, TripleIndex
from repro.core.patterns import PatternKind, TriplePattern
from repro.core.permutations import PERMUTATIONS
from repro.core.trie import PermutationTrie
from repro.errors import PatternError


class PermutedTrieIndex(TripleIndex):
    """3T: SPO + POS + OSP permuted tries behind a single pattern interface."""

    name = "3t"

    #: pattern kind -> name of the trie that solves it.
    DISPATCH: Dict[PatternKind, str] = {
        PatternKind.SPO: "spo",
        PatternKind.SP: "spo",
        PatternKind.S: "spo",
        PatternKind.ALL_WILDCARDS: "spo",
        PatternKind.PO: "pos",
        PatternKind.P: "pos",
        PatternKind.SO: "osp",
        PatternKind.O: "osp",
    }

    def __init__(self, tries: Dict[str, PermutationTrie]):
        missing = {"spo", "pos", "osp"} - set(tries)
        if missing:
            raise PatternError(f"3T index requires tries {sorted(missing)}")
        self._tries = tries

    # ------------------------------------------------------------------ #
    # TripleIndex interface.
    # ------------------------------------------------------------------ #

    @property
    def num_triples(self) -> int:
        return self._tries["spo"].num_triples

    def trie(self, name: str) -> PermutationTrie:
        """Access one of the materialised permutation tries."""
        return self._tries[name]

    @property
    def tries(self) -> Dict[str, PermutationTrie]:
        """All materialised tries keyed by permutation name."""
        return dict(self._tries)

    def select(self, pattern: PatternLike) -> Iterator[Tuple[int, int, int]]:
        pattern = TriplePattern.from_tuple(pattern)
        trie_name = self.DISPATCH[pattern.kind]
        yield from self._select_on(trie_name, pattern)

    def _select_on(self, trie_name: str, pattern: TriplePattern
                   ) -> Iterator[Tuple[int, int, int]]:
        """Run the select algorithm of one trie and un-permute the results."""
        trie = self._tries[trie_name]
        permutation = PERMUTATIONS[trie_name]
        first, second, third = permutation.apply_pattern(pattern)
        for permuted in trie.select(first, second, third):
            yield permutation.invert(permuted)

    def size_in_bits(self) -> int:
        return sum(trie.size_in_bits() for trie in self._tries.values())

    def space_breakdown(self) -> Dict[str, int]:
        """Per-trie, per-level space in bits."""
        breakdown: Dict[str, int] = {}
        for name, trie in self._tries.items():
            for component, bits in trie.space_breakdown().items():
                breakdown[f"{name}.{component}"] = bits
        return breakdown

    # ------------------------------------------------------------------ #
    # Introspection used by the experiments.
    # ------------------------------------------------------------------ #

    def dispatch_trie(self, pattern: PatternLike) -> str:
        """Name of the trie a pattern is routed to (used by the benchmarks)."""
        return self.DISPATCH[TriplePattern.from_tuple(pattern).kind]

    def children_statistics(self) -> Dict[str, Dict[str, Dict[str, float]]]:
        """Table 2: per-trie children statistics."""
        return {name: trie.children_statistics() for name, trie in self._tries.items()}
