"""The 3-level trie of the paper (Section 3.1) and its pattern matching
algorithms.

One :class:`PermutationTrie` stores all triples under a fixed permutation of
the components.  Nodes of a level are concatenated into a single integer
sequence; sibling groups are delimited by pointer sequences.  The first level
is implicit (IDs are dense ``0 .. n-1``), so it contributes pointers only, and
the last level has no pointers:

``levels[0].pointers`` — where the children of first-level node ``i`` start;
``levels[1].nodes``    — second components of the distinct (first, second) pairs;
``levels[1].pointers`` — where the children of pair ``j`` start;
``levels[2].nodes``    — third components of all triples.

Three algorithms operate on this layout:

* :meth:`PermutationTrie.select` — Fig. 2 of the paper, for patterns whose
  bound components are a prefix of the permutation;
* :meth:`PermutationTrie.enumerate_pairs` — Fig. 5, for the S?O pattern on the
  SPO trie (first and third bound, second free);
* full scans for the ``???`` pattern.

On top of those, the module provides *seekable cursors* — sorted streams of
sibling values supporting ``seek(value)`` (jump to the first element >= value)
backed by the Elias-Fano ``next_geq`` machinery.  They are the successor-list
protocol the leapfrog-style worst-case-optimal join engine
(:mod:`repro.queries.wcoj`) intersects level by level.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import IndexBuildError
from repro.sequences.base import NOT_FOUND
from repro.sequences.elias_fano import EliasFano
from repro.sequences.factory import make_ranged_sequence
from repro.sequences.prefix_sum import RangedSequence


# --------------------------------------------------------------------------- #
# Seekable cursors: the successor-list protocol of the multiway join engine.
#
# Every cursor exposes one attribute and two methods:
#
# ``key``       — the current element, or ``None`` once exhausted;
# ``advance()`` — move past the current element;
# ``seek(v)``   — move to the first element >= ``v`` (no-op if key >= v).
#
# Elements are distinct and strictly increasing, which every trie sibling
# range guarantees (triples are deduplicated).
#
# Cursors backed by decodable storage additionally expose
#
# ``remaining_block()`` — every element from the current key (inclusive) to
#                         the end, as one sorted ``numpy.int64`` array,
#                         without moving the cursor.
#
# The join engines probe for it with ``getattr`` and fall back to the scalar
# protocol where it is absent (e.g. predicate-filtered cursors, for which a
# block would cost as much as the scalar walk).
# --------------------------------------------------------------------------- #


class RangeCursor:
    """Cursor over the virtual dense range ``[begin, end)`` (implicit level 0)."""

    __slots__ = ("_end", "key")

    def __init__(self, begin: int, end: int):
        self._end = end
        self.key: Optional[int] = begin if begin < end else None

    @property
    def end(self) -> int:
        """Exclusive upper bound of the virtual range.

        The join engine reads this to collapse an implicit-root cursor into
        a clip on an already-vectorised intersection instead of stepping the
        whole dense domain through the leapfrog.
        """
        return self._end

    def advance(self) -> None:
        position = self.key + 1
        self.key = position if position < self._end else None

    def seek(self, value: int) -> None:
        if self.key is None or value <= self.key:
            return
        self.key = value if value < self._end else None

    def remaining_block(self) -> np.ndarray:
        if self.key is None:
            return np.zeros(0, dtype=np.int64)
        return np.arange(self.key, self._end, dtype=np.int64)


class ArrayCursor:
    """Cursor over a materialised sorted list of distinct values."""

    __slots__ = ("_values", "_position", "_end", "key")

    def __init__(self, values: Sequence[int]):
        self._values = values
        self._position = 0
        self._end = len(values)
        self.key: Optional[int] = values[0] if values else None

    def advance(self) -> None:
        self._position += 1
        self.key = (self._values[self._position]
                    if self._position < self._end else None)

    def seek(self, value: int) -> None:
        if self.key is None or value <= self.key:
            return
        position = bisect_left(self._values, value, self._position, self._end)
        self._position = position
        self.key = self._values[position] if position < self._end else None

    def remaining_block(self) -> np.ndarray:
        if self.key is None:
            return np.zeros(0, dtype=np.int64)
        return np.asarray(self._values[self._position:self._end],
                          dtype=np.int64)


class LevelCursor:
    """Cursor over one encoded sibling range ``[begin, end)`` of a trie level.

    ``seek`` delegates to the codec's ``next_geq`` (Elias-Fano ``select0`` /
    PEF partition pruning), so a successor jump costs far less than scanning.
    """

    __slots__ = ("_nodes", "_begin", "_end", "_position", "key")

    def __init__(self, nodes: RangedSequence, begin: int, end: int):
        self._nodes = nodes
        self._begin = begin
        self._end = end
        self._position = begin
        self.key: Optional[int] = (nodes.access_in_range(begin, end, begin)
                                   if begin < end else None)

    def advance(self) -> None:
        self._position += 1
        if self._position < self._end:
            self.key = self._nodes.access_in_range(self._begin, self._end,
                                                   self._position)
        else:
            self.key = None

    def seek(self, value: int) -> None:
        if self.key is None or value <= self.key:
            return
        position, element = self._nodes.next_geq_in_range(
            self._begin, self._end, value)
        if position < self._end:
            self._position = position
            self.key = element
        else:
            self._position = self._end
            self.key = None

    def remaining_block(self) -> np.ndarray:
        """All elements from the current position to the range end, decoded
        with the codec's batch kernel (one vectorised pass, no Python loop)."""
        if self.key is None:
            return np.zeros(0, dtype=np.int64)
        return self._nodes.decode_block_in_range(self._begin, self._end,
                                                 start=self._position)


class FunctionCursor:
    """Cursor over a strictly increasing function of positions ``[begin, end)``.

    Used where stored values need a monotone indirection before comparison —
    e.g. the cross-compressed POS third level, whose stored ranks map through
    ``unmap`` to increasing subject IDs.
    """

    __slots__ = ("_fn", "_position", "_end", "key")

    def __init__(self, fn: Callable[[int], int], begin: int, end: int):
        self._fn = fn
        self._position = begin
        self._end = end
        self.key: Optional[int] = fn(begin) if begin < end else None

    def advance(self) -> None:
        self._position += 1
        self.key = (self._fn(self._position)
                    if self._position < self._end else None)

    def seek(self, value: int) -> None:
        if self.key is None or value <= self.key:
            return
        fn = self._fn
        lo, hi = self._position + 1, self._end
        while lo < hi:
            mid = (lo + hi) // 2
            if fn(mid) < value:
                lo = mid + 1
            else:
                hi = mid
        self._position = lo
        self.key = fn(lo) if lo < self._end else None

    def remaining_block(self) -> np.ndarray:
        """Remaining elements as an array.

        The indirection function runs once per element, so this is no faster
        than the scalar walk — it exists so callers intersecting several
        cursors can use one code path.
        """
        if self.key is None:
            return np.zeros(0, dtype=np.int64)
        fn = self._fn
        return np.fromiter((fn(p) for p in range(self._position, self._end)),
                           dtype=np.int64, count=self._end - self._position)


class FilteredChildrenCursor:
    """Cursor over the level-1 children of ``first`` that pass a predicate.

    The predicate receives the absolute level-1 position of a child; the
    canonical use is the ``enumerate`` shape (Fig. 5): children ``second`` of
    ``first`` whose pair ``(first, second)`` has ``third`` among its children.
    """

    __slots__ = ("_trie", "_begin", "_end", "_position", "_predicate", "key")

    def __init__(self, trie: "PermutationTrie", first: int,
                 predicate: Callable[[int], bool]):
        self._trie = trie
        begin, end = trie.children_range(first)
        self._begin = begin
        self._end = end
        self._predicate = predicate
        self._position = begin
        self.key: Optional[int] = None
        self._settle()

    def _settle(self) -> None:
        """Move forward to the next position passing the predicate."""
        while self._position < self._end:
            if self._predicate(self._position):
                self.key = self._trie.second_at(self._begin, self._end,
                                                self._position)
                return
            self._position += 1
        self.key = None

    def advance(self) -> None:
        self._position += 1
        self._settle()

    def seek(self, value: int) -> None:
        if self.key is None or value <= self.key:
            return
        position, _ = self._trie.nodes_level1.next_geq_in_range(
            self._begin, self._end, value)
        self._position = position
        self._settle()


@dataclass(frozen=True)
class TrieConfig:
    """Codec selection for the levels of one trie.

    The paper's preferred configuration (Section 3.1, "Performance") uses PEF
    for all node sequences except the last level of SPO, which uses Compact,
    and plain EF for all pointer sequences.  Pointer codecs other than EF are
    not needed in practice, so only the node codecs are configurable here.
    """

    level1_nodes: str = "pef"
    level2_nodes: str = "pef"
    codec_options: Dict[str, dict] = field(default_factory=dict)

    def options_for(self, codec: str) -> dict:
        """Extra keyword arguments for ``codec`` (e.g. PEF partition size)."""
        return self.codec_options.get(codec, {})


class PermutationTrie:
    """A 3-level trie over one permutation of the triples."""

    __slots__ = ("permutation_name", "config", "_num_first", "_num_pairs",
                 "_num_triples", "_pointers0", "_nodes1", "_pointers1", "_nodes2",
                 "_ptr0_decoded", "_ptr1_decoded", "_ptr_ops")

    #: Scalar pointer lookups tolerated before the Elias-Fano pointer arrays
    #: are mirrored into plain numpy arrays (same adaptive warm-up contract
    #: as :class:`repro.sequences.RangedSequence` — derived state, never
    #: persisted, so O(1) loads stay O(1) for one-shot lookups).
    ADAPTIVE_DECODE_THRESHOLD = 64

    def __init__(self, permutation_name: str, config: TrieConfig, num_first: int,
                 pointers0: EliasFano, nodes1: RangedSequence, pointers1: EliasFano,
                 nodes2: RangedSequence, num_triples: int):
        self.permutation_name = permutation_name
        self.config = config
        self._num_first = num_first
        self._pointers0 = pointers0
        self._nodes1 = nodes1
        self._pointers1 = pointers1
        self._nodes2 = nodes2
        self._num_pairs = len(nodes1)
        self._num_triples = num_triples
        self._ptr0_decoded: Optional[np.ndarray] = None
        self._ptr1_decoded: Optional[np.ndarray] = None
        self._ptr_ops = 0

    # ------------------------------------------------------------------ #
    # Construction.
    # ------------------------------------------------------------------ #

    @classmethod
    def from_sorted_columns(cls, first: np.ndarray, second: np.ndarray, third: np.ndarray,
                            permutation_name: str = "spo",
                            config: Optional[TrieConfig] = None,
                            num_first: Optional[int] = None,
                            third_override: Optional[np.ndarray] = None
                            ) -> "PermutationTrie":
        """Build from columns already sorted lexicographically by (first, second, third).

        ``third_override`` replaces the stored third-level values (used by the
        cross-compression transform) while grouping is still derived from the
        original columns.
        """
        config = config or TrieConfig()
        n = int(first.size)
        if not (first.size == second.size == third.size):
            raise IndexBuildError("trie columns must have equal length")

        if num_first is None:
            num_first = int(first.max()) + 1 if n else 1

        # Level 0 pointers: for each first-level ID, where its (first, second)
        # pairs start in the level-1 node sequence.  First find the distinct
        # (first, second) pairs.  Zero triples yields a structurally valid
        # empty trie (all pointer ranges collapse to [0, 0)).
        pair_change = np.empty(n, dtype=bool)
        if n:
            pair_change[0] = True
            pair_change[1:] = (first[1:] != first[:-1]) | (second[1:] != second[:-1])
        pair_starts = np.nonzero(pair_change)[0]
        pair_first = first[pair_starts]
        pair_second = second[pair_starts]
        num_pairs = int(pair_starts.size)

        pointers0_values = np.searchsorted(pair_first, np.arange(num_first + 1))
        pointers1_values = np.append(pair_starts, n)

        stored_third = third if third_override is None else third_override
        if stored_third.size != n:
            raise IndexBuildError("third_override must have one value per triple")

        pointers0 = EliasFano.from_values(pointers0_values.tolist())
        pointers1 = EliasFano.from_values(pointers1_values.tolist())
        nodes1 = make_ranged_sequence(
            pair_second.tolist(), pointers0_values.tolist(), config.level1_nodes,
            **config.options_for(config.level1_nodes))
        nodes2 = make_ranged_sequence(
            stored_third.tolist(), pointers1_values.tolist(), config.level2_nodes,
            **config.options_for(config.level2_nodes))
        return cls(permutation_name, config, num_first, pointers0, nodes1,
                   pointers1, nodes2, n)

    # ------------------------------------------------------------------ #
    # Basic accessors.
    # ------------------------------------------------------------------ #

    @property
    def num_first(self) -> int:
        """Number of first-level (implicit) nodes."""
        return self._num_first

    @property
    def nodes_level1(self) -> RangedSequence:
        """The encoded second-level node sequence (read-only)."""
        return self._nodes1

    @property
    def nodes_level2(self) -> RangedSequence:
        """The encoded third-level node sequence (read-only)."""
        return self._nodes2

    @property
    def num_pairs(self) -> int:
        """Number of second-level nodes (distinct first-second pairs)."""
        return self._num_pairs

    @property
    def num_triples(self) -> int:
        """Number of third-level nodes, i.e. triples."""
        return self._num_triples

    def children_range(self, first_id: int) -> Tuple[int, int]:
        """Range ``[begin, end)`` of first_id's children in the level-1 sequence."""
        if not 0 <= first_id < self._num_first:
            return (0, 0)
        ptr = self._ptr0_decoded
        if ptr is None:
            self._ptr_ops += 1
            if self._ptr_ops < self.ADAPTIVE_DECODE_THRESHOLD:
                return (self._pointers0.access(first_id),
                        self._pointers0.access(first_id + 1))
            ptr = self._ptr0_decoded = self._pointers0.decode_block(
                0, len(self._pointers0))
        return (int(ptr[first_id]), int(ptr[first_id + 1]))

    def pair_children_range(self, pair_position: int) -> Tuple[int, int]:
        """Range ``[begin, end)`` of a level-1 node's children in the level-2 sequence."""
        ptr = self._ptr1_decoded
        if ptr is None:
            self._ptr_ops += 1
            if self._ptr_ops < self.ADAPTIVE_DECODE_THRESHOLD:
                return (self._pointers1.access(pair_position),
                        self._pointers1.access(pair_position + 1))
            ptr = self._ptr1_decoded = self._pointers1.decode_block(
                0, len(self._pointers1))
        return (int(ptr[pair_position]), int(ptr[pair_position + 1]))

    def second_at(self, begin: int, end: int, position: int) -> int:
        """Level-1 node value at ``position`` within sibling range ``[begin, end)``."""
        return self._nodes1.access_in_range(begin, end, position)

    def third_at(self, begin: int, end: int, position: int) -> int:
        """Level-2 node value at ``position`` within sibling range ``[begin, end)``."""
        return self._nodes2.access_in_range(begin, end, position)

    def scan_third(self, begin: int, end: int) -> Iterator[int]:
        """Decode the level-2 sibling range ``[begin, end)``."""
        return self._nodes2.scan_range(begin, end)

    def children_block(self, first_id: int) -> np.ndarray:
        """All level-1 children of ``first_id`` as one sorted int64 array."""
        begin, end = self.children_range(first_id)
        return self._nodes1.decode_block_in_range(begin, end)

    def third_block(self, begin: int, end: int) -> np.ndarray:
        """The level-2 sibling range ``[begin, end)`` as one int64 array."""
        return self._nodes2.decode_block_in_range(begin, end)

    def pair_children_block(self, pair_position: int) -> np.ndarray:
        """All level-2 children of a level-1 node as one sorted int64 array."""
        begin, end = self.pair_children_range(pair_position)
        return self._nodes2.decode_block_in_range(begin, end)

    def find_third(self, begin: int, end: int, value: int) -> int:
        """Absolute position of ``value`` in the level-2 sibling range, or -1."""
        if begin == end:
            return NOT_FOUND
        return self._nodes2.find_in_range(begin, end, value)

    # ------------------------------------------------------------------ #
    # select — Fig. 2 of the paper.
    # ------------------------------------------------------------------ #

    def select(self, first: Optional[int], second: Optional[int], third: Optional[int]
               ) -> Iterator[Tuple[int, int, int]]:
        """Match a pattern whose bound components form a prefix, plus full lookups.

        Supported shapes (in permuted component order): ``(x, y, z)``,
        ``(x, y, ?)``, ``(x, ?, ?)`` and ``(?, ?, ?)``.  Patterns binding the
        first and third component only belong to :meth:`enumerate_pairs`.
        """
        if first is None:
            if second is not None or third is not None:
                raise IndexBuildError(
                    f"trie {self.permutation_name} cannot select pattern "
                    f"({first}, {second}, {third})")
            yield from self.scan_all()
            return
        if first >= self._num_first:
            return
        begin, end = self.children_range(first)
        if begin == end:
            return
        if second is not None:
            position = self._nodes1.find_in_range(begin, end, second)
            if position == NOT_FOUND:
                return
            yield from self._emit_pairs(first, position, position + 1, third)
        else:
            yield from self._emit_pairs(first, begin, end, third)

    def _emit_pairs(self, first: int, pair_begin: int, pair_end: int,
                    third: Optional[int]) -> Iterator[Tuple[int, int, int]]:
        """Emit matches for the level-1 nodes in ``[pair_begin, pair_end)``."""
        level1_begin, level1_end = self.children_range(first)
        for pair_position in range(pair_begin, pair_end):
            second_value = self._nodes1.access_in_range(level1_begin, level1_end,
                                                        pair_position)
            child_begin, child_end = self.pair_children_range(pair_position)
            if third is not None:
                position = self._nodes2.find_in_range(child_begin, child_end, third)
                if position != NOT_FOUND:
                    yield (first, second_value, third)
            else:
                block = self._nodes2.decode_block_in_range(child_begin, child_end)
                for third_value in block.tolist():
                    yield (first, second_value, third_value)

    def scan_all(self) -> Iterator[Tuple[int, int, int]]:
        """Full scan (the ``???`` pattern), in lexicographic permuted order."""
        for first in range(self._num_first):
            begin, end = self.children_range(first)
            if begin == end:
                continue
            seconds = self._nodes1.decode_block_in_range(begin, end).tolist()
            for offset, pair_position in enumerate(range(begin, end)):
                second_value = seconds[offset]
                child_begin, child_end = self.pair_children_range(pair_position)
                block = self._nodes2.decode_block_in_range(child_begin, child_end)
                for third_value in block.tolist():
                    yield (first, second_value, third_value)

    # ------------------------------------------------------------------ #
    # enumerate — Fig. 5 of the paper (first and third bound, second free).
    # ------------------------------------------------------------------ #

    def enumerate_pairs(self, first: int, third: int) -> Iterator[Tuple[int, int, int]]:
        """For every child ``second`` of ``first``, check whether ``third`` is a
        child of (first, second) and emit the matching triples."""
        if not 0 <= first < self._num_first:
            return
        begin, end = self.children_range(first)
        for pair_position in range(begin, end):
            child_begin, child_end = self.pair_children_range(pair_position)
            position = self._nodes2.find_in_range(child_begin, child_end, third)
            if position != NOT_FOUND:
                second_value = self._nodes1.access_in_range(begin, end, pair_position)
                yield (first, second_value, third)

    # ------------------------------------------------------------------ #
    # Seekable cursors (the wcoj successor-list protocol).
    # ------------------------------------------------------------------ #

    def root_cursor(self) -> RangeCursor:
        """Cursor over the implicit first level: every ID in ``[0, num_first)``.

        Note that IDs whose children range is empty are included — the cursor
        over-approximates the set of populated roots, which the join engine
        compensates for by constraining deeper levels.
        """
        return RangeCursor(0, self._num_first)

    def children_cursor(self, first: int) -> LevelCursor:
        """Seekable cursor over the sorted level-1 children of ``first``."""
        begin, end = self.children_range(first)
        return LevelCursor(self._nodes1, begin, end)

    def pair_children_cursor(self, pair_position: int) -> LevelCursor:
        """Seekable cursor over the sorted level-2 children of a level-1 node."""
        begin, end = self.pair_children_range(pair_position)
        return LevelCursor(self._nodes2, begin, end)

    def prefix_cursor(self, first: int, second: int) -> LevelCursor:
        """Level-2 cursor under the path ``(first, second)`` (empty if absent)."""
        position = self.find_child(first, second)
        if position == NOT_FOUND:
            return LevelCursor(self._nodes2, 0, 0)
        return self.pair_children_cursor(position)

    def middle_cursor(self, first: int, third: int) -> FilteredChildrenCursor:
        """Cursor over the ``second`` values with ``(first, second, third)`` present.

        The seekable counterpart of :meth:`enumerate_pairs` (Fig. 5): children
        of ``first`` whose pair has ``third`` among its level-2 children.
        """
        def has_third(pair_position: int) -> bool:
            begin, end = self.pair_children_range(pair_position)
            return self.find_third(begin, end, third) != NOT_FOUND
        return FilteredChildrenCursor(self, first, has_third)

    # ------------------------------------------------------------------ #
    # Helpers for the inverted algorithm and cross compression.
    # ------------------------------------------------------------------ #

    def find_child(self, first: int, second: int) -> int:
        """Absolute level-1 position of ``second`` among the children of ``first``
        or -1."""
        begin, end = self.children_range(first)
        if begin == end:
            return NOT_FOUND
        return self._nodes1.find_in_range(begin, end, second)

    def child_rank(self, first: int, second: int) -> int:
        """Rank of ``second`` among the children of ``first`` (the paper's map)."""
        position = self.find_child(first, second)
        if position == NOT_FOUND:
            return NOT_FOUND
        begin, _ = self.children_range(first)
        return position - begin

    def child_by_rank(self, first: int, rank: int) -> int:
        """The ``rank``-th child of ``first`` (the paper's unmap)."""
        begin, end = self.children_range(first)
        if not 0 <= rank < end - begin:
            raise IndexError(f"node {first} has no child of rank {rank}")
        return self._nodes1.access_in_range(begin, end, begin + rank)

    def children_of(self, first: int) -> Iterator[int]:
        """Yield the level-1 children values of ``first``."""
        begin, end = self.children_range(first)
        return self._nodes1.scan_range(begin, end)

    def num_children(self, first: int) -> int:
        """Number of level-1 children of ``first``."""
        begin, end = self.children_range(first)
        return end - begin

    def pair_positions_of(self, first: int) -> range:
        """Absolute level-1 positions of the children of ``first``."""
        begin, end = self.children_range(first)
        return range(begin, end)

    # ------------------------------------------------------------------ #
    # Persistence.
    # ------------------------------------------------------------------ #

    def save(self, path) -> int:
        """Persist this trie (all levels and pointers) to ``path``."""
        from repro.storage import save_object
        return save_object(self, path)

    @classmethod
    def load(cls, path) -> "PermutationTrie":
        """Load a trie saved with :meth:`save`; nothing is rebuilt from values."""
        from repro.storage import load_object
        return load_object(path, expected_type=cls)

    # ------------------------------------------------------------------ #
    # Space accounting and statistics.
    # ------------------------------------------------------------------ #

    def size_in_bits(self) -> int:
        """Total space of the trie in bits."""
        return sum(self.space_breakdown().values())

    def space_breakdown(self) -> Dict[str, int]:
        """Bits per component, matching the paper's Table 1 space breakdowns."""
        return {
            "pointers0": self._pointers0.size_in_bits(),
            "nodes1": self._nodes1.size_in_bits(),
            "pointers1": self._pointers1.size_in_bits(),
            "nodes2": self._nodes2.size_in_bits(),
        }

    def children_statistics(self) -> Dict[str, Dict[str, float]]:
        """Average / maximum number of children per node for levels 1 and 2.

        This is the Table 2 statistic that drives the cross-compression and
        enumerate-algorithm arguments of the paper.
        """
        level1_counts = [self.num_children(first) for first in range(self._num_first)]
        level2_counts = [
            self.pair_children_range(j)[1] - self.pair_children_range(j)[0]
            for j in range(self._num_pairs)
        ]
        def _summary(counts: List[int]) -> Dict[str, float]:
            if not counts:
                return {"average": 0.0, "maximum": 0}
            return {"average": float(np.mean(counts)), "maximum": int(np.max(counts))}
        return {"level1": _summary(level1_counts), "level2": _summary(level2_counts)}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"PermutationTrie({self.permutation_name}, first={self._num_first}, "
                f"pairs={self._num_pairs}, triples={self._num_triples})")
