"""Range-constrained triple selection (paper Section 3.1, "Supporting range
queries").

The paper changes the ID assignment so that numeric literals receive IDs in
value order and keeps their sorted values in a separate compressed structure
``R``.  A constraint ``low < ?value < high`` then becomes two binary searches
in ``R`` to obtain an ID interval, followed by ordinary selection patterns
with the constrained component bound to each ID of the interval.

:class:`RangeQueryEngine` wires an arbitrary :class:`repro.core.base.TripleIndex`
to a :class:`repro.rdf.dictionary.NumericIndex` plus the offset at which
numeric object IDs start.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from repro.core.base import PatternLike, TripleIndex
from repro.core.patterns import TriplePattern
from repro.errors import PatternError
from repro.rdf.dictionary import NumericIndex


class RangeQueryEngine:
    """Answers selection patterns with a numeric range constraint on the object."""

    def __init__(self, index: TripleIndex, numeric_index: NumericIndex,
                 numeric_id_offset: int):
        self._index = index
        self._numeric = numeric_index
        self._offset = numeric_id_offset

    @property
    def numeric_index(self) -> NumericIndex:
        """The sorted numeric structure ``R``."""
        return self._numeric

    @property
    def numeric_id_offset(self) -> int:
        """Object ID of the smallest numeric literal."""
        return self._offset

    def extra_space_in_bits(self) -> int:
        """Space of ``R`` (the paper reports < 0.1 bits/triple on WatDiv)."""
        return self._numeric.size_in_bits()

    def extra_bits_per_triple(self) -> float:
        """Space of ``R`` normalised per indexed triple."""
        if self._index.num_triples == 0:
            return 0.0
        return self.extra_space_in_bits() / self._index.num_triples

    # ------------------------------------------------------------------ #
    # Range-constrained selection.
    # ------------------------------------------------------------------ #

    def object_id_range(self, low: float, high: float,
                        inclusive: bool = False) -> Tuple[int, int]:
        """Translate a value constraint into a half-open object-ID interval."""
        lo_pos, hi_pos = self._numeric.id_range(low, high, inclusive=inclusive)
        return (self._offset + lo_pos, self._offset + hi_pos)

    def select_object_range(self, pattern: PatternLike, low: float, high: float,
                            inclusive: bool = False) -> Iterator[Tuple[int, int, int]]:
        """Match ``pattern`` restricting its object component to ``(low, high)``.

        ``pattern`` must leave the object unbound; the subject and/or
        predicate may be bound or wildcards.  Every object ID in the computed
        interval is bound in turn and resolved with the index's ordinary
        select algorithm, exactly as the paper describes.
        """
        pattern = TriplePattern.from_tuple(pattern)
        if pattern.object is not None:
            raise PatternError("range-constrained patterns must leave the object unbound")
        lo_id, hi_id = self.object_id_range(low, high, inclusive=inclusive)
        for object_id in range(lo_id, hi_id):
            bound = TriplePattern(pattern.subject, pattern.predicate, object_id)
            yield from self._index.select(bound)

    def count_object_range(self, pattern: PatternLike, low: float, high: float,
                           inclusive: bool = False) -> int:
        """Number of triples matched by a range-constrained pattern."""
        return sum(1 for _ in self.select_object_range(pattern, low, high,
                                                       inclusive=inclusive))

    def object_value(self, object_id: int) -> Optional[float]:
        """Numeric value of a (numeric) object ID, or ``None`` if not numeric."""
        position = object_id - self._offset
        if 0 <= position < len(self._numeric):
            return self._numeric.value_at(position)
        return None
