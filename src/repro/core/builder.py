"""Index builders.

:class:`IndexBuilder` turns a :class:`repro.rdf.triples.TripleStore` into any
of the paper's four layouts:

=========  ==================================================================
``"3t"``   SPO + POS + OSP (Section 3.1)
``"cc"``   3T with the POS third level cross-compressed through OSP (3.2)
``"2tp"``  SPO + POS, predicate-based two-trie index (Section 3.3)
``"2to"``  SPO + OPS + PS auxiliary structure, object-based two-trie index
=========  ==================================================================

The default codec configuration follows the paper's space/time analysis
(Table 1): PEF for every node sequence except the last level of SPO (Compact),
plain EF for all pointers, and Compact for OSP's second level in the CC layout
so that the ``unmap`` random accesses stay cheap.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

import numpy as np

from repro.core.cross_compression import (
    CrossCompressedIndex,
    compute_cross_compressed_third_level,
)
from repro.core.index_2t import TwoTrieIndex
from repro.core.index_3t import PermutedTrieIndex
from repro.core.pairs import PairStructure
from repro.core.permutations import PERMUTATIONS
from repro.core.trie import PermutationTrie, TrieConfig
from repro.errors import IndexBuildError
from repro.rdf.triples import OBJECT, PREDICATE, SUBJECT, TripleStore

#: The layouts understood by :meth:`IndexBuilder.build`.
LAYOUTS = ("3t", "cc", "2tp", "2to")

#: Default per-permutation codec configuration (paper Section 3.1).
DEFAULT_TRIE_CONFIGS: Dict[str, TrieConfig] = {
    "spo": TrieConfig(level1_nodes="pef", level2_nodes="compact"),
    "pos": TrieConfig(level1_nodes="pef", level2_nodes="pef"),
    "osp": TrieConfig(level1_nodes="pef", level2_nodes="pef"),
    "ops": TrieConfig(level1_nodes="pef", level2_nodes="pef"),
    "pso": TrieConfig(level1_nodes="pef", level2_nodes="pef"),
    "sop": TrieConfig(level1_nodes="pef", level2_nodes="pef"),
}


class IndexBuilder:
    """Builds permuted-trie indexes from a triple store."""

    def __init__(self, store: TripleStore,
                 trie_configs: Optional[Dict[str, TrieConfig]] = None):
        self._store = store
        self._configs = dict(DEFAULT_TRIE_CONFIGS)
        if trie_configs:
            self._configs.update(trie_configs)
        # Universe sizes per role: the first trie level is implicit, so its
        # size is the largest identifier + 1 of the role it represents.  An
        # empty store (legitimate for partitioned shards that received no
        # triples) gets the minimal one-node universe.
        columns = store.columns()
        nonempty = len(store) > 0
        self._role_universe = {
            SUBJECT: int(columns[SUBJECT].max()) + 1 if nonempty else 1,
            PREDICATE: int(columns[PREDICATE].max()) + 1 if nonempty else 1,
            OBJECT: int(columns[OBJECT].max()) + 1 if nonempty else 1,
        }

    @property
    def store(self) -> TripleStore:
        """The triple store the indexes are built from."""
        return self._store

    def config_for(self, permutation_name: str) -> TrieConfig:
        """The codec configuration used for ``permutation_name``."""
        return self._configs[permutation_name]

    # ------------------------------------------------------------------ #
    # Trie construction.
    # ------------------------------------------------------------------ #

    def build_trie(self, permutation_name: str,
                   config: Optional[TrieConfig] = None,
                   third_override: Optional[np.ndarray] = None) -> PermutationTrie:
        """Build the trie for one permutation of the triples."""
        permutation = PERMUTATIONS.get(permutation_name.lower())
        if permutation is None:
            raise IndexBuildError(f"unknown permutation {permutation_name!r}")
        config = config or self._configs[permutation.name]
        first, second, third = self._store.sorted_columns(permutation.order)
        num_first = self._role_universe[permutation.order[0]]
        return PermutationTrie.from_sorted_columns(
            first, second, third,
            permutation_name=permutation.name,
            config=config,
            num_first=num_first,
            third_override=third_override,
        )

    def build_ps_structure(self) -> PairStructure:
        """Build the predicate -> subjects auxiliary structure used by 2To."""
        subjects, predicates, _ = self._store.columns()
        return PairStructure.from_pairs(
            predicates, subjects, num_first=self._role_universe[PREDICATE])

    # ------------------------------------------------------------------ #
    # Index layouts.
    # ------------------------------------------------------------------ #

    def build(self, layout: str = "2tp"
              ) -> Union[PermutedTrieIndex, CrossCompressedIndex, TwoTrieIndex]:
        """Build an index with the requested ``layout`` (one of :data:`LAYOUTS`)."""
        layout = layout.lower()
        if layout == "3t":
            return self.build_3t()
        if layout == "cc":
            return self.build_cc()
        if layout == "2tp":
            return self.build_2tp()
        if layout == "2to":
            return self.build_2to()
        raise IndexBuildError(f"unknown layout {layout!r}; available: {LAYOUTS}")

    def build_3t(self) -> PermutedTrieIndex:
        """Build the 3T index (SPO + POS + OSP)."""
        tries = {name: self.build_trie(name) for name in ("spo", "pos", "osp")}
        return PermutedTrieIndex(tries)

    def build_cc(self) -> CrossCompressedIndex:
        """Build the cross-compressed index (3T with POS level 3 rewritten)."""
        spo = self.build_trie("spo")
        # OSP keeps Compact on its second level so the unmap random access is
        # cheap, as the paper recommends.
        osp_config = TrieConfig(
            level1_nodes="compact",
            level2_nodes=self._configs["osp"].level2_nodes,
            codec_options=self._configs["osp"].codec_options,
        )
        osp = self.build_trie("osp", config=osp_config)
        pos_permutation = PERMUTATIONS["pos"]
        pos_first, pos_second, pos_third = self._store.sorted_columns(pos_permutation.order)
        ranks = compute_cross_compressed_third_level(pos_first, pos_second, pos_third)
        pos = PermutationTrie.from_sorted_columns(
            pos_first, pos_second, pos_third,
            permutation_name="pos",
            config=self._configs["pos"],
            num_first=self._role_universe[PREDICATE],
            third_override=ranks,
        )
        return CrossCompressedIndex({"spo": spo, "pos": pos, "osp": osp})

    def build_2tp(self) -> TwoTrieIndex:
        """Build the predicate-based two-trie index (SPO + POS)."""
        return TwoTrieIndex(self.build_trie("spo"), self.build_trie("pos"), variant="p")

    def build_2to(self) -> TwoTrieIndex:
        """Build the object-based two-trie index (SPO + OPS + PS)."""
        return TwoTrieIndex(self.build_trie("spo"), self.build_trie("ops"),
                            variant="o", ps_structure=self.build_ps_structure())


def build_index(store: TripleStore, layout: str = "2tp",
                trie_configs: Optional[Dict[str, TrieConfig]] = None):
    """Convenience wrapper: ``IndexBuilder(store, trie_configs).build(layout)``."""
    return IndexBuilder(store, trie_configs=trie_configs).build(layout)
