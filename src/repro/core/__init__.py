"""The paper's contribution: permuted trie indexes over integer triples.

* :class:`repro.core.index_3t.PermutedTrieIndex` — the 3T layout (SPO + POS +
  OSP) of Section 3.1;
* :class:`repro.core.cross_compression.CrossCompressedIndex` — the CC variant
  of Section 3.2 (POS third level re-written through OSP sub-trees);
* :class:`repro.core.index_2t.TwoTrieIndex` — the 2Tp / 2To variants of
  Section 3.3 (one permutation eliminated, ``S?O`` answered by the
  ``enumerate`` algorithm, the remaining pattern by the ``inverted``
  algorithm);
* :class:`repro.core.builder.IndexBuilder` — constructs any of the above from
  a :class:`repro.rdf.triples.TripleStore` with per-level codec selection.
"""

from repro.core.base import TripleIndex
from repro.core.builder import IndexBuilder, build_index
from repro.core.cross_compression import CrossCompressedIndex
from repro.core.index_2t import TwoTrieIndex
from repro.core.index_3t import PermutedTrieIndex
from repro.core.patterns import PatternKind, TriplePattern
from repro.core.permutations import PERMUTATIONS, Permutation
from repro.core.range_queries import RangeQueryEngine
from repro.core.trie import PermutationTrie, TrieConfig

__all__ = [
    "TripleIndex",
    "IndexBuilder",
    "build_index",
    "PermutedTrieIndex",
    "CrossCompressedIndex",
    "TwoTrieIndex",
    "PatternKind",
    "TriplePattern",
    "Permutation",
    "PERMUTATIONS",
    "PermutationTrie",
    "TrieConfig",
    "RangeQueryEngine",
]
