"""repro — a pure-Python reproduction of "Compressed Indexes for Fast Search
of Semantic Data" (Perego, Pibiri, Venturini).

The package is organised in layers:

* :mod:`repro.sequences` — compressed integer-sequence codecs (Compact,
  Elias-Fano, partitioned Elias-Fano, VByte) and the bit-vector / rank-select
  substrate they are built on.
* :mod:`repro.structures` — auxiliary succinct structures (wavelet tree).
* :mod:`repro.rdf` — RDF data model: triples, N-Triples parsing, string
  dictionaries.
* :mod:`repro.core` — the paper's contribution: the permuted trie indexes
  (3T), the cross-compressed variant (CC) and the two-trie variants
  (2Tp / 2To), together with the select / enumerate / inverted pattern
  matching algorithms.
* :mod:`repro.baselines` — the competitors evaluated in the paper
  (HDT-FoQ, TripleBit, vertical partitioning, RDF-3X-like, BitMat-like).
* :mod:`repro.datasets` — synthetic dataset generators calibrated to the
  statistics of the paper's datasets, plus WatDiv- and LUBM-like generators.
* :mod:`repro.queries` — triple-pattern workloads, a small SPARQL BGP
  front-end and the selectivity-based query planner used to decompose
  SPARQL queries into sequences of triple selection patterns.
* :mod:`repro.bench` — measurement harness (bits/triple, ns/triple) and
  paper-style table rendering used by the ``benchmarks/`` suite.
* :mod:`repro.storage` — persistence: a versioned, checksummed binary
  container format with save/load for every codec, trie, index family and
  dictionary, plus the write-ahead log behind dynamic updates, behind the
  ``repro`` command-line interface (:mod:`repro.cli`).
* :mod:`repro.dynamic` — dynamic updates over the static indexes: a
  WAL-backed delta store (inserts + tombstones), the
  :class:`~repro.dynamic.DynamicIndex` merged overlay both query engines
  execute against, and online compaction back into a fresh index.

Quickstart
----------

>>> from repro import TripleStore, IndexBuilder
>>> store = TripleStore.from_triples([(0, 0, 2), (0, 1, 0), (1, 0, 4)])
>>> index = IndexBuilder(store).build("2tp")
>>> sorted(index.select((0, None, None)))
[(0, 0, 2), (0, 1, 0)]
"""

from repro.core.builder import IndexBuilder, build_index
from repro.dynamic import DeltaState, DynamicIndex
from repro.storage import load_index, save_index
from repro.core.index_2t import TwoTrieIndex
from repro.core.index_3t import PermutedTrieIndex
from repro.core.cross_compression import CrossCompressedIndex
from repro.core.patterns import TriplePattern, PatternKind
from repro.rdf.triples import Triple, TripleStore
from repro.rdf.dictionary import Dictionary, RdfDictionary

__all__ = [
    "IndexBuilder",
    "build_index",
    "PermutedTrieIndex",
    "CrossCompressedIndex",
    "TwoTrieIndex",
    "TriplePattern",
    "PatternKind",
    "Triple",
    "TripleStore",
    "Dictionary",
    "RdfDictionary",
    "DeltaState",
    "DynamicIndex",
    "save_index",
    "load_index",
]

__version__ = "1.0.0"
