"""Transport-agnostic wire codec for bindings, triples, errors and stats.

One serialisation vocabulary shared by every surface that ships query
results between processes: the HTTP endpoints and CLI ``--json`` output
(through :mod:`repro.service.jsonio`, which keeps the historical names)
and the cluster shard RPC (:mod:`repro.cluster.rpc`).  Extracting the
codec from the HTTP layer is what lets a coordinator deserialise a shard's
reply with the exact inverse of the function the shard used to build it.

Every ``encode_*`` function returns plain JSON-compatible data (dicts,
lists, strings, ints) and has a ``decode_*`` inverse restoring the
engine-native form, with ``decode(encode(x)) == x`` — the round-trip law
pinned by ``tests/test_wire.py``.  Conventions:

* engine-native variables carry their ``?`` sigil (``?person``); on the
  wire they are bare names (``"person"``), matching the spirit of the
  SPARQL JSON results format;
* bindings are flat objects mapping bare variable name to integer
  component ID (the native currency of the indexes);
* errors travel as ``{"type": <class name>, "message": <str>}`` and decode
  back into the matching :mod:`repro.errors` class (or the base
  :class:`~repro.errors.ReproError` for unknown types), so a remote
  failure re-raises locally with its original meaning;
* execution statistics travel as the four counters of
  :class:`~repro.queries.planner.ExecutionStatistics`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro import errors as _errors
from repro.errors import ReproError
from repro.queries.planner import ExecutionStatistics

#: ``name -> class`` for every error type in :mod:`repro.errors` — how a
#: decoded wire error finds the class the remote side raised.
ERROR_TYPES: Dict[str, type] = {
    name: value for name, value in vars(_errors).items()
    if isinstance(value, type) and issubclass(value, ReproError)}


# --------------------------------------------------------------------------- #
# Variables and bindings.
# --------------------------------------------------------------------------- #

def variable_name(variable: str) -> str:
    """``?person`` → ``person`` (already-bare names pass through)."""
    return variable[1:] if variable.startswith("?") else variable


def variable_sigil(name: str) -> str:
    """``person`` → ``?person``, the engine-native spelling."""
    return name if name.startswith("?") else "?" + name


def encode_bindings(variables: Sequence[str],
                    bindings: Sequence[Mapping[str, int]]
                    ) -> Dict[str, Any]:
    """Bare-name variable list + binding rows, ready for ``json.dumps``."""
    return {
        "variables": [variable_name(v) for v in variables],
        "bindings": [{variable_name(v): int(value)
                      for v, value in binding.items()}
                     for binding in bindings],
    }


def decode_bindings(payload: Mapping[str, Any]
                    ) -> Tuple[Tuple[str, ...], List[Dict[str, int]]]:
    """The engine-native ``(variables, rows)`` pair behind a wire payload."""
    variables = tuple(variable_sigil(name) for name in payload["variables"])
    rows = [{variable_sigil(name): int(value) for name, value in row.items()}
            for row in payload["bindings"]]
    return variables, rows


# --------------------------------------------------------------------------- #
# Triples.
# --------------------------------------------------------------------------- #

def encode_triples(triples: Sequence[Tuple[int, int, int]]) -> List[List[int]]:
    """ID triples as JSON rows (terms stay integers on the wire)."""
    return [[int(s), int(p), int(o)] for s, p, o in triples]


def decode_triples(rows: Sequence[Sequence[int]]
                   ) -> List[Tuple[int, int, int]]:
    return [(int(s), int(p), int(o)) for s, p, o in rows]


# --------------------------------------------------------------------------- #
# BGP queries (the cluster pushdown payload).
# --------------------------------------------------------------------------- #

def encode_query(query) -> Dict[str, Any]:
    """A :class:`~repro.queries.sparql.SparqlQuery` as JSON: projection as
    bare names, pattern terms as ints (constants) or ``?``-strings."""
    return {
        "projection": [variable_name(v) for v in query.projection],
        "patterns": [[term if isinstance(term, int) else str(term)
                      for term in template.terms()]
                     for template in query.bgp],
    }


def decode_query(payload: Mapping[str, Any]):
    from repro.queries.sparql import (
        BasicGraphPattern,
        SparqlQuery,
        TriplePatternTemplate,
    )
    templates = [
        TriplePatternTemplate(*(
            int(term) if isinstance(term, (int, float)) else str(term)
            for term in row))
        for row in payload.get("patterns", [])]
    projection = tuple(variable_sigil(name)
                       for name in payload.get("projection", []))
    return SparqlQuery(projection=projection,
                       bgp=BasicGraphPattern(templates))


# --------------------------------------------------------------------------- #
# Errors.
# --------------------------------------------------------------------------- #

def encode_error(error: Exception) -> Dict[str, str]:
    """``{"type", "message"}`` naming what failed (wrap under ``"error"``)."""
    return {"type": type(error).__name__, "message": str(error)}


def decode_error(payload: Mapping[str, Any]) -> ReproError:
    """Rebuild the exception a remote :func:`encode_error` described.

    Unknown type names (a newer peer, a non-repro exception) decode to the
    base :class:`~repro.errors.ReproError` with the type folded into the
    message, so nothing is silently dropped.
    """
    type_name = str(payload.get("type", "ReproError"))
    message = str(payload.get("message", ""))
    error_type = ERROR_TYPES.get(type_name)
    if error_type is None:
        return ReproError(f"{type_name}: {message}" if message else type_name)
    return error_type(message)


# --------------------------------------------------------------------------- #
# Execution statistics.
# --------------------------------------------------------------------------- #

#: The additive counters of :class:`ExecutionStatistics` (``engine`` is the
#: one non-counter field).  ``seeks``/``blocks_decoded`` joined the frame in
#: the observability release; :func:`decode_statistics` tolerates their
#: absence, so mixed-version peers interoperate.
STATISTICS_COUNTERS = ("patterns_executed", "triples_matched",
                       "cartesian_joins", "seeks", "blocks_decoded")


def encode_statistics(statistics: ExecutionStatistics) -> Dict[str, Any]:
    payload: Dict[str, Any] = {
        counter: int(getattr(statistics, counter))
        for counter in STATISTICS_COUNTERS}
    payload["engine"] = statistics.engine
    return payload


def decode_statistics(payload: Mapping[str, Any]) -> ExecutionStatistics:
    statistics = ExecutionStatistics()
    for counter in STATISTICS_COUNTERS:
        setattr(statistics, counter, int(payload.get(counter, 0)))
    statistics.engine = payload.get("engine", statistics.engine)
    return statistics


def merge_statistics(payloads: Sequence[Mapping[str, Any]],
                     engine: Optional[str] = None) -> Dict[str, Any]:
    """Sum counter payloads from several shards into one summary.

    ``engine`` names the executor the merged summary advertises (the one
    the request asked for); with ``None`` the first payload's engine wins.
    """
    merged: Dict[str, Any] = dict.fromkeys(STATISTICS_COUNTERS, 0)
    merged["engine"] = engine or (payloads[0].get("engine", "nested")
                                  if payloads else "nested")
    for payload in payloads:
        for counter in STATISTICS_COUNTERS:
            merged[counter] += int(payload.get(counter, 0))
    return merged


# --------------------------------------------------------------------------- #
# Trace context.
# --------------------------------------------------------------------------- #

# The distributed-trace context travels on the wire exactly as
# ``repro.obs.spans`` encodes it: an optional ``{"trace_id": <32-hex>,
# "parent_span_id": <16-hex>}`` object attached to a request frame.
# Re-exported here so RPC layers import one codec module for the whole
# frame vocabulary.
from repro.obs.spans import (  # noqa: E402  (codec re-export)
    decode_trace_context,
    encode_trace_context,
)
