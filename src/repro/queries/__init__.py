"""Query workloads, a minimal SPARQL BGP front-end and the query planner."""

from repro.queries.workload import PatternWorkload, build_workloads, sample_patterns
from repro.queries.sparql import BasicGraphPattern, SparqlQuery, TriplePatternTemplate, parse_sparql
from repro.queries.planner import (
    ENGINES,
    CartesianProductWarning,
    ExecutionStatistics,
    QueryPlanner,
    decompose_into_patterns,
    execute_bgp,
    stream_bgp,
)
from repro.queries.wcoj import choose_engine, plan_variable_order, stream_bgp_wcoj
from repro.queries.logs import lubm_query_log, watdiv_query_log

__all__ = [
    "ENGINES",
    "CartesianProductWarning",
    "ExecutionStatistics",
    "stream_bgp",
    "stream_bgp_wcoj",
    "choose_engine",
    "plan_variable_order",
    "PatternWorkload",
    "build_workloads",
    "sample_patterns",
    "BasicGraphPattern",
    "SparqlQuery",
    "TriplePatternTemplate",
    "parse_sparql",
    "QueryPlanner",
    "execute_bgp",
    "decompose_into_patterns",
    "lubm_query_log",
    "watdiv_query_log",
]
