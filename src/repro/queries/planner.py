"""Query planning: decomposing a BGP into an ordered sequence of triple
selection patterns and executing it with nested index lookups.

The paper's Table 6 experiment uses the query-planning algorithm of TripleBit
to obtain a *serial decomposition* of each SPARQL query into atomic selection
patterns, so that all indexes are exercised on exactly the same pattern
sequence.  :class:`QueryPlanner` implements the same selectivity-driven
greedy strategy:

1. start from the template with the most bound components (ties broken by the
   estimated cardinality of its bound components);
2. repeatedly pick the next template that shares at least one variable with
   the already-planned part (to avoid Cartesian products), again preferring
   the most selective one.

A BGP whose join graph is disconnected has no such ordering: the planner then
falls back to an explicit Cartesian product between the connected components
and says so with a :class:`CartesianProductWarning` (the nested-loop executor
still produces the correct cross product, it is just expensive).

Execution is *streaming*: :func:`stream_bgp` walks the plan as a depth-first
nested-loop join and lazily yields one solution binding at a time, so a
caller asking for the first ``k`` solutions (``LIMIT k``) never materialises
the full result set and a wall-clock ``timeout`` can cut off a runaway query
mid-join.  :func:`execute_bgp` is the eager wrapper that collects the stream
into a list, recording every atomic selection pattern issued — that recorded
sequence is what the Table 6 benchmark replays.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.base import TripleIndex
from repro.core.patterns import TriplePattern
from repro.errors import PatternError, QueryTimeoutError
from repro.queries.sparql import (
    BasicGraphPattern,
    SparqlQuery,
    TriplePatternTemplate,
    is_variable,
)
from repro.rdf.triples import TripleStore

#: Per-role cardinality histograms: ``{role: {component_id: triple_count}}``
#: for roles 0 (subject), 1 (predicate), 2 (object).
Cardinalities = Dict[int, Dict[int, int]]

#: The BGP executors every layer (library, service, HTTP, CLI) accepts.
ENGINES = ("nested", "wcoj", "auto")


class CartesianProductWarning(UserWarning):
    """The BGP's join graph is disconnected; a Cartesian product was planned."""


@dataclass
class ExecutionStatistics:
    """What happened while executing one BGP."""

    patterns_executed: int = 0
    triples_matched: int = 0
    results: int = 0
    cartesian_joins: int = 0
    #: Cursor repositioning calls (leapfrog ``next_geq`` seeks) and decoded
    #: candidate blocks.  Both are bumped at seek/block granularity (never
    #: per value), so they are cheap enough to stay on unconditionally and
    #: feed the per-engine Prometheus counters.
    seeks: int = 0
    blocks_decoded: int = 0
    #: Which executor produced the results: ``"nested"`` (binary nested-loop
    #: pipeline) or ``"wcoj"`` (leapfrog worst-case-optimal multiway join).
    engine: str = "nested"
    executed_patterns: List[TriplePattern] = field(default_factory=list)


class QueryPlanner:
    """Selectivity-driven greedy ordering of BGP templates.

    Selectivity estimates come from per-role cardinality histograms, obtained
    either from a live :class:`TripleStore` (``store=``) or from previously
    computed (e.g. persisted alongside a saved index, then loaded) histograms
    (``cardinalities=``).  Without either, a bound-component heuristic is
    used.
    """

    def __init__(self, store: Optional[TripleStore] = None,
                 cardinalities: Optional[Cardinalities] = None):
        if cardinalities is not None:
            self._cardinalities: Optional[Cardinalities] = cardinalities
        elif store is not None:
            self._cardinalities = self._component_cardinalities(store)
        else:
            self._cardinalities = None

    @property
    def cardinalities(self) -> Optional[Cardinalities]:
        """The histograms driving the estimates (``None`` = heuristic mode)."""
        return self._cardinalities

    @staticmethod
    def _component_cardinalities(store: TripleStore) -> Cardinalities:
        """Per-role histograms: how many triples every bound ID would match."""
        import numpy as np
        cardinalities: Cardinalities = {}
        for role in (0, 1, 2):
            values, counts = np.unique(store.column(role), return_counts=True)
            cardinalities[role] = {int(v): int(c) for v, c in zip(values, counts)}
        return cardinalities

    # Public alias: the serving/storage layers compute histograms once at
    # build time and persist them next to the index.
    cardinalities_from_store = _component_cardinalities

    def _selectivity_score(self, template: TriplePatternTemplate) -> Tuple[int, float]:
        """Lower scores are planned first."""
        bound = template.num_bound()
        estimate = float("inf")
        if self._cardinalities is not None:
            estimate = 1.0
            for role, term in enumerate(template.terms()):
                if not is_variable(term):
                    count = self._cardinalities[role].get(int(term), 0)
                    estimate = min(estimate * max(count, 1), 1e18)
            if bound == 0:
                estimate = 1e18
        else:
            estimate = {3: 1.0, 2: 10.0, 1: 1000.0, 0: 1e9}[bound]
        return (-bound, estimate)

    def selectivity_key(self, template: TriplePatternTemplate) -> Tuple[int, float]:
        """Public ordering key: templates with lower keys are more selective.

        The second element is the cardinality estimate (product of the bound
        components' histogram counts, or a bound-count heuristic without
        histograms).  The wcoj engine uses this to pick variable elimination
        orders and materialisation victims.
        """
        return self._selectivity_score(template)

    def plan_order(self, bgp: BasicGraphPattern) -> Tuple[Tuple[int, ...], int]:
        """Plan ``bgp`` and return ``(template order, num Cartesian joins)``.

        The order is a permutation of template indexes — a compact, immutable
        value the serving layer caches per normalized BGP.  The second element
        counts the joins taken without any shared variable (0 for a connected
        BGP); each one triggered an explicit Cartesian-product fallback.
        """
        if len(bgp) == 0:
            raise PatternError("cannot plan an empty basic graph pattern")
        indexed = list(enumerate(bgp.templates))
        indexed.sort(key=lambda pair: self._selectivity_score(pair[1]))
        order: List[int] = [indexed[0][0]]
        remaining = indexed[1:]
        bound_variables: Set[str] = set(indexed[0][1].variables())
        cartesian_joins = 0
        while remaining:
            connected = [pair for pair in remaining
                         if bound_variables.intersection(pair[1].variables())]
            if not connected:
                cartesian_joins += 1
            candidates = connected or remaining
            candidates.sort(key=lambda pair: self._selectivity_score(pair[1]))
            chosen = candidates[0]
            remaining.remove(chosen)
            order.append(chosen[0])
            bound_variables.update(chosen[1].variables())
        if cartesian_joins:
            warnings.warn(
                f"basic graph pattern is disconnected: {cartesian_joins} "
                f"join step(s) share no variable with the already-planned "
                f"part; falling back to an explicit Cartesian product",
                CartesianProductWarning, stacklevel=2)
        return tuple(order), cartesian_joins

    def plan(self, bgp: BasicGraphPattern) -> List[TriplePatternTemplate]:
        """Order the templates of ``bgp`` for execution."""
        order, _ = self.plan_order(bgp)
        return [bgp.templates[i] for i in order]


def decompose_into_patterns(query: SparqlQuery, store: Optional[TripleStore] = None
                            ) -> List[TriplePatternTemplate]:
    """Return the ordered template sequence the planner would execute."""
    return QueryPlanner(store).plan(query.bgp)


def _extend_binding(binding: Dict[str, int], template: TriplePatternTemplate,
                    triple: Tuple[int, int, int]) -> Optional[Dict[str, int]]:
    """Extend ``binding`` with ``template``'s variables bound to ``triple``.

    Returns ``None`` when the triple is inconsistent with the binding (a
    repeated variable matched two different IDs).
    """
    extended = dict(binding)
    for role, term in enumerate(template.terms()):
        if is_variable(term):
            value = triple[role]
            if term in extended and extended[term] != value:
                return None
            extended[term] = value
    return extended


def _stream_join(index: TripleIndex, plan: Sequence[TriplePatternTemplate],
                 statistics: ExecutionStatistics,
                 deadline: Optional[float],
                 profile: Optional[Sequence] = None
                 ) -> Iterator[Dict[str, int]]:
    """Depth-first nested-loop join over ``plan``, yielding full bindings.

    Lazy end to end: the next solution is computed only when the consumer
    asks for it, so downstream ``LIMIT``/pagination stops the join early
    instead of materialising every intermediate binding list.

    ``profile`` (one :class:`repro.obs.OperatorCounters` per plan level)
    turns on per-level tallies.  The unprofiled path pays one ``is None``
    test per level *visit*; the profiled scalar loop is a separate body
    that accumulates into locals and flushes once per visit, so neither
    path ever does per-value flag checks.
    """
    num_levels = len(plan)
    # One pattern execution against a snapshot with a live delta merges the
    # overlay into the scan; detected once so the per-level counter is free.
    delta = getattr(index, "delta", None)
    overlay_active = 1 if delta is not None and len(delta) else 0
    # Per-template term shape, computed once per plan: (role, constant, name)
    # with exactly one of constant/name set.  ``final_level_block`` runs once
    # per innermost-level visit, so re-scanning the template there would cost
    # tens of thousands of ``is_variable`` calls on join-heavy queries.
    term_shapes = [
        tuple((role, None if is_variable(term) else int(term),
               term if is_variable(term) else None)
              for role, term in enumerate(template.terms()))
        for template in plan
    ]

    def final_level_block(depth: int, binding: Dict[str, int]):
        """``(variable, block)`` for the innermost level, or ``None``.

        When the last template has exactly one free occurrence of one
        variable under ``binding``, every solution it contributes is one
        value of that variable — so the index can hand back the whole sorted
        candidate block in a single vectorised pass (``select_values``)
        instead of streaming triples one by one.  Any other shape (repeated
        free variable, fully bound, no exact block source) returns ``None``
        and the scalar pipeline below runs unchanged.
        """
        bound: Dict[int, int] = {}
        free_role = -1
        free_variable = ""
        for role, constant, name in term_shapes[depth]:
            if name is None:
                bound[role] = constant
                continue
            value = binding.get(name)
            if value is None:
                if free_role >= 0:
                    return None
                free_role, free_variable = role, name
            else:
                bound[role] = value
        if free_role < 0:
            return None
        block = index.select_values(bound, free_role)
        if block is None:
            return None
        return free_variable, block

    def recurse(depth: int, binding: Dict[str, int]) -> Iterator[Dict[str, int]]:
        template = plan[depth]
        level = None if profile is None else profile[depth]
        if depth + 1 == num_levels:
            native = final_level_block(depth, binding)
            if native is not None:
                if deadline is not None and time.monotonic() > deadline:
                    raise QueryTimeoutError(
                        "query exceeded its wall-clock timeout "
                        f"after matching {statistics.triples_matched} triples")
                variable, block = native
                statistics.patterns_executed += 1
                statistics.blocks_decoded += 1
                statistics.executed_patterns.append(
                    template.bind(binding).to_selection_pattern())
                matched = int(block.size)
                statistics.triples_matched += matched
                if level is not None:
                    level.visits += 1
                    level.blocks += 1
                    level.values += matched
                    level.bindings += matched
                    if overlay_active:
                        level.overlay_merges += 1
                # Re-check the deadline every 1024 yielded values: a single
                # block can hold millions of candidates, and the pre-block
                # check alone would let one vectorised level overshoot the
                # wall-clock budget by the whole block's consumption time.
                for position, value in enumerate(block.tolist()):
                    if (deadline is not None and position
                            and not (position & 1023)
                            and time.monotonic() > deadline):
                        raise QueryTimeoutError(
                            "query exceeded its wall-clock timeout "
                            f"after matching {statistics.triples_matched} "
                            "triples")
                    extended = dict(binding)
                    extended[variable] = value
                    yield extended
                return
        pattern = template.bind(binding).to_selection_pattern()
        statistics.patterns_executed += 1
        statistics.executed_patterns.append(pattern)
        if level is None:
            for triple in index.select(pattern):
                statistics.triples_matched += 1
                if deadline is not None and time.monotonic() > deadline:
                    raise QueryTimeoutError(
                        "query exceeded its wall-clock timeout "
                        f"after matching {statistics.triples_matched} triples")
                extended = _extend_binding(binding, template, triple)
                if extended is None:
                    continue
                if depth + 1 == num_levels:
                    yield extended
                else:
                    yield from recurse(depth + 1, extended)
            return
        # Profiled scalar loop: same pipeline, tallying into locals that are
        # flushed once per level visit (even when the consumer abandons the
        # stream mid-loop, via the finally).
        level.visits += 1
        if overlay_active:
            level.overlay_merges += 1
        scanned = 0
        produced = 0
        try:
            for triple in index.select(pattern):
                statistics.triples_matched += 1
                scanned += 1
                if deadline is not None and time.monotonic() > deadline:
                    raise QueryTimeoutError(
                        "query exceeded its wall-clock timeout "
                        f"after matching {statistics.triples_matched} triples")
                extended = _extend_binding(binding, template, triple)
                if extended is None:
                    continue
                produced += 1
                if depth + 1 == num_levels:
                    yield extended
                else:
                    yield from recurse(depth + 1, extended)
        finally:
            level.scanned += scanned
            level.bindings += produced

    if deadline is not None and time.monotonic() > deadline:
        raise QueryTimeoutError("query exceeded its wall-clock timeout "
                                "before executing any pattern")
    yield from recurse(0, {})


def stream_bgp(index: TripleIndex, query: SparqlQuery,
               store: Optional[TripleStore] = None,
               planner: Optional[QueryPlanner] = None,
               plan: Optional[Sequence[TriplePatternTemplate]] = None,
               limit: Optional[int] = None,
               offset: int = 0,
               timeout: Optional[float] = None,
               statistics: Optional[ExecutionStatistics] = None,
               engine: str = "nested",
               profile: Optional[Sequence] = None
               ) -> Iterator[Dict[str, int]]:
    """Lazily yield the solutions of ``query``'s BGP, projected.

    ``limit``/``offset`` implement result pagination: the first ``offset``
    solutions are skipped (they must still be computed — this is a
    nested-loop engine, not an indexed cursor) and at most ``limit`` are
    yielded, after which the underlying join is abandoned without computing
    the remaining solutions.  ``timeout`` (seconds) bounds wall-clock time;
    exceeding it raises :class:`repro.errors.QueryTimeoutError`.

    ``engine`` selects the executor: ``"nested"`` (this module's depth-first
    nested-loop pipeline, the default), ``"wcoj"`` (the leapfrog multiway
    join of :mod:`repro.queries.wcoj`) or ``"auto"`` (wcoj for cyclic and
    multi-join BGPs, nested otherwise).  Both produce the same solution
    multiset; the enumeration order differs.  ``statistics.engine`` records
    which executor ran.

    ``plan`` short-circuits planning with a pre-ordered template sequence
    (the serving layer's plan cache); otherwise ``planner`` (or a fresh
    planner over ``store``) orders the BGP.  Pass a ``statistics`` object to
    observe progress; ``statistics.results`` counts the yielded solutions.

    This wrapper validates and resolves ``engine`` eagerly — a bad engine
    name raises here, at call time, not at the first ``next()``.  A
    pre-ordered ``plan`` is inherently a nested-loop artifact: passing one
    pins ``engine="auto"`` to the nested executor, and combining it with
    ``engine="wcoj"`` is rejected (the multiway join orders variables, not
    templates, so the plan could not be honoured).
    """
    if engine not in ENGINES:
        raise PatternError(
            f"unknown engine {engine!r}; expected one of {ENGINES}")
    if engine == "auto":
        if plan is not None:
            engine = "nested"
        else:
            from repro.queries.wcoj import choose_engine
            engine = choose_engine(query.bgp)
    if engine == "wcoj":
        if plan is not None:
            raise PatternError(
                "a pre-ordered template plan only applies to the nested-loop "
                "executor; drop plan= or use engine='nested'")
        from repro.queries.wcoj import stream_bgp_wcoj
        return stream_bgp_wcoj(
            index, query, store=store, planner=planner, limit=limit,
            offset=offset, timeout=timeout, statistics=statistics,
            profile=profile)
    return _stream_bgp_nested(index, query, store=store, planner=planner,
                              plan=plan, limit=limit, offset=offset,
                              timeout=timeout, statistics=statistics,
                              profile=profile)


def _stream_bgp_nested(index: TripleIndex, query: SparqlQuery,
                       store: Optional[TripleStore] = None,
                       planner: Optional[QueryPlanner] = None,
                       plan: Optional[Sequence[TriplePatternTemplate]] = None,
                       limit: Optional[int] = None,
                       offset: int = 0,
                       timeout: Optional[float] = None,
                       statistics: Optional[ExecutionStatistics] = None,
                       profile: Optional[Sequence] = None
                       ) -> Iterator[Dict[str, int]]:
    """The nested-loop executor behind :func:`stream_bgp`."""
    if limit is not None and limit <= 0:
        return
    stats = statistics if statistics is not None else ExecutionStatistics()
    stats.engine = "nested"
    if plan is None:
        order, cartesian_joins = (planner or QueryPlanner(store)
                                  ).plan_order(query.bgp)
        plan = [query.bgp.templates[i] for i in order]
        stats.cartesian_joins = cartesian_joins
    if profile is not None and len(profile) != len(plan):
        raise PatternError(
            f"profile needs one counter per plan level: "
            f"{len(profile)} != {len(plan)}")
    deadline = None if timeout is None else time.monotonic() + timeout
    projection = query.projection or query.variables()
    skipped = 0
    yielded = 0
    for binding in _stream_join(index, plan, stats, deadline, profile):
        if skipped < offset:
            skipped += 1
            continue
        stats.results += 1
        yielded += 1
        yield {variable: binding[variable] for variable in projection
               if variable in binding}
        if limit is not None and yielded >= limit:
            return


def execute_bgp(index: TripleIndex, query: SparqlQuery,
                store: Optional[TripleStore] = None,
                max_results: Optional[int] = None,
                limit: Optional[int] = None,
                offset: int = 0,
                timeout: Optional[float] = None,
                planner: Optional[QueryPlanner] = None,
                plan: Optional[Sequence[TriplePatternTemplate]] = None,
                cardinalities: Optional[Cardinalities] = None,
                engine: str = "nested"
                ) -> Tuple[List[Dict[str, int]], ExecutionStatistics]:
    """Execute a BGP with nested-loop joins over ``index``.

    Returns the variable bindings of the solutions (projected onto the query's
    projection) and the execution statistics, including the exact sequence of
    atomic selection patterns issued — the unit of measurement of the paper's
    Table 6.  ``max_results`` is the historical spelling of ``limit``; when
    both are given the smaller wins.  See :func:`stream_bgp` for the
    ``limit``/``offset``/``timeout``/``engine`` semantics — this wrapper
    merely collects the stream eagerly.

    Note that ``limit`` bounds the *results*, not the join work: the first
    ``limit`` solutions are exact (the historical per-level cap could
    silently drop valid solutions), but a query whose solutions are sparse
    may explore a large join before producing them — bound the work with
    ``timeout`` when that matters.
    """
    if max_results is not None:
        limit = max_results if limit is None else min(limit, max_results)
    if planner is None and (store is not None or cardinalities is not None):
        planner = QueryPlanner(store, cardinalities=cardinalities)
    statistics = ExecutionStatistics()
    results = list(stream_bgp(index, query, planner=planner, plan=plan,
                              limit=limit, offset=offset, timeout=timeout,
                              statistics=statistics, engine=engine))
    return results, statistics
