"""Query planning: decomposing a BGP into an ordered sequence of triple
selection patterns and executing it with nested index lookups.

The paper's Table 6 experiment uses the query-planning algorithm of TripleBit
to obtain a *serial decomposition* of each SPARQL query into atomic selection
patterns, so that all indexes are exercised on exactly the same pattern
sequence.  :class:`QueryPlanner` implements the same selectivity-driven
greedy strategy:

1. start from the template with the most bound components (ties broken by the
   estimated cardinality of its bound components);
2. repeatedly pick the next template that shares at least one variable with
   the already-planned part (to avoid Cartesian products), again preferring
   the most selective one.

:func:`execute_bgp` then runs the plan with a nested-loop join over the index,
recording every atomic selection pattern it issues — that recorded sequence is
what the Table 6 benchmark replays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.base import TripleIndex
from repro.core.patterns import TriplePattern
from repro.errors import PatternError
from repro.queries.sparql import (
    BasicGraphPattern,
    SparqlQuery,
    TriplePatternTemplate,
    is_variable,
)
from repro.rdf.triples import TripleStore


@dataclass
class ExecutionStatistics:
    """What happened while executing one BGP."""

    patterns_executed: int = 0
    triples_matched: int = 0
    results: int = 0
    executed_patterns: List[TriplePattern] = field(default_factory=list)


class QueryPlanner:
    """Selectivity-driven greedy ordering of BGP templates."""

    def __init__(self, store: Optional[TripleStore] = None):
        self._cardinalities = self._component_cardinalities(store) if store else None

    @staticmethod
    def _component_cardinalities(store: TripleStore) -> Dict[int, Dict[int, int]]:
        """Per-role histograms: how many triples every bound ID would match."""
        import numpy as np
        cardinalities: Dict[int, Dict[int, int]] = {}
        for role in (0, 1, 2):
            values, counts = np.unique(store.column(role), return_counts=True)
            cardinalities[role] = {int(v): int(c) for v, c in zip(values, counts)}
        return cardinalities

    def _selectivity_score(self, template: TriplePatternTemplate) -> Tuple[int, float]:
        """Lower scores are planned first."""
        bound = template.num_bound()
        estimate = float("inf")
        if self._cardinalities is not None:
            estimate = 1.0
            for role, term in enumerate(template.terms()):
                if not is_variable(term):
                    count = self._cardinalities[role].get(int(term), 0)
                    estimate = min(estimate * max(count, 1), 1e18)
            if bound == 0:
                estimate = 1e18
        else:
            estimate = {3: 1.0, 2: 10.0, 1: 1000.0, 0: 1e9}[bound]
        return (-bound, estimate)

    def plan(self, bgp: BasicGraphPattern) -> List[TriplePatternTemplate]:
        """Order the templates of ``bgp`` for execution."""
        if len(bgp) == 0:
            raise PatternError("cannot plan an empty basic graph pattern")
        remaining = list(bgp.templates)
        remaining.sort(key=self._selectivity_score)
        planned: List[TriplePatternTemplate] = [remaining.pop(0)]
        bound_variables: Set[str] = set(planned[0].variables())
        while remaining:
            connected = [t for t in remaining
                         if bound_variables.intersection(t.variables())]
            candidates = connected or remaining
            candidates.sort(key=self._selectivity_score)
            chosen = candidates[0]
            remaining.remove(chosen)
            planned.append(chosen)
            bound_variables.update(chosen.variables())
        return planned


def decompose_into_patterns(query: SparqlQuery, store: Optional[TripleStore] = None
                            ) -> List[TriplePatternTemplate]:
    """Return the ordered template sequence the planner would execute."""
    return QueryPlanner(store).plan(query.bgp)


def execute_bgp(index: TripleIndex, query: SparqlQuery,
                store: Optional[TripleStore] = None,
                max_results: Optional[int] = None
                ) -> Tuple[List[Dict[str, int]], ExecutionStatistics]:
    """Execute a BGP with nested-loop joins over ``index``.

    Returns the variable bindings of the solutions (projected onto the query's
    projection) and the execution statistics, including the exact sequence of
    atomic selection patterns issued — the unit of measurement of the paper's
    Table 6.
    """
    planner = QueryPlanner(store)
    plan = planner.plan(query.bgp)
    statistics = ExecutionStatistics()
    bindings: List[Dict[str, int]] = [{}]
    for template in plan:
        next_bindings: List[Dict[str, int]] = []
        for binding in bindings:
            bound_template = template.bind(binding)
            pattern = bound_template.to_selection_pattern()
            statistics.patterns_executed += 1
            statistics.executed_patterns.append(pattern)
            for s, p, o in index.select(pattern):
                statistics.triples_matched += 1
                extended = dict(binding)
                consistent = True
                for role, term in enumerate(template.terms()):
                    if is_variable(term):
                        value = (s, p, o)[role]
                        if term in extended and extended[term] != value:
                            consistent = False
                            break
                        extended[term] = value
                if consistent:
                    next_bindings.append(extended)
                if max_results is not None and len(next_bindings) >= max_results:
                    break
            if max_results is not None and len(next_bindings) >= max_results:
                break
        bindings = next_bindings
        if not bindings:
            break
    projection = query.projection or query.variables()
    results = [{variable: binding[variable] for variable in projection
                if variable in binding}
               for binding in bindings]
    statistics.results = len(results)
    return results, statistics
