"""Worst-case-optimal multiway join execution (leapfrog triejoin style).

The nested-loop pipeline of :mod:`repro.queries.planner` joins one triple
pattern at a time, which on cyclic BGPs (the canonical example being the
triangle ``?a p ?b . ?b p ?c . ?c p ?a``) can materialise intermediate
results quadratically larger than the final output.  The engine here instead
picks one *global variable elimination order* and, level by level, intersects
the sorted candidate streams that every pattern containing the current
variable exposes — the classic leapfrog triejoin scheme whose running time is
bounded by the AGM worst-case output size.

The trie-shaped index families of the paper are exactly the right substrate:
every sibling range is sorted and seekable through the Elias-Fano ``next_geq``
machinery, surfaced as the cursor protocol of :mod:`repro.core.trie` and the
``seek_cursor`` method of the index families.

Two care points keep the engine correct on arbitrary BGPs and arbitrary
index families:

* **Exactness.**  A native cursor may over-approximate its candidate set
  (e.g. the implicit trie root ignores constants at deeper levels).  That is
  sound while the pattern still has unbound variables — deeper levels
  re-constrain — but the cursor used at a pattern's *last* unbound variable
  must be exact.  When no materialised permutation offers an exact cursor
  (or a variable occurs twice in one pattern, as in ``?x ?p ?x``), the
  engine falls back to materialising the sorted distinct candidates through
  ``index.select`` — which also makes the engine work, unaccelerated, on any
  :class:`~repro.core.base.TripleIndex`, including the baseline oracles.
* **Drivers.**  If every cursor for a variable over-approximates, the
  intersection would degenerate to enumeration; the engine then materialises
  the most selective pattern's candidates so at least one exact, tight
  stream drives the leapfrog.

* **Blocks.**  At the *last* variable of the elimination order the engine
  abandons pointer-chasing entirely: each pattern contributes its sorted
  candidate block (``index.select_values`` / ``cursor.remaining_block()``,
  both numpy int64 arrays) and :func:`_intersect_blocks` intersects them
  with ``searchsorted`` — one vectorised call replacing an entire leapfrog
  round.  The block path inherits the exactness rule *tombstone-
  conservatively*: the dynamic overlay only returns a block when it can
  filter delete tombstones soundly (two bound roles, so each block value
  names exactly one triple) and returns ``None`` otherwise, which drops the
  engine back to the cursor path with its per-candidate filtered fallback.
  A deleted triple can therefore never leak into a block-built solution.
  See ``docs/ARCHITECTURE.md`` for the full protocol contract.

:func:`stream_bgp_wcoj` mirrors the ``limit``/``offset``/``timeout``
semantics of :func:`repro.queries.planner.stream_bgp`; :func:`choose_engine`
implements the ``engine="auto"`` policy (wcoj for cyclic or multi-join BGPs,
nested-loop otherwise).
"""

from __future__ import annotations

import time
import warnings
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.base import TripleIndex
from repro.core.trie import ArrayCursor
from repro.errors import PatternError, QueryTimeoutError
from repro.queries.planner import (
    CartesianProductWarning,
    ExecutionStatistics,
    QueryPlanner,
)
from repro.queries.sparql import (
    BasicGraphPattern,
    SparqlQuery,
    TriplePatternTemplate,
    is_variable,
)
from repro.rdf.triples import TripleStore

#: Materialised candidate lists are memoised per (pattern, variable, bound
#: constants); the cache is dropped wholesale if a pathological query keeps
#: producing fresh prefixes.
_MATERIALISE_CACHE_LIMIT = 65536


# --------------------------------------------------------------------------- #
# Join-graph analysis: engine policy and variable elimination order.
# --------------------------------------------------------------------------- #

def _variable_templates(bgp: BasicGraphPattern) -> Dict[str, List[int]]:
    """Map every variable to the indexes of the templates containing it."""
    occurrences: Dict[str, List[int]] = {}
    for position, template in enumerate(bgp.templates):
        for variable in set(template.variables()):
            occurrences.setdefault(variable, []).append(position)
    return occurrences


def _num_components(bgp: BasicGraphPattern) -> int:
    """Connected components of the join graph (templates linked by variables)."""
    occurrences = _variable_templates(bgp)
    parent = list(range(len(bgp)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    for positions in occurrences.values():
        root = find(positions[0])
        for position in positions[1:]:
            parent[find(position)] = root
    return len({find(i) for i in range(len(bgp))})


def choose_engine(bgp: BasicGraphPattern) -> str:
    """The ``engine="auto"`` policy: ``"wcoj"`` or ``"nested"``.

    Multiway intersection pays off when a variable is constrained by several
    patterns at once: cyclic join graphs (triangles, squares, ...) and
    multi-joins (one variable shared by three or more patterns).  Chain and
    simple star shapes stay on the nested-loop pipeline, whose single-pattern
    scans are cheaper per solution.
    """
    if len(bgp) < 2:
        return "nested"
    occurrences = _variable_templates(bgp)
    if any(len(positions) >= 3 for positions in occurrences.values()):
        return "wcoj"
    # Cycle detection on the bipartite variable/template incidence graph:
    # a forest has exactly (nodes - components) edges, anything more closes
    # a cycle.  Counting multiplicity-one edges per (variable, template)
    # also catches two patterns sharing two variables.
    edges = sum(len(positions) for positions in occurrences.values())
    nodes = len(bgp) + len(occurrences)
    if edges > nodes - _num_components(bgp):
        return "wcoj"
    return "nested"


def variable_estimates(bgp: BasicGraphPattern,
                       planner: Optional[QueryPlanner] = None
                       ) -> Dict[str, float]:
    """Per-variable cardinality estimate: the smallest estimate among the
    patterns constraining that variable.

    These are the numbers :func:`plan_variable_order` greedily minimises —
    surfaced so a query profile can put the planner's *estimated*
    cardinality next to the *actual* bindings each level produced (the
    estimated-vs-actual rows roadmap item 2's feedback loop consumes).
    """
    planner = planner or QueryPlanner()
    return {
        variable: min(planner.selectivity_key(bgp.templates[i])[1]
                      for i in positions)
        for variable, positions in _variable_templates(bgp).items()
    }


def plan_variable_order(bgp: BasicGraphPattern,
                        planner: Optional[QueryPlanner] = None) -> Tuple[str, ...]:
    """Pick a global variable elimination order for ``bgp``.

    Greedy: repeatedly take the variable constrained by the most patterns
    (ties broken by the smallest cardinality estimate among its patterns,
    then by first appearance), preferring variables connected to the part
    already ordered so that disconnected components are eliminated one after
    the other rather than interleaved.
    """
    if len(bgp) == 0:
        raise PatternError("cannot plan an empty basic graph pattern")
    planner = planner or QueryPlanner()
    occurrences = _variable_templates(bgp)
    appearance = {variable: rank for rank, variable
                  in enumerate(bgp.variables())}
    estimates = variable_estimates(bgp, planner)
    order: List[str] = []
    ordered_templates: Set[int] = set()
    remaining = set(occurrences)
    while remaining:
        connected = {variable for variable in remaining
                     if ordered_templates.intersection(occurrences[variable])}
        candidates = connected or remaining
        chosen = min(candidates,
                     key=lambda v: (-len(occurrences[v]), estimates[v],
                                    appearance[v]))
        order.append(chosen)
        ordered_templates.update(occurrences[chosen])
        remaining.discard(chosen)
    return tuple(order)


# --------------------------------------------------------------------------- #
# Candidate cursors per (pattern, variable).
# --------------------------------------------------------------------------- #

class _CursorFactory:
    """Builds successor cursors, falling back to (memoised) materialisation."""

    def __init__(self, index: TripleIndex, statistics: ExecutionStatistics,
                 deadline: Optional[float]):
        self._index = index
        self._seek_cursor = getattr(index, "seek_cursor", None)
        self._statistics = statistics
        self._deadline = deadline
        self._cache: Dict[tuple, List[int]] = {}
        # Per-(template, variable) shape analysis — which roles hold the
        # target variable, which hold constants, which hold other variables —
        # is binding-independent, so it is computed once per query instead of
        # once per recursion step.
        self._shapes: Dict[Tuple[int, str], tuple] = {}

    def _shape_for(self, template_index: int,
                   template: TriplePatternTemplate, variable: str) -> tuple:
        shape = self._shapes.get((template_index, variable))
        if shape is None:
            terms = template.terms()
            positions = [role for role, term in enumerate(terms)
                         if term == variable]
            constants = {role: int(term) for role, term in enumerate(terms)
                         if not is_variable(term)}
            other_vars = [(role, term) for role, term in enumerate(terms)
                          if is_variable(term) and term != variable]
            shape = (positions, constants, other_vars)
            self._shapes[(template_index, variable)] = shape
        return shape

    def cursor_for(self, template_index: int, template: TriplePatternTemplate,
                   binding: Dict[str, int], variable: str):
        """``(cursor, exact)`` for ``variable``'s candidates in one pattern."""
        positions, constants, other_vars = self._shape_for(
            template_index, template, variable)
        if len(positions) == 1 and self._seek_cursor is not None:
            bound = dict(constants)
            has_other_free = False
            for role, name in other_vars:
                value = binding.get(name)
                if value is None:
                    has_other_free = True
                else:
                    bound[role] = value
            native = self._seek_cursor(bound, positions[0])
            if native is not None:
                cursor, exact = native
                if exact or has_other_free:
                    self._statistics.patterns_executed += 1
                    # Positioning a native cursor is one next_geq seek.
                    self._statistics.seeks += 1
                    return cursor, exact
        return self.materialise(template_index, template.bind(binding),
                                variable), True

    def block_for(self, template_index: int,
                  template: TriplePatternTemplate,
                  binding: Dict[str, int], variable: str):
        """Sorted distinct candidate block for the *last* unbound variable of
        one pattern, or ``None`` when no vectorised exact source exists.

        Skips cursor construction entirely by asking the index for
        ``select_values`` on the fully bound shape — the per-binding fast
        path of the deepest join level.
        """
        positions, constants, other_vars = self._shape_for(
            template_index, template, variable)
        if len(positions) != 1:
            return None
        bound = dict(constants)
        for role, name in other_vars:
            value = binding.get(name)
            if value is None:
                return None
            bound[role] = value
        return self._index.select_values(bound, positions[0])

    def materialise(self, template_index: int,
                    bound_template: TriplePatternTemplate,
                    variable: str) -> ArrayCursor:
        """Sorted distinct candidates of ``variable`` via ``index.select``.

        Exact by construction: rows violating a repeated variable inside the
        pattern are dropped before projecting.  Results are memoised on the
        bound constants, so re-entering the same prefix is free (a memo hit
        issues no index operation and is not counted in
        ``patterns_executed``).
        """
        pattern = bound_template.to_selection_pattern()
        key = (template_index, variable, pattern.as_tuple())
        cached = self._cache.get(key)
        if cached is not None:
            return ArrayCursor(cached)
        self._statistics.patterns_executed += 1
        self._statistics.blocks_decoded += 1
        terms = bound_template.terms()
        deadline = self._deadline
        values: Set[int] = set()
        for triple in self._index.select(pattern):
            if deadline is not None and time.monotonic() > deadline:
                raise QueryTimeoutError(
                    "query exceeded its wall-clock timeout while "
                    f"materialising candidates for {variable}")
            consistent: Dict[str, int] = {}
            ok = True
            for role, term in enumerate(terms):
                if is_variable(term):
                    seen = consistent.get(term)
                    if seen is not None and seen != triple[role]:
                        ok = False
                        break
                    consistent[term] = triple[role]
            if ok:
                values.add(consistent[variable])
        candidates = sorted(values)
        if len(self._cache) >= _MATERIALISE_CACHE_LIMIT:
            self._cache.clear()
        self._cache[key] = candidates
        return ArrayCursor(candidates)


def _intersect_blocks(blocks: List[np.ndarray],
                      deadline: Optional[float] = None) -> np.ndarray:
    """Intersect sorted distinct int64 blocks, smallest first.

    ``searchsorted`` of the running intersection into each further block is
    O(|common| log |block|) — unlike ``np.intersect1d`` it never re-sorts the
    concatenation, so a tiny exact block probing a huge one stays cheap.
    The ``deadline`` is re-checked between pairwise steps: each step is one
    vectorised call, but on wide intersections of large blocks the sum of
    steps is where block-heavy plans used to overshoot their timeout.
    """
    blocks = sorted(blocks, key=lambda b: b.size)
    common = blocks[0]
    for other in blocks[1:]:
        if deadline is not None and time.monotonic() > deadline:
            raise QueryTimeoutError(
                "query exceeded its wall-clock timeout during the "
                "multiway block intersection")
        if common.size == 0:
            break
        positions = other.searchsorted(common)
        np.minimum(positions, other.size - 1, out=positions)
        common = common[other[positions] == common]
    return common


def _leapfrog(cursors: Sequence, statistics: ExecutionStatistics,
              deadline: Optional[float], level=None) -> Iterator[int]:
    """Intersect sorted distinct cursors, yielding each common value once.

    ``level`` (an :class:`repro.obs.OperatorCounters`, profiling only)
    additionally attributes the galloping seeks to one join level.  The
    tally accumulates in a local and is flushed once when the generator
    finishes (or is abandoned), so a profiled intersection pays one local
    increment per seek, never an attribute store.
    """
    for cursor in cursors:
        if cursor.key is None:
            return
    if len(cursors) == 1:
        cursor = cursors[0]
        while cursor.key is not None:
            if deadline is not None and time.monotonic() > deadline:
                raise QueryTimeoutError(
                    "query exceeded its wall-clock timeout during the "
                    "multiway intersection")
            statistics.triples_matched += 1
            yield cursor.key
            cursor.advance()
        return
    seeks = 0
    try:
        while True:
            if deadline is not None and time.monotonic() > deadline:
                raise QueryTimeoutError(
                    "query exceeded its wall-clock timeout during the "
                    "multiway intersection")
            lowest = highest = cursors[0].key
            for cursor in cursors[1:]:
                key = cursor.key
                if key < lowest:
                    lowest = key
                elif key > highest:
                    highest = key
            if lowest == highest:
                statistics.triples_matched += 1
                yield highest
                for cursor in cursors:
                    cursor.advance()
                    if cursor.key is None:
                        return
            else:
                for cursor in cursors:
                    if cursor.key < highest:
                        cursor.seek(highest)
                        seeks += 1
                        if cursor.key is None:
                            return
    finally:
        statistics.seeks += seeks
        if level is not None and seeks:
            level.seeks += seeks


# --------------------------------------------------------------------------- #
# The streaming executor.
# --------------------------------------------------------------------------- #

def stream_bgp_wcoj(index: TripleIndex, query: SparqlQuery,
                    store: Optional[TripleStore] = None,
                    planner: Optional[QueryPlanner] = None,
                    limit: Optional[int] = None,
                    offset: int = 0,
                    timeout: Optional[float] = None,
                    statistics: Optional[ExecutionStatistics] = None,
                    variable_order: Optional[Sequence[str]] = None,
                    profile: Optional[Sequence] = None
                    ) -> Iterator[Dict[str, int]]:
    """Lazily yield the solutions of ``query``'s BGP via multiway joins.

    Same contract as :func:`repro.queries.planner.stream_bgp` — projected
    bindings, ``offset`` solutions skipped, at most ``limit`` yielded,
    ``timeout`` seconds of wall clock before
    :class:`repro.errors.QueryTimeoutError` — but the solutions are produced
    by variable elimination, so the *enumeration order* differs from the
    nested-loop executor (the solution multiset is identical).

    ``profile`` (one :class:`repro.obs.OperatorCounters` per variable of
    the elimination order) turns on per-level tallies; the unprofiled path
    pays one ``is None`` test per level visit.
    """
    stats = statistics if statistics is not None else ExecutionStatistics()
    stats.engine = "wcoj"
    bgp = query.bgp
    if len(bgp) == 0:
        raise PatternError("cannot plan an empty basic graph pattern")
    if limit is not None and limit <= 0:
        return
    planner = planner or QueryPlanner(store)
    if variable_order is not None:
        order = tuple(variable_order)
        expected = set(bgp.variables())
        if len(set(order)) != len(order) or set(order) != expected:
            raise PatternError(
                f"variable order {order!r} must be a permutation of the "
                f"BGP's variables {sorted(expected)!r}")
    else:
        order = plan_variable_order(bgp, planner)
    cartesian_joins = _num_components(bgp) - 1
    stats.cartesian_joins = cartesian_joins
    if cartesian_joins:
        warnings.warn(
            f"basic graph pattern is disconnected: {cartesian_joins} "
            f"component boundary(ies) share no variable; the multiway "
            f"join enumerates their Cartesian product",
            CartesianProductWarning, stacklevel=2)
    if profile is not None and len(profile) != len(order):
        raise PatternError(
            f"profile needs one counter per variable level: "
            f"{len(profile)} != {len(order)}")
    delta = getattr(index, "delta", None)
    overlay_active = 1 if delta is not None and len(delta) else 0
    deadline = None if timeout is None else time.monotonic() + timeout
    if deadline is not None and time.monotonic() > deadline:
        raise QueryTimeoutError("query exceeded its wall-clock timeout "
                                "before executing any pattern")
    factory = _CursorFactory(index, stats, deadline)

    # Patterns with no variables at all are containment checks.
    for template in bgp.templates:
        if not template.variables():
            pattern = template.to_selection_pattern()
            stats.patterns_executed += 1
            if not any(index.select(pattern)):
                return

    templates_for: Dict[str, List[Tuple[int, TriplePatternTemplate]]] = {
        variable: [(i, bgp.templates[i]) for i in positions]
        for variable, positions in _variable_templates(bgp).items()
    }

    def recurse(depth: int, binding: Dict[str, int]) -> Iterator[Dict[str, int]]:
        variable = order[depth]
        last = depth + 1 == len(order)
        level = None if profile is None else profile[depth]
        if level is not None:
            level.visits += 1
            if overlay_active:
                level.overlay_merges += 1
        if last:
            # Last variable: every pattern is fully bound except for this
            # role, so each pattern's exact candidates come back as one
            # sorted block straight from the index — no cursor objects at
            # all.  Any pattern without a vectorised exact source drops us
            # to the cursor path below.  (At *upper* levels, by contrast,
            # the lazy cursor protocol wins: blocks would decode whole
            # sibling ranges whose intersection the leapfrog skips in a few
            # galloping seeks.)
            blocks = []
            for template_index, template in templates_for[variable]:
                # Each ``select_values`` call can decode a large sibling
                # range; check the deadline between them rather than only
                # once per level, so a binding with several fat blocks
                # cannot overshoot the budget by the whole fetch sequence.
                if deadline is not None and time.monotonic() > deadline:
                    raise QueryTimeoutError(
                        "query exceeded its wall-clock timeout while "
                        "fetching candidate blocks")
                block = factory.block_for(template_index, template, binding,
                                          variable)
                if block is None:
                    blocks = None
                    break
                blocks.append(block)
            if blocks is not None:
                num_blocks = len(blocks)
                stats.patterns_executed += num_blocks
                stats.blocks_decoded += num_blocks
                common = _intersect_blocks(blocks, deadline)
                matched = int(common.size)
                stats.triples_matched += matched
                if level is not None:
                    candidates = 0
                    for block in blocks:
                        candidates += block.size
                    level.blocks += num_blocks
                    level.values += int(candidates)
                    level.bindings += matched
                for position, value in enumerate(common.tolist()):
                    if (deadline is not None and position
                            and not (position & 1023)
                            and time.monotonic() > deadline):
                        raise QueryTimeoutError(
                            "query exceeded its wall-clock timeout while "
                            "enumerating the block intersection")
                    binding[variable] = value
                    yield dict(binding)
                binding.pop(variable, None)
                return
        cursors = []
        any_exact = False
        seeks_before = 0
        if level is not None:
            seeks_before = stats.seeks
        try:
            for template_index, template in templates_for[variable]:
                cursor, exact = factory.cursor_for(template_index, template,
                                                   binding, variable)
                if cursor.key is None:
                    return
                any_exact = any_exact or exact
                cursors.append(cursor)
            if not any_exact:
                # Every stream over-approximates; materialise the most
                # selective pattern so an exact, tight stream drives the
                # intersection.
                victim_index, victim = min(
                    templates_for[variable],
                    key=lambda pair: planner.selectivity_key(
                        pair[1].bind(binding)))
                blocks_before = stats.blocks_decoded
                cursor = factory.materialise(victim_index,
                                             victim.bind(binding), variable)
                if level is not None:
                    level.blocks += stats.blocks_decoded - blocks_before
                if cursor.key is None:
                    return
                cursors.append(cursor)
        finally:
            # Attribute the cursor-construction seeks (tallied by the
            # factory) to this level, even when a dead-end cursor exits
            # the visit early.
            if level is not None:
                level.seeks += stats.seeks - seeks_before
        if last:
            # Cursor-path variant of the vectorised last level (reached when
            # some pattern lacked a ``select_values`` source but the cursors
            # themselves expose blocks — e.g. materialised candidates or the
            # cross-compressed unmap cursor).
            blocks = []
            for cursor in cursors:
                block_of = getattr(cursor, "remaining_block", None)
                if block_of is None:
                    blocks = None
                    break
                if deadline is not None and time.monotonic() > deadline:
                    raise QueryTimeoutError(
                        "query exceeded its wall-clock timeout while "
                        "fetching candidate blocks")
                blocks.append(block_of())
            if blocks is not None:
                num_blocks = len(blocks)
                stats.blocks_decoded += num_blocks
                common = _intersect_blocks(blocks, deadline)
                matched = int(common.size)
                stats.triples_matched += matched
                if level is not None:
                    candidates = 0
                    for block in blocks:
                        candidates += block.size
                    level.blocks += num_blocks
                    level.values += int(candidates)
                    level.bindings += matched
                for position, value in enumerate(common.tolist()):
                    if (deadline is not None and position
                            and not (position & 1023)
                            and time.monotonic() > deadline):
                        raise QueryTimeoutError(
                            "query exceeded its wall-clock timeout while "
                            "enumerating the block intersection")
                    binding[variable] = value
                    yield dict(binding)
                binding.pop(variable, None)
                return
        if level is None:
            for value in _leapfrog(cursors, stats, deadline):
                binding[variable] = value
                if last:
                    yield dict(binding)
                else:
                    yield from recurse(depth + 1, binding)
            binding.pop(variable, None)
            return
        # Profiled variant of the same loop: bindings accumulate in a local
        # and flush once when the visit ends (the finally also covers a
        # consumer abandoning the stream at a LIMIT).
        produced = 0
        try:
            for value in _leapfrog(cursors, stats, deadline, level):
                binding[variable] = value
                produced += 1
                if last:
                    yield dict(binding)
                else:
                    yield from recurse(depth + 1, binding)
        finally:
            level.bindings += produced
        binding.pop(variable, None)

    projection = query.projection or query.variables()
    skipped = 0
    yielded = 0
    solutions = (recurse(0, {}) if order else iter(({},)))
    for binding in solutions:
        if skipped < offset:
            skipped += 1
            continue
        stats.results += 1
        yielded += 1
        yield {variable: binding[variable] for variable in projection
               if variable in binding}
        if limit is not None and yielded >= limit:
            return
