"""Triple-pattern workload generation.

The paper's measurement methodology (Section 4, "Experimental setting and
methodology") draws 5 000 triples at random from the indexed dataset and masks
0, 1 or 2 of their components with wildcards; timings are then reported per
*returned* triple.  :func:`build_workloads` reproduces that methodology.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.core.patterns import PatternKind, TriplePattern
from repro.rdf.triples import TripleStore

#: Number of sampled triples used by the paper.
DEFAULT_WORKLOAD_SIZE = 5000


@dataclass
class PatternWorkload:
    """A set of selection patterns of one kind, derived from sampled triples."""

    kind: PatternKind
    patterns: List[TriplePattern] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.patterns)

    def __iter__(self):
        return iter(self.patterns)


def sample_patterns(store: TripleStore, kind: PatternKind,
                    count: int = DEFAULT_WORKLOAD_SIZE, seed: int = 0
                    ) -> PatternWorkload:
    """Sample ``count`` triples and mask them into patterns of ``kind``."""
    triples = store.sample(count, seed=seed)
    patterns = [TriplePattern.from_triple_with_wildcards(t, kind) for t in triples]
    return PatternWorkload(kind=kind, patterns=patterns)


def build_workloads(store: TripleStore, count: int = DEFAULT_WORKLOAD_SIZE,
                    seed: int = 0,
                    kinds: Sequence[PatternKind] = PatternKind.all_kinds()
                    ) -> Dict[PatternKind, PatternWorkload]:
    """Build one workload per pattern kind from the same sampled triples."""
    triples = store.sample(count, seed=seed)
    workloads: Dict[PatternKind, PatternWorkload] = {}
    for kind in kinds:
        patterns = [TriplePattern.from_triple_with_wildcards(t, kind) for t in triples]
        if kind is PatternKind.ALL_WILDCARDS:
            # One full scan is enough: every pattern of this kind is identical.
            patterns = patterns[:1]
        workloads[kind] = PatternWorkload(kind=kind, patterns=patterns)
    return workloads


def deduplicate_workload(workload: PatternWorkload) -> PatternWorkload:
    """Drop duplicate patterns (useful for the low-variety kinds like ?P?)."""
    seen = set()
    unique: List[TriplePattern] = []
    for pattern in workload.patterns:
        key = pattern.as_tuple()
        if key not in seen:
            seen.add(key)
            unique.append(pattern)
    return PatternWorkload(kind=workload.kind, patterns=unique)
