"""WatDiv- and LUBM-style SPARQL query logs.

The paper's Table 6 executes the triple-selection-pattern sequences obtained
from the public WatDiv and LUBM query logs.  Those logs reference entity URIs
of the original billion-triple dumps, so this module ships *templates* with
the same shapes (linear, star, snowflake and complex queries for WatDiv; the
classic Q1–Q14 shapes for LUBM) expressed over the predicate and class
vocabularies of the bundled generators.

Every template uses ``{symbol}`` constants resolved against the generator
vocabularies (:data:`repro.datasets.watdiv.WATDIV_PREDICATES` /
:data:`repro.datasets.lubm.LUBM_PREDICATES` and the class tables), so the
parsed queries run directly against generated datasets.
"""

from __future__ import annotations

from typing import Dict, List

from repro.datasets.lubm import LUBM_CLASSES, LUBM_PREDICATES
from repro.datasets.watdiv import WATDIV_CLASSES, WATDIV_PREDICATES
from repro.queries.sparql import SparqlQuery, parse_sparql

_WATDIV_TEMPLATES: Dict[str, str] = {
    # Linear queries.
    "L1": """SELECT ?u ?p ?g WHERE {
        ?u {likes} ?p .
        ?p {hasGenre} ?g .
    }""",
    "L2": """SELECT ?u ?pu ?pr WHERE {
        ?u {makesPurchase} ?pu .
        ?pu {purchaseFor} ?pr .
    }""",
    "L3": """SELECT ?r ?p ?g WHERE {
        ?r {reviewOf} ?p .
        ?p {hasGenre} ?g .
    }""",
    # Star queries.
    "S1": """SELECT ?u ?a ?f ?p WHERE {
        ?u {type} {User} .
        ?u {age} ?a .
        ?u {friendOf} ?f .
        ?u {likes} ?p .
    }""",
    "S2": """SELECT ?p ?x ?g WHERE {
        ?p {type} {Product} .
        ?p {price} ?x .
        ?p {hasGenre} ?g .
    }""",
    "S3": """SELECT ?r ?p ?x WHERE {
        ?r {type} {Review} .
        ?r {reviewOf} ?p .
        ?r {rating} ?x .
    }""",
    # Snowflake queries.
    "F1": """SELECT ?u ?r ?p ?g WHERE {
        ?u {reviews} ?r .
        ?r {reviewOf} ?p .
        ?p {hasGenre} ?g .
        ?p {price} ?c .
    }""",
    "F2": """SELECT ?rt ?p ?r WHERE {
        ?rt {retailerOf} ?p .
        ?r {reviewOf} ?p .
        ?r {rating} ?x .
    }""",
    # Complex queries.
    "C1": """SELECT ?u ?v ?p ?g WHERE {
        ?u {friendOf} ?v .
        ?v {likes} ?p .
        ?p {hasGenre} ?g .
    }""",
    "C2": """SELECT ?u ?pu ?pr ?g WHERE {
        ?u {makesPurchase} ?pu .
        ?pu {purchaseFor} ?pr .
        ?pr {hasGenre} ?g .
        ?u {age} ?a .
    }""",
}

_LUBM_TEMPLATES: Dict[str, str] = {
    "Q1": """SELECT ?x ?c WHERE {
        ?x {type} {GraduateStudent} .
        ?x {takesCourse} ?c .
    }""",
    "Q2": """SELECT ?x ?y ?z WHERE {
        ?x {type} {GraduateStudent} .
        ?z {type} {Department} .
        ?x {memberOf} ?z .
        ?z {subOrganizationOf} ?y .
        ?x {undergraduateDegreeFrom} ?y .
    }""",
    "Q4": """SELECT ?x ?n ?e ?t WHERE {
        ?x {type} {FullProfessor} .
        ?x {worksFor} ?d .
        ?x {name} ?n .
        ?x {emailAddress} ?e .
        ?x {telephone} ?t .
    }""",
    "Q5": """SELECT ?x WHERE {
        ?x {type} {UndergraduateStudent} .
        ?x {memberOf} ?d .
    }""",
    "Q6": """SELECT ?x WHERE {
        ?x {type} {UndergraduateStudent} .
    }""",
    "Q7": """SELECT ?x ?y WHERE {
        ?y {type} {Course} .
        ?x {takesCourse} ?y .
        ?z {teacherOf} ?y .
    }""",
    "Q9": """SELECT ?x ?y ?z WHERE {
        ?x {type} {GraduateStudent} .
        ?y {type} {FullProfessor} .
        ?x {advisor} ?y .
        ?y {teacherOf} ?z .
        ?x {takesCourse} ?z .
    }""",
    "Q14": """SELECT ?x WHERE {
        ?x {type} {UndergraduateStudent} .
    }""",
}


def _watdiv_symbols() -> Dict[str, int]:
    symbols = dict(WATDIV_PREDICATES)
    symbols.update(WATDIV_CLASSES)
    return symbols


def _lubm_symbols() -> Dict[str, int]:
    symbols = dict(LUBM_PREDICATES)
    symbols.update(LUBM_CLASSES)
    return symbols


def watdiv_query_log() -> List[SparqlQuery]:
    """The WatDiv-style query log, parsed and ready to execute."""
    symbols = _watdiv_symbols()
    return [parse_sparql(text, symbols=symbols, name=name)
            for name, text in _WATDIV_TEMPLATES.items()]


def lubm_query_log() -> List[SparqlQuery]:
    """The LUBM-style query log, parsed and ready to execute."""
    symbols = _lubm_symbols()
    return [parse_sparql(text, symbols=symbols, name=name)
            for name, text in _LUBM_TEMPLATES.items()]
