"""A minimal SPARQL basic-graph-pattern (BGP) front-end.

The paper's Table 6 experiment executes the sequences of triple selection
patterns obtained by decomposing the SPARQL queries of the WatDiv and LUBM
logs.  This module provides just enough SPARQL to express those queries:
``SELECT``/``WHERE`` with a conjunction of triple patterns whose terms are
either variables (``?x``) or constants.

Constants can be written three ways:

* plain integers — interpreted directly as component IDs (the native currency
  of the triple indexes);
* ``<iri>`` or ``"literal"`` — resolved through an optional
  :class:`repro.rdf.dictionary.RdfDictionary`;
* ``{name}`` — resolved through an optional symbol table (used by the bundled
  WatDiv / LUBM query templates to refer to predicate names).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.core.patterns import TriplePattern
from repro.errors import ParseError

Term = Union[int, str]  # int = constant ID, str starting with "?" = variable


def is_variable(term: Term) -> bool:
    """Whether a term is a SPARQL variable."""
    return isinstance(term, str) and term.startswith("?")


@dataclass(frozen=True)
class TriplePatternTemplate:
    """One BGP triple pattern whose terms are constants or variables."""

    subject: Term
    predicate: Term
    object: Term

    def terms(self) -> Tuple[Term, Term, Term]:
        """The three terms in (s, p, o) order."""
        return (self.subject, self.predicate, self.object)

    def variables(self) -> Tuple[str, ...]:
        """The variables appearing in this template."""
        return tuple(t for t in self.terms() if is_variable(t))

    def num_bound(self) -> int:
        """Number of constant terms."""
        return sum(1 for t in self.terms() if not is_variable(t))

    def bind(self, bindings: Dict[str, int]) -> "TriplePatternTemplate":
        """Substitute every variable present in ``bindings``."""
        return TriplePatternTemplate(*(
            bindings.get(t, t) if is_variable(t) else t for t in self.terms()))

    def to_selection_pattern(self) -> TriplePattern:
        """Convert to a :class:`TriplePattern`; unbound variables become wildcards."""
        return TriplePattern(*(
            None if is_variable(t) else int(t) for t in self.terms()))


@dataclass
class BasicGraphPattern:
    """A conjunction of triple pattern templates."""

    templates: List[TriplePatternTemplate] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.templates)

    def __iter__(self) -> Iterator[TriplePatternTemplate]:
        return iter(self.templates)

    def variables(self) -> Tuple[str, ...]:
        """All distinct variables in order of first appearance."""
        seen: List[str] = []
        for template in self.templates:
            for variable in template.variables():
                if variable not in seen:
                    seen.append(variable)
        return tuple(seen)


@dataclass
class SparqlQuery:
    """A parsed ``SELECT`` query: projected variables plus its BGP."""

    projection: Tuple[str, ...]
    bgp: BasicGraphPattern
    name: str = ""

    def variables(self) -> Tuple[str, ...]:
        """All variables of the query's BGP."""
        return self.bgp.variables()


_TOKEN_RE = re.compile(
    r"""\?[A-Za-z_][A-Za-z0-9_]*   # variable
      | <[^>]*>                    # IRI
      | "(?:[^"\\]|\\.)*"          # literal
      | \{[A-Za-z_][A-Za-z0-9_]*\} # symbolic constant
      | \d+                        # numeric ID
      """,
    re.VERBOSE,
)


def _resolve_term(token: str, role: int, dictionary=None,
                  symbols: Optional[Dict[str, int]] = None) -> Term:
    """Resolve one token into a variable name or a constant ID."""
    if token.startswith("?"):
        return token
    if token.isdigit():
        return int(token)
    if token.startswith("{") and token.endswith("}"):
        name = token[1:-1]
        if not symbols or name not in symbols:
            raise ParseError(f"unknown symbolic constant {name!r}")
        return symbols[name]
    if dictionary is None:
        raise ParseError(
            f"constant {token!r} needs a dictionary to be resolved to an ID")
    role_dictionary = (dictionary.subjects, dictionary.predicates,
                       dictionary.objects)[role]
    return role_dictionary.id_of(token)


def _split_statements(body: str) -> List[str]:
    """Split a WHERE body into statements at ``.`` separators and newlines.

    A ``.`` only separates statements when it occurs *outside* an IRI
    (``<...>``) or a literal (``"..."`` with backslash escapes), so IRIs and
    literals containing dots are never corrupted.  Any spacing around the
    separator is accepted — ``" . "``, ``" ."``, ``". "`` and a bare ``"."``
    all delimit statements, unlike the historical ``" . "``-only split.
    """
    chunks: List[str] = []
    current: List[str] = []
    in_iri = False
    in_literal = False
    escaped = False
    for character in body:
        if in_iri:
            current.append(character)
            if character == ">":
                in_iri = False
        elif in_literal:
            current.append(character)
            if escaped:
                escaped = False
            elif character == "\\":
                escaped = True
            elif character == '"':
                in_literal = False
        elif character == "<":
            in_iri = True
            current.append(character)
        elif character == '"':
            in_literal = True
            current.append(character)
        elif character == ".":
            chunks.append("".join(current))
            current = []
        else:
            current.append(character)
    chunks.append("".join(current))
    # Newlines still delimit statements inside dot-free chunks (the
    # line-oriented style the bundled query logs use).
    statements: List[str] = []
    for chunk in chunks:
        statements.extend(line.strip() for line in chunk.splitlines())
    return [statement for statement in statements if statement]


def parse_sparql(text: str, dictionary=None,
                 symbols: Optional[Dict[str, int]] = None,
                 name: str = "") -> SparqlQuery:
    """Parse a ``SELECT ... WHERE { ... }`` query into a :class:`SparqlQuery`."""
    match = re.search(r"SELECT\s+(?P<projection>.+?)\s+WHERE\s*\{(?P<body>.*)\}",
                      text, re.IGNORECASE | re.DOTALL)
    if match is None:
        raise ParseError("query must have the form SELECT ... WHERE { ... }")
    projection_text = match.group("projection").strip()
    if projection_text == "*":
        projection: Tuple[str, ...] = ()
    else:
        projection = tuple(re.findall(r"\?[A-Za-z_][A-Za-z0-9_]*", projection_text))

    templates: List[TriplePatternTemplate] = []
    for statement in _split_statements(match.group("body")):
        tokens = _TOKEN_RE.findall(statement)
        if len(tokens) != 3:
            raise ParseError(f"malformed triple pattern {statement!r}")
        terms = [_resolve_term(token, role, dictionary, symbols)
                 for role, token in enumerate(tokens)]
        templates.append(TriplePatternTemplate(*terms))
    if not templates:
        raise ParseError("the WHERE clause contains no triple patterns")
    bgp = BasicGraphPattern(templates)
    if not projection:
        projection = bgp.variables()
    return SparqlQuery(projection=projection, bgp=bgp, name=name)
