"""Vertical partitioning baseline (SW-Store style, Abadi et al.).

The dataset is partitioned by predicate: for every predicate a two-column
(subject, object) table is materialised, sorted by subject for fast search and
good compression.  This is the ``PSO`` incarnation described in the paper's
related-work section.  Patterns binding the predicate are fast; patterns that
leave the predicate free must probe every table.

Each table is stored as a degenerate two-level trie: Elias-Fano pointers over
the (dense) subject space of the table plus a PEF-encoded object column.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

import numpy as np

from repro.core.base import PatternLike, TripleIndex
from repro.core.patterns import TriplePattern
from repro.errors import IndexBuildError
from repro.rdf.triples import TripleStore
from repro.sequences.base import NOT_FOUND
from repro.sequences.elias_fano import EliasFano
from repro.sequences.factory import make_ranged_sequence

_WORD_BITS = 64


class _PredicateTable:
    """The sorted (subject, object) pairs of one predicate."""

    __slots__ = ("_num_subjects", "_pointers", "_objects", "count")

    def __init__(self, subjects: np.ndarray, objects: np.ndarray, num_subjects: int):
        order = np.lexsort((objects, subjects))
        subjects = subjects[order]
        objects = objects[order]
        self.count = int(subjects.size)
        self._num_subjects = num_subjects
        boundaries = np.searchsorted(subjects, np.arange(num_subjects + 1))
        self._pointers = EliasFano.from_values(boundaries.tolist())
        self._objects = make_ranged_sequence(objects.tolist(), boundaries.tolist(), "pef")

    def objects_of(self, subject: int) -> Iterator[int]:
        """Objects paired with ``subject`` under this predicate."""
        if not 0 <= subject < self._num_subjects:
            return iter(())
        begin = self._pointers.access(subject)
        end = self._pointers.access(subject + 1)
        return self._objects.scan_range(begin, end)

    def has_pair(self, subject: int, object_id: int) -> bool:
        """Whether (subject, object) occurs under this predicate."""
        if not 0 <= subject < self._num_subjects:
            return False
        begin = self._pointers.access(subject)
        end = self._pointers.access(subject + 1)
        if begin == end:
            return False
        return self._objects.find_in_range(begin, end, object_id) != NOT_FOUND

    def scan(self) -> Iterator[Tuple[int, int]]:
        """All (subject, object) pairs in sorted order."""
        for subject in range(self._num_subjects):
            begin = self._pointers.access(subject)
            end = self._pointers.access(subject + 1)
            for object_id in self._objects.scan_range(begin, end):
                yield (subject, object_id)

    def size_in_bits(self) -> int:
        return self._pointers.size_in_bits() + self._objects.size_in_bits()


class VerticalPartitioningIndex(TripleIndex):
    """One sorted (subject, object) table per predicate."""

    name = "vertical-partitioning"

    def __init__(self, store: TripleStore):
        if len(store) == 0:
            raise IndexBuildError("cannot build vertical partitioning over an empty store")
        subjects, predicates, objects = store.columns()
        self._num_triples = len(store)
        self._num_subjects = int(subjects.max()) + 1
        self._tables: Dict[int, _PredicateTable] = {}
        for predicate in np.unique(predicates):
            predicate = int(predicate)
            mask = predicates == predicate
            self._tables[predicate] = _PredicateTable(
                subjects[mask], objects[mask], self._num_subjects)

    # ------------------------------------------------------------------ #
    # TripleIndex interface.
    # ------------------------------------------------------------------ #

    @property
    def num_triples(self) -> int:
        return self._num_triples

    def select(self, pattern: PatternLike) -> Iterator[Tuple[int, int, int]]:
        pattern = TriplePattern.from_tuple(pattern)
        subject, predicate, object_id = pattern.as_tuple()
        predicates = [predicate] if predicate is not None else sorted(self._tables)
        for p in predicates:
            table = self._tables.get(p)
            if table is None:
                continue
            if subject is not None and object_id is not None:
                if table.has_pair(subject, object_id):
                    yield (subject, p, object_id)
            elif subject is not None:
                for obj in table.objects_of(subject):
                    yield (subject, p, obj)
            elif object_id is not None:
                # Tables are subject-sorted, so object-bound patterns scan.
                for s, o in table.scan():
                    if o == object_id:
                        yield (s, p, o)
            else:
                for s, o in table.scan():
                    yield (s, p, o)

    def size_in_bits(self) -> int:
        return sum(self.space_breakdown().values())

    def space_breakdown(self) -> Dict[str, int]:
        breakdown = {f"predicate_{p}": table.size_in_bits()
                     for p, table in self._tables.items()}
        breakdown["directory"] = len(self._tables) * _WORD_BITS
        return breakdown
