"""HDT-FoQ (Header-Dictionary-Triples, Focused on Querying).

The format of Martinez-Prieto, Gallego and Fernandez [ESWC 2012] stores the
triples once, as a single SPO trie ("BitmapTriples"), and makes the other
access orders possible with two additions:

* the **predicate level** is represented with a *wavelet tree*, so that all
  occurrences of a predicate can be enumerated with ``select`` operations
  (this enables ``?P?`` and ``?PO`` retrieval without a POS permutation);
* an **object index** (inverted lists) maps every object to the positions of
  its occurrences in the object level, enabling ``??O``, ``?PO`` and ``S?O``.

The paper attributes HDT-FoQ's weaknesses — cache misses on ``?P?`` due to the
(potentially tall) wavelet tree, and per-occurrence indirections through the
object index — to exactly these structures, so this reimplementation keeps
them faithful.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

import numpy as np

from repro.core.base import PatternLike, TripleIndex
from repro.core.patterns import PatternKind, TriplePattern
from repro.errors import IndexBuildError
from repro.rdf.triples import TripleStore
from repro.sequences.base import NOT_FOUND
from repro.sequences.compact import CompactVector
from repro.sequences.elias_fano import EliasFano
from repro.structures.wavelet_tree import WaveletTree

_WORD_BITS = 64


class HdtFoqIndex(TripleIndex):
    """Single-trie HDT-FoQ layout with wavelet-tree predicates and an object index."""

    name = "hdt-foq"

    def __init__(self, store: TripleStore):
        if len(store) == 0:
            raise IndexBuildError("cannot build HDT-FoQ over an empty store")
        subjects, predicates, objects = store.sorted_columns((0, 1, 2))
        n = int(subjects.size)
        self._num_triples = n
        self._num_subjects = int(subjects.max()) + 1
        self._num_predicates = int(predicates.max()) + 1
        self._num_objects = int(objects.max()) + 1

        # Distinct (subject, predicate) pairs define the second trie level.
        pair_change = np.empty(n, dtype=bool)
        pair_change[0] = True
        pair_change[1:] = (subjects[1:] != subjects[:-1]) | (predicates[1:] != predicates[:-1])
        pair_starts = np.nonzero(pair_change)[0]
        pair_subjects = subjects[pair_starts]
        pair_predicates = predicates[pair_starts]

        self._pointers0 = EliasFano.from_values(
            np.searchsorted(pair_subjects, np.arange(self._num_subjects + 1)).tolist())
        # Wavelet tree over the predicate level: this is the HDT-FoQ hallmark.
        self._predicate_wt = WaveletTree(pair_predicates.tolist())
        self._pointers1 = EliasFano.from_values(np.append(pair_starts, n).tolist())
        self._objects = CompactVector.from_values(objects.tolist())

        # Object index: for every object, the positions of its occurrences in
        # the object level, ascending within each object's list.  HDT-FoQ
        # stores these adjacency lists as plain ID sequences; a CompactVector
        # plays that role here (the concatenation is not globally monotone).
        order = np.argsort(objects, kind="stable")
        sorted_objects = objects[order]
        boundaries = np.searchsorted(sorted_objects, np.arange(self._num_objects + 1))
        self._object_index_pointers = EliasFano.from_values(boundaries.tolist())
        self._object_positions = CompactVector.from_values(order.tolist())

        self._pair_count = int(pair_starts.size)

    # ------------------------------------------------------------------ #
    # Trie navigation helpers.
    # ------------------------------------------------------------------ #

    def _pair_range_of_subject(self, subject: int) -> Tuple[int, int]:
        if not 0 <= subject < self._num_subjects:
            return (0, 0)
        return (self._pointers0.access(subject), self._pointers0.access(subject + 1))

    def _object_range_of_pair(self, pair_position: int) -> Tuple[int, int]:
        return (self._pointers1.access(pair_position),
                self._pointers1.access(pair_position + 1))

    def _find_predicate(self, begin: int, end: int, predicate: int) -> int:
        """Binary search the wavelet-tree predicate level inside [begin, end)."""
        lo, hi = begin, end
        while lo < hi:
            mid = (lo + hi) // 2
            if self._predicate_wt.access(mid) < predicate:
                lo = mid + 1
            else:
                hi = mid
        if lo < end and self._predicate_wt.access(lo) == predicate:
            return lo
        return NOT_FOUND

    def _subject_of_pair(self, pair_position: int) -> int:
        """Subject owning the pair at ``pair_position`` (rank on the pointers)."""
        lo, hi = 0, self._num_subjects
        while lo < hi:
            mid = (lo + hi) // 2
            if self._pointers0.access(mid + 1) <= pair_position:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def _pair_of_object_position(self, object_position: int) -> int:
        """Level-1 pair owning the object occurrence at ``object_position``."""
        lo, hi = 0, self._pair_count
        while lo < hi:
            mid = (lo + hi) // 2
            if self._pointers1.access(mid + 1) <= object_position:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def _object_occurrences(self, object_id: int) -> Iterator[int]:
        """Positions (in the object level) where ``object_id`` occurs."""
        if not 0 <= object_id < self._num_objects:
            return
        begin = self._object_index_pointers.access(object_id)
        end = self._object_index_pointers.access(object_id + 1)
        for k in range(begin, end):
            yield self._object_positions.access(k)

    # ------------------------------------------------------------------ #
    # TripleIndex interface.
    # ------------------------------------------------------------------ #

    @property
    def num_triples(self) -> int:
        return self._num_triples

    def select(self, pattern: PatternLike) -> Iterator[Tuple[int, int, int]]:
        pattern = TriplePattern.from_tuple(pattern)
        kind = pattern.kind
        if kind in (PatternKind.SPO, PatternKind.SP, PatternKind.S,
                    PatternKind.ALL_WILDCARDS):
            yield from self._select_spo_prefix(pattern)
        elif kind is PatternKind.P:
            yield from self._select_predicate(pattern.predicate)
        elif kind in (PatternKind.PO, PatternKind.O, PatternKind.SO):
            yield from self._select_via_object_index(pattern)
        else:  # pragma: no cover - all kinds handled
            raise IndexBuildError(f"unhandled pattern kind {kind}")

    def _select_spo_prefix(self, pattern: TriplePattern) -> Iterator[Tuple[int, int, int]]:
        subjects = (range(self._num_subjects) if pattern.subject is None
                    else [pattern.subject])
        for subject in subjects:
            begin, end = self._pair_range_of_subject(subject)
            if begin == end:
                continue
            if pattern.predicate is not None:
                position = self._find_predicate(begin, end, pattern.predicate)
                if position == NOT_FOUND:
                    continue
                pair_positions = [position]
            else:
                pair_positions = list(range(begin, end))
            for pair_position in pair_positions:
                predicate = self._predicate_wt.access(pair_position)
                obj_begin, obj_end = self._object_range_of_pair(pair_position)
                if pattern.object is not None:
                    if self._objects.find(obj_begin, obj_end, pattern.object) != NOT_FOUND:
                        yield (subject, predicate, pattern.object)
                else:
                    for obj in self._objects.scan(obj_begin, obj_end):
                        yield (subject, predicate, obj)

    def _select_predicate(self, predicate: int) -> Iterator[Tuple[int, int, int]]:
        """?P? via wavelet-tree select over the predicate level."""
        if not 0 <= predicate <= self._predicate_wt.max_symbol:
            return
        total = self._predicate_wt.count(predicate)
        for k in range(total):
            pair_position = self._predicate_wt.select(predicate, k)
            subject = self._subject_of_pair(pair_position)
            obj_begin, obj_end = self._object_range_of_pair(pair_position)
            for obj in self._objects.scan(obj_begin, obj_end):
                yield (subject, predicate, obj)

    def _select_via_object_index(self, pattern: TriplePattern
                                 ) -> Iterator[Tuple[int, int, int]]:
        """?PO, ??O and S?O resolved through the object inverted lists."""
        object_id = pattern.object
        for object_position in self._object_occurrences(object_id):
            pair_position = self._pair_of_object_position(object_position)
            subject = self._subject_of_pair(pair_position)
            if pattern.subject is not None and subject != pattern.subject:
                continue
            predicate = self._predicate_wt.access(pair_position)
            if pattern.predicate is not None and predicate != pattern.predicate:
                continue
            yield (subject, predicate, object_id)

    # ------------------------------------------------------------------ #
    # Space accounting.
    # ------------------------------------------------------------------ #

    def size_in_bits(self) -> int:
        return sum(self.space_breakdown().values())

    def space_breakdown(self) -> Dict[str, int]:
        return {
            "pointers0": self._pointers0.size_in_bits(),
            "predicates_wavelet_tree": self._predicate_wt.size_in_bits(),
            "pointers1": self._pointers1.size_in_bits(),
            "objects": self._objects.size_in_bits(),
            "object_index_pointers": self._object_index_pointers.size_in_bits(),
            "object_index_positions": self._object_positions.size_in_bits(),
        }
