"""TripleBit-like baseline (Yuan et al., VLDB 2013).

TripleBit encodes the triple set as a bit matrix whose columns are triples and
whose rows are entities; since the matrix is extremely sparse, each column is
compressed down to the two row identifiers that are set, i.e. the subject and
object of the triple.  Columns are clustered by predicate and stored twice,
once sorted by (subject, object) and once by (object, subject), in byte-aligned
variable-size chunks, with small ID-chunk matrices recording which
subjects/objects appear in which chunk.

This reimplementation keeps the essential layout:

* per predicate, two column buckets (SO and OS order) encoded with the blocked
  byte-aligned VByte codec of :mod:`repro.sequences.vbyte`;
* per bucket, a chunk directory with the first subject (resp. object) of every
  block for binary search.

Storing each triple twice (plus directories) is what gives TripleBit its
roughly 2x space overhead over the paper's 2Tp, and resolving subject-bound
patterns requires probing every predicate bucket, which reproduces the large
slow-downs the paper reports for ``S??`` and ``S?O``.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterator, Tuple

import numpy as np

from repro.core.base import PatternLike, TripleIndex
from repro.core.patterns import TriplePattern
from repro.errors import IndexBuildError
from repro.rdf.triples import TripleStore
from repro.sequences.vbyte import VByte

_WORD_BITS = 64


class _PredicateBucket:
    """One predicate's columns in a fixed (major, minor) sort order."""

    __slots__ = ("major", "minor", "major_starts", "count")

    def __init__(self, major_values: np.ndarray, minor_values: np.ndarray):
        self.count = int(major_values.size)
        self.major = VByte.from_values(major_values.tolist())
        self.minor = VByte.from_values(minor_values.tolist())
        # Chunk directory: value of the major column at every block start.
        block = 128
        starts = list(range(0, self.count, block))
        self.major_starts = [int(major_values[i]) for i in starts]

    def scan(self) -> Iterator[Tuple[int, int]]:
        """Yield every (major, minor) pair in order."""
        return zip(self.major.scan(), self.minor.scan())

    def range_of_major(self, value: int) -> Tuple[int, int]:
        """Positions whose major component equals ``value`` (binary search + scan)."""
        block = 128
        # Start from the last block whose first major value is strictly below
        # the target: occurrences of the target may begin inside that block
        # even when a later block starts exactly at the target value.
        block_index = bisect.bisect_left(self.major_starts, value) - 1
        if block_index < 0:
            block_index = 0
        begin = block_index * block
        first = -1
        last = -1
        position = begin
        for major in self.major.scan(begin, self.count):
            if major == value:
                if first < 0:
                    first = position
                last = position
            elif major > value:
                break
            position += 1
        if first < 0:
            return (0, 0)
        return (first, last + 1)

    def pairs_with_major(self, value: int) -> Iterator[Tuple[int, int]]:
        """Yield (major, minor) pairs whose major equals ``value``."""
        begin, end = self.range_of_major(value)
        if begin == end:
            return
        minors = self.minor.scan(begin, end)
        for minor in minors:
            yield (value, minor)

    def contains(self, major_value: int, minor_value: int) -> bool:
        """Whether the (major, minor) pair occurs in this bucket."""
        begin, end = self.range_of_major(major_value)
        if begin == end:
            return False
        for minor in self.minor.scan(begin, end):
            if minor == minor_value:
                return True
        return False

    def size_in_bits(self) -> int:
        directory = len(self.major_starts) * 32
        return self.major.size_in_bits() + self.minor.size_in_bits() + directory


class TripleBitIndex(TripleIndex):
    """Per-predicate SO/OS column buckets with byte-aligned compression."""

    name = "triplebit"

    def __init__(self, store: TripleStore):
        if len(store) == 0:
            raise IndexBuildError("cannot build TripleBit over an empty store")
        subjects, predicates, objects = store.columns()
        self._num_triples = len(store)
        self._num_predicates = int(predicates.max()) + 1
        self._so_buckets: Dict[int, _PredicateBucket] = {}
        self._os_buckets: Dict[int, _PredicateBucket] = {}
        for predicate in np.unique(predicates):
            predicate = int(predicate)
            mask = predicates == predicate
            subject_column = subjects[mask]
            object_column = objects[mask]
            so_order = np.lexsort((object_column, subject_column))
            os_order = np.lexsort((subject_column, object_column))
            self._so_buckets[predicate] = _PredicateBucket(
                subject_column[so_order], object_column[so_order])
            self._os_buckets[predicate] = _PredicateBucket(
                object_column[os_order], subject_column[os_order])

    # ------------------------------------------------------------------ #
    # TripleIndex interface.
    # ------------------------------------------------------------------ #

    @property
    def num_triples(self) -> int:
        return self._num_triples

    def select(self, pattern: PatternLike) -> Iterator[Tuple[int, int, int]]:
        pattern = TriplePattern.from_tuple(pattern)
        subject, predicate, object_id = pattern.as_tuple()
        predicates = ([predicate] if predicate is not None
                      else sorted(self._so_buckets))
        for p in predicates:
            so_bucket = self._so_buckets.get(p)
            if so_bucket is None:
                continue
            if subject is not None and object_id is not None:
                if so_bucket.contains(subject, object_id):
                    yield (subject, p, object_id)
            elif subject is not None:
                for s, o in so_bucket.pairs_with_major(subject):
                    yield (s, p, o)
            elif object_id is not None:
                os_bucket = self._os_buckets[p]
                for o, s in os_bucket.pairs_with_major(object_id):
                    yield (s, p, o)
            else:
                for s, o in so_bucket.scan():
                    yield (s, p, o)

    def size_in_bits(self) -> int:
        return sum(self.space_breakdown().values())

    def space_breakdown(self) -> Dict[str, int]:
        so_bits = sum(bucket.size_in_bits() for bucket in self._so_buckets.values())
        os_bits = sum(bucket.size_in_bits() for bucket in self._os_buckets.values())
        directory = (len(self._so_buckets) + len(self._os_buckets)) * 2 * _WORD_BITS
        return {"so_buckets": so_bits, "os_buckets": os_bits, "directories": directory}

    def supported_kinds(self) -> Tuple[str, ...]:
        """TripleBit's public tool does not expose full SPO lookups; this port
        supports them anyway (the paper simply omits the comparison)."""
        return ("spo", "sp?", "s??", "?po", "?p?", "??o", "s?o", "???")
