"""Reimplementations of the competitors evaluated in the paper.

Every baseline implements :class:`repro.core.base.TripleIndex`, so the
benchmark harness can compare them against the permuted-trie indexes with the
same workloads:

* :class:`repro.baselines.hdt_foq.HdtFoqIndex` — HDT-FoQ (Focused on
  Querying): single SPO trie, wavelet-tree predicate level, object-based
  inverted lists;
* :class:`repro.baselines.triplebit.TripleBitIndex` — TripleBit: per-predicate
  bit-matrix chunks storing (s, o) and (o, s) columns with byte-aligned codes;
* :class:`repro.baselines.vertical_partitioning.VerticalPartitioningIndex` —
  one (subject, object) table per predicate (SW-Store style);
* :class:`repro.baselines.rdf3x.Rdf3xIndex` — RDF-3X-like exhaustive indexing:
  all six permutations in VByte-compressed clustered blocks;
* :class:`repro.baselines.bitmat.BitMatIndex` — BitMat-like 3D bit-cube with
  gap-coded slices.
"""

from repro.baselines.hdt_foq import HdtFoqIndex
from repro.baselines.triplebit import TripleBitIndex
from repro.baselines.vertical_partitioning import VerticalPartitioningIndex
from repro.baselines.rdf3x import Rdf3xIndex
from repro.baselines.bitmat import BitMatIndex

__all__ = [
    "HdtFoqIndex",
    "TripleBitIndex",
    "VerticalPartitioningIndex",
    "Rdf3xIndex",
    "BitMatIndex",
]
