"""BitMat-like baseline (Atre et al., WWW 2010).

BitMat models the dataset as a 3D bit-cube with one dimension per component.
The cube is sliced along the predicate dimension into |P| subject x object
bit matrices; each matrix row (one subject) is a bit string over the object
space, compressed with run-length / gap encoding.  To answer object-bound
patterns the transposed (object x subject) slices are kept as well, which is
one of the reasons the format is large — the paper measures 483 bits/triple on
DBpedia against ~54 for 2Tp.

The reimplementation stores, per predicate:

* a row directory (which subjects have a non-empty row) and, per row, the
  gap-encoded object IDs;
* the transposed equivalent for object-bound access.

Pattern matching ANDs/scans the relevant rows, as the original join processor
does for single patterns.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.core.base import PatternLike, TripleIndex
from repro.core.patterns import TriplePattern
from repro.errors import IndexBuildError
from repro.rdf.triples import TripleStore
from repro.sequences.vbyte import encode_vbyte_stream, decode_vbyte_stream

_WORD_BITS = 64


class _BitSlice:
    """One predicate's bit matrix stored as per-row gap-encoded adjacency lists."""

    __slots__ = ("_rows", "_row_lengths", "count")

    def __init__(self, majors: np.ndarray, minors: np.ndarray):
        self.count = int(majors.size)
        order = np.lexsort((minors, majors))
        majors = majors[order]
        minors = minors[order]
        self._rows: Dict[int, bytes] = {}
        self._row_lengths: Dict[int, int] = {}
        boundaries = np.nonzero(np.diff(majors))[0] + 1
        starts = np.concatenate(([0], boundaries))
        stops = np.concatenate((boundaries, [majors.size]))
        for start, stop in zip(starts.tolist(), stops.tolist()):
            row_id = int(majors[start])
            row_minors = minors[start:stop]
            gaps = np.diff(row_minors, prepend=row_minors[0]).tolist()
            gaps[0] = int(row_minors[0])
            self._rows[row_id] = bytes(encode_vbyte_stream(gaps))
            self._row_lengths[row_id] = stop - start

    def row(self, row_id: int) -> List[int]:
        """Decode the (sorted) minor IDs set in ``row_id``'s bit row."""
        payload = self._rows.get(row_id)
        if payload is None:
            return []
        length = self._row_lengths[row_id]
        gaps = decode_vbyte_stream(payload, length)
        values = []
        current = 0
        for i, gap in enumerate(gaps):
            current = gap if i == 0 else current + gap
            values.append(current)
        return values

    def rows(self) -> Iterator[Tuple[int, List[int]]]:
        """Yield every (row_id, minors) pair."""
        for row_id in sorted(self._rows):
            yield row_id, self.row(row_id)

    def has(self, row_id: int, minor_id: int) -> bool:
        """Whether the bit (row_id, minor_id) is set."""
        return minor_id in self.row(row_id)

    def size_in_bits(self) -> int:
        payload = sum(len(p) for p in self._rows.values()) * 8
        directory = len(self._rows) * 2 * 32
        return payload + directory


class BitMatIndex(TripleIndex):
    """Per-predicate SxO and OxS gap-encoded bit matrices."""

    name = "bitmat"

    def __init__(self, store: TripleStore):
        if len(store) == 0:
            raise IndexBuildError("cannot build BitMat over an empty store")
        subjects, predicates, objects = store.columns()
        self._num_triples = len(store)
        self._so_slices: Dict[int, _BitSlice] = {}
        self._os_slices: Dict[int, _BitSlice] = {}
        for predicate in np.unique(predicates):
            predicate = int(predicate)
            mask = predicates == predicate
            self._so_slices[predicate] = _BitSlice(subjects[mask], objects[mask])
            self._os_slices[predicate] = _BitSlice(objects[mask], subjects[mask])

    # ------------------------------------------------------------------ #
    # TripleIndex interface.
    # ------------------------------------------------------------------ #

    @property
    def num_triples(self) -> int:
        return self._num_triples

    def select(self, pattern: PatternLike) -> Iterator[Tuple[int, int, int]]:
        pattern = TriplePattern.from_tuple(pattern)
        subject, predicate, object_id = pattern.as_tuple()
        predicates = [predicate] if predicate is not None else sorted(self._so_slices)
        for p in predicates:
            slice_so = self._so_slices.get(p)
            if slice_so is None:
                continue
            if subject is not None and object_id is not None:
                if slice_so.has(subject, object_id):
                    yield (subject, p, object_id)
            elif subject is not None:
                for obj in slice_so.row(subject):
                    yield (subject, p, obj)
            elif object_id is not None:
                for s in self._os_slices[p].row(object_id):
                    yield (s, p, object_id)
            else:
                for s, objs in slice_so.rows():
                    for obj in objs:
                        yield (s, p, obj)

    def size_in_bits(self) -> int:
        return sum(self.space_breakdown().values())

    def space_breakdown(self) -> Dict[str, int]:
        return {
            "subject_object_slices": sum(s.size_in_bits() for s in self._so_slices.values()),
            "object_subject_slices": sum(s.size_in_bits() for s in self._os_slices.values()),
            "directories": (len(self._so_slices) + len(self._os_slices)) * _WORD_BITS,
        }
