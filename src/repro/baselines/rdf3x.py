"""RDF-3X-like baseline (Neumann & Weikum).

RDF-3X follows the exhaustive indexing strategy: all six permutations of the
triples are materialised in clustered B+-trees whose leaves store delta-gapped
VByte-compressed triples; on top of that it keeps aggregated indexes over all
two-component and one-component projections.

This port reproduces that layout in memory:

* six sorted permutations, each cut into leaf blocks of 1 024 triples;
* per block, the first triple is kept uncompressed in a separator directory
  (the role of the inner B+-tree nodes) and the rest of the block is encoded
  as column-wise d-gaps with VByte;
* optional aggregated indexes (counts for every distinct pair and single
  component) that add the extra space the paper mentions.

Every selection pattern is answered on the permutation where its bound
components form a prefix, with a binary search over the separators followed by
a block scan — the same access path as the real system, minus the disk.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.core.base import PatternLike, TripleIndex
from repro.core.patterns import PatternKind, TriplePattern
from repro.core.permutations import PERMUTATIONS, Permutation
from repro.errors import IndexBuildError
from repro.rdf.triples import TripleStore
from repro.sequences.vbyte import encode_vbyte_stream

_WORD_BITS = 64
_BLOCK_TRIPLES = 1024


def _zigzag(gaps: np.ndarray) -> np.ndarray:
    """Map signed gaps to non-negative integers (2d for d>=0, -2d-1 for d<0)."""
    gaps = gaps.astype(np.int64)
    return np.where(gaps >= 0, 2 * gaps, -2 * gaps - 1)

#: pattern kind -> permutation whose prefix matches the bound components.
_DISPATCH: Dict[PatternKind, str] = {
    PatternKind.SPO: "spo",
    PatternKind.SP: "spo",
    PatternKind.S: "spo",
    PatternKind.ALL_WILDCARDS: "spo",
    PatternKind.PO: "pos",
    PatternKind.P: "pso",
    PatternKind.O: "osp",
    PatternKind.SO: "sop",
}


class _ClusteredPermutation:
    """One permutation stored as VByte-compressed leaf blocks plus separators."""

    __slots__ = ("permutation", "num_triples", "_blocks", "_separators")

    def __init__(self, permutation: Permutation, columns: Tuple[np.ndarray, ...]):
        self.permutation = permutation
        first, second, third = columns
        self.num_triples = int(first.size)
        self._blocks: List[bytes] = []
        self._separators: List[Tuple[int, int, int]] = []
        for start in range(0, self.num_triples, _BLOCK_TRIPLES):
            stop = min(start + _BLOCK_TRIPLES, self.num_triples)
            block_first = first[start:stop]
            block_second = second[start:stop]
            block_third = third[start:stop]
            self._separators.append(
                (int(block_first[0]), int(block_second[0]), int(block_third[0])))
            payload = bytearray()
            # Column-wise d-gaps against the previous triple of the block; the
            # first triple is the separator and is not repeated in the payload.
            # The first column is monotone (plain gaps); the others use
            # zig-zag-coded gaps so the stream stays byte-aligned and
            # invertible, mirroring RDF-3X's leaf compression.
            payload.extend(encode_vbyte_stream(np.diff(block_first).tolist()))
            payload.extend(encode_vbyte_stream(
                _zigzag(np.diff(block_second)).tolist()))
            payload.extend(encode_vbyte_stream(
                _zigzag(np.diff(block_third)).tolist()))
            self._blocks.append(bytes(payload))

    def size_in_bits(self) -> int:
        payload = sum(len(block) for block in self._blocks) * 8
        separators = len(self._separators) * 3 * _WORD_BITS
        return payload + separators


class Rdf3xIndex(TripleIndex):
    """Six clustered permutations plus optional aggregated indexes."""

    name = "rdf-3x"

    def __init__(self, store: TripleStore, include_aggregates: bool = True):
        if len(store) == 0:
            raise IndexBuildError("cannot build RDF-3X over an empty store")
        self._num_triples = len(store)
        self._permutations: Dict[str, _ClusteredPermutation] = {}
        self._sorted_columns: Dict[str, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        for name, permutation in PERMUTATIONS.items():
            columns = store.sorted_columns(permutation.order)
            self._permutations[name] = _ClusteredPermutation(permutation, columns)
            self._sorted_columns[name] = columns
        self._aggregate_bits = 0
        if include_aggregates:
            self._aggregate_bits = self._aggregate_space(store)

    @staticmethod
    def _aggregate_space(store: TripleStore) -> int:
        """Space of the aggregated (pair and single-component) count indexes."""
        bits = 0
        for first_role, second_role in ((0, 1), (1, 2), (2, 0)):
            pairs = store.num_distinct_pairs(first_role, second_role)
            # Each aggregated entry stores two IDs and a count, VByte-coded;
            # charge an average of 8 bytes per entry.
            bits += pairs * 8 * 8
        for role in (0, 1, 2):
            bits += store.num_distinct(role) * 6 * 8
        return bits

    # ------------------------------------------------------------------ #
    # TripleIndex interface.
    # ------------------------------------------------------------------ #

    @property
    def num_triples(self) -> int:
        return self._num_triples

    def select(self, pattern: PatternLike) -> Iterator[Tuple[int, int, int]]:
        pattern = TriplePattern.from_tuple(pattern)
        name = _DISPATCH[pattern.kind]
        permutation = PERMUTATIONS[name]
        first, second, third = self._sorted_columns[name]
        bound = permutation.apply_pattern(pattern)
        lo, hi = 0, int(first.size)
        # Narrow the range with binary searches on the bound prefix (the
        # dispatch table guarantees the bound components form a prefix).
        if bound[0] is not None:
            lo = int(np.searchsorted(first, bound[0], side="left"))
            hi = int(np.searchsorted(first, bound[0], side="right"))
            if bound[1] is not None and lo < hi:
                base = lo
                lo = base + int(np.searchsorted(second[base:hi], bound[1], side="left"))
                hi = base + int(np.searchsorted(second[base:hi], bound[1], side="right"))
                if bound[2] is not None and lo < hi:
                    base = lo
                    lo = base + int(np.searchsorted(third[base:hi], bound[2], side="left"))
                    hi = base + int(np.searchsorted(third[base:hi], bound[2], side="right"))
        for i in range(lo, hi):
            permuted = (int(first[i]), int(second[i]), int(third[i]))
            if bound[1] is not None and permuted[1] != bound[1]:
                continue
            if bound[2] is not None and permuted[2] != bound[2]:
                continue
            yield permutation.invert(permuted)

    def size_in_bits(self) -> int:
        permutations = sum(p.size_in_bits() for p in self._permutations.values())
        return permutations + self._aggregate_bits

    def space_breakdown(self) -> Dict[str, int]:
        breakdown = {name: p.size_in_bits() for name, p in self._permutations.items()}
        breakdown["aggregates"] = self._aggregate_bits
        return breakdown
