"""Timing and space measurement utilities.

The paper reports two headline numbers: **bits/triple** for space and
**nanoseconds per returned triple** for query speed.  The helpers here follow
the same methodology — run a workload of selection patterns, count the matched
triples, divide the elapsed time by that count — so the benchmark scripts stay
small and uniform.

Absolute values measured on a Python implementation are of course orders of
magnitude larger than the paper's C++ numbers; the benchmarks compare *ratios*
between indexes measured under identical conditions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Sequence

from repro.core.base import TripleIndex
from repro.core.patterns import TriplePattern


@dataclass
class QueryTiming:
    """Result of timing one workload against one index."""

    index_name: str
    kind: str
    num_queries: int
    matched_triples: int
    elapsed_seconds: float

    @property
    def ns_per_triple(self) -> float:
        """Nanoseconds per returned triple (the paper's speed metric)."""
        if self.matched_triples == 0:
            return 0.0
        return self.elapsed_seconds * 1e9 / self.matched_triples

    @property
    def us_per_query(self) -> float:
        """Microseconds per query, useful for the lookup-style patterns."""
        if self.num_queries == 0:
            return 0.0
        return self.elapsed_seconds * 1e6 / self.num_queries


def measure_pattern_workload(index: TripleIndex, patterns: Sequence[TriplePattern],
                             kind: str = "", repetitions: int = 1) -> QueryTiming:
    """Execute every pattern and time the full sweep.

    ``repetitions`` repeats the sweep to smooth fluctuations (the paper
    averages five runs); the reported time is the average per sweep.
    """
    matched = 0
    start = time.perf_counter()
    for _ in range(max(1, repetitions)):
        matched = 0
        for pattern in patterns:
            for _triple in index.select(pattern):
                matched += 1
    elapsed = (time.perf_counter() - start) / max(1, repetitions)
    return QueryTiming(
        index_name=getattr(index, "name", index.__class__.__name__),
        kind=kind,
        num_queries=len(patterns),
        matched_triples=matched,
        elapsed_seconds=elapsed,
    )


def nanoseconds_per_triple(index: TripleIndex, patterns: Sequence[TriplePattern],
                           repetitions: int = 1) -> float:
    """Shorthand for the paper's ns/triple metric over a workload."""
    return measure_pattern_workload(index, patterns, repetitions=repetitions).ns_per_triple


def measure_sequence_operations(sequence, positions: Sequence[int],
                                ranges: Sequence[tuple],
                                values: Sequence[int]) -> Dict[str, float]:
    """Time access / find / scan on an encoded sequence (Table 1 methodology).

    ``positions`` drive ``access``; ``ranges``+``values`` (parallel) drive
    ``find``; ``scan`` decodes each range sequentially.  Results are
    nanoseconds per operation (access, find) and per decoded integer (scan).
    """
    timings: Dict[str, float] = {}

    start = time.perf_counter()
    for position in positions:
        sequence.access(position)
    elapsed = time.perf_counter() - start
    timings["access_ns"] = elapsed * 1e9 / max(1, len(positions))

    start = time.perf_counter()
    for (begin, end), value in zip(ranges, values):
        sequence.find(begin, end, value)
    elapsed = time.perf_counter() - start
    timings["find_ns"] = elapsed * 1e9 / max(1, len(ranges))

    decoded = 0
    start = time.perf_counter()
    for begin, end in ranges:
        for _ in sequence.scan(begin, end):
            decoded += 1
    elapsed = time.perf_counter() - start
    timings["scan_ns"] = elapsed * 1e9 / max(1, decoded)
    return timings
