"""Plain-text table rendering in the style of the paper's tables.

The benchmark scripts print their results with these helpers so the rows can
be compared side by side with the corresponding table of the paper (see
EXPERIMENTS.md for the mapping).
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence, Union

Cell = Union[str, int, float, None]


def _format_cell(value: Cell, precision: int) -> str:
    if value is None:
        return "—"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Cell]],
                 title: Optional[str] = None, precision: int = 2) -> str:
    """Render an aligned plain-text table."""
    formatted_rows = [[_format_cell(cell, precision) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in formatted_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in formatted_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_bits_per_triple_table(results: Mapping[str, Mapping[str, float]],
                                 title: str = "bits/triple") -> str:
    """Render an index -> dataset -> bits/triple matrix."""
    datasets = sorted({dataset for per_index in results.values() for dataset in per_index})
    headers = ["index"] + datasets
    rows = []
    for index_name, per_dataset in results.items():
        rows.append([index_name] + [per_dataset.get(dataset) for dataset in datasets])
    return format_table(headers, rows, title=title)


def speedup(reference: float, other: float) -> Optional[float]:
    """How many times slower ``other`` is than ``reference`` (paper's x factors)."""
    if reference <= 0:
        return None
    return other / reference


def space_overhead_percent(reference_bits: float, other_bits: float) -> Optional[float]:
    """The paper's ``(+p%)`` notation: subtracting p% of ``other`` gives ``reference``."""
    if other_bits <= 0:
        return None
    return 100.0 * (other_bits - reference_bits) / other_bits
