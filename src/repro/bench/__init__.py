"""Measurement harness used by the ``benchmarks/`` suite."""

from repro.bench.measure import (
    QueryTiming,
    measure_pattern_workload,
    measure_sequence_operations,
    nanoseconds_per_triple,
)
from repro.bench.tables import format_table, format_bits_per_triple_table

__all__ = [
    "QueryTiming",
    "measure_pattern_workload",
    "measure_sequence_operations",
    "nanoseconds_per_triple",
    "format_table",
    "format_bits_per_triple_table",
]
