"""String dictionaries mapping RDF terms to integer identifiers.

The paper explicitly scopes the string dictionary out of the triple indexing
problem, but a working system still needs one to ingest N-Triples files and to
support the range queries of Section 3.1, whose ID assignment interleaves a
lexicographic order for URI/plain-literal terms with a value order for numeric
literals kept in a separate sorted structure ``R``.

Two classes are provided:

* :class:`Dictionary` — a single-role bidirectional string <-> dense-ID map
  with lexicographic assignment;
* :class:`RdfDictionary` — the per-role (S / P / O) composition used by the
  loaders, plus the :class:`NumericIndex` (``R``) for numeric objects.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import DictionaryError
from repro.rdf.triples import TripleStore
from repro.sequences.elias_fano import EliasFano


class Dictionary:
    """Bidirectional mapping between strings and dense integer IDs.

    IDs are assigned in lexicographic order of the terms, as the paper assumes
    for its (default) ID assignment.
    """

    __slots__ = ("_terms", "_ids", "_num_sorted")

    def __init__(self, terms: Sequence[str]):
        self._terms: List[str] = sorted(set(terms))
        self._ids: Dict[str, int] = {term: i for i, term in enumerate(self._terms)}
        self._num_sorted = len(self._terms)

    @classmethod
    def from_terms(cls, terms: Iterable[str]) -> "Dictionary":
        """Build from any iterable of terms (duplicates allowed)."""
        return cls(list(terms))

    @classmethod
    def _restore(cls, terms: Sequence[str]) -> "Dictionary":
        """Rebuild from a term list already in ID order.

        Used by the persistence layer: skips the sort/dedup of ``__init__``
        because the stored order *is* the ID assignment.  The order is the
        build-time lexicographic run optionally followed by dynamically
        :meth:`add`-ed terms, so the sorted-prefix length is re-derived for
        :meth:`prefix_range`.
        """
        instance = cls.__new__(cls)
        instance._terms = list(terms)
        instance._ids = {term: i for i, term in enumerate(instance._terms)}
        num_sorted = len(instance._terms)
        for i in range(1, len(instance._terms)):
            if instance._terms[i - 1] > instance._terms[i]:
                num_sorted = i
                break
        instance._num_sorted = num_sorted
        return instance

    def add(self, term: str) -> int:
        """Return ``term``'s ID, appending it with a fresh ID if absent.

        This is the dynamic-update entry point: build-time IDs are assigned
        lexicographically, terms added later take the next free ID, so no
        existing ID ever moves (triples already indexed stay valid).  A
        term that happens to extend the lexicographic run keeps
        :meth:`prefix_range` covering it; once an out-of-order term is
        appended, the run freezes there until the next full rebuild.
        Tracking the run incrementally keeps the answer identical to what
        :meth:`_restore` re-derives after a save/load round trip.
        """
        existing = self._ids.get(term)
        if existing is not None:
            return existing
        identifier = len(self._terms)
        if self._num_sorted == identifier and (
                identifier == 0 or self._terms[-1] <= term):
            self._num_sorted += 1
        self._terms.append(term)
        self._ids[term] = identifier
        return identifier

    def save(self, path) -> int:
        """Persist this dictionary to ``path``; returns bytes written."""
        from repro.storage import save_object
        return save_object(self, path)

    @classmethod
    def load(cls, path) -> "Dictionary":
        """Load a dictionary saved with :meth:`save`."""
        from repro.storage import load_object
        return load_object(path, expected_type=cls)

    def __len__(self) -> int:
        return len(self._terms)

    def __contains__(self, term: str) -> bool:
        return term in self._ids

    def id_of(self, term: str) -> int:
        """Return the ID of ``term``; raises :class:`DictionaryError` if absent."""
        try:
            return self._ids[term]
        except KeyError:
            raise DictionaryError(f"unknown term {term!r}") from None

    def term_of(self, identifier: int) -> str:
        """Return the term with ID ``identifier``."""
        if not 0 <= identifier < len(self._terms):
            raise DictionaryError(f"identifier {identifier} out of range")
        return self._terms[identifier]

    def get(self, term: str, default: Optional[int] = None) -> Optional[int]:
        """Return the ID of ``term`` or ``default``."""
        return self._ids.get(term, default)

    def terms(self) -> List[str]:
        """All terms in ID (lexicographic) order."""
        return list(self._terms)

    def prefix_range(self, prefix: str) -> Tuple[int, int]:
        """Return the half-open ID range of terms starting with ``prefix``.

        Lexicographic assignment makes prefix lookups a pair of binary
        searches; useful for namespace-scoped scans.  Only the build-time
        lexicographic run is covered: terms appended by :meth:`add` have
        out-of-order IDs and are excluded until a rebuild re-sorts them.
        """
        lo = bisect.bisect_left(self._terms, prefix, 0, self._num_sorted)
        hi = bisect.bisect_left(self._terms, prefix + "￿", 0, self._num_sorted)
        return lo, hi


class NumericIndex:
    """The sorted numeric structure ``R`` used for range queries.

    Numeric literals are sorted by value; their positions (IDs relative to the
    numeric sub-space) can be located with two binary searches directly over
    the compressed representation, as described in Section 3.1 of the paper.
    Values are stored scaled to integers (``scale`` decimal digits) and
    compressed with Elias-Fano.
    """

    def __init__(self, values: Sequence[float], scale: int = 0):
        self._scale = scale
        factor = 10 ** scale
        scaled = sorted(int(round(v * factor)) for v in values)
        self._offset = -scaled[0] if scaled and scaled[0] < 0 else 0
        shifted = [v + self._offset for v in scaled]
        self._sequence = EliasFano.from_values(shifted)
        self._factor = factor

    @classmethod
    def _restore(cls, scale: int, offset: int, sequence: EliasFano) -> "NumericIndex":
        """Rebuild from persisted state without re-sorting or re-encoding."""
        instance = cls.__new__(cls)
        instance._scale = scale
        instance._factor = 10 ** scale
        instance._offset = offset
        instance._sequence = sequence
        return instance

    def __len__(self) -> int:
        return len(self._sequence)

    def size_in_bits(self) -> int:
        """Space of the compressed representation (paper reports < 0.1 bits/triple)."""
        return self._sequence.size_in_bits()

    def value_at(self, position: int) -> float:
        """Return the ``position``-th smallest numeric value."""
        return (self._sequence.access(position) - self._offset) / self._factor

    def id_range(self, low: float, high: float,
                 inclusive: bool = False) -> Tuple[int, int]:
        """Return the half-open position range of values in ``(low, high)``.

        With ``inclusive=True`` the bounds themselves are admitted, i.e. the
        constraint becomes ``low <= value <= high``.
        """
        if len(self._sequence) == 0:
            return 0, 0
        low_scaled = int(round(low * self._factor)) + self._offset
        high_scaled = int(round(high * self._factor)) + self._offset
        if not inclusive:
            low_scaled += 1
            high_scaled -= 1
        lo_pos, _ = self._sequence.next_geq(max(0, low_scaled))
        hi_pos, element = self._sequence.next_geq(max(0, high_scaled + 1))
        if element == -1:
            hi_pos = len(self._sequence)
        return lo_pos, hi_pos


@dataclass
class RdfDictionary:
    """Role dictionaries plus the numeric index for range queries.

    ``subjects`` and ``objects`` normally reference the *same* shared resource
    dictionary (see :meth:`from_term_triples`); ``predicates`` is separate.
    """

    subjects: Dictionary
    predicates: Dictionary
    objects: Dictionary
    numeric_objects: Optional[NumericIndex] = None

    @classmethod
    def from_term_triples(cls, term_triples: Iterable[Tuple[str, str, str]]
                          ) -> Tuple["RdfDictionary", TripleStore]:
        """Build dictionaries and the integer :class:`TripleStore` in one pass.

        Subjects and objects share one resource dictionary (as in HDT-style
        systems) so that an entity keeps the same ID whether it appears as a
        subject or as an object — a prerequisite for joining triple patterns
        on a shared variable.  Predicates get their own, much smaller,
        dictionary.
        """
        resources: List[str] = []
        predicates: List[str] = []
        materialised = list(term_triples)
        for s, p, o in materialised:
            resources.append(s)
            predicates.append(p)
            resources.append(o)
        shared = Dictionary.from_terms(resources)
        dictionary = cls(
            subjects=shared,
            predicates=Dictionary.from_terms(predicates),
            objects=shared,
        )
        encoded = [
            (dictionary.subjects.id_of(s),
             dictionary.predicates.id_of(p),
             dictionary.objects.id_of(o))
            for s, p, o in materialised
        ]
        return dictionary, TripleStore.from_triples(encoded)

    def encode(self, s: str, p: str, o: str) -> Tuple[int, int, int]:
        """Encode a term triple into an ID triple."""
        return (self.subjects.id_of(s), self.predicates.id_of(p), self.objects.id_of(o))

    def encode_or_add(self, s: str, p: str, o: str) -> Tuple[int, int, int]:
        """Encode a term triple, minting fresh IDs for unseen terms.

        The dynamic-update counterpart of :meth:`encode`: when subjects and
        objects share one resource dictionary (the
        :meth:`from_term_triples` layout), an entity added here keeps the
        same ID in both roles, so joins across roles still work on
        freshly-inserted triples.

        Like :meth:`Dictionary.add`'s ``prefix_range`` caveat, the
        immutable ``numeric_objects`` index (``R``) is *not* extended: a
        numeric literal minted here is absent from
        :class:`NumericIndex`-backed range queries until the next full
        rebuild re-sorts the ID space.
        """
        return (self.subjects.add(s), self.predicates.add(p),
                self.objects.add(o))

    def decode(self, triple: Tuple[int, int, int]) -> Tuple[str, str, str]:
        """Decode an ID triple back into terms."""
        s, p, o = triple
        return (self.subjects.term_of(s), self.predicates.term_of(p),
                self.objects.term_of(o))

    def decode_lenient(self, triple: Tuple[int, int, int]) -> Tuple[str, str, str]:
        """Decode an ID triple, rendering term-less IDs as ``<id:N>``.

        Dynamic updates may legitimately insert IDs this dictionary has no
        term for (``repro update --ids``, ``POST /update``); display paths
        use this so one such triple cannot crash the listing of a whole
        result set.
        """
        parts = []
        for role_dictionary, value in zip(
                (self.subjects, self.predicates, self.objects), triple):
            if 0 <= value < len(role_dictionary):
                parts.append(role_dictionary.term_of(value))
            else:
                parts.append(f"<id:{value}>")
        return tuple(parts)

    def save(self, path) -> int:
        """Persist the role dictionaries (and numeric index) to ``path``."""
        from repro.storage import save_object
        return save_object(self, path)

    @classmethod
    def load(cls, path) -> "RdfDictionary":
        """Load a dictionary bundle saved with :meth:`save`.

        The subject/object sharing of :meth:`from_term_triples` is preserved:
        if the saved bundle shared one resource dictionary, the loaded one
        does too.
        """
        from repro.storage import load_object
        return load_object(path, expected_type=cls)

    def size_summary(self) -> Dict[str, int]:
        """Number of terms per role (excluded from bits/triple accounting)."""
        return {
            "subjects": len(self.subjects),
            "predicates": len(self.predicates),
            "objects": len(self.objects),
        }
