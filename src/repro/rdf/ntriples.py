"""Minimal N-Triples reader and writer.

Only the subset of the W3C N-Triples grammar that RDF dumps actually use is
supported: IRIs in angle brackets, blank nodes, and literals with optional
language tag or datatype.  The parser is line oriented and tolerant of extra
whitespace; malformed lines raise :class:`repro.errors.ParseError` with the
offending line number.
"""

from __future__ import annotations

import gzip
import re
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Iterable, Iterator, List, Optional, Tuple, Union

from repro.errors import ParseError


def open_text(path: Union[str, Path], mode: str = "r") -> IO[str]:
    """Open a text file, transparently (de)compressing ``.gz`` paths.

    The shared opener behind every N-Triples entry point (and the CLI's
    ``build``/``update`` inputs): real RDF dumps ship gzip-compressed, so
    ``data.nt.gz`` works anywhere ``data.nt`` does.  ``mode`` is ``"r"``
    or ``"w"``.
    """
    if mode not in ("r", "w"):
        raise ValueError(f"open_text supports modes 'r' and 'w', not {mode!r}")
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")

_IRI = r"<(?P<{name}>[^>]*)>"
_BNODE = r"(?P<{name}_bnode>_:[A-Za-z0-9_.\-]+)"
_LITERAL = (
    r'"(?P<{name}_lit>(?:[^"\\]|\\.)*)"'
    r"(?:@(?P<{name}_lang>[A-Za-z][A-Za-z0-9\-]*)|\^\^<(?P<{name}_dt>[^>]*)>)?"
)


def _term_pattern(name: str, allow_literal: bool) -> str:
    alternatives = [_IRI.format(name=name), _BNODE.format(name=name)]
    if allow_literal:
        alternatives.append(_LITERAL.format(name=name))
    return "(?:" + "|".join(alternatives) + ")"


_LINE_RE = re.compile(
    r"^\s*" + _term_pattern("s", allow_literal=False) +
    r"\s+" + _term_pattern("p", allow_literal=False) +
    r"\s+" + _term_pattern("o", allow_literal=True) +
    r"\s*\.\s*(?:#.*)?$"
)

_ESCAPES = {
    "\\n": "\n", "\\r": "\r", "\\t": "\t",
    '\\"': '"', "\\\\": "\\",
}


@dataclass(frozen=True)
class Term:
    """A parsed RDF term.

    ``kind`` is one of ``"iri"``, ``"bnode"`` or ``"literal"``; literals carry
    an optional ``language`` or ``datatype``.
    """

    kind: str
    value: str
    language: Optional[str] = None
    datatype: Optional[str] = None

    def is_numeric(self) -> bool:
        """Whether the term is a numeric literal (xsd integer/decimal/double)."""
        if self.kind != "literal" or self.datatype is None:
            return False
        return self.datatype.rsplit("#", 1)[-1] in {
            "integer", "int", "long", "decimal", "double", "float",
            "nonNegativeInteger", "gYear",
        }

    def numeric_value(self) -> float:
        """Numeric value of a numeric literal."""
        if not self.is_numeric():
            raise ParseError(f"term {self!r} is not a numeric literal")
        return float(self.value)

    def ntriples(self) -> str:
        """Serialise back to N-Triples syntax."""
        if self.kind == "iri":
            return f"<{self.value}>"
        if self.kind == "bnode":
            return self.value if self.value.startswith("_:") else f"_:{self.value}"
        escaped = self.value.replace("\\", "\\\\").replace('"', '\\"')
        if self.language:
            return f'"{escaped}"@{self.language}'
        if self.datatype:
            return f'"{escaped}"^^<{self.datatype}>'
        return f'"{escaped}"'

    def key(self) -> str:
        """Canonical string used as dictionary key."""
        return self.ntriples()


def _unescape(value: str) -> str:
    for escaped, raw in _ESCAPES.items():
        value = value.replace(escaped, raw)
    return value


def _term_from_match(match: re.Match, name: str) -> Term:
    iri = match.group(name)
    if iri is not None:
        return Term("iri", iri)
    bnode = match.group(f"{name}_bnode")
    if bnode is not None:
        return Term("bnode", bnode)
    literal = match.group(f"{name}_lit")
    return Term("literal", _unescape(literal),
                language=match.group(f"{name}_lang"),
                datatype=match.group(f"{name}_dt"))


def parse_ntriples(lines: Iterable[str]) -> Iterator[Tuple[Term, Term, Term]]:
    """Parse an iterable of N-Triples lines into ``(s, p, o)`` :class:`Term` tuples.

    Blank lines and comment lines are skipped.
    """
    for line_number, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        match = _LINE_RE.match(line)
        if match is None:
            raise ParseError(f"malformed N-Triples statement at line {line_number}: {line!r}")
        yield (_term_from_match(match, "s"),
               _term_from_match(match, "p"),
               _term_from_match(match, "o"))


def parse_ntriples_file(path: Union[str, Path]) -> Iterator[Tuple[Term, Term, Term]]:
    """Stream-parse an N-Triples file (``.nt`` or gzip-compressed ``.nt.gz``)."""
    with open_text(path) as handle:
        yield from parse_ntriples(handle)


def write_ntriples(triples: Iterable[Tuple[Term, Term, Term]], path: Union[str, Path]) -> int:
    """Write term triples to ``path`` in N-Triples syntax; returns the count.

    A ``.gz`` path writes gzip-compressed output through the same opener
    the parser uses.
    """
    count = 0
    with open_text(path, "w") as handle:
        for s, p, o in triples:
            handle.write(f"{s.ntriples()} {p.ntriples()} {o.ntriples()} .\n")
            count += 1
    return count


def term_triples_to_keys(triples: Iterable[Tuple[Term, Term, Term]]
                         ) -> List[Tuple[str, str, str]]:
    """Convert term triples into canonical-string triples for dictionary building."""
    return [(s.key(), p.key(), o.key()) for s, p, o in triples]
