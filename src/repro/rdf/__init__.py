"""RDF data model: integer triples, string dictionaries, N-Triples I/O."""

from repro.rdf.triples import Triple, TripleStore
from repro.rdf.dictionary import Dictionary, RdfDictionary, NumericIndex
from repro.rdf.ntriples import parse_ntriples, parse_ntriples_file, write_ntriples, Term

__all__ = [
    "Triple",
    "TripleStore",
    "Dictionary",
    "RdfDictionary",
    "NumericIndex",
    "Term",
    "parse_ntriples",
    "parse_ntriples_file",
    "write_ntriples",
]
