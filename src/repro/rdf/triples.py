"""Integer triple containers.

The triple indexing problem of the paper operates on triples of integer IDs
(the string dictionary is a separate concern).  :class:`TripleStore` is the
columnar container every index builder consumes: three parallel numpy arrays
of subject, predicate and object IDs, deduplicated and with per-role dense ID
spaces (IDs in ``[0, num_distinct)`` for each role), which is what makes the
first trie level implicit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from repro.errors import IndexBuildError

#: Component order of the canonical permutation.
SUBJECT, PREDICATE, OBJECT = 0, 1, 2

_ROLE_NAMES = ("subject", "predicate", "object")


@dataclass(frozen=True, order=True)
class Triple:
    """A single (subject, predicate, object) statement as integer IDs."""

    subject: int
    predicate: int
    object: int

    def as_tuple(self) -> Tuple[int, int, int]:
        """Return the plain ``(s, p, o)`` tuple."""
        return (self.subject, self.predicate, self.object)

    def component(self, role: int) -> int:
        """Return the component at position ``role`` (0=S, 1=P, 2=O)."""
        return self.as_tuple()[role]


class TripleStore:
    """Columnar, deduplicated set of integer triples with dense per-role IDs."""

    __slots__ = ("_subjects", "_predicates", "_objects")

    def __init__(self, subjects: np.ndarray, predicates: np.ndarray, objects: np.ndarray):
        if not (subjects.shape == predicates.shape == objects.shape):
            raise IndexBuildError("triple columns must have identical shapes")
        self._subjects = np.ascontiguousarray(subjects, dtype=np.int64)
        self._predicates = np.ascontiguousarray(predicates, dtype=np.int64)
        self._objects = np.ascontiguousarray(objects, dtype=np.int64)
        if self._subjects.size:
            for name, column in zip(_ROLE_NAMES, self.columns()):
                if int(column.min()) < 0:
                    raise IndexBuildError(f"negative {name} identifier")

    # ------------------------------------------------------------------ #
    # Construction.
    # ------------------------------------------------------------------ #

    @classmethod
    def from_triples(cls, triples: Iterable[Tuple[int, int, int]],
                     dedup: bool = True, densify: bool = False) -> "TripleStore":
        """Build a store from an iterable of ``(s, p, o)`` integer tuples.

        ``dedup`` removes duplicate statements (the paper's datasets are sets).
        ``densify`` remaps every role to a dense ``[0, n)`` ID space, which is
        required by the tries when the input IDs have gaps.
        """
        materialised = [t.as_tuple() if isinstance(t, Triple) else tuple(t) for t in triples]
        if materialised:
            array = np.asarray(materialised, dtype=np.int64)
        else:
            array = np.zeros((0, 3), dtype=np.int64)
        if array.ndim != 2 or (array.size and array.shape[1] != 3):
            raise IndexBuildError("triples must be (s, p, o) tuples")
        store = cls(array[:, 0].copy(), array[:, 1].copy(), array[:, 2].copy())
        if dedup:
            store = store.deduplicated()
        if densify:
            store, _ = store.densified()
        return store

    @classmethod
    def from_columns(cls, subjects: Sequence[int], predicates: Sequence[int],
                     objects: Sequence[int], dedup: bool = True) -> "TripleStore":
        """Build a store from three parallel columns."""
        store = cls(np.asarray(subjects, dtype=np.int64),
                    np.asarray(predicates, dtype=np.int64),
                    np.asarray(objects, dtype=np.int64))
        return store.deduplicated() if dedup else store

    def deduplicated(self) -> "TripleStore":
        """Return a copy without duplicate statements (sorted SPO order)."""
        if not len(self):
            return self
        stacked = np.stack([self._subjects, self._predicates, self._objects], axis=1)
        unique = np.unique(stacked, axis=0)
        return TripleStore(unique[:, 0], unique[:, 1], unique[:, 2])

    def densified(self) -> Tuple["TripleStore", Dict[str, np.ndarray]]:
        """Remap each role to a dense ID space.

        Returns the remapped store and, per role name, the array mapping new
        dense IDs back to the original identifiers.
        """
        mappings: Dict[str, np.ndarray] = {}
        new_columns: List[np.ndarray] = []
        for name, column in zip(_ROLE_NAMES, self.columns()):
            originals, inverse = np.unique(column, return_inverse=True)
            mappings[name] = originals
            new_columns.append(inverse.astype(np.int64))
        return TripleStore(*new_columns), mappings

    # ------------------------------------------------------------------ #
    # Basic accessors.
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return int(self._subjects.size)

    def __iter__(self) -> Iterator[Tuple[int, int, int]]:
        for s, p, o in zip(self._subjects.tolist(), self._predicates.tolist(),
                           self._objects.tolist()):
            yield (s, p, o)

    def __contains__(self, triple: Tuple[int, int, int]) -> bool:
        s, p, o = triple
        mask = (self._subjects == s) & (self._predicates == p) & (self._objects == o)
        return bool(mask.any())

    def columns(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return the (subjects, predicates, objects) columns."""
        return self._subjects, self._predicates, self._objects

    def column(self, role: int) -> np.ndarray:
        """Return one column by role index (0=S, 1=P, 2=O)."""
        return self.columns()[role]

    def triples(self) -> Iterator[Triple]:
        """Iterate over :class:`Triple` objects."""
        for s, p, o in self:
            yield Triple(s, p, o)

    def to_array(self) -> np.ndarray:
        """Return an ``(n, 3)`` array of the triples in SPO column order."""
        return np.stack([self._subjects, self._predicates, self._objects], axis=1)

    def sample(self, count: int, seed: int = 0) -> List[Tuple[int, int, int]]:
        """Sample ``count`` triples uniformly at random (with a fixed seed).

        This mirrors the paper's methodology of drawing 5 000 triples from the
        indexed dataset to build query workloads.
        """
        if not len(self):
            return []
        rng = np.random.default_rng(seed)
        indices = rng.integers(0, len(self), size=min(count, len(self)))
        return [(int(self._subjects[i]), int(self._predicates[i]), int(self._objects[i]))
                for i in indices]

    # ------------------------------------------------------------------ #
    # Ordering.
    # ------------------------------------------------------------------ #

    def sorted_columns(self, order: Tuple[int, int, int]) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return the three columns permuted to ``order`` and lexicographically sorted.

        ``order`` lists the roles (0=S, 1=P, 2=O) from most to least
        significant, e.g. ``(1, 2, 0)`` produces the POS permutation: the
        returned first column holds predicates, the second objects, the third
        subjects, sorted lexicographically in that order.
        """
        if sorted(order) != [0, 1, 2]:
            raise IndexBuildError(f"invalid permutation order {order}")
        first = self.column(order[0])
        second = self.column(order[1])
        third = self.column(order[2])
        # np.lexsort sorts by the last key first.
        sorted_index = np.lexsort((third, second, first))
        return first[sorted_index], second[sorted_index], third[sorted_index]

    # ------------------------------------------------------------------ #
    # Statistics (Table 3 of the paper).
    # ------------------------------------------------------------------ #

    def num_distinct(self, role: int) -> int:
        """Number of distinct identifiers appearing in ``role``."""
        column = self.column(role)
        return int(np.unique(column).size) if column.size else 0

    @property
    def num_subjects(self) -> int:
        """Number of distinct subjects."""
        return self.num_distinct(SUBJECT)

    @property
    def num_predicates(self) -> int:
        """Number of distinct predicates."""
        return self.num_distinct(PREDICATE)

    @property
    def num_objects(self) -> int:
        """Number of distinct objects."""
        return self.num_distinct(OBJECT)

    def num_distinct_pairs(self, first_role: int, second_role: int) -> int:
        """Number of distinct (first_role, second_role) pairs, e.g. SP, PO, OS."""
        first = self.column(first_role)
        second = self.column(second_role)
        if not first.size:
            return 0
        stacked = np.stack([first, second], axis=1)
        return int(np.unique(stacked, axis=0).shape[0])

    def statistics(self) -> Dict[str, int]:
        """Return the Table 3 statistics for this dataset."""
        return {
            "triples": len(self),
            "subjects": self.num_subjects,
            "predicates": self.num_predicates,
            "objects": self.num_objects,
            "sp_pairs": self.num_distinct_pairs(SUBJECT, PREDICATE),
            "po_pairs": self.num_distinct_pairs(PREDICATE, OBJECT),
            "os_pairs": self.num_distinct_pairs(OBJECT, SUBJECT),
        }

    def is_dense(self) -> bool:
        """Whether every role uses a dense ``[0, n)`` ID space."""
        for column in self.columns():
            if not column.size:
                continue
            distinct = np.unique(column)
            if int(distinct[0]) != 0 or int(distinct[-1]) != distinct.size - 1:
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TripleStore(triples={len(self)}, subjects={self.num_subjects}, "
                f"predicates={self.num_predicates}, objects={self.num_objects})")
