"""The coordinator: the single-box service surface over many shards.

:class:`ClusterQueryService` subclasses the ordinary
:class:`~repro.service.engine.QueryService`, swapping the local index
for a :class:`~repro.cluster.client.ClusterIndex` and overriding the
write path to route batches to their owning shards.  Everything else —
SPARQL parsing against the cluster dictionary, plan cache, epoch-keyed
result cache, limit/offset/timeout enforcement, latency statistics, the
whole HTTP layer — is inherited.  Two execution strategies:

**Star pushdown.**  When every pattern of the BGP has the *same* subject
term (one shared variable, or one constant), every solution's triples
live on a single subject-hash shard, so the whole BGP is scattered and
each shard runs it locally with the requested engine; the disjoint
binding streams are concatenated and the page (``offset``/``limit``) is
cut at the coordinator.  A constant subject narrows the scatter to its
one owning shard.  Per-shard result caches make repeated pushdowns
cheap; the merged statistics sum the shards' counters.

**Coordinator-side join.**  Any other BGP runs through the *inherited*
``QueryService.execute`` against the :class:`ClusterIndex` facade: each
per-pattern probe of the nested-loop (or materialising wcoj) executor
becomes a routed ``select`` scatter.  Correctness needs nothing beyond
``select()``, which is exactly what the facade provides.

The **partial-failure policy** is chosen at coordinator start
(``best_effort=True``) — reads then skip shards whose whole replica set
is unreachable and mark the response ``incomplete``; the default is
fail-fast (503).  The result cache stores complete responses only (an
incomplete page is computed fresh every time and never served later),
so best-effort mode keeps its cache hits.  Writes are always fail-fast
and idempotent, so a retried batch cannot double-apply and an
acknowledgement means every owning shard has the triples WAL-durable.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.cluster.client import (
    ClusterClient,
    ClusterIndex,
    absorb_failure,
    begin_request,
    end_request,
    request_events,
    request_failures,
)
from repro.cluster.partition import (
    MANIFEST_NAME,
    META_NAME,
    load_cluster_meta,
    read_manifest,
    shard_of,
)
from repro.errors import (
    ClusterError,
    QueryTimeoutError,
    ServiceError,
    ShardUnavailableError,
)
from repro.obs import QueryProfile, Span, decode_trace_context
from repro.queries.sparql import is_variable
from repro.service.engine import QueryResult, QueryService, latency_report
from repro.service.http import QueryServiceHandler, QueryServiceServer, _run_one
from repro import wire


class _CompleteOnlyResultCache:
    """A result-cache wrapper that refuses to store partial pages.

    Only ``put`` is guarded: a page computed while any shard was being
    skipped (the thread-local request scope recorded failures) is never
    stored, so everything *in* the cache is a complete response and
    lookups need no guard — best-effort mode keeps its cache hits, and
    only actually-incomplete results bypass the cache.
    """

    def __init__(self, inner):
        self._inner = inner

    def put(self, key, value) -> None:
        if request_failures():
            return
        self._inner.put(key, value)

    def __len__(self) -> int:
        return len(self._inner)

    def __getattr__(self, name):
        return getattr(self._inner, name)


class ClusterWriteResult:
    """An aggregated routed-write (or compaction) acknowledgement."""

    def __init__(self, payload: Dict[str, Any]):
        self.payload = payload

    def to_json(self) -> Dict[str, Any]:
        return dict(self.payload)

    def __getattr__(self, name: str):
        try:
            return self.payload[name]
        except KeyError:
            raise AttributeError(name) from None


class ClusterQueryService(QueryService):
    """A :class:`QueryService` whose index is a shard cluster."""

    def __init__(self, cluster: ClusterClient, dictionary=None,
                 cardinalities=None, best_effort: bool = False,
                 meta: Optional[dict] = None, **options):
        index = ClusterIndex(cluster)
        super().__init__(index, dictionary=dictionary,
                         cardinalities=cardinalities,
                         meta=meta, writable=True, **options)
        self._cluster = cluster
        self.best_effort = bool(best_effort)
        self._request_state = threading.local()
        # Complete responses are cacheable even in best-effort mode; only
        # a page computed with a shard skipped must never be stored.
        self._result_cache = _CompleteOnlyResultCache(self._result_cache)

    @classmethod
    def from_cluster_dir(cls, cluster_dir,
                         addresses: Sequence[Tuple[str, int]],
                         key: Optional[str] = None,
                         **options) -> "ClusterQueryService":
        """Open a partitioner output directory: verify the manifest, load
        the dictionary + global planner stats, connect the shard clients."""
        from pathlib import Path
        cluster_dir = Path(cluster_dir)
        manifest = read_manifest(cluster_dir / MANIFEST_NAME, key)
        meta_path = cluster_dir / manifest.get("meta_container", META_NAME)
        dictionary = planner_stats = None
        if meta_path.exists():
            dictionary, planner_stats, _ = load_cluster_meta(meta_path)
        client = ClusterClient(manifest, addresses)
        return cls(client, dictionary=dictionary,
                   cardinalities=planner_stats,
                   meta={"num_shards": manifest["num_shards"],
                         "layout": "cluster"},
                   **options)

    # ------------------------------------------------------------------ #
    # Per-request partial-failure bookkeeping.
    # ------------------------------------------------------------------ #

    def last_request_report(self) -> Dict[str, Any]:
        """``{"incomplete": bool, "failed_shards": [...]}`` for the most
        recent read executed on the calling thread."""
        state = self._request_state
        return {"incomplete": bool(getattr(state, "incomplete", False)),
                "failed_shards": list(getattr(state, "failed", ()))}

    def _remember(self, failures: Dict[int, str]) -> None:
        self._request_state.incomplete = bool(failures)
        self._request_state.failed = sorted(failures)

    # ------------------------------------------------------------------ #
    # Reads.
    # ------------------------------------------------------------------ #

    def _pushdown_route(self, query) -> Tuple[Optional[str], Optional[int]]:
        """``("broadcast"|"single", shard)`` when the BGP is subject-star
        pushdownable, ``(None, None)`` for a coordinator-side join."""
        subjects = [template.subject for template in query.bgp]
        if not subjects:
            return None, None
        first = subjects[0]
        if any(subject != first for subject in subjects):
            return None, None
        if is_variable(first):
            return "broadcast", None
        return "single", shard_of(int(first), self._cluster.num_shards)

    def execute(self, query, limit: Optional[int] = None, offset: int = 0,
                timeout: Optional[float] = None, use_cache: bool = True,
                engine: Optional[str] = None, profile: bool = False,
                trace: Optional[Dict[str, str]] = None) -> QueryResult:
        if isinstance(query, str):
            query = self.parse(query)
        want_profile = bool(profile) or self._slow_log is not None
        # The guarded result cache holds complete responses only, so
        # best-effort requests may both read it and (when every shard
        # answered) populate it; a partial page is never stored.  A
        # profiled request additionally records failover attempts and
        # best-effort drops for the span tree.
        begin_request(self.best_effort, collect_events=want_profile)
        failures: Dict[int, str] = {}
        try:
            route, shard = self._pushdown_route(query)
            if route is None:
                result = super().execute(query, limit=limit, offset=offset,
                                         timeout=timeout,
                                         use_cache=use_cache, engine=engine,
                                         profile=profile, trace=trace)
                self._append_events(result.profile)
            else:
                result = self._execute_pushdown(query, route, shard, limit,
                                                offset, timeout, use_cache,
                                                engine, profile, trace)
        finally:
            failures = end_request()
            self._remember(failures)
        result.statistics["incomplete"] = bool(failures)
        if failures:
            result.statistics["failed_shards"] = sorted(failures)
        return result

    @staticmethod
    def _append_events(profile_doc: Optional[Dict[str, Any]]) -> None:
        """Graft the failover/drop events of the open request scope onto
        an already-serialised profile (the inherited execute path)."""
        if profile_doc is None:
            return
        events = request_events()
        if not events:
            return
        root = profile_doc.get("root")
        if not isinstance(root, dict):
            return
        span = Span("failover", parent_span_id=root.get("span_id"))
        span.counters["attempts"] = len(events)
        dropped = sum(1 for event in events if event.get("dropped"))
        if dropped:
            span.counters["dropped"] = dropped
        span.attrs["last_error"] = events[-1].get("error")
        root.setdefault("children", []).append(span.to_json())

    def _execute_pushdown(self, query, route: str, shard: Optional[int],
                          limit: Optional[int], offset: int,
                          timeout: Optional[float], use_cache: bool,
                          engine: Optional[str], profile: bool = False,
                          trace: Optional[Dict[str, str]] = None
                          ) -> QueryResult:
        if offset < 0:
            raise ServiceError(f"offset must be >= 0, got {offset}")
        started = time.monotonic()
        want_profile = bool(profile) or self._slow_log is not None
        query_profile: Optional[QueryProfile] = None
        execute_span: Optional[Span] = None
        shard_spans: Dict[int, Span] = {}
        if want_profile:
            trace_id, parent_span_id = decode_trace_context(trace)
            query_profile = QueryProfile(name="coordinator",
                                         trace_id=trace_id,
                                         parent_span_id=parent_span_id)
            if profile:
                with self._lock:
                    self._profile_requests += 1
                self._bump_metric("profile_requests")
        try:
            limit = self._effective_limit(limit)
            timeout = self._default_timeout if timeout is None else timeout
            engine = self._resolve_engine(query, engine)
            deadline = None if timeout is None else started + timeout
            # One solution past the page proves (or disproves) has_more.
            fetch = None if limit is None else offset + limit + 1
            targets = ([shard] if route == "single"
                       else range(self._cluster.num_shards))
            if query_profile is not None:
                plan_span = query_profile.span("plan")
                plan_span.attrs.update({
                    "route": route, "engine": engine,
                    "shards": len(list(targets))})
                plan_span.elapsed_seconds = time.monotonic() - started
                execute_span = query_profile.span("execute")
            rows: List[Dict[str, int]] = []
            payloads: List[dict] = []
            cached = True
            for shard_id in targets:
                remaining = (None if deadline is None
                             else deadline - time.monotonic())
                if remaining is not None and remaining <= 0:
                    raise QueryTimeoutError(
                        f"query exceeded its {timeout:.3f}s budget while "
                        f"scattering to shard {shard_id}")
                shard_span: Optional[Span] = None
                shard_trace: Optional[Dict[str, str]] = None
                if execute_span is not None:
                    # The shard's own spans take this per-shard RPC span
                    # as their parent, so the stitched tree reads
                    # coordinator → shard RPC → shard engine operators.
                    shard_span = execute_span.child(f"shard:{shard_id}")
                    shard_spans[shard_id] = shard_span
                    shard_trace = {"trace_id": query_profile.trace_id,
                                   "parent_span_id": shard_span.span_id}
                shard_started = time.monotonic()
                try:
                    shard_rows, trailer = self._cluster.query_shard(
                        shard_id, query, engine, fetch, remaining, use_cache,
                        profile=want_profile, trace=shard_trace)
                except ShardUnavailableError as error:
                    if absorb_failure(shard_id, error):
                        cached = False
                        if shard_span is not None:
                            shard_span.elapsed_seconds = (
                                time.monotonic() - shard_started)
                            shard_span.attrs["dropped"] = True
                            shard_span.attrs["error"] = str(error)
                        continue
                    raise
                rows.extend(shard_rows)
                payloads.append(trailer.get("statistics", {}))
                cached = cached and bool(trailer.get("cached"))
                if shard_span is not None:
                    shard_span.elapsed_seconds = (
                        time.monotonic() - shard_started)
                    shard_span.counters["rows"] = len(shard_rows)
                    if trailer.get("cached"):
                        shard_span.attrs["cache_hit"] = True
                    shard_profile = trailer.get("profile")
                    if isinstance(shard_profile, dict) and isinstance(
                            shard_profile.get("root"), dict):
                        shard_span.children.append(
                            Span.from_json(shard_profile["root"]))
                if fetch is not None and len(rows) >= fetch:
                    # The page (plus its has_more sentinel) is already
                    # full; the remaining shards cannot change it.
                    break
            has_more: Optional[bool] = None
            if limit is not None:
                has_more = len(rows) > offset + limit
                page = rows[offset:offset + limit]
            else:
                page = rows[offset:] if offset else rows
            summary = wire.merge_statistics(payloads, engine=engine)
            projection = tuple(query.projection or query.variables())
            elapsed = time.monotonic() - started
            self._record(elapsed, engine=engine)
            result = QueryResult(
                variables=projection, bindings=page,
                cached=cached and bool(payloads),
                elapsed_seconds=elapsed, limit=limit, offset=offset,
                has_more=has_more, statistics=summary,
                stages={"plan": 0.0, "execute": elapsed})
            if query_profile is not None:
                self._stitch(query_profile, execute_span, shard_spans,
                             summary)
                self._finalize_profile(query_profile, profile, result, None)
            return result
        except Exception as error:
            elapsed = time.monotonic() - started
            self._record(elapsed,
                         timed_out=isinstance(error, QueryTimeoutError),
                         failed=not isinstance(error, QueryTimeoutError))
            raise

    def _stitch(self, query_profile: QueryProfile,
                execute_span: Optional[Span],
                shard_spans: Dict[int, Span],
                summary: Dict[str, Any]) -> None:
        """Fold the request scope's failover events into the per-shard
        spans and close the tree's bookkeeping counters."""
        root = query_profile.root
        root.attrs["engine"] = summary.get("engine")
        if execute_span is not None:
            execute_span.finish()
        for event in request_events():
            span = shard_spans.get(int(event.get("shard", -1)))
            if span is None:
                continue
            span.add("attempts")
            if event.get("dropped"):
                span.attrs["dropped"] = True
            if event.get("error"):
                span.attrs["error"] = str(event["error"])

    def select(self, pattern, limit: Optional[int] = None, offset: int = 0,
               use_cache: bool = True):
        begin_request(self.best_effort)
        try:
            return super().select(pattern, limit=limit, offset=offset,
                                  use_cache=use_cache)
        finally:
            self._remember(end_request())

    # ------------------------------------------------------------------ #
    # Routed writes.
    # ------------------------------------------------------------------ #

    def update(self, inserts: Sequence[Tuple[int, int, int]] = (),
               deletes: Sequence[Tuple[int, int, int]] = ()):
        """Route one atomic batch to its owning shards; ack only once
        every shard has acknowledged (WAL-durable, epoch-published)."""
        from repro.dynamic.delta import normalize_triple
        inserts = [normalize_triple(t) for t in inserts]
        deletes = [normalize_triple(t) for t in deletes]
        payload = self._cluster.update(inserts, deletes)
        self._index.bump_epoch()
        payload["epoch"] = self._index.epoch
        with self._lock:
            self._updates_applied += (payload.get("inserted", 0)
                                      + payload.get("deleted", 0))
        return ClusterWriteResult(payload)

    def compact(self):
        payload = self._cluster.compact()
        self._index.bump_epoch()
        payload["epoch"] = self._index.epoch
        return ClusterWriteResult(payload)

    # ------------------------------------------------------------------ #
    # Observability.
    # ------------------------------------------------------------------ #

    def health(self) -> Dict[str, Any]:
        """The aggregated ``/healthz`` body: cluster-wide epoch + lag plus
        every shard's own report (unreachable shards degrade the status)."""
        shards = self._cluster.health()
        reachable = [s for s in shards if s.get("status") == "ok"]
        return {
            "status": "ok" if len(reachable) == len(shards) else "degraded",
            "num_shards": len(shards),
            "shards_reachable": len(reachable),
            "combined_epoch": sum(int(s.get("combined_epoch", 0))
                                  for s in reachable),
            "wal_lag": sum(int(s.get("wal_lag", 0)) for s in reachable),
            "num_triples": sum(int(s.get("num_triples", 0))
                               for s in reachable),
            "best_effort": self.best_effort,
            "shards": shards,
        }

    def statistics(self) -> Dict[str, Any]:
        shard_stats = self._cluster.stats()
        report = {
            "cluster": {
                "num_shards": self._cluster.num_shards,
                "has_replicas": self._cluster.has_replicas,
                "best_effort": self.best_effort,
                "epoch": self._index.epoch,
            },
            "coordinator": self._local_statistics(),
            "shards": shard_stats,
        }
        return report

    def _local_statistics(self) -> Dict[str, Any]:
        """The inherited per-service report, minus the index gauges that
        would each cost a cluster-wide fan-in of their own."""
        with self._lock:
            queries = self._queries_executed
            patterns = self._patterns_executed
            batches = self._batches_executed
            timeouts = self._timeouts
            errors = self._errors
            engine_counts = dict(self._engine_counts)
            updates_applied = self._updates_applied
            profile_requests = self._profile_requests
            slow_queries = self._slow_queries
            latencies = sorted(self._latencies)
        return {
            "uptime_seconds": time.monotonic() - self._started,
            "requests": {
                "queries": queries,
                "patterns": patterns,
                "batches": batches,
                "timeouts": timeouts,
                "errors": errors,
                "engines": engine_counts,
                "profile_requests": profile_requests,
                "slow_queries": slow_queries,
            },
            "engine": self._default_engine,
            "updates": {"applied": updates_applied},
            "result_cache": self._result_cache.snapshot(),
            "plan_cache": self._plan_cache.snapshot(),
            "latency_ms": latency_report(latencies),
        }

    def close(self) -> None:
        self._cluster.close()
        if self._slow_log is not None:
            self._slow_log.close()


class CoordinatorHandler(QueryServiceHandler):
    """The single-box HTTP handler plus cluster-aware ``/healthz`` and an
    explicit ``incomplete`` flag on best-effort query responses."""

    server_version = "repro-coordinator"

    def _run_query_object(self, request: Dict[str, Any]) -> Dict[str, Any]:
        body = _run_one(self.service, request,
                        metrics=getattr(self.server, "metrics", None),
                        trace={"trace_id": self._trace_id})
        report = self.service.last_request_report()
        body["incomplete"] = report["incomplete"]
        if report["failed_shards"]:
            body["failed_shards"] = report["failed_shards"]
        return body

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        if self.path == "/healthz":
            self._begin_request()
            try:
                self._send_json(200, self.service.health())
            except Exception as error:  # pragma: no cover - handler guard
                self._send_error_json(error)
            return
        super().do_GET()


class CoordinatorServer(QueryServiceServer):
    """A :class:`QueryServiceServer` dispatching to the cluster handler."""

    def finish_request(self, request, client_address) -> None:
        CoordinatorHandler(request, client_address, self)


def parse_address(text: str) -> Tuple[str, int]:
    """``host:port`` → ``(host, port)`` (for --shard CLI flags)."""
    host, _, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise ClusterError(
            f"shard address must be host:port, got {text!r}")
    return host, int(port)


def parse_replica_set(text: str) -> List[Tuple[str, int]]:
    """``host:port[,host:port...]`` → one shard's replica endpoints.

    The leader's endpoint comes first; a plain ``host:port`` is the
    unreplicated degenerate case.
    """
    endpoints = [parse_address(part.strip())
                 for part in text.split(",") if part.strip()]
    if not endpoints:
        raise ClusterError(f"no shard endpoints in {text!r}")
    return endpoints


def build_coordinator(cluster_dir, addresses: Sequence[Tuple[str, int]],
                      host: str = "127.0.0.1", port: int = 8378,
                      key: Optional[str] = None, quiet: bool = False,
                      best_effort: bool = False,
                      log_format: str = "text",
                      **service_options) -> CoordinatorServer:
    """Open the cluster and bind (not start) the coordinator HTTP server."""
    service = ClusterQueryService.from_cluster_dir(
        cluster_dir, addresses, key=key, best_effort=best_effort,
        **service_options)
    return CoordinatorServer((host, port), service, quiet=quiet,
                             log_format=log_format, subsystem="coordinator")
