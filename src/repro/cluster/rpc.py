"""Length-prefixed JSON RPC shared by the worker pool and the cluster.

One framing, three users: the pre-fork pool's worker↔writer channel
(:mod:`repro.service.pool` imports the helpers from here), the shard
servers (:mod:`repro.cluster.shard`) and the coordinator's shard clients
(:mod:`repro.cluster.client`).  A frame is a 4-byte little-endian payload
length followed by that many bytes of UTF-8 JSON::

    <uint32 LE length> <length bytes of JSON>

The value-level vocabulary inside the JSON is :mod:`repro.wire` — the
same codec the HTTP endpoints speak — so the stack has exactly one
serialisation story from browser to shard.

Two call shapes on top of the framing:

* **unary** — one request frame, one response frame
  ``{"ok": true, ...}`` or ``{"ok": false, "error": {type, message}}``;
* **streaming** — one request frame, then any number of
  ``{"rows": [...]}`` chunk frames, terminated by an
  ``{"eos": true, ...}`` frame (which may carry trailers such as merged
  statistics) or an error frame.  The terminator is what lets a client
  distinguish "stream finished" from "peer died mid-stream".

:class:`RpcClient` keeps one persistent socket for unary calls and a
free-list of sockets for streams: a stream socket is returned to the
free-list only after a clean ``eos`` — a stream abandoned early (say the
coordinator filled its limit page) leaves unread frames behind, so its
socket is closed rather than reused.  Unary calls retry with backoff
across reconnects (shard restarts are expected events, and every shard
operation is idempotent by design); an unreachable peer surfaces as
:class:`~repro.errors.ShardUnavailableError`.

**Trace context.**  A profiled request frame may carry two extra keys —
``"profile": true`` and ``"trace": {"trace_id": <32-hex>,
"parent_span_id": <16-hex>}`` (the :mod:`repro.obs.spans` codec,
re-exported by :mod:`repro.wire`).  Handlers that do not understand them
ignore them; handlers that do (the shard's ``query`` op) execute under
that trace and return their span tree in the ``eos`` trailer's
``"profile"`` key, which is how a cluster query stitches into one tree.
Malformed trace fields are dropped by the tolerant decoder, never an
error — tracing is metadata, not semantics.
"""

from __future__ import annotations

import json
import random
import socket
import socketserver
import struct
import threading
import time
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional

from repro import wire
from repro.errors import ReproError, ShardUnavailableError

#: Frame header: payload length, uint32 little-endian.
FRAME = struct.Struct("<I")
#: A frame far larger than this is a protocol bug, not a request.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Rows per streaming chunk frame — large enough to amortise framing,
#: small enough that limit/offset pages stop the producer promptly.
STREAM_CHUNK_ROWS = 512

_CONNECT_TIMEOUT = 5.0
#: Compactions rebuild the index, so the reply timeout is generous.
_REPLY_TIMEOUT = 600.0

#: Ceiling on any single retry sleep.  Uncapped exponential backoff turns a
#: shard restart into a multi-second stall; anything a retry can fix (a
#: restarting process, a dropped socket) resolves well under a second.
MAX_BACKOFF = 1.0


def backoff_delay(attempt: int, base: float, cap: float = MAX_BACKOFF) -> float:
    """Full-jitter delay before retry ``attempt`` (1-based).

    The exponential bound ``base * 2**(attempt-1)`` is capped at ``cap``
    and the actual sleep drawn uniformly from ``[0, bound]`` — full jitter
    desynchronises a coordinator fan-out so K clients retrying one dead
    shard do not reconnect in lockstep storms.
    """
    bound = min(float(cap), float(base) * (2 ** (max(attempt, 1) - 1)))
    return random.uniform(0.0, bound)


def recv_exactly(sock: socket.socket, count: int,
                 at_start: bool = False) -> Optional[bytes]:
    """``count`` bytes from ``sock``; EOF mid-read is a protocol error.

    ``at_start=True`` makes an immediate EOF a clean ``None`` (the peer
    hung up between frames) instead of an error.
    """
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if at_start and remaining == count:
                return None
            raise ConnectionError("rpc frame truncated")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket) -> Optional[bytes]:
    """One length-prefixed frame, or ``None`` on a clean EOF."""
    header = recv_exactly(sock, FRAME.size, at_start=True)
    if header is None:
        return None
    (length,) = FRAME.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ConnectionError(f"rpc frame of {length} bytes")
    return recv_exactly(sock, length)


def send_frame(sock: socket.socket, payload: bytes) -> None:
    sock.sendall(FRAME.pack(len(payload)) + payload)


def send_message(sock: socket.socket, message: Dict[str, Any]) -> None:
    send_frame(sock, json.dumps(message).encode("utf-8"))


def read_message(sock: socket.socket) -> Optional[Dict[str, Any]]:
    frame = read_frame(sock)
    if frame is None:
        return None
    return json.loads(frame.decode("utf-8"))


# --------------------------------------------------------------------------- #
# Server.
# --------------------------------------------------------------------------- #

class RpcHandlerError(ReproError):
    """Internal marker wrapping non-repro handler failures for the reply."""


class _RpcConnection(socketserver.BaseRequestHandler):
    def handle(self) -> None:
        server: "RpcServer" = self.server  # type: ignore[assignment]
        sock = self.request
        sock.settimeout(_REPLY_TIMEOUT)
        try:
            # Replies are sequences of small frames (chunk, chunk, eos);
            # with Nagle on, every frame after the first waits for the
            # client's delayed ACK — a flat ~40ms per response.
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
        server.track_connection(sock)
        try:
            while not server.stopping:
                try:
                    message = read_message(sock)
                except (OSError, ConnectionError, ValueError):
                    return
                if message is None or server.stopping:
                    return
                try:
                    self._dispatch(server, sock, message)
                except (OSError, ConnectionError):
                    return
        finally:
            server.untrack_connection(sock)

    def _dispatch(self, server: "RpcServer", sock: socket.socket,
                  message: Dict[str, Any]) -> None:
        op = str(message.get("op", ""))
        handler = server.handlers.get(op)
        if handler is None:
            send_message(sock, {"ok": False, "error": {
                "type": "ClusterError",
                "message": f"unknown rpc op {op!r}"}})
            return
        try:
            result = handler(message)
        except Exception as error:  # noqa: BLE001 - reply, don't die
            send_message(sock, {"ok": False,
                                "error": wire.encode_error(error)})
            return
        if isinstance(result, Iterator):
            self._stream(sock, result)
        else:
            reply = dict(result or {})
            reply.setdefault("ok", True)
            send_message(sock, reply)

    def _stream(self, sock: socket.socket, frames: Iterator[dict]) -> None:
        """Relay handler-produced frames; the handler owns chunking and
        must finish with an ``{"eos": true}`` frame of its own."""
        try:
            for frame in frames:
                send_message(sock, frame)
        except Exception as error:  # noqa: BLE001 - mid-stream failure
            try:
                send_message(sock, {"ok": False,
                                    "error": wire.encode_error(error)})
            except OSError:
                pass
        finally:
            close = getattr(frames, "close", None)
            if close is not None:
                close()


class RpcServer(socketserver.ThreadingTCPServer):
    """A threaded TCP server dispatching framed JSON ops to handlers.

    ``handlers`` maps op name to a callable taking the request dict and
    returning either a reply dict (unary) or an iterator of frame dicts
    (streaming; the iterator must yield its own ``eos`` terminator).
    Raised :class:`~repro.errors.ReproError` subclasses travel to the
    client via :func:`repro.wire.encode_error` and re-raise there.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address,
                 handlers: Dict[str, Callable[[dict], Any]]):
        self.handlers = dict(handlers)
        self.stopping = False
        self._connections: "set[socket.socket]" = set()
        self._connections_lock = threading.Lock()
        super().__init__(address, _RpcConnection)

    @property
    def port(self) -> int:
        return self.server_address[1]

    def track_connection(self, sock: socket.socket) -> None:
        with self._connections_lock:
            self._connections.add(sock)

    def untrack_connection(self, sock: socket.socket) -> None:
        with self._connections_lock:
            self._connections.discard(sock)

    def shutdown(self) -> None:
        """Stop accepting *and* sever live connections.

        Coordinators hold persistent sockets; without the hard close a
        "stopped" shard would keep answering them, which breaks both real
        shutdown and chaos testing (kill must look like a crash)."""
        self.stopping = True
        super().shutdown()
        with self._connections_lock:
            victims = list(self._connections)
        for sock in victims:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass


def serve_in_thread(server: RpcServer) -> threading.Thread:
    thread = threading.Thread(target=server.serve_forever,
                              kwargs={"poll_interval": 0.1}, daemon=True)
    thread.start()
    return thread


# --------------------------------------------------------------------------- #
# Client.
# --------------------------------------------------------------------------- #

class RpcClient:
    """One shard's endpoint: retried unary calls + pooled stream sockets.

    ``retries`` counts *re*-attempts after the first try; between attempts
    the client sleeps a full-jitter exponential delay starting from
    ``backoff`` seconds and capped at :data:`MAX_BACKOFF` (no sleep after
    the final attempt).  Thread-safe: unary calls serialise on the
    persistent socket's lock, streams each draw a dedicated socket from
    the free-list.
    """

    def __init__(self, host: str, port: int,
                 retries: int = 2, backoff: float = 0.05):
        self.host = host
        self.port = int(port)
        self.retries = int(retries)
        self.backoff = float(backoff)
        self._lock = threading.Lock()
        self._sock: Optional[socket.socket] = None
        self._free: List[socket.socket] = []

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def _connect(self) -> socket.socket:
        sock = socket.create_connection((self.host, self.port),
                                        timeout=_CONNECT_TIMEOUT)
        sock.settimeout(_REPLY_TIMEOUT)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def close(self) -> None:
        with self._lock:
            if self._sock is not None:
                try:
                    self._sock.close()
                finally:
                    self._sock = None
            for sock in self._free:
                try:
                    sock.close()
                except OSError:
                    pass
            self._free.clear()

    # -- unary ---------------------------------------------------------- #

    def call(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """One request/reply; raises the remote error or
        :class:`~repro.errors.ShardUnavailableError` when unreachable."""
        payload = json.dumps(message).encode("utf-8")
        last_error: Optional[Exception] = None
        with self._lock:
            for attempt in range(self.retries + 1):
                try:
                    if self._sock is None:
                        self._sock = self._connect()
                    send_frame(self._sock, payload)
                    reply = read_message(self._sock)
                    if reply is None:
                        raise ConnectionError("shard closed the connection")
                except (OSError, ConnectionError, ValueError) as exc:
                    last_error = exc
                    if self._sock is not None:
                        try:
                            self._sock.close()
                        finally:
                            self._sock = None
                    if attempt < self.retries:
                        time.sleep(backoff_delay(attempt + 1, self.backoff))
                    continue
                if reply.get("ok", False):
                    return reply
                raise wire.decode_error(reply.get("error", {}))
        raise ShardUnavailableError(
            f"shard {self.address} unreachable after "
            f"{self.retries + 1} attempt(s): {last_error}")

    # -- streaming ------------------------------------------------------ #

    def _checkout(self) -> socket.socket:
        with self._lock:
            if self._free:
                return self._free.pop()
        return self._connect()

    def _checkin(self, sock: socket.socket) -> None:
        with self._lock:
            self._free.append(sock)

    def stream(self, message: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
        """Yield chunk frames for a streaming op, ending with the ``eos``
        frame (yielded, so callers can read its trailers).

        Connection failures *before the first frame* retry like a unary
        call; a failure mid-stream raises — the caller cannot know what
        was already consumed, so silent re-send would duplicate rows.
        """
        payload = json.dumps(message).encode("utf-8")
        last_error: Optional[Exception] = None
        for attempt in range(self.retries + 1):
            try:
                sock = self._checkout()
            except OSError as exc:
                last_error = exc
                if attempt < self.retries:
                    time.sleep(backoff_delay(attempt + 1, self.backoff))
                continue
            try:
                send_frame(sock, payload)
                first = read_message(sock)
                if first is None:
                    raise ConnectionError("shard closed the connection")
            except (OSError, ConnectionError, ValueError) as exc:
                last_error = exc
                try:
                    sock.close()
                except OSError:
                    pass
                if attempt < self.retries:
                    time.sleep(backoff_delay(attempt + 1, self.backoff))
                continue
            return self._consume(sock, first)
        raise ShardUnavailableError(
            f"shard {self.address} unreachable after "
            f"{self.retries + 1} attempt(s): {last_error}")

    def _consume(self, sock: socket.socket,
                 first: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
        clean = False
        try:
            frame: Optional[Dict[str, Any]] = first
            while True:
                if frame is None:
                    raise ConnectionError("shard closed mid-stream")
                if not frame.get("ok", True):
                    raise wire.decode_error(frame.get("error", {}))
                yield frame
                if frame.get("eos"):
                    clean = True
                    return
                frame = read_message(sock)
        finally:
            # Only a fully-drained stream leaves the socket at a frame
            # boundary; an abandoned or failed one must not be reused.
            if clean:
                self._checkin(sock)
            else:
                try:
                    sock.close()
                except OSError:
                    pass

    def ping(self) -> bool:
        try:
            return bool(self.call({"op": "ping"}).get("ok"))
        except ReproError:
            return False


def chunk_rows(rows: Iterable[Any],
               size: int = STREAM_CHUNK_ROWS) -> Iterator[List[Any]]:
    """Batch an iterable into lists of at most ``size`` for chunk frames."""
    batch: List[Any] = []
    for row in rows:
        batch.append(row)
        if len(batch) >= size:
            yield batch
            batch = []
    if batch:
        yield batch
